//! A resilient text front end: parse loop nests from source form.
//!
//! Grammar (whitespace-insensitive; `#` starts a line comment):
//!
//! ```text
//! nest  := loop+ stmt+
//! loop  := "for" ident "=" aff "to" aff [ "step" int ]
//! stmt  := ident "[" aff ("," aff)* "]" "=" expr ";"
//! expr  := term (("+"|"-") term)*
//! term  := factor ("*" factor)*
//! factor:= int | ident "[" aff ("," aff)* "]" | "(" expr ")"
//!        | "-" factor | ("max"|"min") "(" expr "," expr ")"
//! aff   := affine arithmetic over loop identifiers and integers
//! ```
//!
//! Example — the paper's loop (L1):
//!
//! ```text
//! for i = 0 to 3
//! for j = 0 to 3
//!   A[i+1, j+1] = A[i+1, j] + B[i, j];
//!   B[i+1, j]   = 2 * A[i, j] + 1;
//! ```
//!
//! Non-unit steps are supported for constant-bound loops and are
//! normalized away (see [`crate::normalize`]).
//!
//! The front end runs in two stages — the spanned lexer in
//! [`crate::lex`] feeding a recursive-descent parser — and is built to
//! face untrusted input: instead of aborting at the first problem,
//! [`parse_nest_recovering`] collects *every* diagnostic it can in a
//! single pass (stable `LP0NN` codes, see [`crate::front`]), recovering
//! at statement and line boundaries and by bracket matching, and still
//! returns the partial IR it managed to build. Resource limits
//! ([`FrontLimits`]) cap input size, token count, expression depth,
//! nest depth, and diagnostic count, so adversarial input cannot cause
//! unbounded allocation, stack overflow, or hangs. The historical
//! [`parse_nest`] entry point is a thin wrapper that reports the first
//! diagnostic as a [`ParseError`]; for valid input the two are
//! identical (golden tests pin the IR byte-for-byte against the seed
//! parser's output).

use crate::access::Access;
use crate::aff::Aff;
use crate::front::{FrontDiag, FrontLimits, LpCode, ParseOutcome};
use crate::lex::{lex, SrcSpan, TokKind, Token};
use crate::nest::{LoopNest, Stmt};
use crate::normalize::{normalize_rect, RawLevel};
use crate::sem::Expr;
use crate::space::IterSpace;

/// A parse failure with its byte offset in the source — the
/// first-diagnostic view used by [`parse_nest`] and kept for callers
/// that want a plain `Result`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Diagnostic collector with a hard cap: once `max_diags` is reached
/// the parser stops recording (and the main loop stops parsing), so a
/// pathological input cannot grow the report without bound.
struct Sink<'s> {
    src: &'s str,
    diags: Vec<FrontDiag>,
    max: usize,
    overflowed: bool,
}

impl<'s> Sink<'s> {
    fn new(src: &'s str, limits: &FrontLimits) -> Sink<'s> {
        Sink {
            src,
            diags: Vec::new(),
            max: limits.max_diags,
            overflowed: false,
        }
    }

    fn push(&mut self, code: LpCode, start: usize, end: usize, message: String) {
        if self.diags.len() >= self.max {
            self.overflowed = true;
            return;
        }
        self.diags
            .push(crate::lex::diag(self.src, code, start, end, message));
    }

    fn finish(mut self) -> Vec<FrontDiag> {
        if self.overflowed {
            let at = self.src.len();
            self.diags.push(crate::lex::diag(
                self.src,
                LpCode::LimitExceeded,
                at,
                at,
                format!(
                    "diagnostic limit exceeded: more than {} problems; giving up",
                    self.max
                ),
            ));
        }
        self.diags
    }
}

/// A linear combination being built: coefficients per loop ident + const.
#[derive(Clone, Debug)]
struct Lin {
    coeffs: Vec<i64>,
    constant: i64,
}

impl Lin {
    fn constant(n: usize, c: i64) -> Lin {
        Lin {
            coeffs: vec![0; n],
            constant: c,
        }
    }

    fn var(n: usize, k: usize) -> Lin {
        let mut coeffs = vec![0; n];
        coeffs[k] = 1;
        Lin {
            coeffs,
            constant: 0,
        }
    }

    fn add(mut self, o: &Lin, sign: i64) -> Lin {
        for (a, b) in self.coeffs.iter_mut().zip(&o.coeffs) {
            *a = a.wrapping_add(sign.wrapping_mul(*b));
        }
        self.constant = self.constant.wrapping_add(sign.wrapping_mul(o.constant));
        self
    }

    fn scale(mut self, k: i64) -> Lin {
        for a in &mut self.coeffs {
            *a = a.wrapping_mul(k);
        }
        self.constant = self.constant.wrapping_mul(k);
        self
    }

    fn is_const(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    fn to_aff(&self) -> Aff {
        Aff::new(self.coeffs.clone(), self.constant)
    }
}

/// A parsed loop header; poisoned to `0 to 0 step 1` after a recovery.
struct Header {
    lo: Lin,
    hi: Lin,
    step: i64,
}

impl Header {
    fn poison(n: usize) -> Header {
        Header {
            lo: Lin::constant(n, 0),
            hi: Lin::constant(n, 0),
            step: 1,
        }
    }
}

/// Marker for "a diagnostic was recorded; resynchronize".
type Recover = ();

struct Parser<'s> {
    toks: Vec<Token>,
    pos: usize,
    idents: Vec<String>,
    n: usize,
    sink: Sink<'s>,
    depth: usize,
    limits: FrontLimits,
    src_len: usize,
    /// Byte offsets where each source line starts, for the
    /// line-boundary synchronization heuristic.
    line_starts: Vec<usize>,
}

impl<'s> Parser<'s> {
    fn peek(&self) -> Option<&TokKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn span(&self) -> SrcSpan {
        self.toks.get(self.pos).map(|t| t.span).unwrap_or(SrcSpan {
            start: self.src_len,
            end: self.src_len,
        })
    }

    fn error(&mut self, code: LpCode, span: SrcSpan, message: String) {
        self.sink.push(code, span.start, span.end, message);
    }

    /// Record an `expected X, found Y` diagnostic at the current token
    /// *without* consuming it — the synchronizer decides what to skip.
    fn expected(&mut self, what: &str) {
        let span = self.span();
        let found = match self.peek() {
            Some(TokKind::Ident(name)) => format!("`{name}`"),
            Some(TokKind::Int(v)) => format!("`{v}`"),
            Some(TokKind::Sym(c)) => format!("`{c}`"),
            None => "end of input".into(),
        };
        self.error(
            LpCode::Expected,
            span,
            format!("expected {what}, found {found}"),
        );
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&TokKind::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), Recover> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            self.expected(&format!("`{c}`"));
            Err(())
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(TokKind::Ident(w)) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident_index(&self, name: &str) -> Option<usize> {
        self.idents.iter().position(|i| i == name)
    }

    /// `true` iff token `i` is the first token on its source line —
    /// the line-boundary part of the synchronization heuristic.
    fn starts_line(&self, i: usize) -> bool {
        let Some(t) = self.toks.get(i) else {
            return false;
        };
        if i == 0 {
            return true;
        }
        let prev_end = self.toks[i - 1].span.end;
        // A line boundary sits between the previous token and this one.
        let line_of = |off: usize| match self.line_starts.binary_search(&off) {
            Ok(l) => l,
            Err(l) => l - 1,
        };
        line_of(t.span.start) > line_of(prev_end.saturating_sub(1))
    }

    /// `true` iff token `i` looks like the start of a statement
    /// (`ident [`) or a loop header (`for`).
    fn looks_like_sync_point(&self, i: usize) -> bool {
        match self.toks.get(i).map(|t| &t.kind) {
            Some(TokKind::Ident(w)) if w == "for" => true,
            Some(TokKind::Ident(_)) => {
                matches!(
                    self.toks.get(i + 1).map(|t| &t.kind),
                    Some(TokKind::Sym('['))
                )
            }
            _ => false,
        }
    }

    /// Statement-level synchronization: skip forward past the next `;`,
    /// or stop just before a token that begins a new line and looks
    /// like a fresh statement or header. Always makes progress.
    fn sync_stmt(&mut self) {
        let start = self.pos;
        while let Some(k) = self.peek() {
            if *k == TokKind::Sym(';') {
                self.pos += 1;
                return;
            }
            if self.pos > start
                && self.starts_line(self.pos)
                && self.looks_like_sync_point(self.pos)
            {
                return;
            }
            self.pos += 1;
        }
    }

    /// Header-level synchronization: stop just before the next `for`
    /// keyword or statement start; otherwise run to end of input.
    fn sync_header(&mut self) {
        let start = self.pos;
        while self.peek().is_some() {
            if self.pos > start && self.looks_like_sync_point(self.pos) {
                return;
            }
            self.pos += 1;
        }
    }

    /// Bracket-matching synchronization: called with one unclosed
    /// `open` already consumed; skips to just past its matching close,
    /// but refuses to run past a `;` (the statement boundary wins).
    fn sync_close(&mut self, open: char, close: char) {
        let mut depth = 1usize;
        while let Some(k) = self.peek() {
            match k {
                TokKind::Sym(c) if *c == open => depth += 1,
                TokKind::Sym(c) if *c == close => {
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        return;
                    }
                    continue;
                }
                TokKind::Sym(';') => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Depth guard shared by the expression and subscript grammars.
    /// Exceeding the cap is an `LP008` and unwinds the current
    /// statement.
    fn enter(&mut self) -> Result<(), Recover> {
        if self.depth >= self.limits.max_depth {
            let span = self.span();
            self.error(
                LpCode::LimitExceeded,
                span,
                format!("expression nested deeper than {}", self.limits.max_depth),
            );
            return Err(());
        }
        self.depth += 1;
        Ok(())
    }

    /// aff := affterm (('+'|'-') affterm)*
    fn parse_aff(&mut self) -> Result<Lin, Recover> {
        let mut acc = self.parse_aff_term()?;
        loop {
            match self.peek() {
                Some(TokKind::Sym('+')) => {
                    self.pos += 1;
                    let t = self.parse_aff_term()?;
                    acc = acc.add(&t, 1);
                }
                Some(TokKind::Sym('-')) => {
                    self.pos += 1;
                    let t = self.parse_aff_term()?;
                    acc = acc.add(&t, -1);
                }
                _ => return Ok(acc),
            }
        }
    }

    /// affterm := afffactor ('*' afffactor)* with at most one variable part
    fn parse_aff_term(&mut self) -> Result<Lin, Recover> {
        let mut acc = self.parse_aff_factor()?;
        while self.peek() == Some(&TokKind::Sym('*')) {
            let span = self.span();
            self.pos += 1;
            let f = self.parse_aff_factor()?;
            acc = if acc.is_const() {
                f.scale(acc.constant)
            } else if f.is_const() {
                acc.scale(f.constant)
            } else {
                self.error(
                    LpCode::NonAffine,
                    span,
                    "non-affine subscript: variable * variable".into(),
                );
                return Err(());
            };
        }
        Ok(acc)
    }

    fn parse_aff_factor(&mut self) -> Result<Lin, Recover> {
        self.enter()?;
        let r = self.parse_aff_factor_inner();
        self.depth -= 1;
        r
    }

    fn parse_aff_factor_inner(&mut self) -> Result<Lin, Recover> {
        let span = self.span();
        match self.peek().cloned() {
            Some(TokKind::Int(v)) => {
                self.pos += 1;
                Ok(Lin::constant(self.n, v))
            }
            Some(TokKind::Ident(name)) => {
                self.pos += 1;
                match self.ident_index(&name) {
                    Some(k) => Ok(Lin::var(self.n, k)),
                    None => {
                        self.error(
                            LpCode::UnknownIndex,
                            span,
                            format!("unknown loop index `{name}`"),
                        );
                        Err(())
                    }
                }
            }
            Some(TokKind::Sym('-')) => {
                self.pos += 1;
                Ok(self.parse_aff_factor()?.scale(-1))
            }
            Some(TokKind::Sym('(')) => {
                self.pos += 1;
                match self.parse_aff() {
                    Ok(inner) => {
                        if !self.eat_sym(')') {
                            self.expected("`)`");
                            self.sync_close('(', ')');
                        }
                        Ok(inner)
                    }
                    Err(()) => {
                        // The inner error is already recorded; skip the
                        // rest of the parenthesized group and poison.
                        self.sync_close('(', ')');
                        Err(())
                    }
                }
            }
            _ => {
                self.expected("subscript expression");
                Err(())
            }
        }
    }

    /// access := ident '[' aff (',' aff)* ']'
    ///
    /// Recovers inside the brackets: a bad subscript expression skips
    /// to the matching `]` and poisons that subscript, so the rest of
    /// the statement can still be checked.
    fn parse_access(&mut self, array: String) -> Result<Access, Recover> {
        self.expect_sym('[')?;
        let mut subs = Vec::new();
        loop {
            match self.parse_aff() {
                Ok(l) => subs.push(l.to_aff()),
                Err(()) => {
                    self.sync_close('[', ']');
                    subs.push(Lin::constant(self.n, 0).to_aff());
                    return Ok(Access::new(array, subs));
                }
            }
            if self.eat_sym(',') {
                continue;
            }
            if self.eat_sym(']') {
                return Ok(Access::new(array, subs));
            }
            self.expected("`,` or `]`");
            self.sync_close('[', ']');
            return Ok(Access::new(array, subs));
        }
    }

    /// expr := term (('+'|'-') term)*
    fn parse_expr(&mut self, reads: &mut Vec<Access>) -> Result<Expr, Recover> {
        let mut acc = self.parse_term(reads)?;
        loop {
            match self.peek() {
                Some(TokKind::Sym('+')) => {
                    self.pos += 1;
                    let t = self.parse_term(reads)?;
                    acc = Expr::add(acc, t);
                }
                Some(TokKind::Sym('-')) => {
                    self.pos += 1;
                    let t = self.parse_term(reads)?;
                    acc = Expr::sub(acc, t);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_term(&mut self, reads: &mut Vec<Access>) -> Result<Expr, Recover> {
        let mut acc = self.parse_factor(reads)?;
        while self.peek() == Some(&TokKind::Sym('*')) {
            self.pos += 1;
            let f = self.parse_factor(reads)?;
            acc = Expr::mul(acc, f);
        }
        Ok(acc)
    }

    fn parse_factor(&mut self, reads: &mut Vec<Access>) -> Result<Expr, Recover> {
        self.enter()?;
        let r = self.parse_factor_inner(reads);
        self.depth -= 1;
        r
    }

    fn parse_factor_inner(&mut self, reads: &mut Vec<Access>) -> Result<Expr, Recover> {
        let span = self.span();
        match self.peek().cloned() {
            Some(TokKind::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Const(v as f64))
            }
            Some(TokKind::Sym('-')) => {
                self.pos += 1;
                let f = self.parse_factor(reads)?;
                Ok(Expr::sub(Expr::Const(0.0), f))
            }
            Some(TokKind::Sym('(')) => {
                self.pos += 1;
                match self.parse_expr(reads) {
                    Ok(inner) => {
                        if !self.eat_sym(')') {
                            self.expected("`)`");
                            self.sync_close('(', ')');
                        }
                        Ok(inner)
                    }
                    Err(()) => {
                        self.sync_close('(', ')');
                        Err(())
                    }
                }
            }
            Some(TokKind::Ident(name)) if name == "max" || name == "min" => {
                self.pos += 1;
                self.expect_sym('(')?;
                let a = match self.parse_expr(reads) {
                    Ok(a) => a,
                    Err(()) => {
                        self.sync_close('(', ')');
                        return Err(());
                    }
                };
                if !self.eat_sym(',') {
                    self.expected("`,`");
                    self.sync_close('(', ')');
                    return Err(());
                }
                let b = match self.parse_expr(reads) {
                    Ok(b) => b,
                    Err(()) => {
                        self.sync_close('(', ')');
                        return Err(());
                    }
                };
                if !self.eat_sym(')') {
                    self.expected("`)`");
                    self.sync_close('(', ')');
                }
                Ok(if name == "max" {
                    Expr::max(a, b)
                } else {
                    Expr::min(a, b)
                })
            }
            Some(TokKind::Ident(array)) => {
                self.pos += 1;
                if self.peek() != Some(&TokKind::Sym('[')) {
                    self.error(
                        LpCode::Expected,
                        span,
                        format!("`{array}` must be subscripted (scalars not supported)"),
                    );
                    return Err(());
                }
                let acc = self.parse_access(array)?;
                let idx = reads.len();
                reads.push(acc);
                Ok(Expr::Read(idx))
            }
            _ => {
                self.expected("expression");
                Err(())
            }
        }
    }

    /// stmt := access '=' expr ';'
    ///
    /// A missing trailing `;` is diagnosed but the statement is kept —
    /// the next token is usually the start of the next statement.
    fn parse_stmt(&mut self) -> Result<Stmt, Recover> {
        self.depth = 0;
        let array = match self.peek().cloned() {
            Some(TokKind::Ident(a)) => {
                self.pos += 1;
                a
            }
            _ => {
                self.expected("statement (array assignment)");
                return Err(());
            }
        };
        let write = self.parse_access(array)?;
        self.expect_sym('=')?;
        let mut reads = Vec::new();
        let expr = self.parse_expr(&mut reads)?;
        if !self.eat_sym(';') {
            self.expected("`;`");
        }
        // flops ≈ number of arithmetic nodes in the expression.
        fn count_ops(e: &Expr) -> u64 {
            match e {
                Expr::Read(_) | Expr::Const(_) => 0,
                Expr::Add(a, b)
                | Expr::Sub(a, b)
                | Expr::Mul(a, b)
                | Expr::Max(a, b)
                | Expr::Min(a, b) => 1 + count_ops(a) + count_ops(b),
            }
        }
        let flops = count_ops(&expr).max(1);
        Ok(Stmt::assign(write, reads).with_flops(flops).with_expr(expr))
    }

    /// loop := "for" ident "=" aff "to" aff [ "step" int ]
    fn parse_header(&mut self) -> Result<Header, Recover> {
        if !self.eat_ident("for") {
            self.expected("`for`");
            return Err(());
        }
        match self.peek() {
            Some(TokKind::Ident(_)) => {
                self.pos += 1;
            }
            _ => {
                self.expected("loop identifier");
                return Err(());
            }
        }
        self.expect_sym('=')?;
        let lo = self.parse_aff()?;
        if !self.eat_ident("to") {
            self.expected("`to`");
            return Err(());
        }
        let hi = self.parse_aff()?;
        let step = if self.eat_ident("step") {
            let span = self.span();
            match self.peek().cloned() {
                Some(TokKind::Int(s)) if s > 0 => {
                    self.pos += 1;
                    s
                }
                _ => {
                    self.error(
                        LpCode::BadStep,
                        span,
                        "step must be a positive integer".into(),
                    );
                    return Err(());
                }
            }
        } else {
            1
        };
        Ok(Header { lo, hi, step })
    }
}

/// Parse a nest from source text, collecting every diagnostic the
/// single pass can recover, under the default [`FrontLimits`].
pub fn parse_nest_recovering(name: &str, src: &str) -> ParseOutcome {
    parse_nest_with_limits(name, src, &FrontLimits::default())
}

/// [`parse_nest_recovering`] with explicit resource limits.
pub fn parse_nest_with_limits(name: &str, src: &str, limits: &FrontLimits) -> ParseOutcome {
    let mut sink = Sink::new(src, limits);
    if src.len() > limits.max_input_bytes {
        sink.push(
            LpCode::LimitExceeded,
            0,
            0,
            format!(
                "input too large: {} bytes (limit {})",
                src.len(),
                limits.max_input_bytes
            ),
        );
        return ParseOutcome {
            nest: None,
            diags: sink.finish(),
        };
    }

    let lexed = lex(src, limits);
    for d in lexed.diags {
        sink.push(d.code, d.start, d.end, d.message);
    }
    let toks = lexed.tokens;

    // Pre-scan: loop identifiers in order.
    let mut idents = Vec::new();
    for w in toks.windows(2) {
        if let (TokKind::Ident(kw), TokKind::Ident(id)) = (&w[0].kind, &w[1].kind) {
            if kw == "for" {
                idents.push(id.clone());
            }
        }
    }
    if idents.is_empty() {
        sink.push(LpCode::InvalidNest, 0, 0, "no loops found".into());
        return ParseOutcome {
            nest: None,
            diags: sink.finish(),
        };
    }
    if idents.len() > limits.max_dims {
        sink.push(
            LpCode::LimitExceeded,
            0,
            0,
            format!(
                "loop nest deeper than {} levels ({} found)",
                limits.max_dims,
                idents.len()
            ),
        );
        return ParseOutcome {
            nest: None,
            diags: sink.finish(),
        };
    }
    let n = idents.len();

    let mut line_starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }

    let mut p = Parser {
        toks,
        pos: 0,
        idents,
        n,
        sink,
        depth: 0,
        limits: *limits,
        src_len: src.len(),
        line_starts,
    };

    // Loop headers. Exactly `n` are materialized; a failed header is
    // poisoned to `0 to 0` so the levels stay aligned with the
    // pre-scanned identifier list.
    let mut headers: Vec<Header> = Vec::new();
    for _level in 0..n {
        if p.sink.overflowed {
            headers.push(Header::poison(n));
            continue;
        }
        if p.peek().is_none() {
            if headers.len() < n && !p.sink.overflowed {
                let at = p.src_len;
                p.sink.push(
                    LpCode::Expected,
                    at,
                    at,
                    "unexpected end of input in loop headers".into(),
                );
            }
            while headers.len() < n {
                headers.push(Header::poison(n));
            }
            break;
        }
        let before = p.pos;
        match p.parse_header() {
            Ok(h) => headers.push(h),
            Err(()) => {
                p.sync_header();
                if p.pos == before {
                    p.pos += 1; // always make progress
                }
                headers.push(Header::poison(n));
            }
        }
    }

    // Statements, with statement/line-boundary resynchronization.
    let mut stmts = Vec::new();
    while p.peek().is_some() && !p.sink.overflowed {
        let before = p.pos;
        match p.parse_stmt() {
            Ok(s) => stmts.push(s),
            Err(()) => p.sync_stmt(),
        }
        if p.pos == before {
            p.pos += 1; // always make progress
        }
    }

    let mut sink = p.sink;
    if stmts.is_empty() {
        let at = src.len();
        sink.push(LpCode::InvalidNest, at, at, "no statements found".into());
        return ParseOutcome {
            nest: None,
            diags: sink.finish(),
        };
    }

    // Materialize: unit strides with (possibly affine) bounds go straight
    // to an IterSpace; any non-unit stride requires constant bounds and
    // routes through normalization.
    let nest = if headers.iter().all(|h| h.step == 1) {
        let lo: Vec<Aff> = headers.iter().map(|h| h.lo.to_aff()).collect();
        let hi: Vec<Aff> = headers.iter().map(|h| h.hi.to_aff()).collect();
        match IterSpace::new(lo, hi) {
            Ok(space) => match LoopNest::new(name, space, stmts) {
                Ok(nest) => Some(nest),
                Err(e) => {
                    sink.push(LpCode::InvalidNest, 0, 0, format!("invalid nest: {e}"));
                    None
                }
            },
            Err(e) => {
                sink.push(LpCode::InvalidNest, 0, 0, format!("invalid bounds: {e}"));
                None
            }
        }
    } else {
        let mut levels = Vec::new();
        let mut ok = true;
        for h in &headers {
            if h.lo.is_const() && h.hi.is_const() {
                levels.push(RawLevel {
                    lo: h.lo.constant,
                    hi: h.hi.constant,
                    step: h.step,
                });
            } else {
                sink.push(
                    LpCode::BadStep,
                    0,
                    0,
                    "non-unit step requires constant bounds".into(),
                );
                ok = false;
                break;
            }
        }
        if ok {
            match normalize_rect(name, &levels, stmts) {
                Ok(nest) => Some(nest),
                Err(e) => {
                    sink.push(LpCode::InvalidNest, 0, 0, format!("invalid nest: {e}"));
                    None
                }
            }
        } else {
            None
        }
    };

    ParseOutcome {
        nest,
        diags: sink.finish(),
    }
}

/// Parse a nest from source text, reporting only the first problem.
///
/// This is the historical abort-on-first-error interface; it is a thin
/// wrapper over [`parse_nest_recovering`], so for valid input the IR is
/// identical (the frontend golden tests pin this byte-for-byte against
/// the seed parser's output).
pub fn parse_nest(name: &str, src: &str) -> Result<LoopNest, ParseError> {
    let outcome = parse_nest_recovering(name, src);
    match outcome.first_error() {
        None => outcome.nest.ok_or(ParseError {
            at: 0,
            message: "internal error: no diagnostics but no nest".into(),
        }),
        Some(d) => Err(ParseError {
            at: d.start,
            message: d.message.clone(),
        }),
    }
}

/// Render an affine expression in parser-compatible form (explicit `*`
/// between coefficients and identifiers).
fn aff_to_source(a: &Aff, names: &[&str]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (k, &c) in a.coeffs().iter().enumerate() {
        match c {
            0 => {}
            1 => parts.push(names[k].to_string()),
            -1 => parts.push(format!("-{}", names[k])),
            _ => parts.push(format!("{c}*{}", names[k])),
        }
    }
    let ct = a.constant_term();
    if ct != 0 || parts.is_empty() {
        parts.push(ct.to_string());
    }
    parts.join(" + ")
}

fn access_to_source(acc: &Access, names: &[&str]) -> String {
    let subs: Vec<String> = acc
        .subscripts()
        .iter()
        .map(|s| aff_to_source(s, names))
        .collect();
    format!("{}[{}]", acc.array(), subs.join(", "))
}

fn expr_to_source(e: &Expr, reads: &[String]) -> Option<String> {
    Some(match e {
        Expr::Read(k) => reads.get(*k)?.clone(),
        Expr::Const(c) => {
            if c.fract() != 0.0 || c.abs() > 1e15 {
                return None; // the grammar only has integer literals
            }
            format!("{}", *c as i64)
        }
        Expr::Add(a, b) => format!(
            "({} + {})",
            expr_to_source(a, reads)?,
            expr_to_source(b, reads)?
        ),
        Expr::Sub(a, b) => format!(
            "({} - {})",
            expr_to_source(a, reads)?,
            expr_to_source(b, reads)?
        ),
        Expr::Mul(a, b) => format!(
            "({} * {})",
            expr_to_source(a, reads)?,
            expr_to_source(b, reads)?
        ),
        Expr::Max(a, b) => format!(
            "max({}, {})",
            expr_to_source(a, reads)?,
            expr_to_source(b, reads)?
        ),
        Expr::Min(a, b) => format!(
            "min({}, {})",
            expr_to_source(a, reads)?,
            expr_to_source(b, reads)?
        ),
    })
}

/// Render a nest back to parseable source, when the grammar can express
/// it: at most 6 loop levels (named `i…n`) and only integer constants
/// in statement expressions. `parse_nest(to_source(x)?)` reproduces the
/// nest's space, dependences, and semantics — asserted by the
/// round-trip tests.
pub fn to_source(nest: &LoopNest) -> Option<String> {
    const NAMES: [&str; 6] = ["i", "j", "k", "l", "m", "n"];
    let n = nest.dim();
    if n > NAMES.len() {
        return None;
    }
    let names = &NAMES[..n];
    let mut out = String::new();
    for level in 0..n {
        out.push_str(&format!(
            "for {} = {} to {}\n",
            names[level],
            aff_to_source(nest.space().lower(level), names),
            aff_to_source(nest.space().upper(level), names),
        ));
    }
    for stmt in nest.stmts() {
        let reads: Vec<String> = stmt
            .reads()
            .iter()
            .map(|r| access_to_source(r, names))
            .collect();
        let rhs = expr_to_source(&stmt.semantics(), &reads)?;
        out.push_str(&format!(
            "  {} = {};\n",
            access_to_source(stmt.write(), names),
            rhs
        ));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::{dependence_vectors, DepOptions};

    const L1_SRC: &str = "
        # the paper's running example
        for i = 0 to 3
        for j = 0 to 3
          A[i+1, j+1] = A[i+1, j] + B[i, j];
          B[i+1, j]   = 2 * A[i, j] + 1;
    ";

    #[test]
    fn parses_l1_and_matches_paper() {
        let nest = parse_nest("L1", L1_SRC).unwrap();
        assert_eq!(nest.dim(), 2);
        assert_eq!(nest.space().count(), 16);
        let d = dependence_vectors(&nest, DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn parses_matmul() {
        let src = "
            for i = 0 to 3
            for j = 0 to 3
            for k = 0 to 3
              C[i, j] = C[i, j] + A[i, k] * B[k, j];
        ";
        let nest = parse_nest("matmul", src).unwrap();
        let d = dependence_vectors(&nest, DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]]);
        assert_eq!(nest.stmts()[0].flops, 2);
    }

    #[test]
    fn parses_triangular_bounds() {
        let src = "
            for i = 0 to 5
            for j = 0 to i
              T[i, j] = T[i, j - 1] + 1;
        ";
        let nest = parse_nest("tri", src).unwrap();
        assert_eq!(nest.space().count(), 21);
    }

    #[test]
    fn parses_strided_and_normalizes() {
        let src = "
            for i = 0 to 14 step 2
              A[i + 2] = A[i] + 1;
        ";
        let nest = parse_nest("strided", src).unwrap();
        assert_eq!(nest.space().count(), 8);
        let d = dependence_vectors(&nest, DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![1]]);
    }

    #[test]
    fn semantics_evaluate() {
        let src = "
            for i = 0 to 3
              S[i] = max(S[i - 1], 2) * 3 - 1;
        ";
        let nest = parse_nest("s", src).unwrap();
        let e = nest.stmts()[0].semantics();
        // reads[0] = S[i-1]; with value 5: max(5,2)*3-1 = 14.
        assert_eq!(e.eval(&[5.0]), 14.0);
        // with value 0: max(0,2)*3-1 = 5.
        assert_eq!(e.eval(&[0.0]), 5.0);
    }

    #[test]
    fn error_positions_and_messages() {
        assert!(parse_nest("x", "for i = 0 to 3").is_err()); // no stmts
        assert!(parse_nest("x", "A[i] = 1;").is_err()); // no loops
        let e = parse_nest("x", "for i = 0 to 3\n A[q] = 1;").unwrap_err();
        assert!(e.message.contains("unknown loop index"));
        let e = parse_nest("x", "for i = 0 to 3\n A[i*i] = 1;").unwrap_err();
        assert!(e.message.contains("non-affine"));
        let e = parse_nest("x", "for i = 0 to i\n A[i] = 1;").unwrap_err();
        assert!(e.message.contains("invalid bounds"));
        let e = parse_nest("x", "for i = 0 to j step 2\nfor j = 0 to 3\n A[i,j] = 1;");
        assert!(e.is_err());
    }

    #[test]
    fn negative_and_parenthesized_subscripts() {
        let src = "
            for i = 0 to 7
            for k = 0 to 3
              y[i] = y[i] + h[k] * x[i - k];
        ";
        let nest = parse_nest("conv", src).unwrap();
        let d = dependence_vectors(&nest, DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn round_trip_preserves_space_and_deps() {
        // A triangular nest with mixed subscripts.
        let src = "
            for i = 0 to 5
            for j = 0 to i
              T[i + 1, j] = T[i, j] * 2 + T[i, j - 1];
        ";
        let nest = parse_nest("t", src).unwrap();
        let rendered = to_source(&nest).unwrap();
        let reparsed = parse_nest("t", &rendered).unwrap();
        assert_eq!(reparsed.space().count(), nest.space().count());
        assert_eq!(
            dependence_vectors(&reparsed, DepOptions::default()).unwrap(),
            dependence_vectors(&nest, DepOptions::default()).unwrap()
        );
        // Semantics identical on a shared iteration.
        assert_eq!(
            nest.stmts()[0].semantics().eval(&[3.0, 4.0]),
            reparsed.stmts()[0].semantics().eval(&[3.0, 4.0])
        );
    }

    #[test]
    fn to_source_rejects_fractional_constants() {
        use crate::sem::Expr;
        let nest = crate::LoopNest::new(
            "frac",
            crate::IterSpace::rect(&[2]).unwrap(),
            vec![
                crate::Stmt::assign(crate::Access::simple("A", 1, &[(0, 0)]), vec![])
                    .with_expr(Expr::Const(0.5)),
            ],
        )
        .unwrap();
        assert_eq!(to_source(&nest), None);
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let src = "# header\nfor i = 0 to 1 # trailing\n  A[i+1]=A[i];# end\n";
        assert!(parse_nest("c", src).is_ok());
    }

    // ---- recovery-specific behavior ----

    #[test]
    fn clean_input_has_no_diags_and_a_nest() {
        let out = parse_nest_recovering("L1", L1_SRC);
        assert!(out.diags.is_empty());
        assert!(out.nest.is_some());
        assert!(!out.has_errors());
    }

    #[test]
    fn multiple_statement_errors_recovered_in_one_pass() {
        let src = "for i = 0 to 3\n A[q] = 1;\n B[i*i] = 2;\n C[i] = 3;\n";
        let out = parse_nest_recovering("multi", src);
        let codes: Vec<&str> = out.diags.iter().map(|d| d.code.code()).collect();
        assert_eq!(codes, vec!["LP004", "LP005"]);
        // The undamaged statement survives into the partial IR.
        let nest = out.nest.expect("partial nest");
        assert!(nest.stmts().iter().any(|s| s.write().array() == "C"));
        // The compat wrapper reports the first diagnostic.
        let e = parse_nest("multi", src).unwrap_err();
        assert!(e.message.contains("unknown loop index"));
    }

    #[test]
    fn missing_semicolon_recovers_at_line_boundary() {
        let src = "for i = 0 to 3\n A[i] = 1\n B[i] = 2;\n";
        let out = parse_nest_recovering("semi", src);
        assert_eq!(out.diags.len(), 1);
        assert_eq!(out.diags[0].code, LpCode::Expected);
        let nest = out.nest.expect("both statements recovered");
        assert_eq!(nest.stmts().len(), 2);
    }

    #[test]
    fn unbalanced_bracket_syncs_and_continues() {
        let src = "for i = 0 to 3\n A[i = 1;\n B[i] = 2;\n";
        let out = parse_nest_recovering("brk", src);
        assert!(!out.diags.is_empty());
        let nest = out.nest.expect("partial nest");
        assert!(nest.stmts().iter().any(|s| s.write().array() == "B"));
    }

    #[test]
    fn bad_header_recovers_into_statements() {
        let src = "for i = 0 frob 3\nfor j = 0 to 3\n A[i, j] = 1;\n";
        let out = parse_nest_recovering("hdr", src);
        assert!(out.diags.iter().any(|d| d.code == LpCode::Expected));
        let nest = out.nest.expect("poisoned header still yields IR");
        assert_eq!(nest.dim(), 2);
    }

    #[test]
    fn depth_limit_is_enforced_not_overflowed() {
        // An expression nested far past the cap must come back as LP008,
        // not a stack overflow.
        let src = format!(
            "for i = 0 to 3\n A[i] = {}1{};\n",
            "(".repeat(5000),
            ")".repeat(5000)
        );
        let out = parse_nest_recovering("deep", &src);
        assert!(out.diags.iter().any(|d| d.code == LpCode::LimitExceeded));
    }

    #[test]
    fn input_size_limit() {
        let limits = FrontLimits {
            max_input_bytes: 64,
            ..FrontLimits::default()
        };
        let src = "x".repeat(65);
        let out = parse_nest_with_limits("big", &src, &limits);
        assert_eq!(out.diags.len(), 1);
        assert_eq!(out.diags[0].code, LpCode::LimitExceeded);
        assert!(out.nest.is_none());
        // At the limit it is parsed (and fails for grammar reasons instead).
        let out = parse_nest_with_limits("big", &"x".repeat(64), &limits);
        assert!(out.diags.iter().all(|d| d.code != LpCode::LimitExceeded));
    }

    #[test]
    fn dims_limit_bounds_memory() {
        let mut src = String::new();
        for k in 0..40 {
            src.push_str(&format!("for v{k} = 0 to 1\n"));
        }
        src.push_str(" A[v0] = 1;\n");
        let out = parse_nest_recovering("dims", &src);
        assert_eq!(out.diags.len(), 1);
        assert_eq!(out.diags[0].code, LpCode::LimitExceeded);
        assert!(out.nest.is_none());
    }

    #[test]
    fn diag_cap_stops_the_flood() {
        // 1000 bad statements; the sink caps out and appends one LP008.
        let mut src = String::from("for i = 0 to 3\n");
        for _ in 0..1000 {
            src.push_str(" A[q] = 1;\n");
        }
        let out = parse_nest_recovering("flood", &src);
        let limit = FrontLimits::default().max_diags;
        assert_eq!(out.diags.len(), limit + 1);
        assert_eq!(out.diags.last().unwrap().code, LpCode::LimitExceeded);
    }

    #[test]
    fn truncated_header_reports_end_of_input_once() {
        let out = parse_nest_recovering("trunc", "for i = 0 to 3\nfor j");
        assert!(out.diags.iter().any(|d| d.code == LpCode::Expected));
        // No diagnostic flood from the remaining poisoned headers.
        assert!(out.diags.len() <= 3, "{:?}", out.diags);
    }

    #[test]
    fn recovering_parse_is_deterministic() {
        let src = "for i = 0 to 3\n A[q @@ ] = (1;\n B[i] = 2\n";
        let a = parse_nest_recovering("det", src);
        let b = parse_nest_recovering("det", src);
        assert_eq!(a, b);
    }
}
