//! A9 — explore throughput: the parallel, pruned, stage-cached
//! configuration search against the seed's serial implementation.
//!
//! For every builtin workload family and `pi_bound ∈ {1, 2, 3}` this
//! runs the configuration sweep twice — once through
//! `explore_reference` (the seed implementation: serial, unpruned, the
//! whole pipeline re-run per (Π, grouping, cube_dim) triple), once
//! through the rewritten `explore` on 4 worker threads with
//! branch-and-bound pruning and the partitioning stage shared across
//! machine sizes — asserts the ranked candidate lists are
//! **byte-identical**, and records wall time, candidate counts, and
//! pruning effectiveness. The sweep is written to `BENCH_explore.json`
//! (the repo's bench trajectory artifact); `--smoke` shrinks it to a
//! CI-sized subset and `--out <path>` redirects the artifact.

use loom_bench::maybe_write_metrics;
use loom_core::explore::{explore_reference, explore_with, Candidate, ExploreConfig};
use loom_core::report::Table;
use loom_core::MachineOptions;
use loom_machine::MachineParams;
use loom_obs::{Json, Recorder};
use std::time::Instant;

const THREADS: usize = 4;
const CUBE_DIMS: [usize; 3] = [1, 2, 3];

fn config(pi_bound: i64, threads: usize, prune: bool) -> ExploreConfig {
    ExploreConfig {
        pi_bound,
        top: 10,
        machine: MachineOptions {
            params: MachineParams::classic_1991(),
            ..Default::default()
        },
        threads,
        prune,
    }
}

struct Leg {
    ranked: Vec<Candidate>,
    micros: u64,
    candidates: u64,
    simulated: u64,
    pruned: u64,
}

fn run_baseline(nest: &loom_loopir::LoopNest, pi_bound: i64) -> (Vec<Candidate>, u64) {
    let start = Instant::now();
    let ranked =
        explore_reference(nest, &CUBE_DIMS, &config(pi_bound, 1, false)).expect("explore succeeds");
    (ranked, start.elapsed().as_micros() as u64)
}

fn run_leg(nest: &loom_loopir::LoopNest, pi_bound: i64, threads: usize, prune: bool) -> Leg {
    let rec = Recorder::enabled();
    let start = Instant::now();
    let ranked = explore_with(nest, &CUBE_DIMS, &config(pi_bound, threads, prune), &rec)
        .expect("explore succeeds");
    let micros = start.elapsed().as_micros() as u64;
    let counters = rec.counters();
    Leg {
        ranked,
        micros,
        candidates: counters["explore.candidates"],
        simulated: counters["explore.simulated"],
        pruned: counters["explore.pruned"],
    }
}

/// The builtin workload families at bench-grade sizes: big enough that
/// a candidate's pipeline + simulation outweighs thread dispatch, small
/// enough that the full sweep finishes in seconds. `--smoke` keeps the
/// default (test-sized) instances instead.
fn bench_workloads(smoke: bool) -> Vec<loom_workloads::Workload> {
    use loom_workloads::*;
    if smoke {
        return vec![
            matvec::workload(8),
            sor::workload(6, 6),
            matmul::workload(4),
        ];
    }
    vec![
        l1::workload(12),
        matmul::workload(6),
        matvec::workload(24),
        conv::workload(16, 8),
        sor::workload(16, 16),
        transitive::workload(6),
        dft::workload(16),
        conv2d::workload(8, 4),
        triangular::workload(14),
        heat2d::workload(6, 8),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_explore.json".to_string());
    let pi_bounds: &[i64] = if smoke { &[1, 2] } else { &[1, 2, 3] };

    println!(
        "A9 — explore throughput: {THREADS}-thread pruned stage-cached sweep vs the\n\
         seed's serial explorer (full pipeline per candidate triple){}\n",
        if smoke { " (smoke)" } else { "" }
    );
    let mut t = Table::new([
        "workload",
        "pi_bound",
        "candidates",
        "simulated",
        "pruned",
        "baseline_ms",
        "explore_ms",
        "speedup",
    ]);
    let mut entries: Vec<Json> = Vec::new();
    let mut best_speedup_at_2 = 0.0f64;
    for w in bench_workloads(smoke) {
        for &pi_bound in pi_bounds {
            let (reference, baseline_us) = run_baseline(&w.nest, pi_bound);
            let fast = run_leg(&w.nest, pi_bound, THREADS, true);
            assert_eq!(
                fast.ranked,
                reference,
                "RANKING DIVERGED for {} at pi_bound={pi_bound}",
                w.nest.name()
            );
            let speedup = baseline_us as f64 / fast.micros.max(1) as f64;
            if pi_bound == 2 {
                best_speedup_at_2 = best_speedup_at_2.max(speedup);
            }
            t.row([
                w.nest.name().to_string(),
                format!("{pi_bound}"),
                format!("{}", fast.candidates),
                format!("{}", fast.simulated),
                format!("{}", fast.pruned),
                format!("{:.1}", baseline_us as f64 / 1000.0),
                format!("{:.1}", fast.micros as f64 / 1000.0),
                format!("{speedup:.2}x"),
            ]);
            entries.push(Json::obj(vec![
                ("workload", Json::from(w.nest.name())),
                ("pi_bound", Json::from(pi_bound)),
                ("candidates", Json::from(fast.candidates)),
                ("simulated", Json::from(fast.simulated)),
                ("pruned", Json::from(fast.pruned)),
                ("baseline_us", Json::from(baseline_us)),
                ("explore_us", Json::from(fast.micros)),
                ("speedup", Json::from((speedup * 100.0).round() / 100.0)),
                ("ranking_identical", Json::from(true)),
            ]));
        }
    }
    println!("{t}");
    let doc = Json::obj(vec![
        ("bench", Json::from("explore")),
        ("threads", Json::from(THREADS)),
        (
            "cube_dims",
            Json::Arr(CUBE_DIMS.iter().map(|&d| Json::from(d)).collect()),
        ),
        ("smoke", Json::from(smoke)),
        (
            "best_speedup_at_pi_bound_2",
            Json::from((best_speedup_at_2 * 100.0).round() / 100.0),
        ),
        ("entries", Json::Arr(entries)),
    ]);
    std::fs::write(&out_path, doc.render_pretty()).expect("write bench artifact");
    println!("wrote {out_path}");
    maybe_write_metrics("a9_explore", &doc);
    loom_bench::maybe_append_history("explore", &doc);
    println!(
        "\nevery row is double-checked: the pruned parallel sweep returned the\n\
         byte-identical top-10 the seed's serial explorer did; the speedup\n\
         comes from sharing the partitioning stage across machine sizes,\n\
         skipping candidates whose analytic lower bound cannot crack the\n\
         current top-10, and fanning pairs over {THREADS} workers."
    );
}
