//! SOR stencil: machine-size scaling and mapping-quality comparison.
//!
//! Partitions a Gauss–Seidel style stencil, maps it with Algorithm 2's
//! Gray-coded bisection and with naive / random baselines, and compares
//! simulated makespans — the reason the mapping phase exists.
//!
//! ```text
//! cargo run --example stencil_scaling [rows] [cols]
//! ```

use loom_core::report::Table;
use loom_hyperplane::TimeFn;
use loom_machine::{simulate, MachineParams, Program, SimConfig};
use loom_mapping::{baseline, map_partitioning, metrics, Hypercube};
use loom_partition::{partition, PartitionConfig, Tig};

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: i64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(24);
    let cols: i64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(24);
    let w = loom_workloads::sor::workload(rows, cols);
    let p = partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .expect("stencil partitions");
    println!(
        "sor {rows}x{cols}: {} blocks, largest {}",
        p.num_blocks(),
        p.max_block_size()
    );

    let tig = Tig::from_partitioning(&p);
    let params = MachineParams::classic_1991();
    let flops = w.nest.flops_per_iteration();

    let mut t = Table::new([
        "cube",
        "mapping",
        "remote",
        "dilation",
        "congestion",
        "makespan",
    ]);
    for cube_dim in [1usize, 2, 3] {
        if (1 << cube_dim) > p.num_blocks() {
            break;
        }
        let cube = Hypercube::new(cube_dim);
        let gray = map_partitioning(&p, cube_dim).expect("mapping fits");
        let candidates: Vec<(&str, Vec<usize>)> = vec![
            ("gray (Alg. 2)", gray.assignment().to_vec()),
            ("naive", baseline::naive(p.num_blocks(), cube.len())),
            ("random", baseline::random(p.num_blocks(), cube.len(), 1991)),
        ];
        for (name, assignment) in candidates {
            let q = metrics::evaluate(&tig, &assignment, cube);
            let program = Program::from_partitioning(&p, &assignment, cube.len(), flops);
            let sim = simulate(&program, &SimConfig::paper_hypercube(cube_dim, params))
                .expect("simulation completes");
            t.row([
                format!("2^{cube_dim}"),
                name.to_string(),
                format!("{}", q.remote_traffic),
                format!("{:.2}", q.mean_dilation()),
                format!("{}", q.max_link_congestion),
                format!("{}", sim.makespan),
            ]);
        }
    }
    println!("{t}");
    println!("Gray-coded bisection keeps chain neighbors adjacent: lower remote traffic,\nunit dilation, and the smallest simulated makespan.");
}
