//! E5 — Fig. 8: mapping a 4×4 mesh-like TIG onto a three-dimensional
//! hypercube with concatenated Gray codes.

use loom_core::report::Table;
use loom_mapping::{map_positions, metrics, Hypercube};
use loom_partition::Tig;
use loom_rational::Ratio;

fn main() {
    println!("Fig. 8 — 4×4 mesh TIG onto a 3-cube\n");
    // Blocks B1..B16 laid out as a 4×4 mesh, row-major (as in the paper's
    // figure); bisection directions are the mesh axes x̄ and ȳ.
    let mut positions = Vec::new();
    for r in 0..4i64 {
        for c in 0..4i64 {
            positions.push(vec![Ratio::int(c), Ratio::int(r)]);
        }
    }
    let mapping = map_positions(&positions, 3).expect("16 blocks onto 8 processors");

    let mut t = Table::new(["cluster", "blocks", "processor (binary)"]);
    let f = mapping.formation();
    for (ci, cluster) in f.clusters.iter().enumerate() {
        let blocks: Vec<String> = cluster.iter().map(|b| format!("B{}", b + 1)).collect();
        t.row([
            format!("C{ci}"),
            blocks.join(" "),
            format!("{:03b}", f.addresses[ci]),
        ]);
    }
    println!("{t}");
    println!(
        "splits per direction: x̄ divided {} times, ȳ divided {} times",
        f.splits_per_dir[0], f.splits_per_dir[1]
    );

    // Quality: every mesh edge lands on the same node or adjacent nodes.
    let tig = Tig::mesh(4, 4);
    let q = metrics::evaluate(&tig, mapping.assignment(), Hypercube::new(3));
    println!(
        "mapping quality: remote traffic {}, mean dilation {:.2}, congestion {}",
        q.remote_traffic,
        q.mean_dilation(),
        q.max_link_congestion
    );
    assert!(
        (q.mean_dilation() - 1.0).abs() < 1e-9,
        "Fig. 8 mapping is nearest-neighbor"
    );
    assert_eq!(f.clusters.len(), 8);
    assert!(f.clusters.iter().all(|c| c.len() == 2));
    println!("\npaper: blocks B1 and B2 share cluster 000 -> processor 000; every");
    println!("mesh-neighboring cluster pair differs in exactly one address bit.");
}
