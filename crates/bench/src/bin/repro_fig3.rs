//! E2 — Fig. 3: projected points, projection lines, and the groups /
//! blocks of loop (L1), with the paper's communication counts.

use loom_bench::partition_workload;
use loom_core::report::Table;
use loom_partition::comm::comm_stats;

fn main() {
    let w = loom_workloads::l1::workload(4);
    let p = partition_workload(&w);
    let qp = p.projected();

    println!("Fig. 3 — projected structure of L1 with Π = (1,1)\n");
    println!("projected dependence vectors:");
    for (i, d) in qp.deps().iter().enumerate() {
        println!("  {:?} -> {d}", p.structure().deps()[i]);
    }
    println!();

    let mut t = Table::new(["projected point", "line members (iterations)", "group"]);
    for pid in 0..qp.len() {
        let members: Vec<String> = qp
            .line_members(pid)
            .iter()
            .map(|&id| format!("{:?}", p.structure().points()[id]))
            .collect();
        t.row([
            qp.points()[pid].to_string(),
            members.join(" "),
            format!("G{}", p.grouping().group_of[pid]),
        ]);
    }
    println!("{t}");

    println!(
        "groups: {} (r = {}); block sizes: {:?}",
        p.num_blocks(),
        p.vectors().r,
        p.blocks().iter().map(Vec::len).collect::<Vec<_>>()
    );
    let stats = comm_stats(&p);
    println!(
        "dependencies between index points: {} total, {} interblock",
        stats.total_arcs, stats.interblock_arcs
    );
    println!("paper: 7 projected points, 4 groups, 33 dependencies, 12 interprocessor");
    assert_eq!(qp.len(), 7);
    assert_eq!(p.num_blocks(), 4);
    assert_eq!(stats.total_arcs, 33);
    assert_eq!(stats.interblock_arcs, 12);
}
