//! `LC008` — static validation of a fault plan against a topology.
//!
//! A fault plan is an artifact the user writes by hand (or commits from
//! a previous sweep), so before a simulation spends time executing it,
//! this rule checks the plan is *about the machine it will run on*:
//! every event names a processor that exists, every downed link is a
//! physical link of the topology, every transient window closes after
//! it opens, and the plan survives a JSON round trip unchanged (the
//! property that makes committed plans replayable).

use crate::diag::{Diagnostic, RuleId, Span};
use loom_machine::{FaultEvent, FaultPlan, Topology};
use loom_obs::Json;

fn rate_check(out: &mut Vec<Diagnostic>, what: &str, per_mille: u32) {
    if per_mille > 1000 {
        out.push(Diagnostic::error(
            RuleId::FaultPlan,
            Span::Nest,
            format!("{what} rate {per_mille}\u{2030} exceeds 1000\u{2030}"),
        ));
    }
}

fn window_check(out: &mut Vec<Diagnostic>, index: usize, at: u64, until: Option<u64>) {
    if let Some(u) = until {
        if u <= at {
            out.push(Diagnostic::error(
                RuleId::FaultPlan,
                Span::FaultEvent { index },
                format!("window [{at},{u}) is empty or inverted (until must exceed at)"),
            ));
        }
    }
}

fn proc_check(out: &mut Vec<Diagnostic>, index: usize, proc: usize, n: usize) -> bool {
    if proc >= n {
        out.push(Diagnostic::error(
            RuleId::FaultPlan,
            Span::FaultEvent { index },
            format!("P{proc} does not exist (machine has {n} processors)"),
        ));
        return false;
    }
    true
}

/// Validate `plan` against the `topology` it will be injected into.
///
/// Errors: message-noise rates above 1000‰, events naming processors
/// outside the machine, `LinkDown` events naming non-physical links,
/// empty or inverted transient windows, zero slowdown factors, and
/// plans that do not re-serialize to themselves. Warnings: noise with
/// retries disabled (a single drop then aborts the run), and no-op
/// slowdown factors of 1.
pub fn check_fault_plan(plan: &FaultPlan, topology: &Topology) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = topology.len();
    rate_check(&mut out, "drop", plan.drop_per_mille);
    rate_check(&mut out, "corrupt", plan.corrupt_per_mille);
    rate_check(&mut out, "delay", plan.delay_per_mille);
    if plan.has_message_noise() && plan.max_retries == 0 {
        out.push(Diagnostic::warning(
            RuleId::FaultPlan,
            Span::Nest,
            "message noise with max_retries = 0: the first lost message aborts the run".to_string(),
        ));
    }
    for (index, ev) in plan.events.iter().enumerate() {
        match *ev {
            FaultEvent::LinkDown {
                from,
                to,
                at,
                until,
            } => {
                let from_ok = proc_check(&mut out, index, from, n);
                let to_ok = proc_check(&mut out, index, to, n);
                if from_ok && to_ok && !topology.neighbors(from).contains(&to) {
                    out.push(Diagnostic::error(
                        RuleId::FaultPlan,
                        Span::FaultEvent { index },
                        format!("{from}->{to} is not a physical link of {topology:?}"),
                    ));
                }
                window_check(&mut out, index, at, until);
            }
            FaultEvent::ProcSlow {
                proc,
                factor,
                at,
                until,
            } => {
                proc_check(&mut out, index, proc, n);
                window_check(&mut out, index, at, until);
                if factor == 0 {
                    out.push(Diagnostic::error(
                        RuleId::FaultPlan,
                        Span::FaultEvent { index },
                        "slowdown factor 0 would stop time; use a crash instead".to_string(),
                    ));
                } else if factor == 1 {
                    out.push(Diagnostic::warning(
                        RuleId::FaultPlan,
                        Span::FaultEvent { index },
                        "slowdown factor 1 is a no-op".to_string(),
                    ));
                }
            }
            FaultEvent::ProcCrash { proc, at: _ } => {
                proc_check(&mut out, index, proc, n);
            }
        }
    }
    // Replayability: a committed plan must deserialize back to itself.
    let round = Json::parse(&plan.to_json().render_pretty())
        .ok()
        .and_then(|doc| FaultPlan::from_json(&doc).ok());
    if round.as_ref() != Some(plan) {
        out.push(Diagnostic::error(
            RuleId::FaultPlan,
            Span::Nest,
            "plan does not survive a JSON round trip; it cannot be replayed from disk".to_string(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn cube() -> Topology {
        Topology::Hypercube(2)
    }

    #[test]
    fn empty_plan_is_clean() {
        assert!(check_fault_plan(&FaultPlan::none(), &cube()).is_empty());
    }

    #[test]
    fn valid_plan_is_clean() {
        let plan = FaultPlan::message_noise(7, 50, 10, 100)
            .with_event(FaultEvent::LinkDown {
                from: 0,
                to: 1,
                at: 10,
                until: Some(20),
            })
            .with_crash(3, 40);
        assert!(check_fault_plan(&plan, &cube()).is_empty());
    }

    #[test]
    fn rejects_dead_references_and_bad_windows() {
        let plan = FaultPlan::none()
            .with_event(FaultEvent::LinkDown {
                from: 0,
                to: 3, // 0 and 3 differ in two bits: not a cube edge
                at: 0,
                until: None,
            })
            .with_event(FaultEvent::ProcSlow {
                proc: 9, // out of range
                factor: 2,
                at: 5,
                until: Some(5), // empty window
            })
            .with_crash(4, 0); // out of range
        let ds = check_fault_plan(&plan, &cube());
        let errors: Vec<&str> = ds
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(errors.len(), 4, "{ds:?}");
        assert!(errors[0].contains("not a physical link"));
        assert!(errors[1].contains("P9 does not exist"));
        assert!(errors[2].contains("empty or inverted"));
        assert!(errors[3].contains("P4 does not exist"));
        assert!(ds.iter().all(|d| d.rule == RuleId::FaultPlan));
    }

    #[test]
    fn warns_on_noise_without_retries_and_noop_slowdown() {
        let mut plan = FaultPlan::message_noise(1, 100, 0, 0).with_event(FaultEvent::ProcSlow {
            proc: 0,
            factor: 1,
            at: 0,
            until: None,
        });
        plan.max_retries = 0;
        let ds = check_fault_plan(&plan, &cube());
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| d.severity == Severity::Warning));
        assert!(ds[0].message.contains("max_retries = 0"));
        assert!(ds[1].message.contains("no-op"));
    }

    #[test]
    fn rejects_overrange_rates() {
        let mut plan = FaultPlan::none();
        plan.drop_per_mille = 2000;
        let ds = check_fault_plan(&plan, &cube());
        assert!(ds
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("2000")));
    }

    #[test]
    fn zero_slow_factor_is_an_error() {
        let plan = FaultPlan::none().with_event(FaultEvent::ProcSlow {
            proc: 0,
            factor: 0,
            at: 0,
            until: None,
        });
        let ds = check_fault_plan(&plan, &cube());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].severity, Severity::Error);
        assert_eq!(ds[0].span, Span::FaultEvent { index: 0 });
    }
}
