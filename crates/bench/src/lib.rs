//! Shared helpers for the repro binaries and criterion benches.
//!
//! Each `repro_*` binary regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the experiment index); the criterion benches
//! measure the algorithms themselves. Everything routes through the same
//! helpers here so the numbers printed by binaries, asserted by tests,
//! and timed by benches come from one code path.

#![deny(missing_docs)]

use loom_hyperplane::TimeFn;
use loom_obs::Json;
use loom_partition::{partition, PartitionConfig, Partitioning};
use loom_rational::QVec;
use loom_workloads::Workload;
use std::path::Path;

/// Partition a workload with its documented Π and default choices.
pub fn partition_workload(w: &Workload) -> Partitioning {
    partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .expect("workloads partition cleanly")
}

/// Partition the 4×4×4 matmul exactly as the paper's Example 2 does:
/// grouping vector `d_A`, auxiliary `d_C`, seed group based at
/// `(−1,−1,2)`.
pub fn paper_matmul_partitioning() -> Partitioning {
    let w = loom_workloads::matmul::workload(4);
    // Sorted dependence set: [d_C=(0,0,1), d_A=(0,1,0), d_B=(1,0,0)].
    partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig {
            grouping_choice: Some(1),
            seed: Some(QVec::from_ints(&[-1, -1, 2])),
        },
    )
    .expect("matmul partitions")
}

/// Write a metrics document to `<dir>/<name>.json`, pretty-rendered,
/// creating `dir` if needed.
pub fn write_metrics_to(dir: &Path, name: &str, doc: &Json) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.json")), doc.render_pretty())
}

/// If `LOOM_METRICS_DIR` is set, write `doc` to `<dir>/<name>.json` and
/// note it on stderr — the repro binaries call this so every experiment
/// can leave machine-readable metrics next to its printed table without
/// changing its stdout.
pub fn maybe_write_metrics(name: &str, doc: &Json) {
    let Ok(dir) = std::env::var("LOOM_METRICS_DIR") else {
        return;
    };
    let dir = Path::new(&dir);
    match write_metrics_to(dir, name, doc) {
        Ok(()) => eprintln!(
            "metrics: wrote {}",
            dir.join(format!("{name}.json")).display()
        ),
        Err(e) => eprintln!("metrics: cannot write {name}.json: {e}"),
    }
}

/// Run independent jobs on scoped OS threads and collect results in
/// input order — the bench harness's way of sweeping machine sizes /
/// mappings in parallel on the host. The simulator itself stays
/// single-threaded and deterministic; only *independent simulations*
/// run concurrently.
pub fn parallel_sweep<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| scope.spawn(|| f(item)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep job panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matmul_is_17_groups() {
        assert_eq!(paper_matmul_partitioning().num_blocks(), 17);
    }

    #[test]
    fn parallel_sweep_preserves_order_and_runs_concurrently() {
        let results = parallel_sweep(vec![3u64, 1, 4, 1, 5], |x| x * 10);
        assert_eq!(results, vec![30, 10, 40, 10, 50]);
        // Simulations in parallel give the same answers as serially.
        use loom_machine::{simulate, MachineParams, Program, SimConfig};
        let w = loom_workloads::matvec::workload(12);
        let p = partition_workload(&w);
        let dims = vec![0usize, 1, 2];
        let parallel = parallel_sweep(dims.clone(), |d| {
            let m = loom_mapping::map_partitioning(&p, d).unwrap();
            let prog = Program::from_partitioning(&p, m.assignment(), 1 << d, 2);
            simulate(
                &prog,
                &SimConfig::paper_hypercube(d, MachineParams::classic_1991()),
            )
            .unwrap()
            .makespan
        });
        for (i, &d) in dims.iter().enumerate() {
            let m = loom_mapping::map_partitioning(&p, d).unwrap();
            let prog = Program::from_partitioning(&p, m.assignment(), 1 << d, 2);
            let serial = simulate(
                &prog,
                &SimConfig::paper_hypercube(d, MachineParams::classic_1991()),
            )
            .unwrap()
            .makespan;
            assert_eq!(parallel[i], serial);
        }
    }

    #[test]
    fn write_metrics_to_creates_dir_and_file() {
        let dir = std::env::temp_dir().join("loom-metrics-test");
        let _ = std::fs::remove_dir_all(&dir);
        let doc = Json::obj(vec![("makespan", Json::from(42u64))]);
        write_metrics_to(&dir, "a6_contention", &doc).unwrap();
        let body = std::fs::read_to_string(dir.join("a6_contention.json")).unwrap();
        assert_eq!(Json::parse(&body).unwrap(), doc);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_workloads_partition() {
        for w in loom_workloads::all_default() {
            let p = partition_workload(&w);
            assert!(p.num_blocks() > 0, "{} produced no blocks", w.nest.name());
            assert!(
                loom_partition::laws::check_all(&p).is_empty(),
                "{} violates a law",
                w.nest.name()
            );
        }
    }
}
