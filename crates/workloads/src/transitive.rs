//! Transitive closure in uniform-recurrence form.
//!
//! Warshall's algorithm `T[i,j] |= T[i,k] & T[k,j]` is *not* a uniform
//! nest (the `k` subscript appears in data position), so the systolic
//! literature — and this paper's §I, which lists transitive closure
//! among the algorithms its method handles — uses the re-indexed
//! Guibas–Kung–Thompson style formulation in which each iteration
//! combines locally propagated copies. After that re-indexing the
//! dependence structure is exactly matmul's: row copies flow along one
//! axis, column copies along another, and the accumulation along the
//! third.

use crate::Workload;
use loom_loopir::sem::Expr;
use loom_loopir::{Access, IterSpace, LoopNest, Stmt};

/// Uniform transitive closure over an `n × n × n` space:
/// `T[i,j] := T[i,j] ∨ (R[i,k] ∧ C[k,j])` with `R`/`C` the propagated
/// row/column copies. Dependences `{(0,0,1), (0,1,0), (1,0,0)}`.
pub fn workload(n: i64) -> Workload {
    let nest = LoopNest::new(
        "transitive-closure",
        IterSpace::rect(&[n, n, n]).expect("positive extent"),
        vec![Stmt::assign(
            Access::simple("T", 3, &[(0, 0), (1, 0)]),
            vec![
                Access::simple("T", 3, &[(0, 0), (1, 0)]),
                Access::simple("R", 3, &[(0, 0), (2, 0)]),
                Access::simple("C", 3, &[(2, 0), (1, 0)]),
            ],
        )
        .with_flops(2)
        .with_expr(Expr::max(
            Expr::Read(0),
            Expr::min(Expr::Read(1), Expr::Read(2)),
        ))],
    )
    .expect("transitive closure is well-formed");
    Workload {
        nest,
        deps: vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]],
        pi: vec![1, 1, 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_verify() {
        workload(4).verified_deps();
    }

    #[test]
    fn pi_legal() {
        assert!(workload(4).pi_is_legal());
    }
}
