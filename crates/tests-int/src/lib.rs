//! Integration tests spanning the whole workspace live in this crate's
//! `tests/` directory; the library itself is intentionally empty.
