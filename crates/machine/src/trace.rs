//! Execution traces, post-hoc validity checking, and Chrome
//! trace-event export.

use crate::profile::CriticalPathReport;
use crate::program::Program;
use crate::sim::SimReport;
use loom_obs::chrome::TraceBuilder;
use loom_obs::Json;

/// One task's execution interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskRecord {
    /// Task id.
    pub task: u32,
    /// Processor it ran on.
    pub proc: u32,
    /// Start tick.
    pub start: u64,
    /// End tick.
    pub end: u64,
}

/// A violated execution-trace property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceViolation {
    /// Two tasks overlapped on the same processor.
    Overlap {
        /// First task.
        a: u32,
        /// Second task.
        b: u32,
        /// The processor.
        proc: u32,
    },
    /// A task started before one of its predecessors finished.
    DependenceOrder {
        /// The predecessor.
        src: u32,
        /// The dependent task.
        dst: u32,
    },
    /// A task ran on a different processor than assigned, or is missing.
    WrongOrMissing {
        /// The task.
        task: u32,
    },
}

/// Check a trace against its program: every task present on its assigned
/// processor, no same-processor overlap, and every dependence arc
/// honored (`end(src) ≤ start(dst)`). Returns all violations found.
pub fn verify_trace(program: &Program, trace: &[TaskRecord]) -> Vec<TraceViolation> {
    let mut violations = Vec::new();
    let mut record_of: Vec<Option<&TaskRecord>> = vec![None; program.len()];
    for r in trace {
        if (r.task as usize) < program.len() {
            record_of[r.task as usize] = Some(r);
        }
    }
    for (t, rec) in record_of.iter().enumerate() {
        match rec {
            Some(r) if r.proc == program.proc_of[t] => {}
            _ => violations.push(TraceViolation::WrongOrMissing { task: t as u32 }),
        }
    }
    // Same-processor overlap: sweep per processor.
    let mut by_proc: Vec<Vec<&TaskRecord>> = vec![Vec::new(); program.num_procs];
    for r in trace {
        by_proc[r.proc as usize].push(r);
    }
    for (p, records) in by_proc.iter_mut().enumerate() {
        records.sort_by_key(|r| (r.start, r.end));
        for w in records.windows(2) {
            if w[1].start < w[0].end {
                violations.push(TraceViolation::Overlap {
                    a: w[0].task,
                    b: w[1].task,
                    proc: p as u32,
                });
            }
        }
    }
    for &(a, b) in &program.arcs {
        if let (Some(ra), Some(rb)) = (record_of[a as usize], record_of[b as usize]) {
            if rb.start < ra.end {
                violations.push(TraceViolation::DependenceOrder { src: a, dst: b });
            }
        }
    }
    violations
}

/// Render a trace as Chrome trace-viewer JSON (`chrome://tracing`,
/// Perfetto, or Speedscope all open it): one complete event per task,
/// one row per processor. Times are emitted in microseconds 1:1 with
/// simulator ticks.
pub fn to_chrome_json(trace: &[TaskRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in trace.iter().enumerate() {
        let sep = if i + 1 == trace.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"name\": \"task {}\", \"ph\": \"X\", \"pid\": 0, \"tid\": {}, \"ts\": {}, \"dur\": {}}}{}\n",
            r.task,
            r.proc,
            r.start,
            r.end - r.start,
            sep
        ));
    }
    out.push(']');
    out
}

/// Render a full simulator report as a Chrome trace-event JSON value
/// (`chrome://tracing`, Perfetto, or Speedscope all open it): one
/// thread track per processor carrying nested `B`/`E` slices per task,
/// plus — when [`SimMetrics`](crate::metrics::SimMetrics) were
/// collected — an `X` slice per message send and `s`/`f` flow arrows
/// from each send to its arrival processor. Ticks map 1:1 onto µs.
///
/// When the report carries a fault
/// [`DegradationReport`](crate::fault::DegradationReport) with a
/// non-empty attribution table, an extra `faults` track (tid one past
/// the last processor) gets an instant band per fault hit, plus an `X`
/// slice on the impacted processor's own track spanning the direct
/// delay the fault caused there.
///
/// Returns `None` when the report carries no trace
/// (`record_trace: false`).
pub fn chrome_trace(report: &SimReport, num_procs: usize) -> Option<Json> {
    chrome_trace_annotated(report, num_procs, None)
}

/// [`chrome_trace`] plus an optional critical-path overlay: when a
/// [`CriticalPathReport`] is supplied, a `critical path` track (tid two
/// past the last processor, clear of the `faults` track) gets one `X`
/// slice per path segment, so the makespan-bounding chain lights up as
/// its own lane in Perfetto. With `profile: None` the output is
/// byte-identical to [`chrome_trace`].
pub fn chrome_trace_annotated(
    report: &SimReport,
    num_procs: usize,
    profile: Option<&CriticalPathReport>,
) -> Option<Json> {
    let trace = report.trace.as_ref()?;
    let mut tb = TraceBuilder::new();
    tb.process_name(0, "loom simulator");
    for p in 0..num_procs {
        tb.thread_name(0, p as u64, &format!("P{p}"));
    }
    // Tasks never overlap on one processor, so emitting each task's
    // B/E pair contiguously yields correctly nested tracks.
    for r in trace {
        tb.begin(0, r.proc as u64, r.start, &format!("task {}", r.task));
        tb.end(0, r.proc as u64, r.end);
    }
    if let Some(m) = &report.metrics {
        for (i, msg) in m.messages.iter().enumerate() {
            tb.complete(
                0,
                msg.src_proc as u64,
                msg.send_start,
                msg.send_end - msg.send_start,
                &format!("send to P{}", msg.dst_proc),
            );
            tb.flow_start(i as u64, 0, msg.src_proc as u64, msg.send_start, "msg");
            tb.flow_finish(i as u64, 0, msg.dst_proc as u64, msg.arrival, "msg");
        }
    }
    // Fault bands: only materialize the track when something hit, so
    // fault-free exports are byte-identical to the baseline's.
    if let Some(deg) = report
        .degradation
        .as_ref()
        .filter(|d| !d.attribution.is_empty())
    {
        let fault_tid = num_procs as u64;
        tb.thread_name(0, fault_tid, "faults");
        for hit in &deg.attribution {
            tb.instant(0, fault_tid, hit.at, &format!("fault: {}", hit.fault));
            if hit.delay_ticks > 0 {
                tb.complete(
                    0,
                    hit.proc as u64,
                    hit.at,
                    hit.delay_ticks,
                    &format!("fault delay: {}", hit.fault),
                );
            }
        }
    }
    // Critical-path overlay: a dedicated track (past the faults track's
    // tid) with one slice per path segment of the top path.
    if let Some(cp) = profile {
        if let Some(path) = cp.paths.first() {
            let cp_tid = num_procs as u64 + 1;
            tb.thread_name(0, cp_tid, "critical path");
            for seg in &path.segments {
                tb.complete(
                    0,
                    cp_tid,
                    seg.start,
                    seg.end - seg.start,
                    &format!("{} [{}]", seg.label, seg.kind.label()),
                );
            }
        }
    }
    Some(tb.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::MachineParams;
    use crate::sim::{simulate, SimConfig};
    use crate::topology::Topology;

    fn traced_config() -> SimConfig {
        SimConfig {
            params: MachineParams {
                t_calc: 1,
                t_start: 10,
                t_comm: 2,
                t_recv: 0,
            },
            topology: Topology::Hypercube(2),
            words_per_arc: 1,
            batch_messages: false,
            link_contention: false,
            record_trace: true,
            collect_metrics: false,
        }
    }

    #[test]
    fn simulator_traces_verify_clean() {
        // A diamond across processors.
        let prog = Program::from_parts(
            vec![0, 1, 1, 2],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![0, 1, 2, 3],
            2,
            4,
        );
        let r = simulate(&prog, &traced_config()).unwrap();
        assert_eq!(verify_trace(&prog, r.trace.as_ref().unwrap()), vec![]);
    }

    #[test]
    fn detects_overlap() {
        let prog = Program::from_parts(vec![0, 0], vec![], vec![0, 0], 5, 1);
        let bad = vec![
            TaskRecord {
                task: 0,
                proc: 0,
                start: 0,
                end: 5,
            },
            TaskRecord {
                task: 1,
                proc: 0,
                start: 3,
                end: 8,
            },
        ];
        let v = verify_trace(&prog, &bad);
        assert!(v.contains(&TraceViolation::Overlap {
            a: 0,
            b: 1,
            proc: 0
        }));
    }

    #[test]
    fn detects_dependence_violation() {
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 5, 2);
        let bad = vec![
            TaskRecord {
                task: 0,
                proc: 0,
                start: 0,
                end: 5,
            },
            TaskRecord {
                task: 1,
                proc: 1,
                start: 2,
                end: 7,
            },
        ];
        let v = verify_trace(&prog, &bad);
        assert!(v.contains(&TraceViolation::DependenceOrder { src: 0, dst: 1 }));
    }

    #[test]
    fn chrome_json_shape() {
        let trace = vec![
            TaskRecord {
                task: 0,
                proc: 0,
                start: 0,
                end: 5,
            },
            TaskRecord {
                task: 1,
                proc: 1,
                start: 2,
                end: 9,
            },
        ];
        let json = to_chrome_json(&trace);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"tid\": 1"));
        assert!(json.contains("\"dur\": 7"));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 2);
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
        assert_eq!(to_chrome_json(&[]), "[\n]");
    }

    #[test]
    fn chrome_trace_has_per_proc_tracks_and_flows() {
        // A diamond across processors, with metrics for flow arrows.
        let prog = Program::from_parts(
            vec![0, 1, 1, 2],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![0, 1, 2, 3],
            2,
            4,
        );
        let mut cfg = traced_config();
        cfg.collect_metrics = true;
        let r = simulate(&prog, &cfg).unwrap();
        let json = chrome_trace(&r, 4).unwrap();
        let evs = json.as_arr().unwrap();
        // 1 process + 4 thread metadata events.
        let meta = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .count();
        assert_eq!(meta, 5);
        // Each of the 4 tasks opens and closes exactly once.
        let begins = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .count();
        let ends = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("E"))
            .count();
        assert_eq!((begins, ends), (4, 4));
        // 4 remote arcs → 4 messages, each with a flow start + finish.
        let flows = evs
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("msg"))
            .count();
        assert_eq!(flows, 8);
        // Without a trace there is nothing to export.
        let mut no_trace = traced_config();
        no_trace.record_trace = false;
        let r2 = simulate(&prog, &no_trace).unwrap();
        assert!(chrome_trace(&r2, 4).is_none());
    }

    #[test]
    fn chrome_trace_gets_fault_band_under_faults() {
        use crate::fault::{FaultConfig, FaultEvent, FaultPlan, RecoveryPolicy};
        use crate::sim::simulate_with_faults;
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 4);
        let cfg = traced_config();
        let plan = FaultPlan::none().with_event(FaultEvent::LinkDown {
            from: 0,
            to: 1,
            at: 0,
            until: Some(1_000_000),
        });
        let r = simulate_with_faults(
            &prog,
            &cfg,
            &FaultConfig::new(plan, RecoveryPolicy::RetryOnly),
        )
        .unwrap();
        let json = chrome_trace(&r, 4).unwrap();
        let evs = json.as_arr().unwrap();
        // The reroute hit materializes the faults track and its pin.
        let instants: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .collect();
        assert!(!instants.is_empty());
        assert!(instants
            .iter()
            .all(|e| e.get("tid").and_then(Json::as_u64) == Some(4)));
        let named_faults = evs.iter().any(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                == Some("faults")
        });
        assert!(named_faults, "faults track must be named");
        // A fault-free degraded run adds nothing: same event count as
        // the plain export.
        let empty = simulate_with_faults(
            &prog,
            &cfg,
            &FaultConfig::new(FaultPlan::none(), RecoveryPolicy::RetryOnly),
        )
        .unwrap();
        let base = simulate(&prog, &cfg).unwrap();
        assert_eq!(
            chrome_trace(&empty, 4).unwrap().as_arr().unwrap().len(),
            chrome_trace(&base, 4).unwrap().as_arr().unwrap().len()
        );
    }

    #[test]
    fn annotated_trace_adds_critical_path_track_only_when_asked() {
        use crate::profile::critical_path;
        let prog = Program::from_parts(
            vec![0, 1, 1, 2],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![0, 1, 2, 3],
            2,
            4,
        );
        let mut cfg = traced_config();
        cfg.collect_metrics = true;
        let r = simulate(&prog, &cfg).unwrap();
        let cp = critical_path(&prog, &cfg, &r).unwrap();
        // Without a profile, the annotated export IS the plain export.
        let plain = chrome_trace(&r, 4).unwrap();
        assert_eq!(
            chrome_trace_annotated(&r, 4, None).unwrap().render(),
            plain.render()
        );
        // With one, a named track materializes past the fault tid, and
        // its slices tile the makespan.
        let annotated = chrome_trace_annotated(&r, 4, Some(&cp)).unwrap();
        let evs = annotated.as_arr().unwrap();
        assert!(evs.len() > plain.as_arr().unwrap().len());
        let cp_slices: Vec<_> = evs
            .iter()
            .filter(|e| {
                e.get("tid").and_then(Json::as_u64) == Some(5)
                    && e.get("ph").and_then(Json::as_str) == Some("X")
            })
            .collect();
        assert_eq!(cp_slices.len(), cp.paths[0].segments.len());
        let covered: u64 = cp_slices
            .iter()
            .filter_map(|e| e.get("dur").and_then(Json::as_u64))
            .sum();
        assert_eq!(covered, r.makespan);
    }

    #[test]
    fn detects_missing_task() {
        let prog = Program::from_parts(vec![0], vec![], vec![0], 1, 1);
        let v = verify_trace(&prog, &[]);
        assert_eq!(v, vec![TraceViolation::WrongOrMissing { task: 0 }]);
    }
}
