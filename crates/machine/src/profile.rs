//! Critical-path profiling: *why* is the makespan what it is?
//!
//! The paper decomposes `T_exec` into block computation and
//! `t_start + t_comm` communication terms; the aggregates the simulator
//! reports (occupancy, utilization, comm/compute ratio) cannot say
//! *which* tasks and messages actually bound the makespan. This module
//! reconstructs the happens-before chain of a simulated execution from
//! its recorded telemetry and walks the **actual critical path**
//! backwards from the last-finishing task, attributing every tick of
//! the makespan to one of seven buckets:
//!
//! * **compute** — task execution at nominal speed,
//! * **startup** — `t_start` message-startup shares,
//! * **transit** — `words · t_comm` wire-time shares,
//! * **contention** — ticks spent queued behind busy links,
//! * **recv** — software receive processing (`t_recv`),
//! * **fault_recovery** — slowdown excess, injected message delay, and
//!   gaps on fault-injected runs,
//! * **residual** — gaps the reconstruction cannot explain (zero on
//!   every fault-free run; the integration suite asserts this for all
//!   builtin workloads).
//!
//! The walk is exact by construction: the attributed components of the
//! top path always sum to the makespan, because the path covers
//! `[0, makespan]` without gaps or overlaps. On matvec this reproduces
//! the paper's Table I shape — the path's cost is
//! `a·t_calc + b·(t_comm + t_start)` with the same coefficients the
//! analytic model predicts (see `profile.rs` in `loom-tests-int`).
//!
//! Requires a run with both `record_trace` and `collect_metrics` on
//! (both strictly observational, so profiling never perturbs timing).

use crate::metrics::{MsgRecord, RecvRecord};
use crate::program::Program;
use crate::sim::{SimConfig, SimReport};
use crate::trace::TaskRecord;
use loom_obs::Json;
use std::collections::{BTreeMap, BTreeSet};

/// Why a report cannot be profiled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProfileError {
    /// The report has no task trace (`record_trace` was off).
    MissingTrace,
    /// The report has no telemetry (`collect_metrics` was off).
    MissingMetrics,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::MissingTrace => {
                write!(f, "profiling needs a task trace (enable record_trace)")
            }
            ProfileError::MissingMetrics => {
                write!(f, "profiling needs telemetry (enable collect_metrics)")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// Makespan ticks attributed per cost component.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Nominal task execution.
    pub compute: u64,
    /// `t_start` shares of sends and multi-hop forwarding.
    pub startup: u64,
    /// `words · t_comm` wire time.
    pub transit: u64,
    /// Queuing behind busy links (`link_contention` runs only).
    pub contention: u64,
    /// Software receive processing (`t_recv`).
    pub recv: u64,
    /// Fault slowdown excess, injected delays, and unexplained gaps on
    /// fault-injected runs.
    pub fault_recovery: u64,
    /// Unexplained gaps on fault-free runs (always 0 in practice; kept
    /// separate from `fault_recovery` so any attribution bug is loud).
    pub residual: u64,
}

impl Attribution {
    /// Total attributed ticks.
    pub fn sum(&self) -> u64 {
        self.compute
            + self.startup
            + self.transit
            + self.contention
            + self.recv
            + self.fault_recovery
            + self.residual
    }

    fn merge(&mut self, other: &Attribution) {
        self.compute += other.compute;
        self.startup += other.startup;
        self.transit += other.transit;
        self.contention += other.contention;
        self.recv += other.recv;
        self.fault_recovery += other.fault_recovery;
        self.residual += other.residual;
    }

    /// The attribution as a JSON object (component name → ticks).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("compute", Json::from(self.compute)),
            ("startup", Json::from(self.startup)),
            ("transit", Json::from(self.transit)),
            ("contention", Json::from(self.contention)),
            ("recv", Json::from(self.recv)),
            ("fault_recovery", Json::from(self.fault_recovery)),
            ("residual", Json::from(self.residual)),
        ])
    }
}

/// What one critical-path segment was doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentKind {
    /// A task executing.
    Compute,
    /// A sender occupied issuing a message.
    Send,
    /// Receive processing.
    Recv,
    /// A message in flight (sender-start to arrival, across links).
    Message,
    /// An unexplained wait.
    Wait,
}

impl SegmentKind {
    /// Short lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            SegmentKind::Compute => "compute",
            SegmentKind::Send => "send",
            SegmentKind::Recv => "recv",
            SegmentKind::Message => "message",
            SegmentKind::Wait => "wait",
        }
    }
}

/// One interval of the critical path. Segments are reported in
/// chronological order and tile `[0, finish]` exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// What the interval was.
    pub kind: SegmentKind,
    /// The processor it charges (for `Message`: the *sending*
    /// processor; link shares live in the per-link table).
    pub proc: u32,
    /// Start tick.
    pub start: u64,
    /// End tick.
    pub end: u64,
    /// Human label (`task 17`, `msg P0->P3`, …).
    pub label: String,
}

/// One reconstructed path, walked back from `end_task`.
#[derive(Clone, Debug)]
pub struct PathReport {
    /// The task the walk started from.
    pub end_task: u32,
    /// That task's finish tick.
    pub finish: u64,
    /// `makespan - finish` (0 for the true critical path).
    pub slack: u64,
    /// Component attribution over this path (sums to `finish`).
    pub components: Attribution,
    /// The path's segments, chronological.
    pub segments: Vec<Segment>,
}

/// The profiler's output: the critical path, near-critical paths, and
/// per-processor / per-link attribution tables.
#[derive(Clone, Debug)]
pub struct CriticalPathReport {
    /// The simulated makespan.
    pub makespan: u64,
    /// Component attribution of the critical path. **Always** sums to
    /// `makespan`.
    pub components: Attribution,
    /// Critical-path ticks charged to each processor (tasks, sends,
    /// receives, and waits that happened there), indexed by processor.
    pub per_proc: Vec<Attribution>,
    /// Critical-path in-flight ticks charged to each directed link a
    /// path message crossed.
    pub per_link: BTreeMap<(usize, usize), u64>,
    /// In-flight ticks of path messages whose recorded hop count does
    /// not match the topology's static route (fault reroutes); their
    /// link shares cannot be reconstructed, so they are tallied here
    /// instead of in `per_link`. Zero on fault-free runs.
    pub rerouted_ticks: u64,
    /// The critical path first, then up to `k - 1` near-critical paths
    /// in decreasing finish-time order.
    pub paths: Vec<PathReport>,
}

impl CriticalPathReport {
    /// The report as a JSON document.
    pub fn to_json(&self) -> Json {
        let per_proc = Json::Arr(
            self.per_proc
                .iter()
                .enumerate()
                .map(|(p, a)| {
                    let mut pairs = vec![("proc".to_string(), Json::from(p))];
                    if let Json::Obj(fields) = a.to_json() {
                        pairs.extend(fields);
                    }
                    Json::Obj(pairs)
                })
                .collect(),
        );
        let per_link = Json::Arr(
            self.per_link
                .iter()
                .map(|(&(from, to), &ticks)| {
                    Json::obj(vec![
                        ("from", Json::from(from)),
                        ("to", Json::from(to)),
                        ("ticks", Json::from(ticks)),
                    ])
                })
                .collect(),
        );
        let paths = Json::Arr(
            self.paths
                .iter()
                .map(|p| {
                    Json::obj(vec![
                        ("end_task", Json::from(u64::from(p.end_task))),
                        ("finish", Json::from(p.finish)),
                        ("slack", Json::from(p.slack)),
                        ("components", p.components.to_json()),
                        (
                            "segments",
                            Json::Arr(
                                p.segments
                                    .iter()
                                    .map(|s| {
                                        Json::obj(vec![
                                            ("kind", Json::from(s.kind.label())),
                                            ("proc", Json::from(u64::from(s.proc))),
                                            ("start", Json::from(s.start)),
                                            ("end", Json::from(s.end)),
                                            ("label", Json::from(s.label.as_str())),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("makespan", Json::from(self.makespan)),
            ("components", self.components.to_json()),
            ("per_proc", per_proc),
            ("per_link", per_link),
            ("rerouted_ticks", Json::from(self.rerouted_ticks)),
            ("paths", paths),
        ])
    }

    /// A human-readable summary table.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let c = &self.components;
        out.push_str(&format!("makespan          {:>12}\n", self.makespan));
        let pct = |v: u64| {
            if self.makespan == 0 {
                0.0
            } else {
                100.0 * v as f64 / self.makespan as f64
            }
        };
        for (name, v) in [
            ("compute", c.compute),
            ("startup", c.startup),
            ("transit", c.transit),
            ("contention", c.contention),
            ("recv", c.recv),
            ("fault_recovery", c.fault_recovery),
            ("residual", c.residual),
        ] {
            if v > 0 || name == "compute" {
                out.push_str(&format!("  {name:<15} {v:>12}  {:5.1}%\n", pct(v)));
            }
        }
        let busiest: Vec<(usize, u64)> = {
            let mut v: Vec<(usize, u64)> = self
                .per_proc
                .iter()
                .enumerate()
                .map(|(p, a)| (p, a.sum()))
                .filter(|&(_, s)| s > 0)
                .collect();
            v.sort_by_key(|&(p, s)| (std::cmp::Reverse(s), p));
            v.truncate(5);
            v
        };
        if !busiest.is_empty() {
            out.push_str("critical-path ticks by processor:\n");
            for (p, s) in busiest {
                out.push_str(&format!("  P{p:<4} {s:>12}  {:5.1}%\n", pct(s)));
            }
        }
        if !self.per_link.is_empty() {
            let mut links: Vec<_> = self.per_link.iter().collect();
            links.sort_by_key(|&(&l, &t)| (std::cmp::Reverse(t), l));
            out.push_str("critical-path in-flight ticks by link:\n");
            for (&(from, to), &t) in links.into_iter().take(5) {
                out.push_str(&format!("  P{from}->P{to}  {t:>10}  {:5.1}%\n", pct(t)));
            }
        }
        for p in &self.paths {
            out.push_str(&format!(
                "path to task {:<6} finish {:>10}  slack {:>8}  ({} segments)\n",
                p.end_task,
                p.finish,
                p.slack,
                p.segments.len()
            ));
        }
        out
    }
}

/// Extract the critical path and up to two near-critical runner-up
/// paths (see [`critical_path_top_k`]).
pub fn critical_path(
    program: &Program,
    config: &SimConfig,
    report: &SimReport,
) -> Result<CriticalPathReport, ProfileError> {
    critical_path_top_k(program, config, report, 3)
}

/// Busy interval on a processor: what ends where.
#[derive(Clone, Copy, Debug)]
enum Activity {
    Task(usize),
    Send(usize),
    Recv(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Visit {
    Task(usize),
    Send(usize),
    Recv(usize),
    Msg(usize),
}

struct Walker<'a> {
    program: &'a Program,
    config: &'a SimConfig,
    trace: &'a [TaskRecord],
    messages: &'a [MsgRecord],
    recvs: &'a [RecvRecord],
    /// Activities per processor, each list sorted by end tick.
    by_proc: Vec<Vec<(u64, u64, Activity)>>,
    /// Message indices per destination processor, sorted by arrival.
    arrivals: Vec<Vec<usize>>,
    faulty: bool,
}

impl<'a> Walker<'a> {
    fn new(
        program: &'a Program,
        config: &'a SimConfig,
        report: &'a SimReport,
    ) -> Result<Walker<'a>, ProfileError> {
        let trace = report.trace.as_deref().ok_or(ProfileError::MissingTrace)?;
        let metrics = report
            .metrics
            .as_ref()
            .ok_or(ProfileError::MissingMetrics)?;
        let n = program.num_procs;
        let mut by_proc: Vec<Vec<(u64, u64, Activity)>> = vec![Vec::new(); n];
        for (i, t) in trace.iter().enumerate() {
            by_proc[t.proc as usize].push((t.start, t.end, Activity::Task(i)));
        }
        for (i, m) in metrics.messages.iter().enumerate() {
            by_proc[m.src_proc as usize].push((m.send_start, m.send_end, Activity::Send(i)));
        }
        for (i, r) in metrics.recvs.iter().enumerate() {
            by_proc[r.proc as usize].push((r.start, r.end, Activity::Recv(i)));
        }
        for list in &mut by_proc {
            list.sort_by_key(|&(start, end, _)| (end, start));
        }
        let mut arrivals: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, m) in metrics.messages.iter().enumerate() {
            arrivals[m.dst_proc as usize].push(i);
        }
        for list in &mut arrivals {
            list.sort_by_key(|&i| metrics.messages[i].arrival);
        }
        Ok(Walker {
            program,
            config,
            trace,
            messages: &metrics.messages,
            recvs: &metrics.recvs,
            by_proc,
            arrivals,
            faulty: report.degradation.is_some(),
        })
    }

    /// Walk backwards from `end_task`'s completion to tick 0, producing
    /// the path segments in reverse-chronological order.
    fn walk(&self, end_idx: usize) -> PathReport {
        let end_rec = self.trace[end_idx];
        let mut segments: Vec<Segment> = Vec::new();
        let mut components = Attribution::default();
        let mut visited: BTreeSet<Visit> = BTreeSet::new();
        let mut proc = end_rec.proc as usize;
        let mut t = end_rec.end;
        // The tasks whose readiness the walk is currently chasing —
        // used to pick the *causal* arrival among same-tick arrivals.
        let mut chasing: Vec<u32> = Vec::new();
        while t > 0 {
            if let Some((start, end, act)) = self.activity_ending_at(proc, t, &visited) {
                match act {
                    Activity::Task(i) => {
                        visited.insert(Visit::Task(i));
                        let rec = self.trace[i];
                        let dur = end - start;
                        let nominal =
                            self.program.task_flops[rec.task as usize] * self.config.params.t_calc;
                        let slow = dur.saturating_sub(nominal);
                        components.compute += dur - slow;
                        components.fault_recovery += slow;
                        segments.push(Segment {
                            kind: SegmentKind::Compute,
                            proc: rec.proc,
                            start,
                            end,
                            label: format!("task {}", rec.task),
                        });
                        chasing = vec![rec.task];
                    }
                    Activity::Send(i) => {
                        visited.insert(Visit::Send(i));
                        let m = &self.messages[i];
                        // Sender occupancy = one hop's startup + wire
                        // time, plus any wait for the outgoing link.
                        let occ = self.config.params.send_occupancy(m.words);
                        let dur = end - start;
                        components.startup += self.config.params.t_start;
                        components.transit += m.words * self.config.params.t_comm;
                        components.contention += dur.saturating_sub(occ);
                        segments.push(Segment {
                            kind: SegmentKind::Send,
                            proc: m.src_proc,
                            start,
                            end,
                            label: format!("send P{}->P{}", m.src_proc, m.dst_proc),
                        });
                        chasing = vec![m.src_task];
                    }
                    Activity::Recv(i) => {
                        visited.insert(Visit::Recv(i));
                        let r = &self.recvs[i];
                        components.recv += end - start;
                        segments.push(Segment {
                            kind: SegmentKind::Recv,
                            proc: r.proc,
                            start,
                            end,
                            label: format!("recv on P{}", r.proc),
                        });
                        chasing = r.tasks.clone();
                    }
                }
                t = start;
                continue;
            }
            if let Some(i) = self.arrival_at(proc, t, &chasing, &visited) {
                let m = &self.messages[i];
                let span = m.arrival - m.send_start;
                let nominal = self.config.params.message_cost(m.words, m.hops as usize);
                components.fault_recovery += m.fault_delay;
                let wire = span - m.fault_delay;
                components.startup += (m.hops as u64) * self.config.params.t_start;
                components.transit += (m.hops as u64) * m.words * self.config.params.t_comm;
                components.contention += wire.saturating_sub(nominal);
                segments.push(Segment {
                    kind: SegmentKind::Message,
                    proc: m.src_proc,
                    start: m.send_start,
                    end: m.arrival,
                    label: format!("msg P{}->P{}", m.src_proc, m.dst_proc),
                });
                proc = m.src_proc as usize;
                t = m.send_start;
                chasing = vec![m.src_task];
                continue;
            }
            // Nothing on this processor ends here and no message
            // arrives: an unexplained gap back to the previous
            // activity (fault recovery on fault-injected runs).
            let prev = self.by_proc[proc]
                .iter()
                .rev()
                .map(|&(_, end, _)| end)
                .find(|&end| end < t)
                .unwrap_or(0);
            if self.faulty {
                components.fault_recovery += t - prev;
            } else {
                components.residual += t - prev;
            }
            segments.push(Segment {
                kind: SegmentKind::Wait,
                proc: proc as u32,
                start: prev,
                end: t,
                label: "wait".to_string(),
            });
            t = prev;
        }
        segments.reverse();
        PathReport {
            end_task: end_rec.task,
            finish: end_rec.end,
            slack: 0, // filled by the caller
            components,
            segments,
        }
    }

    /// The unvisited busy interval on `proc` ending exactly at `t`,
    /// preferring the longest (a zero-length interval cannot explain
    /// elapsed time).
    fn activity_ending_at(
        &self,
        proc: usize,
        t: u64,
        visited: &BTreeSet<Visit>,
    ) -> Option<(u64, u64, Activity)> {
        self.by_proc[proc]
            .iter()
            .rev()
            .skip_while(|&&(_, end, _)| end > t)
            .take_while(|&&(_, end, _)| end == t)
            .filter(|&&(_, _, act)| !visited.contains(&visit_of(act)))
            .min_by_key(|&&(start, _, _)| start)
            .copied()
    }

    /// The unvisited message arriving at `proc` exactly at `t`,
    /// preferring one that unblocks a task the walk is chasing, then
    /// the latest-issued.
    fn arrival_at(
        &self,
        proc: usize,
        t: u64,
        chasing: &[u32],
        visited: &BTreeSet<Visit>,
    ) -> Option<usize> {
        let candidates = self.arrivals[proc]
            .iter()
            .copied()
            .filter(|&i| self.messages[i].arrival == t && !visited.contains(&Visit::Msg(i)));
        candidates.max_by_key(|&i| {
            let m = &self.messages[i];
            let causal = m.dst_tasks.iter().any(|dt| chasing.contains(dt));
            (causal, m.send_start, std::cmp::Reverse(i))
        })
    }
}

fn visit_of(act: Activity) -> Visit {
    match act {
        Activity::Task(i) => Visit::Task(i),
        Activity::Send(i) => Visit::Send(i),
        Activity::Recv(i) => Visit::Recv(i),
    }
}

/// Extract the critical path plus up to `k - 1` runner-up paths (walked
/// from the next-latest-finishing tasks). Requires a report produced
/// with both `record_trace` and `collect_metrics`.
pub fn critical_path_top_k(
    program: &Program,
    config: &SimConfig,
    report: &SimReport,
    k: usize,
) -> Result<CriticalPathReport, ProfileError> {
    let walker = Walker::new(program, config, report)?;
    if walker.trace.is_empty() {
        return Ok(CriticalPathReport {
            makespan: report.makespan,
            components: Attribution::default(),
            per_proc: vec![Attribution::default(); program.num_procs],
            per_link: BTreeMap::new(),
            rerouted_ticks: 0,
            paths: Vec::new(),
        });
    }
    // End candidates: latest finish first, smallest task id on ties.
    let mut ends: Vec<usize> = (0..walker.trace.len()).collect();
    ends.sort_by_key(|&i| (std::cmp::Reverse(walker.trace[i].end), walker.trace[i].task));
    let mut paths: Vec<PathReport> = Vec::new();
    for &i in ends.iter().take(k.max(1)) {
        let mut path = walker.walk(i);
        path.slack = report.makespan - path.finish;
        paths.push(path);
    }
    // Per-processor and per-link tables come from the true critical
    // path (the first one — its finish IS the makespan).
    let mut per_proc = vec![Attribution::default(); program.num_procs];
    let mut per_link: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut rerouted_ticks = 0u64;
    let critical = &paths[0];
    for seg in &critical.segments {
        let mut one = Attribution::default();
        let dur = seg.end - seg.start;
        match seg.kind {
            SegmentKind::Compute => one.compute = dur,
            SegmentKind::Send => one.startup = dur,
            SegmentKind::Recv => one.recv = dur,
            SegmentKind::Wait => {
                if report.degradation.is_some() {
                    one.fault_recovery = dur;
                } else {
                    one.residual = dur;
                }
            }
            SegmentKind::Message => {
                // In-flight time belongs to links, not processors.
                let msg = walker.messages.iter().find(|m| {
                    m.src_proc == seg.proc && m.send_start == seg.start && m.arrival == seg.end
                });
                let route = msg.map(|m| {
                    config
                        .topology
                        .route_links(m.src_proc as usize, m.dst_proc as usize)
                });
                match (msg, route) {
                    // A recorded hop count differing from the static
                    // route means the message was rerouted around a
                    // fault; its link shares cannot be reconstructed.
                    (Some(m), Some(route))
                        if !route.is_empty() && route.len() as u64 == m.hops as u64 =>
                    {
                        let m_hops = route.len() as u64;
                        let share = dur / m_hops;
                        let extra = dur - share * m_hops;
                        for (j, link) in route.into_iter().enumerate() {
                            let s = share + if j == 0 { extra } else { 0 };
                            *per_link.entry(link).or_insert(0) += s;
                        }
                    }
                    _ => rerouted_ticks += dur,
                }
                continue;
            }
        }
        per_proc[seg.proc as usize].merge(&one);
    }
    Ok(CriticalPathReport {
        makespan: report.makespan,
        components: critical.components,
        per_proc,
        per_link,
        rerouted_ticks,
        paths,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::MachineParams;
    use crate::sim::simulate;
    use crate::topology::Topology;

    fn profiled_config() -> SimConfig {
        SimConfig {
            params: MachineParams {
                t_calc: 1,
                t_start: 10,
                t_comm: 2,
                t_recv: 0,
            },
            topology: Topology::Hypercube(2),
            words_per_arc: 1,
            batch_messages: false,
            link_contention: false,
            record_trace: true,
            collect_metrics: true,
        }
    }

    fn profile(prog: &Program, cfg: &SimConfig) -> CriticalPathReport {
        let report = simulate(prog, cfg).unwrap();
        critical_path(prog, cfg, &report).unwrap()
    }

    #[test]
    fn requires_trace_and_metrics() {
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let mut cfg = profiled_config();
        cfg.record_trace = false;
        let r = simulate(&prog, &cfg).unwrap();
        assert!(matches!(
            critical_path(&prog, &cfg, &r),
            Err(ProfileError::MissingTrace)
        ));
        cfg.record_trace = true;
        cfg.collect_metrics = false;
        let r = simulate(&prog, &cfg).unwrap();
        assert!(matches!(
            critical_path(&prog, &cfg, &r),
            Err(ProfileError::MissingMetrics)
        ));
    }

    #[test]
    fn two_task_chain_attributes_exactly() {
        // task0 (P0, 1 tick) → message (10 + 2 ticks) → task1 (P1, 1
        // tick): makespan 14 = 2 compute + 10 startup + 2 transit.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let cfg = profiled_config();
        let r = profile(&prog, &cfg);
        assert_eq!(r.makespan, 14);
        assert_eq!(r.components.compute, 2);
        assert_eq!(r.components.startup, 10);
        assert_eq!(r.components.transit, 2);
        assert_eq!(r.components.contention, 0);
        assert_eq!(r.components.residual, 0);
        assert_eq!(r.components.sum(), r.makespan);
        // Segments tile [0, makespan] chronologically.
        let segs = &r.paths[0].segments;
        assert_eq!(segs.first().unwrap().start, 0);
        assert_eq!(segs.last().unwrap().end, 14);
        for w in segs.windows(2) {
            assert_eq!(w[1].start, w[0].end, "exact tiling: {segs:#?}");
        }
        // Link attribution covers the whole in-flight span.
        assert_eq!(r.per_link.values().sum::<u64>(), 12);
        assert_eq!(r.rerouted_ticks, 0);
        // Per-proc + per-link tables also cover the makespan.
        let proc_sum: u64 = r.per_proc.iter().map(Attribution::sum).sum();
        assert_eq!(proc_sum + r.per_link.values().sum::<u64>(), r.makespan);
    }

    #[test]
    fn recv_overhead_lands_in_recv_bucket() {
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let mut cfg = profiled_config();
        cfg.params = cfg.params.with_recv(3);
        let r = profile(&prog, &cfg);
        assert_eq!(r.makespan, 17);
        assert_eq!(r.components.recv, 3);
        assert_eq!(r.components.residual, 0);
        assert_eq!(r.components.sum(), r.makespan);
    }

    #[test]
    fn contention_wait_lands_in_contention_bucket() {
        // Two same-route senders on one shared link force queuing.
        let prog = Program::from_parts(
            vec![0, 0, 1, 1],
            vec![(0, 2), (1, 3)],
            vec![0, 1, 3, 3],
            1,
            4,
        );
        let mut cfg = profiled_config();
        cfg.link_contention = true;
        let r = profile(&prog, &cfg);
        assert!(r.components.contention > 0, "{:?}", r.components);
        assert_eq!(r.components.residual, 0);
        assert_eq!(r.components.sum(), r.makespan);
    }

    #[test]
    fn top_k_paths_have_nonincreasing_finish() {
        let prog = Program::from_parts(
            vec![0, 1, 1, 2],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![0, 1, 2, 3],
            2,
            4,
        );
        let cfg = profiled_config();
        let report = simulate(&prog, &cfg).unwrap();
        let r = critical_path_top_k(&prog, &cfg, &report, 3).unwrap();
        assert_eq!(r.paths.len(), 3);
        assert_eq!(r.paths[0].slack, 0);
        for w in r.paths.windows(2) {
            assert!(w[0].finish >= w[1].finish);
            assert!(w[0].slack <= w[1].slack);
        }
        // Every path's attribution covers exactly its own finish time.
        for p in &r.paths {
            assert_eq!(p.components.sum(), p.finish, "task {}", p.end_task);
        }
    }

    #[test]
    fn json_and_human_renderings_work() {
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let cfg = profiled_config();
        let r = profile(&prog, &cfg);
        let j = r.to_json();
        assert_eq!(j.get("makespan").unwrap().as_u64(), Some(14));
        assert_eq!(
            j.get("components")
                .unwrap()
                .get("startup")
                .unwrap()
                .as_u64(),
            Some(10)
        );
        assert!(Json::parse(&j.render()).is_ok());
        let human = r.render_human();
        assert!(human.contains("makespan"));
        assert!(human.contains("compute"));
    }
}
