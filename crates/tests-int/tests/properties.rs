//! Property-based integration tests: random uniform dependence sets and
//! spaces must always yield partitionings that satisfy the paper's laws,
//! and mappings/simulations that conserve work.

use loom_hyperplane::{find_optimal, SearchConfig, TimeFn};
use loom_loopir::IterSpace;
use loom_machine::{simulate, MachineParams, Program, SimConfig, Topology};
use loom_mapping::{baseline, map_partitioning};
use loom_partition::comm::comm_stats;
use loom_partition::{laws, partition, PartitionConfig};
use proptest::prelude::*;

/// Random 2-D dependence sets with strictly positive wavefront sums, so
/// Π = (1,1) is always legal and partitioning always applies.
fn dep_set_2d() -> impl Strategy<Value = Vec<Vec<i64>>> {
    proptest::collection::btree_set((0i64..=2, -2i64..=2), 1..4).prop_filter_map(
        "lex-positive and wavefront-positive",
        |set| {
            let deps: Vec<Vec<i64>> = set
                .into_iter()
                .filter(|&(a, b)| a + b > 0 && (a, b) > (0, 0))
                .map(|(a, b)| vec![a, b])
                .collect();
            (!deps.is_empty()).then_some(deps)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partitioning_always_lawful(deps in dep_set_2d(), rows in 3i64..8, cols in 3i64..8) {
        let space = IterSpace::rect(&[rows, cols]).unwrap();
        let p = partition(space, deps, TimeFn::new(vec![1, 1]), &PartitionConfig::default())
            .unwrap();
        // Disjoint cover.
        let covered: usize = p.blocks().iter().map(Vec::len).sum();
        prop_assert_eq!(covered, (rows * cols) as usize);
        // All laws hold.
        let violations = laws::check_all(&p);
        prop_assert!(violations.is_empty(), "violations: {:?}", violations);
    }

    #[test]
    fn interblock_never_exceeds_total(deps in dep_set_2d(), rows in 3i64..8, cols in 3i64..8) {
        let space = IterSpace::rect(&[rows, cols]).unwrap();
        let p = partition(space, deps, TimeFn::new(vec![1, 1]), &PartitionConfig::default())
            .unwrap();
        let stats = comm_stats(&p);
        prop_assert!(stats.interblock_arcs <= stats.total_arcs);
    }

    #[test]
    fn searched_pi_is_legal_and_minimal_among_wavefronts(
        deps in dep_set_2d(), rows in 3i64..8, cols in 3i64..8
    ) {
        let space = IterSpace::rect(&[rows, cols]).unwrap();
        let pi = find_optimal(&deps, &space, SearchConfig::default()).unwrap();
        prop_assert!(pi.is_legal_for(&deps));
        // Never worse than the plain wavefront, which is legal for this
        // strategy by construction.
        let wf = TimeFn::new(vec![1, 1]);
        prop_assert!(pi.steps(&space) <= wf.steps(&space));
    }

    #[test]
    fn simulation_conserves_work_on_any_mapping(
        deps in dep_set_2d(), rows in 3i64..7, cols in 3i64..7, seed in 0u64..32
    ) {
        let space = IterSpace::rect(&[rows, cols]).unwrap();
        let p = partition(space, deps, TimeFn::new(vec![1, 1]), &PartitionConfig::default())
            .unwrap();
        let n_procs = 2usize;
        let assignment = baseline::random(p.num_blocks(), n_procs, seed);
        let prog = Program::from_partitioning(&p, &assignment, n_procs, 2);
        let sim = simulate(
            &prog,
            &SimConfig {
                params: MachineParams::low_latency(),
                topology: Topology::Hypercube(1),
                words_per_arc: 1,
                batch_messages: false,
                link_contention: false,
                record_trace: false,
            },
        )
        .unwrap();
        let total: u64 = sim.compute.iter().sum();
        prop_assert_eq!(total, (rows * cols) as u64 * 2);
        // Makespan at least the serial work divided by processors.
        prop_assert!(sim.makespan >= total / n_procs as u64);
        prop_assert_eq!(sim.messages as usize, prog.remote_arcs());
    }

    #[test]
    fn gray_mapping_never_unbalances_by_more_than_one_cluster(
        m in 8i64..24
    ) {
        let w = loom_workloads::matvec::workload(m);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        ).unwrap();
        let cube_dim = 2usize;
        prop_assume!(p.num_blocks() >= 1 << cube_dim);
        let mapping = map_partitioning(&p, cube_dim).unwrap();
        let per = mapping.blocks_per_proc();
        let min = per.iter().map(Vec::len).min().unwrap();
        let max = per.iter().map(Vec::len).max().unwrap();
        prop_assert!(max - min <= 1, "cluster sizes {:?}", per.iter().map(Vec::len).collect::<Vec<_>>());
    }
}
