//! A recurrence over a triangular index set — the paper's loop model
//! allows bounds that reference outer indices, and this workload pushes
//! that path through the whole pipeline.

use crate::Workload;
use loom_loopir::sem::Expr;
use loom_loopir::{Access, Aff, IterSpace, LoopNest, Stmt};

/// `T[i+1, j+1] := T[i, j] + T[i+1, j]` over the triangle
/// `0 ≤ i < n, 0 ≤ j ≤ i` (a forward-substitution-shaped sweep).
///
/// Dependences `{(0,1), (1,1)}`; `Π = (1,1)` is legal — note `(1,0)` is
/// absent, so the optimal Π found by search may differ from the square
/// stencil's.
pub fn workload(n: i64) -> Workload {
    let dims = 2;
    let lo = vec![Aff::constant(dims, 0), Aff::constant(dims, 0)];
    let hi = vec![Aff::constant(dims, n - 1), Aff::var(dims, 0)];
    let nest = LoopNest::new(
        "triangular",
        IterSpace::new(lo, hi).expect("triangle is well-formed"),
        vec![Stmt::assign(
            Access::simple("T", dims, &[(0, 1), (1, 1)]),
            vec![
                Access::simple("T", dims, &[(0, 0), (1, 0)]),
                Access::simple("T", dims, &[(0, 1), (1, 0)]),
            ],
        )
        .with_flops(1)
        .with_expr(Expr::add(Expr::Read(0), Expr::Read(1)))],
    )
    .expect("triangular nest is well-formed");
    Workload {
        nest,
        deps: vec![vec![0, 1], vec![1, 1]],
        pi: vec![1, 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_verify() {
        workload(6).verified_deps();
    }

    #[test]
    fn triangle_count() {
        assert_eq!(workload(6).nest.space().count(), 21);
    }

    #[test]
    fn pi_legal() {
        assert!(workload(6).pi_is_legal());
    }
}
