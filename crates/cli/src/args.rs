//! A small deterministic flag parser (no external dependencies).
//! Malformed numeric values come back as typed [`CliError`]s — the
//! parser never exits or panics on user input.

use crate::error::CliError;
use std::collections::BTreeMap;

/// Parsed command line: a subcommand, positional args, and `--key value`
/// / `--switch` flags.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// `--key value` pairs; bare `--switch` maps to `"true"`.
    pub flags: BTreeMap<String, String>,
}

/// Parse an argument list (excluding the program name).
///
/// Grammar: the first bare word is the subcommand; `--key value` binds
/// the next word unless it is itself a flag, in which case `key` is a
/// boolean switch.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
    let mut out = Args::default();
    let mut iter = args.into_iter().peekable();
    while let Some(a) = iter.next() {
        if let Some(key) = a.strip_prefix("--") {
            let value = match iter.peek() {
                Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                _ => "true".to_string(),
            };
            out.flags.insert(key.to_string(), value);
        } else if out.command.is_none() {
            out.command = Some(a);
        } else {
            out.positional.push(a);
        }
    }
    out
}

impl Args {
    /// A string flag with a default.
    pub fn str_flag(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// An integer flag with a default; a malformed value is a typed
    /// usage error.
    pub fn int_flag(&self, key: &str, default: i64) -> Result<i64, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                CliError::usage(format!("error: --{key} expects an integer, got `{v}`"))
            }),
        }
    }

    /// A boolean switch.
    pub fn switch(&self, key: &str) -> bool {
        self.flags.get(key).map(String::as_str) == Some("true")
    }

    /// The observability output flags shared by `simulate`, `check`,
    /// `explore`, and `profile`.
    pub fn obs_flags(&self) -> ObsFlags {
        ObsFlags {
            metrics_out: self.flags.get("metrics-out").cloned(),
            trace_out: self.flags.get("trace-out").cloned(),
            flame_out: self.flags.get("flame-out").cloned(),
        }
    }

    /// A comma-separated integer list flag (e.g. `--pi 1,1,1`); a
    /// malformed value is a typed usage error.
    pub fn int_list_flag(&self, key: &str) -> Result<Option<Vec<i64>>, CliError> {
        let Some(v) = self.flags.get(key) else {
            return Ok(None);
        };
        let parsed: Result<Vec<i64>, _> = v.split(',').map(str::trim).map(str::parse).collect();
        parsed.map(Some).map_err(|_| {
            CliError::usage(format!(
                "error: --{key} expects comma-separated integers, got `{v}`"
            ))
        })
    }
}

/// Output-artifact flags every observability-producing subcommand
/// accepts with the same names: `--metrics-out FILE`, `--trace-out
/// FILE`, `--flame-out FILE`. Parsed in one place so the flag surface
/// stays uniform across the CLI.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsFlags {
    /// Counters/spans/simulator metrics JSON destination.
    pub metrics_out: Option<String>,
    /// Chrome/Perfetto trace JSON destination.
    pub trace_out: Option<String>,
    /// Collapsed-stack (flamegraph) span export destination.
    pub flame_out: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        parse(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn subcommand_and_flags() {
        let a = args(&[
            "simulate",
            "--workload",
            "matvec",
            "--size",
            "32",
            "--contention",
        ]);
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.str_flag("workload", "l1"), "matvec");
        assert_eq!(a.int_flag("size", 4), Ok(32));
        assert!(a.switch("contention"));
        assert!(!a.switch("batch"));
    }

    #[test]
    fn defaults_apply() {
        let a = args(&["partition"]);
        assert_eq!(a.str_flag("workload", "l1"), "l1");
        assert_eq!(a.int_flag("size", 4), Ok(4));
        assert_eq!(a.int_list_flag("pi"), Ok(None));
    }

    #[test]
    fn int_list() {
        let a = args(&["partition", "--pi", "1, 1,1"]);
        assert_eq!(a.int_list_flag("pi"), Ok(Some(vec![1, 1, 1])));
    }

    #[test]
    fn malformed_numbers_are_typed_usage_errors() {
        let a = args(&["simulate", "--size", "huge", "--pi", "1,x"]);
        let e = a.int_flag("size", 4).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(matches!(e, CliError::Usage(_)));
        let e = a.int_list_flag("pi").unwrap_err();
        assert!(matches!(e, CliError::Usage(_)));
    }

    #[test]
    fn positional_args() {
        let a = args(&["repro", "fig3", "table1"]);
        assert_eq!(a.command.as_deref(), Some("repro"));
        assert_eq!(a.positional, vec!["fig3", "table1"]);
    }

    #[test]
    fn obs_flags_parse_uniformly() {
        let a = args(&["profile", "--metrics-out", "m.json", "--flame-out", "f.txt"]);
        assert_eq!(
            a.obs_flags(),
            ObsFlags {
                metrics_out: Some("m.json".into()),
                trace_out: None,
                flame_out: Some("f.txt".into()),
            }
        );
        assert_eq!(args(&["check"]).obs_flags(), ObsFlags::default());
    }

    #[test]
    fn trailing_switch_and_greedy_value_binding() {
        let a = args(&["run", "--verbose"]);
        assert!(a.switch("verbose"));
        assert_eq!(a.command.as_deref(), Some("run"));
        // A flag greedily binds the next bare word as its value — a
        // leading switch therefore swallows the subcommand; this is the
        // documented grammar, so switches belong after the subcommand.
        let b = args(&["--verbose", "run"]);
        assert_eq!(b.command, None);
        assert_eq!(b.str_flag("verbose", ""), "run");
    }
}
