//! The executable form of a partitioned and mapped loop nest.

use loom_partition::Partitioning;

/// A dependence-graph program ready for simulation: tasks with
/// hyperplane priorities, dependence arcs, and a processor assignment.
///
/// Two granularities produce programs: *fine* (one task per iteration,
/// [`Program::from_partitioning`]) and *coarse* (one task per
/// block × hyperplane step with per-step aggregated messages,
/// [`Program::from_partitioning_coarse`] — the execution model §IV's
/// cost analysis assumes).
#[derive(Clone, Debug)]
pub struct Program {
    /// Hyperplane step of each task, used as the dispatch priority.
    pub step_of: Vec<i64>,
    /// Dependence arcs `(src, dst)` by task id.
    pub arcs: Vec<(u32, u32)>,
    /// Words carried per arc, aligned with `arcs` (fine-grain programs
    /// use 1 and let `SimConfig::words_per_arc` scale it).
    pub arc_words: Vec<u64>,
    /// Processor of each task.
    pub proc_of: Vec<u32>,
    /// Per-task flop counts.
    pub task_flops: Vec<u64>,
    /// Flops per task for uniform (fine-grain) programs — kept for the
    /// paper's `2W·t_calc` accounting; equals `task_flops[i]` there.
    pub flops: u64,
    /// Number of processors.
    pub num_procs: usize,
}

impl Program {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.step_of.len()
    }

    /// `true` iff there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.step_of.is_empty()
    }

    /// Build a program from a partitioning and a block→processor
    /// assignment (`proc_of_block[b]` < `num_procs`).
    ///
    /// Panics if the assignment length differs from the block count.
    pub fn from_partitioning(
        p: &Partitioning,
        proc_of_block: &[usize],
        num_procs: usize,
        flops: u64,
    ) -> Program {
        assert_eq!(
            proc_of_block.len(),
            p.num_blocks(),
            "assignment/blocks mismatch"
        );
        assert!(
            proc_of_block.iter().all(|&x| x < num_procs),
            "assignment names processor outside machine"
        );
        let cs = p.structure();
        let pi = p.time_fn();
        let step_of: Vec<i64> = cs.points().iter().map(|pt| pi.time_of(pt)).collect();
        let mut arcs = Vec::new();
        for id in 0..cs.len() {
            for (succ, _) in cs.successors(id) {
                arcs.push((id as u32, succ as u32));
            }
        }
        let proc_of: Vec<u32> = (0..cs.len())
            .map(|id| proc_of_block[p.block_of(id)] as u32)
            .collect();
        let n = step_of.len();
        let n_arcs = arcs.len();
        Program {
            step_of,
            arcs,
            arc_words: vec![1; n_arcs],
            proc_of,
            task_flops: vec![flops; n],
            flops,
            num_procs,
        }
    }

    /// Build a *coarse-grain* program: one task per (block, hyperplane
    /// step) executing all of the block's iterations at that step, with
    /// cross-block dependences aggregated into one arc per
    /// (src task, dst task) whose word count is the number of underlying
    /// iteration-level arcs — the "send the step's boundary values
    /// together" model of the paper's §IV analysis.
    pub fn from_partitioning_coarse(
        p: &Partitioning,
        proc_of_block: &[usize],
        num_procs: usize,
        flops: u64,
    ) -> Program {
        assert_eq!(
            proc_of_block.len(),
            p.num_blocks(),
            "assignment/blocks mismatch"
        );
        assert!(proc_of_block.iter().all(|&x| x < num_procs));
        let cs = p.structure();
        let pi = p.time_fn();

        // Task = (block, step) with at least one iteration.
        use std::collections::BTreeMap;
        let mut task_of: BTreeMap<(usize, i64), u32> = BTreeMap::new();
        let mut step_of: Vec<i64> = Vec::new();
        let mut proc_of: Vec<u32> = Vec::new();
        let mut task_flops: Vec<u64> = Vec::new();
        let mut point_task: Vec<u32> = vec![0; cs.len()];
        #[allow(clippy::needless_range_loop)]
        for id in 0..cs.len() {
            let b = p.block_of(id);
            let s = pi.time_of(&cs.points()[id]);
            let t = *task_of.entry((b, s)).or_insert_with(|| {
                step_of.push(s);
                proc_of.push(proc_of_block[b] as u32);
                task_flops.push(0);
                (step_of.len() - 1) as u32
            });
            task_flops[t as usize] += flops;
            point_task[id] = t;
        }

        // Aggregate iteration arcs into task arcs with word counts;
        // same-task arcs vanish (intra-task sequencing).
        let mut agg: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for id in 0..cs.len() {
            for (succ, _) in cs.successors(id) {
                let (a, b) = (point_task[id], point_task[succ]);
                if a != b {
                    *agg.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
        let mut arcs = Vec::with_capacity(agg.len());
        let mut arc_words = Vec::with_capacity(agg.len());
        for ((a, b), w) in agg {
            debug_assert!(
                step_of[a as usize] < step_of[b as usize],
                "coarse arcs must advance in time"
            );
            arcs.push((a, b));
            // Same-processor arcs carry no words (sequencing only).
            arc_words.push(if proc_of[a as usize] == proc_of[b as usize] {
                0
            } else {
                w
            });
        }

        Program {
            step_of,
            arcs,
            arc_words,
            proc_of,
            task_flops,
            flops,
            num_procs,
        }
    }

    /// Build a program directly from parts (for synthetic tests).
    pub fn from_parts(
        step_of: Vec<i64>,
        arcs: Vec<(u32, u32)>,
        proc_of: Vec<u32>,
        flops: u64,
        num_procs: usize,
    ) -> Program {
        assert_eq!(step_of.len(), proc_of.len(), "ragged program");
        assert!(
            arcs.iter()
                .all(|&(a, b)| (a as usize) < step_of.len() && (b as usize) < step_of.len()),
            "arc endpoint out of range"
        );
        assert!(proc_of.iter().all(|&p| (p as usize) < num_procs));
        let n = step_of.len();
        let n_arcs = arcs.len();
        Program {
            step_of,
            arcs,
            arc_words: vec![1; n_arcs],
            proc_of,
            task_flops: vec![flops; n],
            flops,
            num_procs,
        }
    }

    /// Number of arcs crossing processors (each becomes a message when
    /// unbatched).
    pub fn remote_arcs(&self) -> usize {
        self.arcs
            .iter()
            .filter(|&&(a, b)| self.proc_of[a as usize] != self.proc_of[b as usize])
            .count()
    }

    /// Total flops across all tasks.
    pub fn total_flops(&self) -> u64 {
        self.task_flops.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_hyperplane::TimeFn;
    use loom_loopir::IterSpace;
    use loom_partition::{partition, PartitionConfig};

    fn l1() -> Partitioning {
        partition(
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![vec![0, 1], vec![1, 1], vec![1, 0]],
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn l1_program_structure() {
        let p = l1();
        // Two processors, two blocks each.
        let prog = Program::from_partitioning(&p, &[0, 0, 1, 1], 2, 3);
        assert_eq!(prog.len(), 16);
        assert_eq!(prog.arcs.len(), 33);
        assert_eq!(prog.flops, 3);
        // All blocks on one proc → remote arcs = 0.
        let solo = Program::from_partitioning(&p, &[0, 0, 0, 0], 1, 3);
        assert_eq!(solo.remote_arcs(), 0);
        // One block per proc → remote = the 12 interblock arcs.
        let spread = Program::from_partitioning(&p, &[0, 1, 2, 3], 4, 3);
        assert_eq!(spread.remote_arcs(), 12);
    }

    #[test]
    fn coarse_program_aggregates() {
        let p = l1();
        let fine = Program::from_partitioning(&p, &[0, 0, 1, 1], 2, 3);
        let coarse = Program::from_partitioning_coarse(&p, &[0, 0, 1, 1], 2, 3);
        // A corollary of Theorem 1: a Sheu–Tai block holds at most one
        // iteration per hyperplane step, so (block, step) tasks are in
        // bijection with iterations — coarse task count equals fine.
        assert_eq!(coarse.len(), fine.len());
        assert_eq!(coarse.total_flops(), fine.total_flops());
        // Same-processor arcs were demoted to zero-word sequencing.
        assert!(coarse
            .arcs
            .iter()
            .zip(&coarse.arc_words)
            .all(|(&(a, b), &w)| {
                (coarse.proc_of[a as usize] == coarse.proc_of[b as usize]) == (w == 0)
            }));
        // Coarse remote arcs aggregate multiple words.
        let remote_words: u64 = coarse
            .arcs
            .iter()
            .zip(&coarse.arc_words)
            .filter(|(&(a, b), _)| coarse.proc_of[a as usize] != coarse.proc_of[b as usize])
            .map(|(_, &w)| w)
            .sum();
        // Total remote words equal the fine-grain remote arc count.
        assert_eq!(remote_words as usize, fine.remote_arcs());
        // Arcs always advance in step.
        for &(a, b) in &coarse.arcs {
            assert!(coarse.step_of[a as usize] < coarse.step_of[b as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "assignment/blocks mismatch")]
    fn wrong_assignment_length_panics() {
        Program::from_partitioning(&l1(), &[0, 1], 2, 1);
    }

    #[test]
    #[should_panic(expected = "arc endpoint out of range")]
    fn bad_arc_panics() {
        Program::from_parts(vec![0, 1], vec![(0, 2)], vec![0, 0], 1, 1);
    }
}
