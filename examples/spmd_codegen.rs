//! SPMD code generation: emit per-processor programs with explicit
//! message passing for the paper's loop (L1), show the generated
//! pseudo-code, run it under the blocking interpreter, and verify the
//! gathered result against the sequential oracle.
//!
//! ```text
//! cargo run --example spmd_codegen
//! ```

use loom_codegen::render::render;
use loom_codegen::{generate, run};
use loom_exec::memory::address_hash_init;
use loom_exec::{equivalent, sequential};
use loom_hyperplane::TimeFn;
use loom_mapping::map_partitioning;
use loom_partition::{partition, PartitionConfig};

fn main() {
    let w = loom_workloads::l1::workload(4);
    let p = partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .expect("L1 partitions");
    let mapping = map_partitioning(&p, 1).expect("4 blocks onto 2 processors");

    let cg = generate(&w.nest, &p, mapping.assignment(), mapping.cube().len())
        .expect("L1 is within the value-routable class");
    println!("{}", w.nest);
    println!(
        "generated SPMD program ({} processors):\n",
        cg.program.num_procs()
    );
    println!("{}", render(&w.nest, &cg));
    println!(
        "ops: {} computes, {} messages; unmatched sends/recvs: {}",
        cg.program.num_computes(),
        cg.program.num_messages(),
        cg.program.unmatched_messages().len()
    );

    let result = run(&w.nest, &cg, &address_hash_init).expect("no deadlock");
    let serial = sequential(&w.nest, &address_hash_init);
    match equivalent(&result.gathered, &serial) {
        Ok(()) => println!(
            "\nverified: gathered result bit-identical to sequential execution \
             ({} messages, {} words exchanged)",
            result.messages, result.words
        ),
        Err(d) => println!("\nDIVERGED: {d:?}"),
    }
}
