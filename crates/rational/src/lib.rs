//! Exact rational arithmetic and small dense linear algebra over ℚ.
//!
//! The Sheu–Tai partitioning method projects integer iteration points onto
//! the zero-hyperplane of a time transformation Π. Projected coordinates are
//! rational (e.g. the projected points of the paper's Example 1 include
//! (−3/2, 3/2)), and the grouping phase needs *exact* answers to questions
//! such as "what is the least positive integer r with r·d^p ∈ ℤⁿ?" and
//! "are these projected dependence vectors linearly independent?".
//! Floating point cannot answer those questions reliably, so this crate
//! provides a compact, overflow-checked implementation of
//!
//! * [`Ratio`] — a normalized fraction of two `i64`s with `i128`-widened
//!   intermediate arithmetic,
//! * [`QVec`] — a rational vector with the projection / lattice helpers the
//!   partitioner needs,
//! * [`QMat`] — a dense rational matrix with Gaussian elimination, rank,
//!   solving, and nullspace extraction.
//!
//! Everything here is deterministic and panics only on arithmetic overflow
//! (beyond ±2⁶³-scale numerators), which for the loop sizes this project
//! handles is an internal invariant violation rather than a user error.

#![deny(missing_docs)]

pub mod int;
pub mod intlinalg;
pub mod linalg;
pub mod matrix;
pub mod ratio;
pub mod vector;

pub use matrix::QMat;
pub use ratio::Ratio;
pub use vector::{IVec, QVec};
