//! Phase II of Algorithm 2: allocating clusters to hypercube processors,
//! plus the end-to-end mapping entry points.

use crate::bisect::{form_clusters, ClusterFormation};
use crate::hypercube::Hypercube;
use crate::Error;
use loom_partition::Partitioning;
use loom_rational::Ratio;

/// A placement of blocks onto hypercube processors.
#[derive(Clone, Debug)]
pub struct Mapping {
    cube: Hypercube,
    proc_of_block: Vec<usize>,
    formation: ClusterFormation,
}

impl Mapping {
    /// The target machine.
    pub fn cube(&self) -> Hypercube {
        self.cube
    }

    /// Processor of block `b`.
    pub fn proc_of(&self, b: usize) -> usize {
        self.proc_of_block[b]
    }

    /// The full block → processor table.
    pub fn assignment(&self) -> &[usize] {
        &self.proc_of_block
    }

    /// The underlying cluster formation (for inspection / reporting).
    pub fn formation(&self) -> &ClusterFormation {
        &self.formation
    }

    /// Blocks assigned to each processor, indexed by processor number.
    pub fn blocks_per_proc(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.cube.len()];
        for (b, &p) in self.proc_of_block.iter().enumerate() {
            out[p].push(b);
        }
        out
    }
}

/// Map blocks with explicit bisection-direction coordinates onto an
/// `n`-cube: Phase I bisection, then Phase II Gray-code allocation
/// ("every cluster is allocated to the processor whose binary number is
/// the same as that of the cluster").
pub fn map_positions(positions: &[Vec<Ratio>], cube_dim: usize) -> Result<Mapping, Error> {
    let formation = form_clusters(positions, cube_dim)?;
    let mut proc_of_block = vec![0usize; positions.len()];
    for (ci, cluster) in formation.clusters.iter().enumerate() {
        let proc = formation.addresses[ci] as usize;
        for &b in cluster {
            proc_of_block[b] = proc;
        }
    }
    Ok(Mapping {
        cube: Hypercube::new(cube_dim),
        proc_of_block,
        formation,
    })
}

/// Map a partitioning onto an `n`-cube using the grouping and auxiliary
/// grouping vectors as bisection directions (the set Ω of Algorithm 2).
///
/// Each block's coordinate along direction ḡ is its group base vertex
/// dotted with ḡ. In the degenerate case with no grouping vectors the
/// block index itself is the single direction.
pub fn map_partitioning(p: &Partitioning, cube_dim: usize) -> Result<Mapping, Error> {
    let omega = p.vectors().omega();
    let positions: Vec<Vec<Ratio>> = if omega.is_empty() {
        (0..p.num_blocks())
            .map(|b| vec![Ratio::int(b as i64)])
            .collect()
    } else {
        let dirs: Vec<_> = omega
            .iter()
            .map(|&i| p.projected().deps()[i].clone())
            .collect();
        p.grouping()
            .groups
            .iter()
            .map(|g| dirs.iter().map(|d| g.base.dot(d)).collect())
            .collect()
    };
    map_positions(&positions, cube_dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_hyperplane::TimeFn;
    use loom_loopir::IterSpace;
    use loom_partition::{partition, PartitionConfig};

    fn matvec(m: i64) -> Partitioning {
        partition(
            IterSpace::rect(&[m, m]).unwrap(),
            vec![vec![1, 0], vec![0, 1]],
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn matvec_blocks_onto_2cube() {
        let p = matvec(16); // 16 blocks
        let m = map_partitioning(&p, 2).unwrap();
        assert_eq!(m.cube().len(), 4);
        // Every block placed; processors get 4 blocks each.
        let per = m.blocks_per_proc();
        assert!(per.iter().all(|b| b.len() == 4));
        assert_eq!(m.assignment().len(), 16);
    }

    #[test]
    fn neighboring_blocks_on_same_or_adjacent_procs() {
        // Matvec's blocks form a 1-D chain; after Gray-coded bisection,
        // consecutive blocks must sit on the same or adjacent processors.
        let p = matvec(16);
        let m = map_partitioning(&p, 2).unwrap();
        // Order blocks along the chain by their base coordinate.
        let omega = p.vectors().omega();
        let dir = p.projected().deps()[omega[0]].clone();
        let mut order: Vec<usize> = (0..p.num_blocks()).collect();
        order.sort_by_key(|&b| p.grouping().groups[b].base.dot(&dir));
        for w in order.windows(2) {
            let (pa, pb) = (m.proc_of(w[0]), m.proc_of(w[1]));
            assert!(
                m.cube().distance(pa, pb) <= 1,
                "chain neighbors {w:?} on procs {pa},{pb}"
            );
        }
    }

    #[test]
    fn degenerate_partitioning_maps_by_block_index() {
        let p = partition(
            IterSpace::rect(&[8, 8]).unwrap(),
            vec![vec![1, 1]],
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap();
        assert!(p.vectors().omega().is_empty());
        let m = map_partitioning(&p, 1).unwrap();
        assert_eq!(m.cube().len(), 2);
        let per = m.blocks_per_proc();
        assert_eq!(per[0].len() + per[1].len(), p.num_blocks());
    }

    #[test]
    fn cube_too_large_propagates() {
        let p = matvec(4); // 4 blocks
        assert!(matches!(
            map_partitioning(&p, 3),
            Err(Error::CubeTooLarge { .. })
        ));
    }
}
