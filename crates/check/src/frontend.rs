//! Bridge from the resilient front end's `LP0NN` diagnostics
//! ([`loom_loopir::front`]) to the checker's [`Report`] machinery, so
//! parse errors get the same human/JSON/SARIF renderings and `--allow`
//! suppression as every other rule.

use crate::diag::{Diagnostic, Report, RuleId, Span};
use loom_loopir::front::{FrontDiag, LpCode};

/// The checker rule id corresponding to a front-end code.
pub fn rule_for(code: LpCode) -> RuleId {
    match code {
        LpCode::InvalidChar => RuleId::LexInvalidChar,
        LpCode::IntOverflow => RuleId::LexIntOverflow,
        LpCode::Expected => RuleId::ParseExpected,
        LpCode::UnknownIndex => RuleId::ParseUnknownIndex,
        LpCode::NonAffine => RuleId::ParseNonAffine,
        LpCode::BadStep => RuleId::ParseBadStep,
        LpCode::InvalidNest => RuleId::ParseInvalidNest,
        LpCode::LimitExceeded => RuleId::ResourceLimit,
    }
}

/// Convert the front end's recovered diagnostics into a [`Report`].
/// Every front-end diagnostic enters as an `Error`; `Report::allow`
/// can downgrade chosen codes afterwards.
pub fn report_from_parse(diags: &[FrontDiag]) -> Report {
    Report::from_diagnostics(
        diags
            .iter()
            .map(|d| {
                Diagnostic::error(
                    rule_for(d.code),
                    Span::Source {
                        line: d.line,
                        col: d.col,
                        offset: d.start,
                        len: d.end.saturating_sub(d.start),
                    },
                    d.message.clone(),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_codes_map_onto_matching_rule_ids() {
        for code in LpCode::all() {
            let rule = rule_for(code);
            assert_eq!(rule.code(), code.code(), "{code:?}");
            assert_eq!(rule.name(), code.name(), "{code:?}");
        }
    }

    #[test]
    fn report_carries_spans_and_allows() {
        let out = loom_loopir::parse_nest_recovering(
            "t",
            "for i = 0 to 3\n A[q] = 1;\n B[i*i] = 2;\n C[i] = 3;\n",
        );
        let mut report = report_from_parse(&out.diags);
        assert!(report.has_errors());
        let human = report.render_human();
        assert!(
            human.contains("error[LP004] 2:4: unknown loop index `q`"),
            "{human}"
        );
        assert!(human.contains("error[LP005]"), "{human}");
        report.allow(&["LP004".into(), "LP005".into()]);
        assert!(!report.has_errors());
    }
}
