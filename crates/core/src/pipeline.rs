//! The end-to-end pipeline: loop nest → dependences → Π → blocks →
//! hypercube mapping → simulated execution.

use loom_hyperplane::{SearchConfig, TimeFn};
use loom_loopir::{DepOptions, LoopNest, Point};
use loom_machine::trace::{verify_trace, TraceViolation};
use loom_machine::{
    simulate_scratch, simulate_with_faults_scratch, FaultConfig, MachineParams, Program, SimConfig,
    SimReport, SimScratch, Topology,
};
use loom_mapping::other_targets::{map_partitioning_mesh, map_partitioning_ring};
use loom_mapping::{map_partitioning, Mapping};
use loom_obs::{Json, Recorder};
use loom_partition::comm::comm_stats;
use loom_partition::{partition, CommStats, PartitionConfig, Partitioning, Tig};

/// The machine the blocks are mapped onto.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// Binary n-cube (the paper's Algorithm 2).
    Hypercube(usize),
    /// 2-D mesh (extension; rows × cols must be powers of two).
    Mesh {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Ring (extension; length must be a power of two).
    Ring(usize),
}

impl Target {
    /// The matching simulator topology.
    pub fn topology(&self) -> Topology {
        match *self {
            Target::Hypercube(d) => Topology::Hypercube(d),
            Target::Mesh { rows, cols } => Topology::Mesh { rows, cols },
            Target::Ring(n) => Topology::Ring(n),
        }
    }

    /// Number of processors.
    pub fn len(&self) -> usize {
        self.topology().len()
    }

    /// `true` iff the machine has no processors (impossible by
    /// construction; included for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Machine-simulation options for the pipeline (the topology is always
/// the hypercube selected by `cube_dim`).
#[derive(Clone, Debug)]
pub struct MachineOptions {
    /// Timing parameters.
    pub params: MachineParams,
    /// Words per dependence arc.
    pub words_per_arc: u64,
    /// Merge per-task same-destination messages.
    pub batch_messages: bool,
    /// Model per-link contention in the interconnect.
    pub link_contention: bool,
    /// Record the execution trace.
    pub record_trace: bool,
    /// Collect rich simulator telemetry
    /// ([`loom_machine::SimMetrics`]).
    pub collect_metrics: bool,
    /// Check the execution trace against the program after simulation
    /// (implies trace recording) and fail the pipeline with
    /// [`PipelineError::Trace`] on any violation.
    pub validate_trace: bool,
    /// Run the `loom-check` static verifier over the pipeline's
    /// artifacts after mapping (before simulation) and fail with
    /// [`PipelineError::StaticCheck`] on any error-severity diagnostic.
    pub static_check: bool,
    /// Run the static check with the symbolic engine
    /// ([`loom_check::CheckMode::Symbolic`]): `LC009`–`LC012` prove
    /// legality, Lemma 1, and the communication protocol in time
    /// independent of the iteration-space extent, instead of the
    /// enumerative point-and-message walk. Only consulted when
    /// `static_check` is set.
    pub symbolic_check: bool,
    /// Run the static check with the interleaving engine
    /// ([`loom_check::CheckMode::Interleaving`]): `LC015` bounds every
    /// op index and access image of the generated program, then
    /// `LC013`/`LC014` model-check deadlock-freedom and determinacy
    /// over **all** message interleavings with dynamic partial-order
    /// reduction. Only consulted when `static_check` is set; takes
    /// precedence over `symbolic_check`.
    pub interleave_check: bool,
    /// Inject faults during simulation: the deterministic plan plus the
    /// recovery policy ([`loom_machine::fault`]). `None` simulates the
    /// paper's perfectly reliable machine.
    pub faults: Option<FaultConfig>,
}

impl Default for MachineOptions {
    fn default() -> MachineOptions {
        MachineOptions {
            params: MachineParams::classic_1991(),
            words_per_arc: 1,
            batch_messages: false,
            link_contention: false,
            record_trace: false,
            collect_metrics: false,
            validate_trace: false,
            static_check: false,
            symbolic_check: false,
            interleave_check: false,
            faults: None,
        }
    }
}

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Dependence-extraction options.
    pub dep_options: DepOptions,
    /// Admit nests the uniform front end rejects through certified
    /// uniformization (`LC016`): variable-distance dependences are
    /// folded into a synthesized constant-vector basis, the cover is
    /// proven by the Presburger core, and the folded set drives the
    /// rest of the pipeline. An uncertifiable nest is rejected with
    /// the full report as [`PipelineError::StaticCheck`]. Disable to
    /// get the seed behavior (every non-uniform nest is a
    /// [`PipelineError::Deps`] rejection).
    pub uniformize: bool,
    /// Fixed time function; `None` searches for the optimal one.
    pub time_fn: Option<Vec<i64>>,
    /// Search bounds when `time_fn` is `None`.
    pub search: SearchConfig,
    /// Algorithm 1 options.
    pub partition: PartitionConfig,
    /// Hypercube dimension `n` (the machine has `2ⁿ` processors).
    /// Ignored when `target` is set.
    pub cube_dim: usize,
    /// Explicit machine target; `None` uses `Hypercube(cube_dim)`.
    pub target: Option<Target>,
    /// Simulate on the machine model; `None` stops after mapping.
    pub machine: Option<MachineOptions>,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            dep_options: DepOptions::default(),
            uniformize: true,
            time_fn: None,
            search: SearchConfig::default(),
            partition: PartitionConfig::default(),
            cube_dim: 2,
            target: None,
            machine: Some(MachineOptions::default()),
        }
    }
}

/// The block placement, for whichever machine shape was targeted.
#[derive(Clone, Debug)]
pub enum Placement {
    /// Algorithm 2's hypercube mapping.
    Hypercube(Mapping),
    /// A mesh/ring mapping (extension targets).
    Other(loom_mapping::TargetMapping),
}

impl Placement {
    /// The block → processor table.
    pub fn assignment(&self) -> &[usize] {
        match self {
            Placement::Hypercube(m) => m.assignment(),
            Placement::Other(m) => m.assignment(),
        }
    }

    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        match self {
            Placement::Hypercube(m) => m.cube().len(),
            Placement::Other(m) => m.num_procs(),
        }
    }

    /// The hypercube mapping, when the target was a hypercube.
    pub fn as_hypercube(&self) -> Option<&Mapping> {
        match self {
            Placement::Hypercube(m) => Some(m),
            Placement::Other(_) => None,
        }
    }
}

/// Everything the pipeline produced.
#[derive(Clone, Debug)]
pub struct PipelineOutput {
    /// The extracted dependence set `D`.
    pub deps: Vec<Point>,
    /// The time transformation Π.
    pub pi: TimeFn,
    /// Algorithm 1's partitioning.
    pub partitioning: Partitioning,
    /// Interblock communication statistics.
    pub comm: CommStats,
    /// The Task Interaction Graph of the blocks.
    pub tig: Tig,
    /// Algorithm 2's block → processor mapping.
    pub mapping: Mapping,
    /// The placement on the configured target (same as `mapping` for
    /// hypercube targets).
    pub placement: Placement,
    /// The machine target used.
    pub target: Target,
    /// Fine-grain statement schedule offsets δ_s (see
    /// [`loom_hyperplane::offsets`]): statement `s` of iteration `x`
    /// runs at `Π·x + δ_s`. All zeros for single-statement bodies and
    /// nests without intra-iteration dependences.
    pub stmt_offsets: Vec<i64>,
    /// The simulated execution, when requested.
    pub sim: Option<SimReport>,
}

impl PipelineOutput {
    /// The simulation report, as a typed error instead of a panic when
    /// the pipeline was configured with `machine: None`.
    pub fn sim_report(&self) -> Result<&SimReport, PipelineError> {
        self.sim.as_ref().ok_or(PipelineError::NoSimulation)
    }
}

/// A pipeline failure, wrapping the failing stage's error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// Dependence extraction failed (non-uniform nest).
    Deps(loom_loopir::Error),
    /// No legal/valid time transformation.
    TimeFn(loom_hyperplane::Error),
    /// Partitioning failed.
    Partition(loom_partition::Error),
    /// Mapping failed.
    Mapping(loom_mapping::Error),
    /// Simulation failed.
    Sim(loom_machine::sim::SimError),
    /// The simulated execution trace violated a structural property
    /// (only produced when
    /// [`MachineOptions::validate_trace`] is set).
    Trace(Vec<TraceViolation>),
    /// The `loom-check` static verifier reported error-severity
    /// diagnostics (only produced when
    /// [`MachineOptions::static_check`] is set). The full report —
    /// warnings included — rides along for rendering.
    StaticCheck(loom_check::Report),
    /// A simulation-derived artifact was requested from a pipeline
    /// configured with `machine: None`, so no simulation ever ran.
    NoSimulation,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Deps(e) => write!(f, "dependence extraction: {e}"),
            PipelineError::TimeFn(e) => write!(f, "time transformation: {e}"),
            PipelineError::Partition(e) => write!(f, "partitioning: {e}"),
            PipelineError::Mapping(e) => write!(f, "mapping: {e}"),
            PipelineError::Sim(e) => write!(f, "simulation: {e}"),
            PipelineError::Trace(v) => {
                write!(f, "trace validation: {} violation(s): {v:?}", v.len())
            }
            PipelineError::StaticCheck(report) => {
                write!(f, "static check: {}", report.render_human().trim_end())
            }
            PipelineError::NoSimulation => {
                write!(
                    f,
                    "no simulation: the pipeline ran with machine options disabled"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// The pipeline driver.
#[derive(Clone, Debug)]
pub struct Pipeline {
    nest: LoopNest,
}

impl Pipeline {
    /// Wrap a loop nest.
    pub fn new(nest: LoopNest) -> Pipeline {
        Pipeline { nest }
    }

    /// The nest being compiled.
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    /// Run all stages.
    pub fn run(&self, config: &PipelineConfig) -> Result<PipelineOutput, PipelineError> {
        self.run_with(config, &Recorder::disabled())
    }

    /// [`run`](Pipeline::run) with instrumentation: when `recorder` is
    /// enabled, each stage records a `pipeline.<stage>` span, and
    /// structural counters (`pipeline.deps`, `pipeline.blocks`,
    /// `pipeline.interblock_arcs`) are filled in along the way.
    pub fn run_with(
        &self,
        config: &PipelineConfig,
        recorder: &Recorder,
    ) -> Result<PipelineOutput, PipelineError> {
        let out = {
            let _total = recorder.span("pipeline.total");
            self.stage_partition(config, recorder)?
                .complete_with(config, recorder, None)?
        };
        recorder.flight().emit(
            "pipeline.done",
            &[
                ("nest", Json::from(self.nest.name())),
                ("blocks", Json::from(out.partitioning.num_blocks())),
                ("procs", Json::from(out.placement.num_procs())),
            ],
        );
        Ok(out)
    }

    /// Run stages 1–3 (dependences → Π → statement offsets →
    /// partitioning + TIG): the prefix of the pipeline that depends
    /// only on the nest, the time function, and the grouping choice —
    /// never on the machine. The returned [`PartitionedStage`] can be
    /// completed once per machine size without re-running any of it.
    pub fn stage_partition(
        &self,
        config: &PipelineConfig,
        recorder: &Recorder,
    ) -> Result<PartitionedStage<'_>, PipelineError> {
        // 1. Dependence analysis (with certified uniformization of
        // non-uniform nests when enabled).
        let deps = {
            let _s = recorder.span("pipeline.deps");
            admitted_dependence_vectors(
                &self.nest,
                config.dep_options,
                config.uniformize,
                recorder,
            )?
        };
        self.stage_partition_with_deps(config, recorder, deps)
    }

    /// The symbolic-cost stage: derive a closed-form `T_exec` for this
    /// nest's configuration over the size family it belongs to
    /// (`family(target_size)` must equal the wrapped nest), instead of
    /// simulating at the target size. Resumable: the [`ProbeCache`]
    /// carries every probe partitioning and probe simulation across
    /// calls, so re-deriving for another cube dimension or a larger
    /// target (same Π and grouping) reuses all of them. A
    /// [`Derivation::Unknown`] result means the caller should fall back
    /// to [`run`](Pipeline::run) — always correct, just not O(1).
    ///
    /// [`ProbeCache`]: crate::symbolic_cost::ProbeCache
    /// [`Derivation::Unknown`]: crate::symbolic_cost::Derivation::Unknown
    pub fn stage_symbolic_cost(
        &self,
        family: &dyn Fn(i64) -> LoopNest,
        target_size: i64,
        config: &PipelineConfig,
        opts: &crate::symbolic_cost::DeriveOptions,
        cache: &mut crate::symbolic_cost::ProbeCache,
        recorder: &Recorder,
    ) -> Result<crate::symbolic_cost::Derivation, PipelineError> {
        let _s = recorder.span("pipeline.symbolic_cost");
        let deps = admitted_dependence_vectors(
            &self.nest,
            config.dep_options,
            config.uniformize,
            recorder,
        )?;
        let pi = match &config.time_fn {
            Some(coeffs) => {
                let pi = TimeFn::new(coeffs.clone());
                pi.check_legal(&deps).map_err(PipelineError::TimeFn)?;
                coeffs.clone()
            }
            None => loom_hyperplane::find_optimal_with(
                &deps,
                self.nest.space(),
                config.search,
                recorder,
            )
            .map_err(PipelineError::TimeFn)?
            .coeffs()
            .to_vec(),
        };
        let machine = config.machine.clone().unwrap_or_default();
        let derived = crate::symbolic_cost::derive(
            family,
            &deps,
            &pi,
            &config.partition,
            config.cube_dim,
            target_size,
            &machine,
            opts,
            cache,
        );
        recorder.add("pipeline.symbolic_probe_sims", cache.sims());
        recorder.add("pipeline.symbolic_probe_points", cache.points_spent());
        Ok(derived)
    }

    /// [`stage_partition`](Pipeline::stage_partition) with the
    /// dependence set already extracted — exploration hoists extraction
    /// out of its candidate loop and hands the shared set in here.
    pub fn stage_partition_with_deps(
        &self,
        config: &PipelineConfig,
        recorder: &Recorder,
        deps: Vec<Point>,
    ) -> Result<PartitionedStage<'_>, PipelineError> {
        recorder.add("pipeline.deps", deps.len() as u64);

        // 2. Time transformation (hyperplane method).
        let pi = {
            let _s = recorder.span("pipeline.time_fn");
            match &config.time_fn {
                Some(coeffs) => {
                    let pi = TimeFn::new(coeffs.clone());
                    pi.check_legal(&deps).map_err(PipelineError::TimeFn)?;
                    pi
                }
                None => loom_hyperplane::find_optimal_with(
                    &deps,
                    self.nest.space(),
                    config.search,
                    recorder,
                )
                .map_err(PipelineError::TimeFn)?,
            }
        };

        // 2b. Statement-level offsets (fine-grain schedule): derived
        // from the full per-statement dependence records including
        // intra-iteration ones.
        let stmt_offsets = {
            let _s = recorder.span("pipeline.stmt_offsets");
            let intra_opts = DepOptions {
                include_intra: true,
                ..config.dep_options
            };
            let records = match loom_loopir::deps::extract_dependences(&self.nest, intra_opts) {
                Ok(records) => records,
                // An admitted uniformized nest trips the uniform
                // extractor again here; its folded dependence records
                // (already certified during stage 1) drive the offsets.
                Err(loom_loopir::Error::NonUniform { .. }) if config.uniformize => {
                    loom_loopir::uniformize(&self.nest, intra_opts)
                        .map(|u| u.deps)
                        .map_err(|e| match e {
                            loom_loopir::FoldError::Extract(err) => PipelineError::Deps(err),
                            loom_loopir::FoldError::NoCover { array, .. } => {
                                PipelineError::Deps(loom_loopir::Error::NonUniform { array })
                            }
                        })?
                }
                Err(e) => return Err(PipelineError::Deps(e)),
            };
            loom_hyperplane::compute_offsets(self.nest.stmts().len(), &records, &pi)
                .map_err(|_| PipelineError::TimeFn(loom_hyperplane::Error::NotFound { bound: 0 }))?
        };

        // 3. Partitioning (Algorithm 1).
        let partitioning = {
            let _s = recorder.span("pipeline.partition");
            partition(
                self.nest.space().clone(),
                deps.clone(),
                pi.clone(),
                &config.partition,
            )
            .map_err(PipelineError::Partition)?
        };
        let comm = comm_stats(&partitioning);
        let tig = Tig::from_partitioning(&partitioning);
        recorder.add("pipeline.blocks", partitioning.num_blocks() as u64);
        recorder.add("pipeline.interblock_arcs", comm.interblock_arcs as u64);

        Ok(PartitionedStage {
            nest: &self.nest,
            deps,
            pi,
            stmt_offsets,
            partitioning,
            comm,
            tig,
        })
    }
}

/// Extract the dependence vector set `D`, admitting nests the uniform
/// front end rejects through certified uniformization when enabled:
/// the fold is synthesized (`loom_loopir::uniformize`) and its cover
/// proven sound by the Presburger core (`LC016`) before the folded
/// vectors are handed to the rest of the pipeline. An uncertifiable
/// nest is rejected with the full diagnostic report; `Unknown`
/// verdicts reject too — the pipeline never admits wrongly. Proof
/// counts land on `recorder` as `check.uniformize.*` counters.
pub(crate) fn admitted_dependence_vectors(
    nest: &LoopNest,
    opts: DepOptions,
    uniformize: bool,
    recorder: &Recorder,
) -> Result<Vec<Point>, PipelineError> {
    match loom_loopir::deps::dependence_vectors(nest, opts) {
        Ok(deps) => Ok(deps),
        Err(loom_loopir::Error::NonUniform { .. }) if uniformize => {
            let mut stats = loom_check::UniformizeStats::default();
            let admitted = loom_check::admit_uniformized(nest, opts, &mut stats);
            recorder.add("check.uniformize.pairs", stats.pairs_folded);
            recorder.add("check.uniformize.vectors", stats.vectors_synthesized);
            recorder.add("check.uniformize.proofs", stats.proofs);
            recorder.add("check.uniformize.refuted", stats.refuted);
            recorder.add("check.uniformize.unknown", stats.unknown);
            recorder.add("check.uniformize.tightness", stats.tightness_warnings);
            match admitted {
                Ok((u, _diags)) => Ok(u.vectors),
                Err(report) => Err(PipelineError::StaticCheck(report)),
            }
        }
        Err(e) => Err(PipelineError::Deps(e)),
    }
}

/// The machine-independent prefix of a pipeline run: everything up to
/// and including partitioning and the TIG, produced by
/// [`Pipeline::stage_partition`]. The mapping and simulation stages
/// still have to run; exploration computes one stage per (Π, grouping)
/// pair and completes it once per machine size, instead of re-running
/// projection, grouping, and region growing for every `cube_dim`.
#[derive(Clone, Debug)]
pub struct PartitionedStage<'a> {
    nest: &'a LoopNest,
    /// The extracted dependence set `D`.
    pub deps: Vec<Point>,
    /// The time transformation Π.
    pub pi: TimeFn,
    /// Fine-grain statement schedule offsets δ_s (see
    /// [`loom_hyperplane::offsets`]).
    pub stmt_offsets: Vec<i64>,
    /// Algorithm 1's partitioning.
    pub partitioning: Partitioning,
    /// Interblock communication statistics.
    pub comm: CommStats,
    /// The Task Interaction Graph of the blocks.
    pub tig: Tig,
}

impl PartitionedStage<'_> {
    /// Step 4 — mapping: Algorithm 2 on hypercubes, the extension
    /// allocators on meshes/rings. The hypercube mapping is always
    /// produced (it is the paper's artifact and cheap).
    pub fn map_with(
        &self,
        config: &PipelineConfig,
        recorder: &Recorder,
    ) -> Result<(Mapping, Placement, Target), PipelineError> {
        let target = config.target.unwrap_or(Target::Hypercube(config.cube_dim));
        let cube_dim_for_alg2 = match target {
            Target::Hypercube(d) => d,
            _ => config.cube_dim,
        };
        let _s = recorder.span("pipeline.mapping");
        let mapping = map_partitioning(&self.partitioning, cube_dim_for_alg2)
            .map_err(PipelineError::Mapping)?;
        let placement = match target {
            Target::Hypercube(_) => Placement::Hypercube(mapping.clone()),
            Target::Mesh { rows, cols } => Placement::Other(
                map_partitioning_mesh(&self.partitioning, rows, cols)
                    .map_err(PipelineError::Mapping)?,
            ),
            Target::Ring(n) => Placement::Other(
                map_partitioning_ring(&self.partitioning, n).map_err(PipelineError::Mapping)?,
            ),
        };
        Ok((mapping, placement, target))
    }

    /// Step 4b — static verification (`loom-check`): every rule runs
    /// against the stage's artifacts plus the given mapping, counters
    /// land as `check.<code>`, and error-severity diagnostics abort the
    /// pipeline before any simulation is paid for.
    pub fn check_with(&self, mapping: &Mapping, recorder: &Recorder) -> Result<(), PipelineError> {
        self.check_mode(mapping, loom_check::CheckMode::Enumerative, recorder)
    }

    /// [`check_with`](PartitionedStage::check_with) with an explicit
    /// engine choice; symbolic runs additionally record the
    /// `check.symbolic.*` proof-discharge counters.
    pub fn check_mode(
        &self,
        mapping: &Mapping,
        mode: loom_check::CheckMode,
        recorder: &Recorder,
    ) -> Result<(), PipelineError> {
        let _s = recorder.span("pipeline.check");
        let report = loom_check::check_pipeline_mode(
            &loom_check::PipelineCheck {
                nest: self.nest,
                deps: &self.deps,
                pi: &self.pi,
                partitioning: &self.partitioning,
                tig: &self.tig,
                assignment: mapping.assignment(),
                cube_dim: mapping.cube().dim(),
            },
            mode,
            recorder,
        );
        if report.has_errors() {
            return Err(PipelineError::StaticCheck(report));
        }
        Ok(())
    }

    /// The executable form of this stage's blocks under a placement.
    pub fn program(&self, placement: &Placement) -> Program {
        Program::from_partitioning(
            &self.partitioning,
            placement.assignment(),
            placement.num_procs(),
            self.nest.flops_per_iteration(),
        )
    }

    /// Finish the pipeline (mapping → static check → simulation),
    /// consuming the stage into a full [`PipelineOutput`].
    pub fn complete(self, config: &PipelineConfig) -> Result<PipelineOutput, PipelineError> {
        self.complete_with(config, &Recorder::disabled(), None)
    }

    /// [`complete`](PartitionedStage::complete) with instrumentation
    /// and an optional reusable [`SimScratch`]: back-to-back
    /// completions through the same scratch skip the simulator's buffer
    /// allocations while staying bit-identical to fresh-state runs.
    pub fn complete_with(
        self,
        config: &PipelineConfig,
        recorder: &Recorder,
        scratch: Option<&mut SimScratch>,
    ) -> Result<PipelineOutput, PipelineError> {
        let (mapping, placement, target) = self.map_with(config, recorder)?;
        if let Some(opts) = config.machine.as_ref().filter(|o| o.static_check) {
            let mode = if opts.interleave_check {
                loom_check::CheckMode::Interleaving
            } else if opts.symbolic_check {
                loom_check::CheckMode::Symbolic
            } else {
                loom_check::CheckMode::Enumerative
            };
            self.check_mode(&mapping, mode, recorder)?;
        }

        // 5. Machine simulation.
        let sim = match &config.machine {
            None => None,
            Some(opts) => {
                let program = self.program(&placement);
                Some(run_machine(&program, target, opts, recorder, scratch)?)
            }
        };

        let PartitionedStage {
            deps,
            pi,
            stmt_offsets,
            partitioning,
            comm,
            tig,
            ..
        } = self;
        Ok(PipelineOutput {
            deps,
            pi,
            partitioning,
            comm,
            tig,
            mapping,
            placement,
            target,
            stmt_offsets,
            sim,
        })
    }
}

/// Step 5 — simulate `program` on `target` under `opts`, with fault
/// bookkeeping (`fault.*` counters) and post-hoc trace validation.
/// `scratch` lets callers reuse the simulator's working buffers across
/// runs; `None` simulates from fresh state. Shared by
/// [`PartitionedStage::complete_with`] and exploration's pruned path.
pub fn run_machine(
    program: &Program,
    target: Target,
    opts: &MachineOptions,
    recorder: &Recorder,
    scratch: Option<&mut SimScratch>,
) -> Result<SimReport, PipelineError> {
    let _s = recorder.span("pipeline.simulate");
    let mut local = SimScratch::default();
    let scratch = scratch.unwrap_or(&mut local);
    let sim_config = SimConfig {
        params: opts.params,
        topology: target.topology(),
        words_per_arc: opts.words_per_arc,
        batch_messages: opts.batch_messages,
        link_contention: opts.link_contention,
        record_trace: opts.record_trace || opts.validate_trace,
        collect_metrics: opts.collect_metrics,
    };
    let report = match &opts.faults {
        None => simulate_scratch(program, &sim_config, scratch).map_err(PipelineError::Sim)?,
        Some(fc) => {
            let r = simulate_with_faults_scratch(program, &sim_config, fc, scratch)
                .map_err(PipelineError::Sim)?;
            if let Some(deg) = r.degradation.as_ref() {
                recorder.add("fault.injected", deg.faults_injected);
                recorder.add("fault.hit", deg.faults_hit);
                recorder.add("fault.drops", deg.drops);
                recorder.add("fault.corruptions", deg.corruptions);
                recorder.add("fault.delays", deg.delays);
                recorder.add("fault.reroutes", deg.reroutes);
                recorder.add("fault.retries", deg.retries);
                recorder.add("fault.retransmitted_words", deg.retransmitted_words);
                recorder.add("fault.crashes", deg.crashes);
                recorder.add("fault.remapped_tasks", deg.remapped_tasks);
                recorder.add("fault.state_transfer_words", deg.state_transfer_words);
                recorder.add(
                    "fault.makespan_inflation_permille",
                    (deg.makespan_inflation() * 1000.0).round().max(0.0) as u64,
                );
            }
            r
        }
    };
    // Remap recovery legitimately moves tasks off their statically
    // assigned processors, which is exactly what verify_trace rejects —
    // skip validation for runs that actually remapped.
    let remapped = report
        .degradation
        .as_ref()
        .is_some_and(|d| d.remapped_tasks > 0);
    if opts.validate_trace && !remapped {
        let violations = verify_trace(program, report.trace.as_deref().unwrap_or(&[]));
        if !violations.is_empty() {
            return Err(PipelineError::Trace(violations));
        }
    }
    recorder.flight().emit(
        "sim.done",
        &[
            ("makespan", Json::from(report.makespan)),
            ("messages", Json::from(report.messages)),
            ("words", Json::from(report.words)),
        ],
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_end_to_end() {
        let w = loom_workloads::l1::workload(4);
        let out = Pipeline::new(w.nest)
            .run(&PipelineConfig {
                cube_dim: 1,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(out.deps.len(), 3);
        assert_eq!(out.pi.coeffs(), &[1, 1]);
        assert_eq!(out.partitioning.num_blocks(), 4);
        assert_eq!(out.comm.total_arcs, 33);
        assert_eq!(out.comm.interblock_arcs, 12);
        assert_eq!(out.tig.len(), 4);
        let sim = out.sim.unwrap();
        assert!(sim.makespan > 0);
        assert_eq!(sim.compute.len(), 2);
    }

    #[test]
    fn symbolic_cost_stage_is_resumable_across_cube_dims() {
        use crate::symbolic_cost::{Derivation, DeriveOptions, ProbeCache};
        let fam = |n: i64| loom_workloads::matvec::workload(n).nest;
        let pipeline = Pipeline::new(fam(32));
        let mut cache = ProbeCache::new();
        let cfg = PipelineConfig {
            time_fn: Some(vec![1, 1]),
            cube_dim: 1,
            ..Default::default()
        };
        let rec = Recorder::disabled();
        let opts = DeriveOptions::default();
        let d1 = pipeline
            .stage_symbolic_cost(&fam, 32, &cfg, &opts, &mut cache, &rec)
            .unwrap();
        let Derivation::Exact(c1) = d1 else {
            panic!("matvec cube=1 must derive exactly: {d1:?}");
        };
        let points_before = cache.points_spent();
        // Re-derive on a larger cube with the same cache: every probe
        // partitioning is reused, only the new cube's simulations run.
        let cfg2 = PipelineConfig { cube_dim: 2, ..cfg };
        let d2 = pipeline
            .stage_symbolic_cost(&fam, 32, &cfg2, &opts, &mut cache, &rec)
            .unwrap();
        let Derivation::Exact(c2) = d2 else {
            panic!("matvec cube=2 must derive exactly");
        };
        assert!(cache.points_spent() > points_before);
        // Both forms agree with the full pipeline at the target size.
        for (cube_dim, cost) in [(1usize, &c1), (2, &c2)] {
            let out = Pipeline::new(fam(32))
                .run(&PipelineConfig {
                    time_fn: Some(vec![1, 1]),
                    cube_dim,
                    ..Default::default()
                })
                .unwrap();
            assert_eq!(cost.makespan(32), Some(out.sim.as_ref().unwrap().makespan));
            assert_eq!(
                cost.messages_at(32),
                Some(out.sim.as_ref().unwrap().messages)
            );
        }
    }

    #[test]
    fn fixed_time_fn_respected() {
        let w = loom_workloads::sor::workload(6, 6);
        let out = Pipeline::new(w.nest)
            .run(&PipelineConfig {
                time_fn: Some(vec![2, 1]),
                cube_dim: 1,
                machine: None,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(out.pi.coeffs(), &[2, 1]);
        assert!(out.sim.is_none());
        assert!(matches!(out.sim_report(), Err(PipelineError::NoSimulation)));
    }

    #[test]
    fn illegal_fixed_time_fn_rejected() {
        let w = loom_workloads::l1::workload(4);
        let err = Pipeline::new(w.nest)
            .run(&PipelineConfig {
                time_fn: Some(vec![1, -1]),
                ..Default::default()
            })
            .unwrap_err();
        assert!(matches!(err, PipelineError::TimeFn(_)));
    }

    fn matvec_makespans(m: i64, params: MachineParams, dims: &[usize]) -> Vec<u64> {
        let w = loom_workloads::matvec::workload(m);
        dims.iter()
            .map(|&cube_dim| {
                let out = Pipeline::new(w.nest.clone())
                    .run(&PipelineConfig {
                        time_fn: Some(w.pi.clone()),
                        cube_dim,
                        machine: Some(MachineOptions {
                            params,
                            ..Default::default()
                        }),
                        ..Default::default()
                    })
                    .unwrap();
                out.sim.unwrap().makespan
            })
            .collect()
    }

    #[test]
    fn parallel_speedup_on_matvec_when_comm_is_cheap() {
        // On a low-latency machine the simulated makespan must drop as
        // the cube grows.
        let results = matvec_makespans(32, MachineParams::low_latency(), &[0, 1, 2, 3]);
        assert!(
            results.windows(2).all(|w| w[1] < w[0]),
            "makespan must shrink with machine size: {results:?}"
        );
    }

    #[test]
    fn fine_grain_loses_on_classic_machine() {
        // The paper's own caveat: with 1991 communication costs and a
        // small problem, parallel execution is *slower* than serial —
        // "our method is suitable for medium- to coarse-grain
        // computation". The simulator reproduces that regime too.
        let results = matvec_makespans(16, MachineParams::classic_1991(), &[0, 2]);
        assert!(
            results[1] > results[0],
            "fine grain + expensive messages should lose: {results:?}"
        );
    }

    #[test]
    fn cube_too_large_fails_cleanly() {
        let w = loom_workloads::l1::workload(4); // 4 blocks
        let err = Pipeline::new(w.nest)
            .run(&PipelineConfig {
                cube_dim: 4,
                ..Default::default()
            })
            .unwrap_err();
        assert!(matches!(err, PipelineError::Mapping(_)));
    }

    #[test]
    fn stmt_offsets_exposed() {
        // L1: no intra-iteration deps → zero offsets for both statements.
        let w = loom_workloads::l1::workload(4);
        let out = Pipeline::new(w.nest)
            .run(&PipelineConfig {
                machine: None,
                cube_dim: 1,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(out.stmt_offsets, vec![0, 0]);
    }

    #[test]
    fn mesh_and_ring_targets_simulate() {
        let w = loom_workloads::matvec::workload(16);
        for target in [
            Target::Mesh { rows: 2, cols: 4 },
            Target::Ring(8),
            Target::Hypercube(3),
        ] {
            let out = Pipeline::new(w.nest.clone())
                .run(&PipelineConfig {
                    time_fn: Some(w.pi.clone()),
                    target: Some(target),
                    ..Default::default()
                })
                .unwrap();
            assert_eq!(out.target, target);
            assert_eq!(out.placement.num_procs(), 8);
            let sim = out.sim.unwrap();
            assert_eq!(sim.compute.len(), 8);
            let total: u64 = sim.compute.iter().sum();
            assert_eq!(total, 16 * 16 * 2);
            assert_eq!(
                out.placement.as_hypercube().is_some(),
                matches!(target, Target::Hypercube(_))
            );
        }
    }

    #[test]
    fn instrumented_run_records_phases() {
        let w = loom_workloads::l1::workload(4);
        let rec = Recorder::enabled();
        let out = Pipeline::new(w.nest)
            .run_with(
                &PipelineConfig {
                    cube_dim: 1,
                    ..Default::default()
                },
                &rec,
            )
            .unwrap();
        let names: Vec<String> = rec.spans().iter().map(|s| s.name.clone()).collect();
        for phase in [
            "pipeline.deps",
            "pipeline.time_fn",
            "hyperplane.search",
            "pipeline.stmt_offsets",
            "pipeline.partition",
            "pipeline.mapping",
            "pipeline.simulate",
            "pipeline.total",
        ] {
            assert!(
                names.contains(&phase.to_string()),
                "missing {phase}: {names:?}"
            );
        }
        let counters = rec.counters();
        assert_eq!(counters.get("pipeline.deps"), Some(&3));
        assert_eq!(
            counters.get("pipeline.blocks"),
            Some(&(out.partitioning.num_blocks() as u64))
        );
        assert!(counters.contains_key("hyperplane.candidates"));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let w = loom_workloads::l1::workload(4);
        let rec = Recorder::disabled();
        Pipeline::new(w.nest)
            .run_with(
                &PipelineConfig {
                    cube_dim: 1,
                    ..Default::default()
                },
                &rec,
            )
            .unwrap();
        assert!(rec.spans().is_empty());
        assert!(rec.counters().is_empty());
    }

    #[test]
    fn flight_events_flow_through_the_pipeline() {
        use loom_obs::FlightRecorder;
        let w = loom_workloads::l1::workload(4);
        let flight = FlightRecorder::with_capacity(256);
        let rec = Recorder::enabled_with_flight(flight.clone());
        Pipeline::new(w.nest)
            .run_with(
                &PipelineConfig {
                    cube_dim: 1,
                    ..Default::default()
                },
                &rec,
            )
            .unwrap();
        let events = flight.events();
        assert!(events.iter().any(|e| e.kind == "sim.done"));
        assert!(events.iter().any(|e| e.kind == "span"));
        assert_eq!(
            events.last().map(|e| e.kind.as_str()),
            Some("pipeline.done")
        );
        let sim_done = events.iter().find(|e| e.kind == "sim.done").unwrap();
        let j = sim_done.to_json();
        assert!(j.get("makespan").unwrap().as_u64().unwrap() > 0);
    }

    #[test]
    fn validate_trace_accepts_clean_runs() {
        let w = loom_workloads::sor::workload(8, 8);
        let out = Pipeline::new(w.nest)
            .run(&PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim: 2,
                machine: Some(MachineOptions {
                    validate_trace: true,
                    ..Default::default()
                }),
                ..Default::default()
            })
            .unwrap();
        // validate_trace implies the trace was recorded.
        assert!(out.sim.unwrap().trace.is_some());
    }

    #[test]
    fn pipeline_metrics_flow_through() {
        let w = loom_workloads::matvec::workload(16);
        let out = Pipeline::new(w.nest)
            .run(&PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim: 2,
                machine: Some(MachineOptions {
                    collect_metrics: true,
                    ..Default::default()
                }),
                ..Default::default()
            })
            .unwrap();
        let sim = out.sim.unwrap();
        let m = sim.metrics.as_ref().unwrap();
        assert_eq!(m.procs.len(), 4);
        assert_eq!(m.messages.len(), sim.messages as usize);
    }

    #[test]
    fn static_check_passes_clean_pipelines_and_records_counters() {
        let w = loom_workloads::l1::workload(4);
        let rec = Recorder::enabled();
        let out = Pipeline::new(w.nest)
            .run_with(
                &PipelineConfig {
                    cube_dim: 1,
                    machine: Some(MachineOptions {
                        static_check: true,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
                &rec,
            )
            .unwrap();
        assert!(out.sim.is_some());
        let names: Vec<String> = rec.spans().iter().map(|s| s.name.clone()).collect();
        assert!(names.contains(&"pipeline.check".to_string()));
        assert!(names.contains(&"check.total".to_string()));
    }

    #[test]
    fn static_check_off_by_default() {
        let opts = MachineOptions::default();
        assert!(!opts.static_check);
        assert!(!opts.symbolic_check);
        assert!(opts.faults.is_none());
    }

    #[test]
    fn symbolic_check_gate_passes_and_records_proof_counters() {
        let w = loom_workloads::l1::workload(4);
        let rec = Recorder::enabled();
        let out = Pipeline::new(w.nest)
            .run_with(
                &PipelineConfig {
                    cube_dim: 1,
                    machine: Some(MachineOptions {
                        static_check: true,
                        symbolic_check: true,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
                &rec,
            )
            .unwrap();
        assert!(out.sim.is_some());
        let counters = rec.counters();
        assert!(counters.contains_key("check.symbolic.lattice"));
        assert_eq!(counters.get("check.symbolic.fallback"), Some(&0));
    }

    #[test]
    fn interleave_check_gate_passes_and_records_exploration_counters() {
        let w = loom_workloads::l1::workload(6);
        let rec = Recorder::enabled();
        let out = Pipeline::new(w.nest)
            .run_with(
                &PipelineConfig {
                    cube_dim: 2,
                    machine: Some(MachineOptions {
                        static_check: true,
                        interleave_check: true,
                        ..Default::default()
                    }),
                    ..Default::default()
                },
                &rec,
            )
            .unwrap();
        assert!(out.sim.is_some());
        let counters = rec.counters();
        // A generated program is a Kahn network: DPOR visits exactly
        // one interleaving while the naive baseline visits more.
        assert_eq!(counters.get("check.interleave.explored"), Some(&1));
        assert!(counters.get("check.interleave.naive").copied().unwrap_or(0) > 1);
        assert_eq!(counters.get("check.interleave.deadlocks"), Some(&0));
        assert!(
            counters
                .get("check.absint.parametric")
                .copied()
                .unwrap_or(0)
                > 0
        );
    }

    #[test]
    fn fault_plumbing_reaches_simulator_and_recorder() {
        use loom_machine::{FaultPlan, RecoveryPolicy};
        let w = loom_workloads::matvec::workload(16);
        let rec = Recorder::enabled();
        let out = Pipeline::new(w.nest)
            .run_with(
                &PipelineConfig {
                    time_fn: Some(w.pi.clone()),
                    cube_dim: 2,
                    machine: Some(MachineOptions {
                        faults: Some(FaultConfig::new(
                            FaultPlan::none().with_crash(3, 50),
                            RecoveryPolicy::Remap,
                        )),
                        ..Default::default()
                    }),
                    ..Default::default()
                },
                &rec,
            )
            .unwrap();
        let sim = out.sim.unwrap();
        let deg = sim.degradation.as_ref().unwrap();
        assert_eq!(deg.crashes, 1);
        assert!(deg.state_transfer_words > 0);
        let counters = rec.counters();
        assert_eq!(counters.get("fault.crashes"), Some(&1));
        assert_eq!(counters.get("fault.injected"), Some(&1));
        assert!(counters.contains_key("fault.state_transfer_words"));
    }

    #[test]
    fn abort_policy_propagates_unrecoverable() {
        use loom_machine::{FaultPlan, RecoveryPolicy, SimError};
        let w = loom_workloads::matvec::workload(16);
        let err = Pipeline::new(w.nest)
            .run(&PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim: 2,
                machine: Some(MachineOptions {
                    faults: Some(FaultConfig::new(
                        FaultPlan::none().with_crash(0, 0),
                        RecoveryPolicy::Abort,
                    )),
                    ..Default::default()
                }),
                ..Default::default()
            })
            .unwrap_err();
        match err {
            PipelineError::Sim(SimError::Unrecoverable { .. }) => {}
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }

    #[test]
    fn empty_fault_plan_matches_fault_free_pipeline() {
        use loom_machine::{FaultPlan, RecoveryPolicy};
        let w = loom_workloads::matvec::workload(16);
        let base_cfg = PipelineConfig {
            time_fn: Some(w.pi.clone()),
            cube_dim: 2,
            ..Default::default()
        };
        let base = Pipeline::new(w.nest.clone())
            .run(&base_cfg)
            .unwrap()
            .sim
            .unwrap();
        let faulted = Pipeline::new(w.nest)
            .run(&PipelineConfig {
                machine: Some(MachineOptions {
                    faults: Some(FaultConfig::new(
                        FaultPlan::none(),
                        RecoveryPolicy::RetryOnly,
                    )),
                    ..Default::default()
                }),
                ..base_cfg
            })
            .unwrap()
            .sim
            .unwrap();
        assert_eq!(faulted.makespan, base.makespan);
        assert_eq!(faulted.messages, base.messages);
        assert_eq!(faulted.words, base.words);
        assert_eq!(faulted.degradation.unwrap().faults_hit, 0);
    }

    #[test]
    fn non_uniform_nest_rejected_with_uniformize_off() {
        use loom_loopir::{Access, Aff, IterSpace, LoopNest, Stmt};
        let nest = LoopNest::new(
            "bad",
            IterSpace::rect(&[4]).unwrap(),
            vec![Stmt::assign(
                Access::new("A", vec![Aff::new(vec![2], 0)]),
                vec![Access::simple("A", 1, &[(0, 0)])],
            )],
        )
        .unwrap();
        let err = Pipeline::new(nest)
            .run(&PipelineConfig {
                uniformize: false,
                ..PipelineConfig::default()
            })
            .unwrap_err();
        assert!(matches!(err, PipelineError::Deps(_)));
    }

    #[test]
    fn non_uniform_nest_admitted_through_uniformization() {
        use loom_loopir::{Access, Aff, IterSpace, LoopNest, Stmt};
        // A[2i] = A[i]: the seed front end rejects this with LC010;
        // certified folding admits it with the synthesized set {(1)}.
        let nest = LoopNest::new(
            "vardist",
            IterSpace::rect(&[8]).unwrap(),
            vec![Stmt::assign(
                Access::new("A", vec![Aff::new(vec![2], 0)]),
                vec![Access::simple("A", 1, &[(0, 0)])],
            )],
        )
        .unwrap();
        let rec = Recorder::enabled();
        let out = Pipeline::new(nest)
            .run_with(
                &PipelineConfig {
                    cube_dim: 0,
                    ..PipelineConfig::default()
                },
                &rec,
            )
            .expect("admitted through uniformization");
        assert_eq!(out.deps, vec![vec![1]]);
        assert!(out.pi.dot(&[1]) >= 1);
        let counters = rec.counters();
        assert!(counters.get("check.uniformize.pairs") >= Some(&1));
        assert!(counters.get("check.uniformize.proofs") >= Some(&1));
        assert_eq!(counters.get("check.uniformize.refuted"), Some(&0));
        assert_eq!(counters.get("check.uniformize.unknown"), Some(&0));
    }

    #[test]
    fn uncoverable_nest_rejected_with_report() {
        use loom_loopir::{Access, IterSpace, LoopNest, Stmt};
        // Rank-mismatched accesses cannot be folded: admission must
        // fail with the full diagnostic report, never a wrong admission.
        let nest = LoopNest::new(
            "ranks",
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![Stmt::assign(
                Access::simple("A", 2, &[(0, 0)]),
                vec![Access::simple("A", 2, &[(0, 0), (1, 0)])],
            )],
        )
        .unwrap();
        let err = Pipeline::new(nest)
            .run(&PipelineConfig::default())
            .unwrap_err();
        match err {
            PipelineError::StaticCheck(report) => assert!(report.has_errors()),
            other => panic!("expected StaticCheck rejection, got {other}"),
        }
    }
}
