//! E4 — Fig. 7: the group communication graph of the matmul partition,
//! and the Theorem 2 bound `2m − β`.

use loom_bench::paper_matmul_partitioning;
use loom_core::report::Table;
use loom_partition::comm::group_dependence_graph;

fn main() {
    let p = paper_matmul_partitioning();
    let graph = group_dependence_graph(&p);
    let m = p.structure().deps().len();
    let beta = p.vectors().beta;

    println!("Fig. 7 — group communication graph of Fig. 6\n");
    let mut t = Table::new(["group", "sends data to", "out-degree"]);
    for (g, out) in graph.iter().enumerate() {
        let targets: Vec<String> = out.iter().map(|x| format!("G{x}")).collect();
        t.row([format!("G{g}"), targets.join(" "), format!("{}", out.len())]);
    }
    println!("{t}");

    let max_out = graph.iter().map(|s| s.len()).max().unwrap();
    let edges: usize = graph.iter().map(|s| s.len()).sum();
    println!("directed edges: {edges}");
    println!(
        "max out-degree: {max_out} (Theorem 2 bound: 2m - beta = {})",
        2 * m - beta
    );
    println!("paper: G10 sends data to 2·3 - 2 = 4 groups");
    assert!(max_out <= 2 * m - beta);
    assert_eq!(max_out, 4);
}
