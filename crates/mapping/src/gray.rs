//! Reflected binary Gray codes.
//!
//! Algorithm 2 numbers the clusters produced along each bisection
//! direction with a Gray code, so that clusters adjacent along a
//! direction differ in exactly one address bit — i.e. land on adjacent
//! hypercube nodes.

/// The `i`-th reflected Gray code word: `i ^ (i >> 1)`.
///
/// ```
/// use loom_mapping::gray::gray;
/// assert_eq!([gray(0), gray(1), gray(2), gray(3)], [0b00, 0b01, 0b11, 0b10]);
/// ```
pub const fn gray(i: u64) -> u64 {
    i ^ (i >> 1)
}

/// Inverse of [`gray`]: the rank of a Gray-code word.
pub const fn gray_rank(mut g: u64) -> u64 {
    let mut r = 0;
    while g != 0 {
        r ^= g;
        g >>= 1;
    }
    r
}

/// The full `bits`-bit Gray sequence, in rank order.
///
/// Panics if `bits > 20` (guards accidental huge allocations; hypercube
/// dimensions in this project are single digits).
pub fn gray_sequence(bits: u32) -> Vec<u64> {
    assert!(bits <= 20, "gray_sequence of {bits} bits is unreasonable");
    (0..1u64 << bits).map(gray).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_bit_sequence() {
        assert_eq!(
            gray_sequence(3),
            vec![0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100]
        );
    }

    #[test]
    fn adjacent_words_differ_in_one_bit() {
        let seq = gray_sequence(6);
        for w in seq.windows(2) {
            assert_eq!((w[0] ^ w[1]).count_ones(), 1);
        }
        // And the sequence is a permutation.
        let mut sorted = seq.clone();
        sorted.sort();
        assert_eq!(sorted, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn rank_inverts_gray() {
        for i in 0..1024 {
            assert_eq!(gray_rank(gray(i)), i);
        }
    }

    #[test]
    fn zero_bits() {
        assert_eq!(gray_sequence(0), vec![0]);
    }
}
