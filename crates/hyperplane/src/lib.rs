//! Lamport's hyperplane method: linear time transformations for nested
//! loops with constant dependences.
//!
//! A time function Π ∈ ℤⁿ is *legal* for a dependence set `D` when
//! `Π·d > 0` for every `d ∈ D`: all iterations on one hyperplane
//! `Π·x = c` are then mutually independent and can execute simultaneously,
//! and the hyperplanes sweep the index set in dependence order. The
//! Sheu–Tai partitioner takes such a Π as *given*; this crate supplies it:
//!
//! * [`TimeFn`] — a time transformation with legality checking,
//! * [`search`] — exhaustive search for the Π minimizing the number of
//!   execution steps (with deterministic tie-breaking),
//! * [`Schedule`] — the wavefront schedule a Π induces on an index set,
//!   with full validation against the dependence set.

#![deny(missing_docs)]

pub mod offsets;
pub mod schedule;
pub mod search;
pub mod time;

pub use offsets::{compute_offsets, validate_offsets, OffsetError};
pub use schedule::Schedule;
pub use search::{find_optimal, find_optimal_with, SearchConfig};
pub use time::TimeFn;

/// Errors from time-transformation construction and search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The proposed Π does not satisfy `Π·d > 0` for some dependence.
    Illegal {
        /// The violating dependence vector.
        dependence: Vec<i64>,
    },
    /// No legal Π exists within the searched coefficient bound.
    NotFound {
        /// The coefficient bound that was searched.
        bound: i64,
    },
    /// Dimension mismatch between Π and the dependences / space.
    DimMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Found dimensionality.
        found: usize,
    },
    /// The dependence set contains the zero vector (a self-dependence),
    /// for which no legal time function exists.
    ZeroDependence,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Illegal { dependence } => {
                write!(f, "time function violates dependence {dependence:?}")
            }
            Error::NotFound { bound } => {
                write!(f, "no legal time function with coefficients in ±{bound}")
            }
            Error::DimMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            Error::ZeroDependence => write!(f, "dependence set contains the zero vector"),
        }
    }
}

impl std::error::Error for Error {}
