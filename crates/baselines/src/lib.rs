//! The partitioning methods the paper compares against (§I).
//!
//! The greatest-common-divisor method (Padua), the minimum-distance
//! method (Peir & Cytron), and the independent-partitioning family
//! (Shang & Fortes, D'Hollander) all split the iteration space into
//! **fully independent** blocks — no dependence may cross a block
//! boundary. That makes them communication-free, but when the dependence
//! lattice spans the whole space (matrix multiplication, convolution,
//! transitive closure, DFT, …) they produce a single block and the loop
//! runs sequentially. The Sheu–Tai grouping method trades a little
//! communication for parallelism on exactly those loops; the baseline
//! benches reproduce that crossover.
//!
//! * [`gcd`] — per-dimension GCD residue classes,
//! * [`lattice`] — dependence-lattice cosets (the exact independent
//!   partition; minimum-distance and D'Hollander labelings compute the
//!   same classes),
//! * [`serial`] — the trivial one-block and one-point-per-block extremes,
//! * [`strip`] — contiguous block distribution (King & Ni-style
//!   grouping), with the schedule-stretch metric that Theorem 1's
//!   blocks avoid.

#![deny(missing_docs)]

pub mod gcd;
pub mod lattice;
pub mod serial;
pub mod strip;

use loom_partition::ComputationalStructure;

/// A block decomposition produced by a baseline method.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Human-readable method name.
    pub method: &'static str,
    /// Point ids per block.
    pub blocks: Vec<Vec<usize>>,
    /// Block id per point.
    pub block_of: Vec<usize>,
}

impl BaselineResult {
    /// Number of blocks — for an independent partitioning this is the
    /// exploitable parallelism.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// `true` iff the method failed to find any parallelism.
    pub fn is_sequential(&self) -> bool {
        self.blocks.len() <= 1
    }

    /// Count dependence arcs crossing block boundaries (must be 0 for a
    /// correct independent partitioning).
    pub fn interblock_arcs(&self, cs: &ComputationalStructure) -> usize {
        let mut crossing = 0;
        for id in 0..cs.len() {
            for (succ, _) in cs.successors(id) {
                if self.block_of[id] != self.block_of[succ] {
                    crossing += 1;
                }
            }
        }
        crossing
    }
}
