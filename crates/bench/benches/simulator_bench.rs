//! Criterion bench: discrete-event simulator throughput, and the
//! message-batching ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loom_hyperplane::TimeFn;
use loom_machine::{simulate, MachineParams, Program, SimConfig};
use loom_mapping::map_partitioning;
use loom_partition::{partition, PartitionConfig};
use std::hint::black_box;

fn matvec_program(m: i64, cube_dim: usize) -> Program {
    let w = loom_workloads::matvec::workload(m);
    let p = partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .unwrap();
    let mapping = map_partitioning(&p, cube_dim).unwrap();
    Program::from_partitioning(&p, mapping.assignment(), mapping.cube().len(), 2)
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for m in [32i64, 64] {
        let prog = matvec_program(m, 2);
        group.throughput(Throughput::Elements(prog.len() as u64));
        group.bench_with_input(BenchmarkId::new("matvec_tasks", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    simulate(
                        &prog,
                        &SimConfig::paper_hypercube(2, MachineParams::classic_1991()),
                    )
                    .unwrap()
                    .makespan,
                )
            })
        });
    }
    group.finish();
}

fn bench_batching_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_batching");
    let prog = matvec_program(48, 3);
    for batch in [false, true] {
        let mut cfg = SimConfig::paper_hypercube(3, MachineParams::classic_1991());
        cfg.batch_messages = batch;
        group.bench_function(if batch { "batched" } else { "unbatched" }, |b| {
            b.iter(|| black_box(simulate(&prog, &cfg).unwrap().makespan))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_batching_ablation);
criterion_main!(benches);
