//! Shared helpers for the repro binaries and criterion benches.
//!
//! Each `repro_*` binary regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the experiment index); the criterion benches
//! measure the algorithms themselves. Everything routes through the same
//! helpers here so the numbers printed by binaries, asserted by tests,
//! and timed by benches come from one code path.

#![deny(missing_docs)]

use loom_hyperplane::TimeFn;
use loom_obs::Json;
use loom_partition::{partition, PartitionConfig, Partitioning};
use loom_rational::QVec;
use loom_workloads::Workload;
use std::path::Path;

/// Partition a workload with its documented Π and default choices.
pub fn partition_workload(w: &Workload) -> Partitioning {
    partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .expect("workloads partition cleanly")
}

/// Partition the 4×4×4 matmul exactly as the paper's Example 2 does:
/// grouping vector `d_A`, auxiliary `d_C`, seed group based at
/// `(−1,−1,2)`.
pub fn paper_matmul_partitioning() -> Partitioning {
    let w = loom_workloads::matmul::workload(4);
    // Sorted dependence set: [d_C=(0,0,1), d_A=(0,1,0), d_B=(1,0,0)].
    partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig {
            grouping_choice: Some(1),
            seed: Some(QVec::from_ints(&[-1, -1, 2])),
        },
    )
    .expect("matmul partitions")
}

/// Write a metrics document to `<dir>/<name>.json`, pretty-rendered,
/// creating `dir` if needed.
pub fn write_metrics_to(dir: &Path, name: &str, doc: &Json) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.json")), doc.render_pretty())
}

/// Write a metrics document to `<dir>/<name>-<disc>.json`, pretty-
/// rendered, creating `dir` if needed. The discriminator keeps
/// concurrent runs that share a metrics directory from clobbering each
/// other's files; [`maybe_write_metrics`] passes the process id.
pub fn write_metrics_discriminated(
    dir: &Path,
    name: &str,
    disc: &str,
    doc: &Json,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}-{disc}.json"));
    std::fs::write(&path, doc.render_pretty())?;
    Ok(path)
}

/// If `LOOM_METRICS_DIR` is set, write `doc` to `<dir>/<name>-<pid>.json`
/// and note it on stderr — the repro binaries call this so every
/// experiment can leave machine-readable metrics next to its printed
/// table without changing its stdout. The pid in the filename makes
/// concurrent runs sharing one directory collision-safe.
pub fn maybe_write_metrics(name: &str, doc: &Json) {
    let Ok(dir) = std::env::var("LOOM_METRICS_DIR") else {
        return;
    };
    let disc = std::process::id().to_string();
    match write_metrics_discriminated(Path::new(&dir), name, &disc, doc) {
        Ok(path) => eprintln!("metrics: wrote {}", path.display()),
        Err(e) => eprintln!("metrics: cannot write {name}-{disc}.json: {e}"),
    }
}

/// Append one history record — `{"ts": …, "bench": name, "doc": …}` on
/// a single JSONL line — to `path`, creating the file (and parent
/// directory) if needed. The regression observatory's `loom obs diff`
/// reads records back out of this file.
pub fn append_history_to(path: &Path, name: &str, ts_unix: u64, doc: &Json) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    let record = Json::obj(vec![
        ("ts", Json::from(ts_unix)),
        ("bench", Json::from(name)),
        ("doc", doc.clone()),
    ]);
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", record.render())
}

/// If `LOOM_BENCH_HISTORY` is set, append `doc` as one timestamped
/// JSONL record. The variable names either the history file itself or a
/// directory (then `bench-history.jsonl` inside it is used).
pub fn maybe_append_history(name: &str, doc: &Json) {
    let Ok(dest) = std::env::var("LOOM_BENCH_HISTORY") else {
        return;
    };
    let dest = Path::new(&dest);
    let path = if dest.is_dir() {
        dest.join("bench-history.jsonl")
    } else {
        dest.to_path_buf()
    };
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    match append_history_to(&path, name, ts, doc) {
        Ok(()) => eprintln!("history: appended {name} to {}", path.display()),
        Err(e) => eprintln!("history: cannot append to {}: {e}", path.display()),
    }
}

/// Run independent jobs on scoped OS threads and collect results in
/// input order — the bench harness's way of sweeping machine sizes /
/// mappings in parallel on the host. The simulator itself stays
/// single-threaded and deterministic; only *independent simulations*
/// run concurrently.
pub fn parallel_sweep<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| scope.spawn(|| f(item)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep job panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matmul_is_17_groups() {
        assert_eq!(paper_matmul_partitioning().num_blocks(), 17);
    }

    #[test]
    fn parallel_sweep_preserves_order_and_runs_concurrently() {
        let results = parallel_sweep(vec![3u64, 1, 4, 1, 5], |x| x * 10);
        assert_eq!(results, vec![30, 10, 40, 10, 50]);
        // Simulations in parallel give the same answers as serially.
        use loom_machine::{simulate, MachineParams, Program, SimConfig};
        let w = loom_workloads::matvec::workload(12);
        let p = partition_workload(&w);
        let dims = vec![0usize, 1, 2];
        let parallel = parallel_sweep(dims.clone(), |d| {
            let m = loom_mapping::map_partitioning(&p, d).unwrap();
            let prog = Program::from_partitioning(&p, m.assignment(), 1 << d, 2);
            simulate(
                &prog,
                &SimConfig::paper_hypercube(d, MachineParams::classic_1991()),
            )
            .unwrap()
            .makespan
        });
        for (i, &d) in dims.iter().enumerate() {
            let m = loom_mapping::map_partitioning(&p, d).unwrap();
            let prog = Program::from_partitioning(&p, m.assignment(), 1 << d, 2);
            let serial = simulate(
                &prog,
                &SimConfig::paper_hypercube(d, MachineParams::classic_1991()),
            )
            .unwrap()
            .makespan;
            assert_eq!(parallel[i], serial);
        }
    }

    #[test]
    fn write_metrics_to_creates_dir_and_file() {
        let dir = std::env::temp_dir().join("loom-metrics-test");
        let _ = std::fs::remove_dir_all(&dir);
        let doc = Json::obj(vec![("makespan", Json::from(42u64))]);
        write_metrics_to(&dir, "a6_contention", &doc).unwrap();
        let body = std::fs::read_to_string(dir.join("a6_contention.json")).unwrap();
        assert_eq!(Json::parse(&body).unwrap(), doc);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn discriminated_metrics_files_do_not_collide() {
        let dir = std::env::temp_dir().join("loom-metrics-disc-test");
        let _ = std::fs::remove_dir_all(&dir);
        let a = Json::obj(vec![("run", Json::from(1u64))]);
        let b = Json::obj(vec![("run", Json::from(2u64))]);
        let pa = write_metrics_discriminated(&dir, "a9_explore", "111", &a).unwrap();
        let pb = write_metrics_discriminated(&dir, "a9_explore", "222", &b).unwrap();
        assert_ne!(pa, pb);
        assert_eq!(
            Json::parse(&std::fs::read_to_string(&pa).unwrap()).unwrap(),
            a
        );
        assert_eq!(
            Json::parse(&std::fs::read_to_string(&pb).unwrap()).unwrap(),
            b
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn history_appends_one_parseable_line_per_record() {
        let dir = std::env::temp_dir().join("loom-history-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("bench-history.jsonl");
        let doc = Json::obj(vec![("speedup", Json::from(2.5f64))]);
        append_history_to(&path, "explore", 1000, &doc).unwrap();
        append_history_to(&path, "check", 2000, &doc).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("ts").unwrap().as_u64(), Some(1000));
        assert_eq!(first.get("bench").unwrap().as_str(), Some("explore"));
        assert_eq!(first.get("doc").unwrap(), &doc);
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("bench").unwrap().as_str(), Some("check"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_workloads_partition() {
        for w in loom_workloads::all_default() {
            let p = partition_workload(&w);
            assert!(p.num_blocks() > 0, "{} produced no blocks", w.nest.name());
            assert!(
                loom_partition::laws::check_all(&p).is_empty(),
                "{} violates a law",
                w.nest.name()
            );
        }
    }
}
