//! The SPMD operation set and program container.

use loom_loopir::Point;

/// A message tag: the producing iteration and the dependence index it
/// satisfies. Tags make receives order-independent across channels, so
/// the interpreter's mailbox matching is exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag {
    /// Id of the source iteration.
    pub src_point: u32,
    /// Index into the nest's dependence-vector set.
    pub dep: u16,
}

/// One SPMD operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Block until the message with this tag arrives from `from`, then
    /// install its payload elements into local memory.
    Recv {
        /// Sending processor.
        from: u32,
        /// Message tag.
        tag: Tag,
    },
    /// Execute one iteration of the nest body against local memory.
    Compute {
        /// Id of the iteration (index into the enumerated space).
        point: u32,
    },
    /// Package the elements associated with dependence `tag.dep` at the
    /// just-computed iteration and send them to `to`.
    Send {
        /// Receiving processor.
        to: u32,
        /// Message tag.
        tag: Tag,
    },
}

/// A complete SPMD program: one op list per processor, plus the shared
/// iteration table.
#[derive(Clone, Debug)]
pub struct SpmdProgram {
    /// The enumerated iteration points (ids index into this).
    pub points: Vec<Point>,
    /// Per-processor operation lists, in program order.
    pub per_proc: Vec<Vec<Op>>,
}

impl SpmdProgram {
    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.per_proc.len()
    }

    /// Total number of `Compute` ops (must equal the iteration count).
    pub fn num_computes(&self) -> usize {
        self.per_proc
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::Compute { .. }))
            .count()
    }

    /// Total number of messages (Send ops).
    pub fn num_messages(&self) -> usize {
        self.per_proc
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::Send { .. }))
            .count()
    }

    /// Structural sanity: every `Send` has exactly one matching `Recv`
    /// on the target processor and vice versa. Returns mismatched tags.
    pub fn unmatched_messages(&self) -> Vec<Tag> {
        use std::collections::BTreeMap;
        let mut sends: BTreeMap<(u32, Tag), i64> = BTreeMap::new();
        for (p, ops) in self.per_proc.iter().enumerate() {
            for op in ops {
                match *op {
                    Op::Send { to, tag } => *sends.entry((to, tag)).or_insert(0) += 1,
                    Op::Recv { from: _, tag } => *sends.entry((p as u32, tag)).or_insert(0) -= 1,
                    Op::Compute { .. } => {}
                }
            }
        }
        sends
            .into_iter()
            .filter(|&(_, n)| n != 0)
            .map(|((_, tag), _)| tag)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_matching() {
        let t = Tag {
            src_point: 0,
            dep: 1,
        };
        let prog = SpmdProgram {
            points: vec![vec![0], vec![1]],
            per_proc: vec![
                vec![Op::Compute { point: 0 }, Op::Send { to: 1, tag: t }],
                vec![Op::Recv { from: 0, tag: t }, Op::Compute { point: 1 }],
            ],
        };
        assert_eq!(prog.num_procs(), 2);
        assert_eq!(prog.num_computes(), 2);
        assert_eq!(prog.num_messages(), 1);
        assert!(prog.unmatched_messages().is_empty());
    }

    #[test]
    fn unmatched_detected() {
        let t = Tag {
            src_point: 3,
            dep: 0,
        };
        let prog = SpmdProgram {
            points: vec![vec![0]],
            per_proc: vec![vec![Op::Send { to: 1, tag: t }], vec![]],
        };
        assert_eq!(prog.unmatched_messages(), vec![t]);
    }
}
