//! Statement semantics: a small expression language over a statement's
//! read accesses, so loop nests can actually be *executed* (sequentially
//! by the oracle interpreter, and in partitioned parallel order by
//! `loom-exec`) and their results compared.

use std::fmt;

/// An arithmetic expression over the read accesses of one statement.
///
/// `Read(k)` is the value loaded by the statement's `k`-th read access.
///
/// ```
/// use loom_loopir::sem::Expr;
/// // C + A·B (the matmul body) over reads [C, A, B]:
/// let e = Expr::add(Expr::Read(0), Expr::mul(Expr::Read(1), Expr::Read(2)));
/// assert_eq!(e.eval(&[10.0, 2.0, 3.0]), 16.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// The value of the statement's `k`-th read access.
    Read(usize),
    /// A literal constant.
    Const(f64),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Maximum (for max-plus recurrences like transitive closure).
    Max(Box<Expr>, Box<Expr>),
    /// Minimum.
    Min(Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // constructors, not operators
impl Expr {
    /// Convenience constructor: `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a − b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a · b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `max(a, b)`.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::Max(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `min(a, b)`.
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::Min(Box::new(a), Box::new(b))
    }

    /// The default semantics when a statement carries no explicit
    /// expression: the sum of all its reads (or 1 for a read-free
    /// statement) — enough to exercise every dataflow edge.
    pub fn sum_of_reads(n_reads: usize) -> Expr {
        match n_reads {
            0 => Expr::Const(1.0),
            _ => (1..n_reads).fold(Expr::Read(0), |acc, k| Expr::add(acc, Expr::Read(k))),
        }
    }

    /// Evaluate with the given read values. Panics if a `Read` index is
    /// out of range (the nest validator prevents this for well-formed
    /// statements).
    pub fn eval(&self, reads: &[f64]) -> f64 {
        match self {
            Expr::Read(k) => reads[*k],
            Expr::Const(c) => *c,
            Expr::Add(a, b) => a.eval(reads) + b.eval(reads),
            Expr::Sub(a, b) => a.eval(reads) - b.eval(reads),
            Expr::Mul(a, b) => a.eval(reads) * b.eval(reads),
            Expr::Max(a, b) => a.eval(reads).max(b.eval(reads)),
            Expr::Min(a, b) => a.eval(reads).min(b.eval(reads)),
        }
    }

    /// The largest `Read` index referenced, if any.
    pub fn max_read(&self) -> Option<usize> {
        match self {
            Expr::Read(k) => Some(*k),
            Expr::Const(_) => None,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Max(a, b)
            | Expr::Min(a, b) => a.max_read().into_iter().chain(b.max_read()).max(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Read(k) => write!(f, "r{k}"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation() {
        let e = Expr::add(Expr::Read(0), Expr::mul(Expr::Read(1), Expr::Const(2.0)));
        assert_eq!(e.eval(&[1.0, 3.0]), 7.0);
        assert_eq!(Expr::sub(Expr::Const(5.0), Expr::Read(0)).eval(&[2.0]), 3.0);
        assert_eq!(
            Expr::max(Expr::Read(0), Expr::Read(1)).eval(&[2.0, 9.0]),
            9.0
        );
        assert_eq!(
            Expr::min(Expr::Read(0), Expr::Read(1)).eval(&[2.0, 9.0]),
            2.0
        );
    }

    #[test]
    fn sum_of_reads_default() {
        assert_eq!(Expr::sum_of_reads(0).eval(&[]), 1.0);
        assert_eq!(Expr::sum_of_reads(1).eval(&[4.0]), 4.0);
        assert_eq!(Expr::sum_of_reads(3).eval(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn max_read_bounds() {
        assert_eq!(Expr::sum_of_reads(3).max_read(), Some(2));
        assert_eq!(Expr::Const(1.0).max_read(), None);
        let e = Expr::mul(Expr::Read(5), Expr::Const(1.0));
        assert_eq!(e.max_read(), Some(5));
    }

    #[test]
    fn display() {
        let e = Expr::add(Expr::Read(0), Expr::Const(2.0));
        assert_eq!(e.to_string(), "(r0 + 2)");
    }
}
