//! The paper's machine cost model.

/// Machine timing parameters, in abstract integer ticks so the simulation
/// is exactly reproducible.
///
/// * `t_calc` — one floating-point multiply or add,
/// * `t_start` — fixed software startup of one message,
/// * `t_comm` — transmitting one real word between adjacent processors,
/// * `t_recv` — software overhead the *receiver* pays per message
///   (0 in the paper's model, which charges the sender only; exposed
///   because real 1991 machines charged both sides).
///
/// Sending `k` words one hop costs `t_start + k·t_comm`; an `h`-hop
/// store-and-forward route costs `h·(t_start + k·t_comm)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineParams {
    /// Cost of one floating-point operation.
    pub t_calc: u64,
    /// Message startup cost.
    pub t_start: u64,
    /// Per-word transfer cost.
    pub t_comm: u64,
    /// Receiver-side software overhead per message (default 0).
    pub t_recv: u64,
}

impl MachineParams {
    /// A 1991-flavored message-passing machine: communication startup an
    /// order of magnitude above a flop (the regime the paper targets —
    /// "communication overhead is still one order of magnitude higher
    /// than the corresponding computation").
    pub fn classic_1991() -> MachineParams {
        MachineParams {
            t_calc: 1,
            t_start: 50,
            t_comm: 5,
            t_recv: 0,
        }
    }

    /// A communication-friendly machine (startup only a few flops):
    /// useful to show where partitioning stops mattering.
    pub fn low_latency() -> MachineParams {
        MachineParams {
            t_calc: 1,
            t_start: 4,
            t_comm: 1,
            t_recv: 0,
        }
    }

    /// An extreme startup-dominated machine.
    pub fn high_latency() -> MachineParams {
        MachineParams {
            t_calc: 1,
            t_start: 500,
            t_comm: 20,
            t_recv: 0,
        }
    }

    /// Cost of one message of `words` words over `hops` hops
    /// (store-and-forward). Zero-hop messages are free (local).
    pub fn message_cost(&self, words: u64, hops: usize) -> u64 {
        (self.t_start + words * self.t_comm) * hops as u64
    }

    /// Cost of the first hop only — the sender-occupancy share of a send.
    pub fn send_occupancy(&self, words: u64) -> u64 {
        self.t_start + words * self.t_comm
    }

    /// Set the receiver-side overhead (builder style).
    pub fn with_recv(mut self, t_recv: u64) -> MachineParams {
        self.t_recv = t_recv;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_costs() {
        let p = MachineParams {
            t_calc: 1,
            t_start: 10,
            t_comm: 2,
            t_recv: 0,
        };
        assert_eq!(p.message_cost(1, 1), 12);
        assert_eq!(p.message_cost(5, 1), 20);
        assert_eq!(p.message_cost(5, 3), 60);
        assert_eq!(p.message_cost(5, 0), 0);
        assert_eq!(p.send_occupancy(3), 16);
    }

    #[test]
    fn with_recv_builder() {
        let p = MachineParams::classic_1991().with_recv(7);
        assert_eq!(p.t_recv, 7);
        assert_eq!(p.t_start, 50);
    }

    #[test]
    fn presets_are_comm_dominated_in_order() {
        let c = MachineParams::classic_1991();
        assert!(c.t_start >= 10 * c.t_calc);
        assert!(MachineParams::low_latency().t_start < c.t_start);
        assert!(MachineParams::high_latency().t_start > c.t_start);
    }
}
