//! Loop nests and statements, with a small builder API.

use crate::access::Access;
use crate::sem::Expr;
use crate::space::IterSpace;
use crate::Error;
use std::fmt;

/// One assignment statement: a single write access and any number of
/// read accesses (the right-hand side), plus a nominal flop cost used by
/// the machine model and optional arithmetic semantics used by the
/// executors.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    write: Access,
    reads: Vec<Access>,
    expr: Option<Expr>,
    /// Number of floating-point operations one execution of this
    /// statement performs (e.g. 2 for a multiply–add).
    pub flops: u64,
}

impl Stmt {
    /// Build a statement `write := f(reads…)` with a default cost of one
    /// flop per read (a fused multiply/add chain).
    pub fn assign(write: Access, reads: Vec<Access>) -> Stmt {
        let flops = reads.len().max(1) as u64;
        Stmt {
            write,
            reads,
            expr: None,
            flops,
        }
    }

    /// Override the flop cost.
    pub fn with_flops(mut self, flops: u64) -> Stmt {
        self.flops = flops;
        self
    }

    /// Attach concrete arithmetic semantics. Panics if the expression
    /// references a read access the statement does not have.
    pub fn with_expr(mut self, expr: Expr) -> Stmt {
        if let Some(m) = expr.max_read() {
            assert!(
                m < self.reads.len(),
                "expression reads r{m} but the statement has {} reads",
                self.reads.len()
            );
        }
        self.expr = Some(expr);
        self
    }

    /// The statement's semantics: the attached expression, or the
    /// sum-of-reads default.
    pub fn semantics(&self) -> Expr {
        self.expr
            .clone()
            .unwrap_or_else(|| Expr::sum_of_reads(self.reads.len()))
    }

    /// The write (left-hand side) access.
    pub fn write(&self) -> &Access {
        &self.write
    }

    /// The read (right-hand side) accesses.
    pub fn reads(&self) -> &[Access] {
        &self.reads
    }

    /// All accesses: write first, then reads.
    pub fn accesses(&self) -> impl Iterator<Item = &Access> {
        std::iter::once(&self.write).chain(self.reads.iter())
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} := f(", self.write)?;
        for (i, r) in self.reads.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

/// An `n`-nested loop: a name, the index set, and the statement body.
///
/// ```
/// use loom_loopir::{Access, IterSpace, LoopNest, Stmt};
/// // The paper's loop (L1):
/// //   S1: A[i+1,j+1] := A[i+1,j] + B[i,j];
/// //   S2: B[i+1,j]   := A[i,j] * 2 + C;
/// let nest = LoopNest::new(
///     "L1",
///     IterSpace::rect(&[4, 4]).unwrap(),
///     vec![
///         Stmt::assign(
///             Access::simple("A", 2, &[(0, 1), (1, 1)]),
///             vec![
///                 Access::simple("A", 2, &[(0, 1), (1, 0)]),
///                 Access::simple("B", 2, &[(0, 0), (1, 0)]),
///             ],
///         ),
///         Stmt::assign(
///             Access::simple("B", 2, &[(0, 1), (1, 0)]),
///             vec![Access::simple("A", 2, &[(0, 0), (1, 0)])],
///         ),
///     ],
/// )
/// .unwrap();
/// assert_eq!(nest.dim(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LoopNest {
    name: String,
    space: IterSpace,
    stmts: Vec<Stmt>,
}

impl LoopNest {
    /// Build a nest, validating that every access matches the space arity.
    pub fn new(
        name: impl Into<String>,
        space: IterSpace,
        stmts: Vec<Stmt>,
    ) -> Result<LoopNest, Error> {
        if stmts.is_empty() {
            return Err(Error::Empty);
        }
        let n = space.dim();
        for st in &stmts {
            for acc in st.accesses() {
                if acc.rank() > 0 && acc.nest_arity() != n {
                    return Err(Error::DimMismatch {
                        what: "array access",
                        expected: n,
                        found: acc.nest_arity(),
                    });
                }
            }
        }
        Ok(LoopNest {
            name: name.into(),
            space,
            stmts,
        })
    }

    /// Nest name (for reporting).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The index set.
    pub fn space(&self) -> &IterSpace {
        &self.space
    }

    /// Loop depth `n`.
    pub fn dim(&self) -> usize {
        self.space.dim()
    }

    /// The statement body.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Total flops performed by one iteration of the body.
    pub fn flops_per_iteration(&self) -> u64 {
        self.stmts.iter().map(|s| s.flops).sum()
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "loop nest `{}` (depth {}):", self.name, self.dim())?;
        for (j, _) in (0..self.dim()).enumerate() {
            writeln!(
                f,
                "{:indent$}for I{} = {} to {}",
                "",
                j,
                self.space.lower(j),
                self.space.upper(j),
                indent = 2 * j
            )?;
        }
        for s in &self.stmts {
            writeln!(f, "{:indent$}{s};", "", indent = 2 * self.dim())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> LoopNest {
        LoopNest::new(
            "L1",
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![
                Stmt::assign(
                    Access::simple("A", 2, &[(0, 1), (1, 1)]),
                    vec![
                        Access::simple("A", 2, &[(0, 1), (1, 0)]),
                        Access::simple("B", 2, &[(0, 0), (1, 0)]),
                    ],
                ),
                Stmt::assign(
                    Access::simple("B", 2, &[(0, 1), (1, 0)]),
                    vec![Access::simple("A", 2, &[(0, 0), (1, 0)])],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction() {
        let nest = l1();
        assert_eq!(nest.dim(), 2);
        assert_eq!(nest.stmts().len(), 2);
        assert_eq!(nest.name(), "L1");
        assert_eq!(nest.flops_per_iteration(), 3);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let bad = LoopNest::new(
            "bad",
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![Stmt::assign(Access::simple("A", 3, &[(0, 0)]), vec![])],
        );
        assert!(matches!(bad, Err(Error::DimMismatch { .. })));
    }

    #[test]
    fn empty_body_rejected() {
        let bad = LoopNest::new("bad", IterSpace::rect(&[4]).unwrap(), vec![]);
        assert_eq!(bad.unwrap_err(), Error::Empty);
    }

    #[test]
    fn stmt_accessors() {
        let nest = l1();
        let s1 = &nest.stmts()[0];
        assert_eq!(s1.write().array(), "A");
        assert_eq!(s1.reads().len(), 2);
        assert_eq!(s1.accesses().count(), 3);
        assert_eq!(s1.clone().with_flops(7).flops, 7);
    }

    #[test]
    fn display_contains_structure() {
        let out = l1().to_string();
        assert!(out.contains("for I0"));
        assert!(out.contains("A[i+1,j+1] := f(A[i+1,j], B[i,j]);"));
    }
}
