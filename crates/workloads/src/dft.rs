//! Discrete Fourier transform as a doubly nested loop.
//!
//! `X[i] = Σ_j W^{ij} x[j]` has the same dependence skeleton as
//! matrix–vector multiplication once the twiddle factor is propagated:
//! the input sample `x[j]` is reused across outputs (`(1,0)`) and the
//! accumulation runs along `j` (`(0,1)`). §I lists the DFT among the
//! algorithms that independent partitioning serializes.

use crate::Workload;
use loom_loopir::sem::Expr;
use loom_loopir::{Access, IterSpace, LoopNest, Stmt};

/// DFT of length `n` (an `n × n` iteration space).
pub fn workload(n: i64) -> Workload {
    let nest = LoopNest::new(
        "dft",
        IterSpace::rect(&[n, n]).expect("positive extent"),
        vec![Stmt::assign(
            Access::simple("X", 2, &[(0, 0)]),
            vec![
                Access::simple("X", 2, &[(0, 0)]),
                Access::simple("x", 2, &[(1, 0)]),
            ],
        )
        .with_flops(4) // complex multiply–add ≈ 4 real flops
        .with_expr(Expr::add(Expr::Read(0), Expr::Read(1)))],
    )
    .expect("dft is well-formed");
    Workload {
        nest,
        deps: vec![vec![0, 1], vec![1, 0]],
        pi: vec![1, 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_verify() {
        workload(8).verified_deps();
    }

    #[test]
    fn matches_matvec_skeleton() {
        assert_eq!(workload(8).deps, crate::matvec::workload(8).deps);
    }
}
