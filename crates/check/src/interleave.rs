//! Rules `LC013`/`LC014` — the interleaving engine: a stateless model
//! checker over the generated SPMD program's message semantics.
//!
//! The enumerative scan (`LC005`/`LC007`) and the symbolic engine
//! (`LC011`/`LC012`) both reason about *one* canonical execution. This
//! module asks the stronger question: does the program behave the same
//! under **every** interleaving the blocking-receive semantics allows?
//! Two properties are checked:
//!
//! * **`LC013` deadlock-freedom** — no reachable state leaves every
//!   unfinished processor blocked on a receive. A violation comes back
//!   with a minimal (shortest-found) counterexample trace rendered
//!   through [`Span::Trace`].
//! * **`LC014` determinacy** — the gathered final memory is the same
//!   for every explored interleaving, and equals the sequential
//!   oracle's. Explored schedules are replayed through
//!   [`loom_codegen::run_schedule`] and compared by
//!   [`Memory::digest`](loom_exec::Memory::digest), falling back to
//!   [`loom_exec::equivalent`] to render the first divergent element.
//!
//! # Dynamic partial-order reduction
//!
//! Naive enumeration branches over every enabled processor at every
//! step — factorial in the number of messages. The explorer instead
//! runs Flanagan–Godefroid dynamic partial-order reduction (DPOR):
//! a depth-first walk that executes *one* interleaving at a time,
//! detects races against earlier trace events with vector clocks, and
//! plants backtrack points only where reordering two **dependent**
//! transitions could reach a new equivalence class. Sleep sets prune
//! re-exploration of independent siblings.
//!
//! The dependency relation is exact for the interpreter's semantics:
//! two transitions conflict iff their [`Op::mailbox_key`] sets
//! intersect — the mailbox is a map over `(destination, tag)`, so a
//! send/send pair on the same key races (overwrite), send/recv on the
//! same key races (enabling), and everything else commutes.
//!
//! # Protocol-line macro-transitions
//!
//! When [`SpmdProgram::unique_tags`] holds — true for every program
//! `loom-codegen` emits, and exactly the property the `LC011` protocol
//! summaries are built on — no two sends and no two receives share a
//! mailbox key, so co-enabled transitions always commute and the whole
//! program is a Kahn network: one interleaving per equivalence class.
//! The explorer exploits this by batching each transition into a
//! *macro-step* (run a processor through computes, sends, and already-
//! satisfiable receives until it blocks), which makes the DPOR state
//! count track protocol lines instead of individual messages. For
//! mutated or hand-built programs with duplicate keys it falls back to
//! granular transitions (one communication op each) with full race
//! detection.

use crate::diag::{Diagnostic, RuleId, Span};
use loom_codegen::gen::Codegen;
use loom_codegen::ops::{Op, SpmdProgram, Tag};
use loom_codegen::run_schedule;
use loom_exec::memory::address_hash_init;
use loom_exec::{equivalent, sequential, Divergence};
use loom_loopir::LoopNest;
use loom_obs::SplitMix64;
use std::collections::{BTreeMap, BTreeSet};

/// A mailbox slot: `(destination processor, tag)`.
type Key = (u32, Tag);

/// A per-processor vector clock.
type Clock = Vec<u64>;

/// Exploration budgets. The defaults comfortably cover the builtin
/// workloads at interleaving-check sizes; a truncated exploration is
/// reported as an `LC013` warning, never silently.
#[derive(Clone, Debug)]
pub struct InterleaveOptions {
    /// Stop after this many complete interleavings (equivalence-class
    /// representatives or deadlocks).
    pub max_interleavings: u64,
    /// Stop after this many executed macro-transitions.
    pub max_transitions: u64,
    /// Budget for the naive cross-check enumeration (0 disables it).
    pub naive_budget: u64,
    /// How many explored schedules to replay for determinacy.
    pub max_replays: usize,
}

impl Default for InterleaveOptions {
    fn default() -> InterleaveOptions {
        InterleaveOptions {
            max_interleavings: 4096,
            max_transitions: 1_000_000,
            naive_budget: 2048,
            max_replays: 8,
        }
    }
}

/// Counters the exploration emits (surfaced as `check.interleave.*`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InterleaveStats {
    /// Complete interleavings DPOR executed (classes + deadlocks).
    pub explored: u64,
    /// Interleavings the naive enumeration counted (0 if disabled).
    pub naive: u64,
    /// Macro-transitions executed.
    pub transitions: u64,
    /// Branches pruned by sleep sets.
    pub sleep_skips: u64,
    /// Deadlocked terminal states found.
    pub deadlocks: u64,
    /// Schedules replayed for determinacy.
    pub replays: u64,
    /// `true` iff DPOR hit a budget before exhausting the space.
    pub truncated: bool,
    /// `true` iff the naive enumeration hit its budget.
    pub naive_truncated: bool,
}

/// A reachable deadlock: the macro-step trace that leads there and the
/// receives left blocked.
#[derive(Clone, Debug)]
pub struct DeadlockWitness {
    /// `(proc, first op index, one past last op index)` per macro-step.
    pub steps: Vec<(u32, usize, usize)>,
    /// `(proc, op index, tag)` for each blocked receive.
    pub blocked: Vec<(u32, usize, Tag)>,
}

impl DeadlockWitness {
    fn ops(&self) -> usize {
        self.steps.iter().map(|&(_, lo, hi)| hi - lo).sum()
    }
}

/// What an exploration found.
#[derive(Clone, Debug, Default)]
pub struct Exploration {
    /// Completed (non-deadlocked) interleavings.
    pub completed: u64,
    /// The shortest deadlock witness found, if any.
    pub deadlock: Option<DeadlockWitness>,
    /// Op-level schedules of the first few completed interleavings
    /// (capped at [`InterleaveOptions::max_replays`]).
    pub schedules: Vec<Vec<u32>>,
}

/// A message in flight: the sender's vector-clock snapshot (joined by
/// the receive, maintaining happens-before) and the trace index of the
/// sending event (so race detection can tell the *enabling* send of a
/// receive apart from unrelated same-key sends).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Msg {
    clock: Clock,
    sender: usize,
}

/// The model-checker state: program counters plus the mailbox,
/// structurally identical to the interpreter's payload mailbox
/// (keyed map, insert overwrites, remove on receive).
#[derive(Clone, Debug, PartialEq, Eq)]
struct MState {
    pcs: Vec<usize>,
    mailbox: BTreeMap<Key, Msg>,
}

impl MState {
    fn initial(n: usize) -> MState {
        MState {
            pcs: vec![0; n],
            mailbox: BTreeMap::new(),
        }
    }

    fn finished(&self, prog: &SpmdProgram) -> bool {
        self.pcs
            .iter()
            .enumerate()
            .all(|(p, &pc)| pc >= prog.per_proc[p].len())
    }
}

/// Can processor `p` make progress from `st`? Computes and sends are
/// always enabled; a receive needs its message in the mailbox.
fn proc_enabled(prog: &SpmdProgram, st: &MState, p: usize) -> bool {
    match prog.per_proc[p].get(st.pcs[p]) {
        None => false,
        Some(Op::Recv { from: _, tag }) => st.mailbox.contains_key(&(p as u32, *tag)),
        Some(_) => true,
    }
}

/// The mailbox key of `p`'s next communication op, if any — what `p`'s
/// next transition would touch, used for sleep-set filtering.
fn next_comm_key(prog: &SpmdProgram, st: &MState, p: usize) -> Option<Key> {
    prog.per_proc[p][st.pcs[p]..]
        .iter()
        .find_map(|op| op.mailbox_key(p as u32))
}

/// What one macro-transition executed.
struct StepOut {
    /// Mailbox keys touched (sends and receives).
    keys: Vec<Key>,
    /// Trace indices of the send events whose messages this step's
    /// receives consumed.
    consumed: Vec<usize>,
    lo: usize,
    hi: usize,
}

/// Execute one macro-transition of processor `p`. In `batched` mode the
/// processor runs until it blocks or finishes (sound only under unique
/// tags); otherwise it performs at most one communication op plus any
/// leading/trailing computes. When `clocks` is `Some`, vector clocks
/// are maintained (tick on start, join sender snapshots on receive);
/// the naive enumerator passes `None`. `depth` is this event's trace
/// index, stamped on the messages it sends.
fn macro_step(
    prog: &SpmdProgram,
    st: &mut MState,
    mut clocks: Option<&mut Vec<Clock>>,
    p: usize,
    batched: bool,
    depth: usize,
) -> StepOut {
    let ops = &prog.per_proc[p];
    let lo = st.pcs[p];
    if let Some(c) = clocks.as_deref_mut() {
        c[p][p] += 1;
    }
    let mut keys = Vec::new();
    let mut consumed = Vec::new();
    let mut comm_done = false;
    while st.pcs[p] < ops.len() {
        match &ops[st.pcs[p]] {
            Op::Compute { .. } => st.pcs[p] += 1,
            Op::Send { to, tag } => {
                if comm_done && !batched {
                    break;
                }
                let clock = clocks.as_deref().map(|c| c[p].clone()).unwrap_or_default();
                st.mailbox.insert(
                    (*to, *tag),
                    Msg {
                        clock,
                        sender: depth,
                    },
                );
                keys.push((*to, *tag));
                st.pcs[p] += 1;
                comm_done = true;
            }
            Op::Recv { from: _, tag } => {
                if comm_done && !batched {
                    break;
                }
                let key = (p as u32, *tag);
                match st.mailbox.remove(&key) {
                    Some(msg) => {
                        if let Some(c) = clocks.as_deref_mut() {
                            for (mine, theirs) in c[p].iter_mut().zip(&msg.clock) {
                                *mine = (*mine).max(*theirs);
                            }
                        }
                        keys.push(key);
                        consumed.push(msg.sender);
                        st.pcs[p] += 1;
                        comm_done = true;
                    }
                    None => break,
                }
            }
        }
    }
    StepOut {
        keys,
        consumed,
        lo,
        hi: st.pcs[p],
    }
}

/// One executed macro-transition in the current DPOR trace.
#[derive(Clone, Debug)]
struct Executed {
    proc: usize,
    keys: Vec<Key>,
    /// The executing processor's clock *after* the step — the event's
    /// vector timestamp.
    clock: Clock,
    lo: usize,
    hi: usize,
}

/// A DFS frame: the state *before* any transition at this depth, plus
/// the persistent-set bookkeeping.
struct Frame {
    state: MState,
    clocks: Vec<Clock>,
    enabled: Vec<usize>,
    backtrack: BTreeSet<usize>,
    done: BTreeSet<usize>,
    sleep: BTreeSet<usize>,
}

fn componentwise_leq(a: &Clock, b: &Clock) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

fn keys_intersect(a: &[Key], b: &[Key]) -> bool {
    a.iter().any(|k| b.contains(k))
}

fn expand_schedule(trace: &[Executed], last: &Executed) -> Vec<u32> {
    trace
        .iter()
        .chain(std::iter::once(last))
        .flat_map(|e| std::iter::repeat_n(e.proc as u32, e.hi - e.lo))
        .collect()
}

fn compress_steps(trace: &[Executed], last: &Executed) -> Vec<(u32, usize, usize)> {
    trace
        .iter()
        .chain(std::iter::once(last))
        .map(|e| (e.proc as u32, e.lo, e.hi))
        .collect()
}

fn make_frame(
    prog: &SpmdProgram,
    state: MState,
    clocks: Vec<Clock>,
    sleep: BTreeSet<usize>,
) -> Frame {
    let n = prog.num_procs();
    let enabled: Vec<usize> = (0..n).filter(|&q| proc_enabled(prog, &state, q)).collect();
    let mut backtrack = BTreeSet::new();
    // Seed the persistent set with one enabled, non-sleeping processor;
    // races discovered deeper in the tree grow it.
    if let Some(&q) = enabled
        .iter()
        .find(|q| !sleep.contains(q))
        .or_else(|| enabled.first())
    {
        backtrack.insert(q);
    }
    Frame {
        state,
        clocks,
        enabled,
        backtrack,
        done: BTreeSet::new(),
        sleep,
    }
}

/// Record a terminal state (all processors blocked or finished).
fn record_terminal(
    prog: &SpmdProgram,
    state: &MState,
    trace: &[Executed],
    last: &Executed,
    opts: &InterleaveOptions,
    stats: &mut InterleaveStats,
    out: &mut Exploration,
) {
    stats.explored += 1;
    if state.finished(prog) {
        out.completed += 1;
        if out.schedules.len() < opts.max_replays {
            out.schedules.push(expand_schedule(trace, last));
        }
        return;
    }
    stats.deadlocks += 1;
    let witness = DeadlockWitness {
        steps: compress_steps(trace, last),
        blocked: state
            .pcs
            .iter()
            .enumerate()
            .filter(|&(p, &pc)| pc < prog.per_proc[p].len())
            .map(|(p, &pc)| match prog.per_proc[p][pc] {
                // Only a receive can be stuck: everything else is
                // always enabled.
                Op::Recv { from: _, tag } => (p as u32, pc, tag),
                _ => unreachable!("non-receive op cannot block"),
            })
            .collect(),
    };
    let better = out
        .deadlock
        .as_ref()
        .is_none_or(|best| witness.ops() < best.ops());
    if better {
        out.deadlock = Some(witness);
    }
}

/// Explore the program's interleavings with DPOR. Sound and complete up
/// to the budgets: every Mazurkiewicz equivalence class gets at least
/// one representative, so a clean exploration proves deadlock-freedom
/// for every interleaving, not just the explored ones.
pub fn explore_dpor(
    prog: &SpmdProgram,
    opts: &InterleaveOptions,
    stats: &mut InterleaveStats,
) -> Exploration {
    let n = prog.num_procs();
    let batched = prog.unique_tags();
    let mut out = Exploration::default();
    let root = make_frame(
        prog,
        MState::initial(n),
        vec![vec![0; n]; n],
        BTreeSet::new(),
    );
    if root.enabled.is_empty() {
        // Degenerate: empty program (completed) or instant deadlock.
        let nothing = Executed {
            proc: 0,
            keys: Vec::new(),
            clock: vec![0; n],
            lo: 0,
            hi: 0,
        };
        record_terminal(prog, &root.state, &[], &nothing, opts, stats, &mut out);
        return out;
    }
    let mut frames: Vec<Frame> = vec![root];
    let mut trace: Vec<Executed> = Vec::new();

    while let Some(top) = frames.last_mut() {
        let candidate = top
            .backtrack
            .iter()
            .copied()
            .find(|q| !top.done.contains(q));
        let Some(p) = candidate else {
            frames.pop();
            trace.pop();
            continue;
        };
        top.done.insert(p);
        if top.sleep.contains(&p) {
            stats.sleep_skips += 1;
            continue;
        }
        if stats.explored >= opts.max_interleavings || stats.transitions >= opts.max_transitions {
            stats.truncated = true;
            break;
        }

        // Execute p's macro-transition from a copy of this frame.
        let (mut state, mut clocks, pre_clock, parent_sleep) = {
            let f = frames.last().expect("frame present");
            let sleeping: Vec<(usize, Option<Key>)> = f
                .sleep
                .iter()
                .chain(f.done.iter())
                .filter(|&&q| q != p)
                .map(|&q| (q, next_comm_key(prog, &f.state, q)))
                .collect();
            (
                f.state.clone(),
                f.clocks.clone(),
                f.clocks[p].clone(),
                sleeping,
            )
        };
        let step = macro_step(prog, &mut state, Some(&mut clocks), p, batched, trace.len());
        stats.transitions += 1;
        let exec = Executed {
            proc: p,
            keys: step.keys,
            clock: clocks[p].clone(),
            lo: step.lo,
            hi: step.hi,
        };

        // Race detection (classical DPOR shape): an earlier event with
        // an intersecting key set that is not already in p's causal
        // past — judged against p's *pre-step* clock, so the direct
        // enabling join of this very step does not mask the race —
        // could have run on the other side of this transition; plant a
        // backtrack point at its pre-state frame. Enabling pairs (the
        // send whose message a receive consumed, `step.consumed`) are
        // special: swapping them is only meaningful when an *older*
        // message for the same key existed before the send (the
        // overwrite case — the receive could have consumed that one
        // instead). Under unique tags no key is ever resent, so no
        // backtrack point is ever planted in batched mode and the
        // explorer visits exactly one interleaving per Kahn network.
        for (i, earlier) in trace.iter().enumerate() {
            if earlier.proc == p
                || !keys_intersect(&earlier.keys, &exec.keys)
                || componentwise_leq(&earlier.clock, &pre_clock)
            {
                continue;
            }
            let overwrite_alternative = earlier
                .keys
                .iter()
                .any(|k| exec.keys.contains(k) && frames[i].state.mailbox.contains_key(k));
            if step.consumed.contains(&i) && !overwrite_alternative {
                continue;
            }
            let racing_frame = &mut frames[i];
            if racing_frame.enabled.contains(&p) {
                racing_frame.backtrack.insert(p);
            } else {
                // p was not runnable before the racing event: schedule
                // every then-enabled alternative (conservative
                // persistent-set fallback).
                let everyone: Vec<usize> = racing_frame.enabled.clone();
                racing_frame.backtrack.extend(everyone);
            }
        }

        // Sleep set for the child: siblings already covered stay
        // asleep while they remain independent of what just ran.
        let child_sleep: BTreeSet<usize> = parent_sleep
            .iter()
            .filter(|(_, key)| match key {
                None => true,
                Some(k) => !exec.keys.contains(k),
            })
            .map(|&(q, _)| q)
            .collect();

        let child = make_frame(prog, state, clocks, child_sleep);
        if child.enabled.is_empty() {
            record_terminal(prog, &child.state, &trace, &exec, opts, stats, &mut out);
            continue;
        }
        if child.enabled.iter().all(|q| child.sleep.contains(q)) {
            // Sleep-blocked: every continuation is a reordering of
            // already-explored independent transitions.
            stats.sleep_skips += 1;
            continue;
        }
        frames.push(child);
        trace.push(exec);
    }
    out
}

/// What the naive (no-reduction) enumeration found.
#[derive(Clone, Debug, Default)]
pub struct NaiveResult {
    /// Terminal states reached (all interleavings, no dedup).
    pub interleavings: u64,
    /// `true` iff some interleaving deadlocks.
    pub deadlock: bool,
    /// `true` iff the budget cut the enumeration short.
    pub truncated: bool,
    /// Op-level schedules of the first few completed interleavings.
    pub schedules: Vec<Vec<u32>>,
}

/// Enumerate **all** interleavings at the same macro-transition
/// granularity as the DPOR explorer, without any reduction. This is
/// the ground truth the property tests compare against, and the
/// baseline for the `check.interleave.naive` counter: on any program
/// with concurrency, `explored < naive` is the measurable win of the
/// partial-order reduction.
pub fn enumerate_naive(prog: &SpmdProgram, budget: u64, keep: usize) -> NaiveResult {
    struct NFrame {
        state: MState,
        enabled: Vec<usize>,
        next: usize,
    }
    let n = prog.num_procs();
    let batched = prog.unique_tags();
    let mut res = NaiveResult::default();
    let enabled0: Vec<usize> = (0..n)
        .filter(|&q| proc_enabled(prog, &MState::initial(n), q))
        .collect();
    if enabled0.is_empty() {
        res.interleavings = 1;
        res.deadlock = !MState::initial(n).finished(prog);
        if !res.deadlock && keep > 0 {
            res.schedules.push(Vec::new());
        }
        return res;
    }
    let mut frames = vec![NFrame {
        state: MState::initial(n),
        enabled: enabled0,
        next: 0,
    }];
    let mut sched: Vec<(u32, usize, usize)> = Vec::new();
    while let Some(top) = frames.last_mut() {
        if top.next >= top.enabled.len() {
            frames.pop();
            sched.pop();
            continue;
        }
        let p = top.enabled[top.next];
        top.next += 1;
        let mut state = top.state.clone();
        let StepOut { lo, hi, .. } = macro_step(prog, &mut state, None, p, batched, 0);
        let enabled: Vec<usize> = (0..n).filter(|&q| proc_enabled(prog, &state, q)).collect();
        if enabled.is_empty() {
            res.interleavings += 1;
            if state.finished(prog) {
                if res.schedules.len() < keep {
                    let mut s: Vec<u32> = Vec::new();
                    for &(q, l, h) in sched.iter().chain(std::iter::once(&(p as u32, lo, hi))) {
                        s.extend(std::iter::repeat_n(q, h - l));
                    }
                    res.schedules.push(s);
                }
            } else {
                res.deadlock = true;
            }
            if res.interleavings >= budget {
                res.truncated = true;
                break;
            }
            continue;
        }
        frames.push(NFrame {
            state,
            enabled,
            next: 0,
        });
        sched.push((p as u32, lo, hi));
    }
    res
}

/// Program mutations for counterexample and cross-validation testing.
/// Each one perturbs the communication structure in a way with a known
/// expected verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Delete one `Send` — its receive can never be satisfied, so some
    /// (indeed every) interleaving deadlocks (`LC013`).
    DropSend,
    /// Duplicate one `Send` in place — the key is no longer unique, so
    /// the explorer must fall back to granular transitions and explore
    /// more than one class; determinacy still holds (the duplicate
    /// carries the same payload).
    DupSend,
    /// Delete one `Recv` — the consumer proceeds with stale local
    /// data, so replays diverge from the sequential oracle (`LC014`),
    /// and the orphaned message is flagged by the scan.
    DropRecv,
    /// Swap a `Send` with the op before it when that op is the
    /// `Compute` producing its payload — the message now carries the
    /// pre-compute value, a determinacy/oracle divergence (`LC014`).
    SwapSendEarlier,
}

impl Mutation {
    /// All mutation kinds, for sweep tests.
    pub fn all() -> [Mutation; 4] {
        [
            Mutation::DropSend,
            Mutation::DupSend,
            Mutation::DropRecv,
            Mutation::SwapSendEarlier,
        ]
    }
}

/// Apply `mutation` to a random eligible site chosen by `seed`.
/// Returns `None` if the program has no eligible site (e.g. no
/// messages at all).
pub fn mutate_program(prog: &SpmdProgram, mutation: Mutation, seed: u64) -> Option<SpmdProgram> {
    let mut rng = SplitMix64::new(seed);
    let mut sites: Vec<(usize, usize)> = Vec::new();
    for (p, ops) in prog.per_proc.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            let eligible = match mutation {
                Mutation::DropSend | Mutation::DupSend => matches!(op, Op::Send { .. }),
                Mutation::DropRecv => matches!(op, Op::Recv { .. }),
                Mutation::SwapSendEarlier => {
                    i > 0
                        && matches!(op, Op::Send { .. })
                        && matches!(ops[i - 1], Op::Compute { .. })
                }
            };
            if eligible {
                sites.push((p, i));
            }
        }
    }
    if sites.is_empty() {
        return None;
    }
    let (p, i) = sites[rng.below(sites.len() as u64) as usize];
    let mut out = prog.clone();
    match mutation {
        Mutation::DropSend | Mutation::DropRecv => {
            out.per_proc[p].remove(i);
        }
        Mutation::DupSend => {
            let dup = out.per_proc[p][i].clone();
            out.per_proc[p].insert(i, dup);
        }
        Mutation::SwapSendEarlier => {
            out.per_proc[p].swap(i - 1, i);
        }
    }
    Some(out)
}

fn tag_desc(tag: Tag) -> String {
    format!("(source point {}, dep {})", tag.src_point, tag.dep)
}

/// Run the `LC013`/`LC014` interleaving checks over a generated
/// program. `stats` receives the exploration counters whether or not
/// diagnostics fire.
pub fn check_interleavings(
    nest: &LoopNest,
    cg: &Codegen,
    opts: &InterleaveOptions,
    stats: &mut InterleaveStats,
) -> Vec<Diagnostic> {
    let prog = &cg.program;
    let mut out = Vec::new();
    let expl = explore_dpor(prog, opts, stats);

    if opts.naive_budget > 0 {
        let naive = enumerate_naive(prog, opts.naive_budget, 0);
        stats.naive = naive.interleavings;
        stats.naive_truncated = naive.truncated;
        if !stats.truncated && !naive.truncated && naive.deadlock != expl.deadlock.is_some() {
            // The reduction and the ground truth must agree; a
            // disagreement is a checker bug, surfaced loudly.
            out.push(Diagnostic::error(
                RuleId::InterleavingDeadlock,
                Span::Nest,
                "internal: DPOR and naive enumeration disagree on deadlock reachability",
            ));
        }
    }

    // LC013 — deadlock-freedom under every interleaving.
    if let Some(w) = &expl.deadlock {
        let whom = w
            .blocked
            .iter()
            .map(|&(p, _, tag)| format!("P{p} waits for {}", tag_desc(tag)))
            .collect::<Vec<_>>()
            .join("; ");
        out.push(Diagnostic::error(
            RuleId::InterleavingDeadlock,
            Span::Trace {
                steps: w.steps.clone(),
            },
            format!(
                "deadlock reachable after {} ops ({} macro-steps): {whom}; \
                 no enabled processor remains",
                w.ops(),
                w.steps.len(),
            ),
        ));
        for &(p, op, tag) in w.blocked.iter().take(4) {
            out.push(Diagnostic::info(
                RuleId::InterleavingDeadlock,
                Span::ProgramOp { proc: p, op },
                format!(
                    "P{p} blocks here: receive of {} is never satisfied in this interleaving",
                    tag_desc(tag)
                ),
            ));
        }
    } else if stats.truncated {
        out.push(Diagnostic::warning(
            RuleId::InterleavingDeadlock,
            Span::Nest,
            format!(
                "exploration truncated after {} interleavings / {} transitions; \
                 deadlock-freedom holds on the explored prefix only",
                stats.explored, stats.transitions
            ),
        ));
    }

    // LC014 — determinacy: replay the explored schedules and compare
    // final memories with each other and with the sequential oracle.
    if expl.deadlock.is_none() {
        let mut first: Option<(Vec<u32>, loom_codegen::interp::RunResult)> = None;
        for sched in &expl.schedules {
            match run_schedule(nest, cg, sched, &address_hash_init) {
                Ok(run) => {
                    stats.replays += 1;
                    match &first {
                        None => first = Some((sched.clone(), run)),
                        Some((_, base)) => {
                            if base.gathered.digest() != run.gathered.digest() {
                                let detail = match equivalent(&base.gathered, &run.gathered) {
                                    Err(Divergence::ValueMismatch {
                                        array,
                                        element,
                                        left,
                                        right,
                                    }) => {
                                        let msg = format!(
                                            "two interleavings disagree: {left:?} vs {right:?}"
                                        );
                                        (Span::Element { array, element }, msg)
                                    }
                                    _ => (
                                        Span::Nest,
                                        "two interleavings produce different final memories"
                                            .to_string(),
                                    ),
                                };
                                out.push(Diagnostic::error(
                                    RuleId::InterleavingDeterminacy,
                                    detail.0,
                                    format!(
                                        "{}; the program's result depends on message timing",
                                        detail.1
                                    ),
                                ));
                                break;
                            }
                        }
                    }
                }
                Err(e) => {
                    out.push(Diagnostic::info(
                        RuleId::InterleavingDeterminacy,
                        Span::Nest,
                        format!("replay skipped: {e}"),
                    ));
                    break;
                }
            }
        }
        if let Some((_, base)) = &first {
            let serial = sequential(nest, &address_hash_init);
            if let Err(Divergence::ValueMismatch {
                array,
                element,
                left,
                right,
            }) = equivalent(&base.gathered, &serial)
            {
                out.push(Diagnostic::error(
                    RuleId::InterleavingDeterminacy,
                    Span::Element { array, element },
                    format!(
                        "replayed interleaving computes {left:?} but the sequential oracle \
                         computes {right:?}; the parallel program is not equivalent to the nest"
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(src: u32, dep: u16) -> Tag {
        Tag {
            src_point: src,
            dep,
        }
    }

    /// Two independent producer→consumer pairs: 4 procs, 2 messages,
    /// unique tags.
    fn two_pairs() -> SpmdProgram {
        SpmdProgram {
            points: vec![vec![0], vec![1], vec![2], vec![3]],
            per_proc: vec![
                vec![
                    Op::Compute { point: 0 },
                    Op::Send {
                        to: 1,
                        tag: tag(0, 0),
                    },
                ],
                vec![
                    Op::Recv {
                        from: 0,
                        tag: tag(0, 0),
                    },
                    Op::Compute { point: 1 },
                ],
                vec![
                    Op::Compute { point: 2 },
                    Op::Send {
                        to: 3,
                        tag: tag(2, 0),
                    },
                ],
                vec![
                    Op::Recv {
                        from: 2,
                        tag: tag(2, 0),
                    },
                    Op::Compute { point: 3 },
                ],
            ],
        }
    }

    #[test]
    fn batched_dpor_explores_one_class_naive_explodes() {
        let prog = two_pairs();
        assert!(prog.unique_tags());
        let opts = InterleaveOptions::default();
        let mut stats = InterleaveStats::default();
        let expl = explore_dpor(&prog, &opts, &mut stats);
        assert_eq!(stats.explored, 1, "Kahn network: one class");
        assert!(expl.deadlock.is_none());
        assert_eq!(expl.completed, 1);
        let naive = enumerate_naive(&prog, 10_000, 0);
        assert!(!naive.deadlock);
        assert!(
            naive.interleavings > stats.explored,
            "reduction must beat naive: {} vs {}",
            naive.interleavings,
            stats.explored
        );
    }

    #[test]
    fn dropped_send_deadlocks_with_witness() {
        let mut prog = two_pairs();
        // Drop P0's send: P1 blocks forever.
        prog.per_proc[0].pop();
        let opts = InterleaveOptions::default();
        let mut stats = InterleaveStats::default();
        let expl = explore_dpor(&prog, &opts, &mut stats);
        let w = expl.deadlock.expect("deadlock found");
        assert!(stats.deadlocks >= 1);
        assert_eq!(w.blocked, vec![(1, 0, tag(0, 0))]);
        let naive = enumerate_naive(&prog, 10_000, 0);
        assert!(naive.deadlock, "ground truth agrees");
    }

    #[test]
    fn duplicate_key_forces_granular_exploration() {
        // One consumer, two sends with the SAME key: the second send
        // overwrites the slot unless the receive slips in between. The
        // final state is the same either way here, but the explorer
        // must notice the race and explore > 1 class.
        let t = tag(0, 0);
        let prog = SpmdProgram {
            points: vec![vec![0], vec![1]],
            per_proc: vec![
                vec![
                    Op::Compute { point: 0 },
                    Op::Send { to: 1, tag: t },
                    Op::Send { to: 1, tag: t },
                ],
                vec![Op::Recv { from: 0, tag: t }, Op::Compute { point: 1 }],
            ],
        };
        assert!(!prog.unique_tags());
        let opts = InterleaveOptions::default();
        let mut stats = InterleaveStats::default();
        let expl = explore_dpor(&prog, &opts, &mut stats);
        assert!(stats.explored > 1, "race must branch: {stats:?}");
        // One order leaves the second send undelivered (consumer done,
        // message still in the mailbox) — not a deadlock.
        assert!(expl.deadlock.is_none());
        let naive = enumerate_naive(&prog, 10_000, 0);
        assert!(!naive.deadlock);
        assert!(stats.explored <= naive.interleavings);
    }

    #[test]
    fn order_dependent_deadlock_is_found() {
        // P0: send a; send b. P1: recv with key K matching BOTH sends
        // is impossible under tags — instead build the classic shape:
        // two sends with the same key, two receives of that key. If
        // both sends land before the first receive, the second receive
        // starves (the slot was overwritten).
        let t = tag(0, 0);
        let prog = SpmdProgram {
            points: vec![vec![0], vec![1]],
            per_proc: vec![
                vec![Op::Send { to: 1, tag: t }, Op::Send { to: 1, tag: t }],
                vec![Op::Recv { from: 0, tag: t }, Op::Recv { from: 0, tag: t }],
            ],
        };
        let opts = InterleaveOptions::default();
        let mut stats = InterleaveStats::default();
        let expl = explore_dpor(&prog, &opts, &mut stats);
        let naive = enumerate_naive(&prog, 10_000, 0);
        assert!(
            naive.deadlock,
            "send;send;recv;recv starves the second recv"
        );
        assert!(
            expl.deadlock.is_some(),
            "DPOR must find the order-dependent deadlock: {stats:?}"
        );
    }

    #[test]
    fn mutations_have_eligible_sites_and_apply() {
        let prog = two_pairs();
        for m in Mutation::all() {
            let mutated = mutate_program(&prog, m, 7).expect("site exists");
            let before: usize = prog.per_proc.iter().map(Vec::len).sum();
            let after: usize = mutated.per_proc.iter().map(Vec::len).sum();
            match m {
                Mutation::DropSend | Mutation::DropRecv => assert_eq!(after, before - 1),
                Mutation::DupSend => assert_eq!(after, before + 1),
                Mutation::SwapSendEarlier => assert_eq!(after, before),
            }
        }
    }
}
