//! Determinism properties of the rewritten configuration explorer and
//! the simulator's scratch-buffer recycling.
//!
//! The load-bearing invariant (enforced here and by the CI smoke run of
//! `repro_explore`): the parallel, pruned, stage-cached `explore`
//! returns the **byte-identical** ranked candidate list the seed's
//! serial, unpruned `explore_reference` does — for every builtin
//! workload, every thread count, and with pruning on or off. Randomness
//! comes from a seeded [`SplitMix64`] so every run checks the same
//! cases.

use loom_core::explore::{explore_reference, explore_with, ExploreConfig};
use loom_core::MachineOptions;
use loom_machine::{
    simulate, simulate_scratch, simulate_with_faults, simulate_with_faults_scratch, FaultConfig,
    FaultEvent, FaultPlan, MachineParams, Program, RecoveryPolicy, SimConfig, SimReport,
    SimScratch, Topology,
};
use loom_mapping::map_partitioning;
use loom_obs::{Recorder, SplitMix64};
use loom_partition::{partition, PartitionConfig};

fn config(pi_bound: i64, threads: usize, prune: bool) -> ExploreConfig {
    ExploreConfig {
        pi_bound,
        top: 10,
        machine: MachineOptions {
            params: MachineParams::classic_1991(),
            ..Default::default()
        },
        threads,
        prune,
        symbolic: None,
    }
}

#[test]
fn parallel_pruned_explore_matches_serial_unpruned_reference() {
    let dims = [0, 1, 2];
    for w in loom_workloads::all_default() {
        let reference = explore_reference(&w.nest, &dims, &config(1, 1, false)).unwrap();
        for threads in [1, 2, 4, 8] {
            for prune in [false, true] {
                let got = explore_with(
                    &w.nest,
                    &dims,
                    &config(1, threads, prune),
                    &Recorder::disabled(),
                )
                .unwrap();
                assert_eq!(
                    got,
                    reference,
                    "{}: threads={threads} prune={prune} diverged from the seed explorer",
                    w.nest.name()
                );
            }
        }
    }
}

#[test]
fn wider_pi_search_stays_deterministic_on_sampled_workloads() {
    // pi_bound = 2 multiplies the candidate space; keep the runtime sane
    // by sampling three workloads — seeded, so the same three every run.
    let mut rng = SplitMix64::new(0x9e37_79b9);
    let workloads = loom_workloads::all_default();
    let dims = [1, 2];
    for _ in 0..3 {
        let w = &workloads[rng.below(workloads.len() as u64) as usize];
        let reference = explore_reference(&w.nest, &dims, &config(2, 1, false)).unwrap();
        let got = explore_with(&w.nest, &dims, &config(2, 4, true), &Recorder::disabled()).unwrap();
        assert_eq!(got, reference, "{} at pi_bound=2", w.nest.name());
    }
}

#[test]
fn explore_counters_account_for_every_candidate() {
    let w = loom_workloads::matvec::workload(8);
    let rec = Recorder::enabled();
    explore_with(&w.nest, &[0, 1, 2], &config(2, 2, true), &rec).unwrap();
    let counters = rec.counters();
    assert!(counters.contains_key("pool.tasks"), "pool.tasks missing");
    assert!(
        counters.contains_key("pool.workers"),
        "pool.workers missing"
    );
    let candidates = counters["explore.candidates"];
    let simulated = counters["explore.simulated"];
    let pruned = counters["explore.pruned"];
    assert!(candidates > 0);
    // Every candidate is either simulated, pruned, or skipped for a
    // structural reason (no legal mapping at that cube size) — never
    // double-counted.
    assert!(
        simulated + pruned <= candidates,
        "{simulated} + {pruned} > {candidates}"
    );
}

// ---------------------------------------------------------------------
// SimScratch recycling
// ---------------------------------------------------------------------

fn sim_config(cube_dim: usize) -> SimConfig {
    SimConfig {
        params: MachineParams::classic_1991(),
        topology: Topology::Hypercube(cube_dim),
        words_per_arc: 1,
        batch_messages: false,
        link_contention: false,
        record_trace: true,
        collect_metrics: false,
    }
}

/// Map a builtin workload onto the largest cube (≤ dim 3) it fits.
fn program_of(w: &loom_workloads::Workload) -> (Program, usize) {
    let p = partition(
        w.nest.space().clone(),
        w.verified_deps(),
        w.time_fn(),
        &PartitionConfig::default(),
    )
    .unwrap();
    let (cube_dim, mapping) = (0..=3)
        .rev()
        .find_map(|d| map_partitioning(&p, d).ok().map(|m| (d, m)))
        .unwrap();
    let prog = Program::from_partitioning(
        &p,
        mapping.assignment(),
        1 << cube_dim,
        w.nest.flops_per_iteration(),
    );
    (prog, cube_dim)
}

fn assert_reports_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan");
    assert_eq!(a.compute, b.compute, "{what}: compute");
    assert_eq!(a.comm, b.comm, "{what}: comm");
    assert_eq!(a.messages, b.messages, "{what}: messages");
    assert_eq!(a.words, b.words, "{what}: words");
    assert_eq!(a.trace, b.trace, "{what}: trace");
}

#[test]
fn scratch_reuse_is_bit_identical_across_workloads() {
    // One scratch threaded through every simulation, in sequence — each
    // run must match a fresh-buffer run exactly, or buffer recycling is
    // leaking state between candidates.
    let mut scratch = SimScratch::default();
    for w in loom_workloads::all_default() {
        let (prog, cube_dim) = program_of(&w);
        let cfg = sim_config(cube_dim);
        let fresh = simulate(&prog, &cfg).unwrap();
        let reused = simulate_scratch(&prog, &cfg, &mut scratch).unwrap();
        assert_reports_identical(&fresh, &reused, w.nest.name());
    }
}

#[test]
fn scratch_reuse_is_bit_identical_under_faults() {
    let mut scratch = SimScratch::default();
    let mut rng = SplitMix64::new(0xfa_017);
    for w in loom_workloads::all_default() {
        let (prog, cube_dim) = program_of(&w);
        let cfg = sim_config(cube_dim);
        let plan = FaultPlan::message_noise(
            rng.next_u64() >> 1,
            rng.below(120) as u32,
            rng.below(30) as u32,
            rng.below(120) as u32,
        )
        .with_event(FaultEvent::ProcSlow {
            proc: rng.below(1 << cube_dim) as usize,
            factor: 2 + rng.below(3),
            at: rng.below(300),
            until: None,
        });
        let fc = FaultConfig::new(plan, RecoveryPolicy::RetryOnly);
        let fresh = simulate_with_faults(&prog, &cfg, &fc).unwrap();
        let reused = simulate_with_faults_scratch(&prog, &cfg, &fc, &mut scratch).unwrap();
        assert_reports_identical(&fresh, &reused, w.nest.name());
        let (df, dr) = (fresh.degradation.unwrap(), reused.degradation.unwrap());
        assert_eq!(df.faults_hit, dr.faults_hit, "{}", w.nest.name());
        assert_eq!(
            df.degraded_makespan,
            dr.degraded_makespan,
            "{}",
            w.nest.name()
        );
    }
}
