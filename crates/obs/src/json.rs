//! A minimal JSON value: builder, renderer, and parser.
//!
//! Exists so metrics and trace files can be written — and round-trip
//! *validated* in tests — without pulling serde into a workspace that
//! must build offline. Only what the exporters need is implemented:
//! objects keep insertion order, numbers are `i64` or `f64`, and the
//! parser accepts exactly the JSON the renderers produce (plus ordinary
//! interchange JSON: whitespace, escapes, `\uXXXX` with surrogate
//! pairs).

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A float.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // Ticks fit i64 in practice; clamp rather than panic at the rim.
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// A parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Resource limits the parser enforces — JSON inputs (fault plans,
/// `loom obs diff` files) are untrusted, so nesting depth and input
/// size are bounded: violations come back as an ordinary
/// [`ParseError`] instead of a stack overflow or an unbounded
/// allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonLimits {
    /// Largest accepted document, in bytes.
    pub max_input_bytes: usize,
    /// Deepest accepted array/object nesting.
    pub max_depth: usize,
}

impl Default for JsonLimits {
    fn default() -> JsonLimits {
        JsonLimits {
            max_input_bytes: 8 << 20,
            max_depth: 128,
        }
    }
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The value of `key`, when this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element `i`, when this is an array.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The integer value, when this is `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(n) => Some(n),
            _ => None,
        }
    }

    /// The non-negative integer value, when this is a non-negative `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|n| u64::try_from(n).ok())
    }

    /// The numeric value, when this is `Int` or `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(n) => Some(n as f64),
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The string value, when this is `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Render as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render as indented JSON (2 spaces per level).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    let s = format!("{n}");
                    out.push_str(&s);
                    // Keep floats recognizably floats.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (one value plus optional whitespace) under
    /// the default [`JsonLimits`].
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        Json::parse_with_limits(input, &JsonLimits::default())
    }

    /// [`Json::parse`] with explicit resource limits.
    pub fn parse_with_limits(input: &str, limits: &JsonLimits) -> Result<Json, ParseError> {
        if input.len() > limits.max_input_bytes {
            return Err(ParseError {
                message: format!(
                    "input too large: {} bytes (limit {})",
                    input.len(),
                    limits.max_input_bytes
                ),
                offset: 0,
            });
        }
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
            max_depth: limits.max_depth,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    /// Recursion guard for `array`/`object`: nesting past the cap is a
    /// parse error, not a stack overflow.
    fn enter(&mut self) -> Result<(), ParseError> {
        if self.depth >= self.max_depth {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        self.eat(b'{', "expected {")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected :")?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = s.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_limit_boundary() {
        let limits = JsonLimits {
            max_depth: 4,
            ..JsonLimits::default()
        };
        // Exactly at the limit parses...
        let at = format!("{}1{}", "[".repeat(4), "]".repeat(4));
        assert!(Json::parse_with_limits(&at, &limits).is_ok());
        // ...one past it is a typed error, for arrays and objects alike.
        let over = format!("{}1{}", "[".repeat(5), "]".repeat(5));
        let e = Json::parse_with_limits(&over, &limits).unwrap_err();
        assert!(e.message.contains("nesting too deep"), "{e}");
        let obj_over = format!("{}1{}", "{\"k\":".repeat(5), "}".repeat(5));
        let e = Json::parse_with_limits(&obj_over, &limits).unwrap_err();
        assert!(e.message.contains("nesting too deep"), "{e}");
    }

    #[test]
    fn default_depth_limit_stops_deep_nesting() {
        // Far past the default cap: must be an error, not a stack
        // overflow.
        let deep = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting too deep"), "{e}");
    }

    #[test]
    fn input_size_limit_boundary() {
        let limits = JsonLimits {
            max_input_bytes: 8,
            ..JsonLimits::default()
        };
        assert_eq!(
            Json::parse_with_limits("[1,2,33]", &limits).unwrap(),
            Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Int(33)])
        );
        let e = Json::parse_with_limits("[1,2,333]", &limits).unwrap_err();
        assert!(e.message.contains("input too large"), "{e}");
        assert_eq!(e.offset, 0);
    }

    #[test]
    fn sibling_depth_does_not_accumulate() {
        // Depth is nesting, not total container count: many siblings at
        // depth 2 stay parseable under a small cap.
        let limits = JsonLimits {
            max_depth: 2,
            ..JsonLimits::default()
        };
        let many = format!("[{}]", vec!["[1]"; 50].join(","));
        assert!(Json::parse_with_limits(&many, &limits).is_ok());
    }

    #[test]
    fn renders_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::from("loom")),
            ("n", Json::from(3u64)),
            ("ratio", Json::from(0.5)),
            ("tags", Json::Arr(vec![Json::from("a"), Json::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"loom","n":3,"ratio":0.5,"tags":["a",null]}"#
        );
        assert!(v.render_pretty().contains("  \"name\": \"loom\""));
    }

    #[test]
    fn floats_stay_floats() {
        assert_eq!(Json::Num(2.0).render(), "2.0");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Int(2).render(), "2");
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unit\u{1} é 🎯";
        let rendered = Json::Str(s.to_string()).render();
        assert_eq!(Json::parse(&rendered).unwrap(), Json::Str(s.to_string()));
    }

    #[test]
    fn parses_interchange_json() {
        let v = Json::parse(
            r#" { "a" : [ 1, -2.5, true, false, null ],
                  "s" : "\u0041\ud83c\udfaf", "empty": {}, "e": [] } "#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().idx(0).unwrap().as_i64(), Some(1));
        assert_eq!(v.get("a").unwrap().idx(1).unwrap().as_f64(), Some(-2.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("A🎯"));
        assert_eq!(v.get("empty").unwrap().as_obj(), Some(&[][..]));
        assert_eq!(v.get("e").unwrap().as_arr(), Some(&[][..]));
    }

    #[test]
    fn structures_round_trip() {
        let v = Json::obj(vec![
            ("makespan", Json::from(12_345u64)),
            (
                "per_proc",
                Json::Arr(vec![
                    Json::obj(vec![("compute", Json::from(10u64))]),
                    Json::obj(vec![("compute", Json::from(20u64))]),
                ]),
            ),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "\"\\q\"", "1 2", "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// A random string biased toward characters the escaper must handle:
    /// quotes, backslashes, control characters, multi-byte code points.
    fn arbitrary_string(rng: &mut crate::rng::SplitMix64) -> String {
        let len = rng.below(12) as usize;
        (0..len)
            .map(|_| match rng.below(8) {
                0 => '"',
                1 => '\\',
                2 => char::from_u32(rng.below(0x20) as u32).unwrap(),
                3 => 'é',
                4 => '🎯',
                5 => '\u{7f}',
                _ => char::from_u32(0x20 + rng.below(95) as u32).unwrap(),
            })
            .collect()
    }

    /// A random JSON value of bounded depth, exercising every variant.
    fn arbitrary_value(rng: &mut crate::rng::SplitMix64, depth: u64) -> Json {
        let pick = if depth == 0 {
            rng.below(5)
        } else {
            rng.below(7)
        };
        match pick {
            0 => Json::Null,
            1 => Json::Bool(rng.below(2) == 1),
            2 => Json::Int(rng.next_u64() as i64),
            3 => {
                // Finite floats only; NaN/inf render as null by design.
                let v = (rng.range_i64(-1_000_000, 1_000_000) as f64) / 64.0;
                Json::Num(v)
            }
            4 => Json::Str(arbitrary_string(rng)),
            5 => Json::Arr(
                (0..rng.below(4))
                    .map(|_| arbitrary_value(rng, depth - 1))
                    .collect(),
            ),
            _ => Json::Obj(
                (0..rng.below(4))
                    .map(|_| (arbitrary_string(rng), arbitrary_value(rng, depth - 1)))
                    .collect(),
            ),
        }
    }

    #[test]
    fn property_escape_sequences_round_trip() {
        let mut rng = crate::rng::SplitMix64::new(0x005E_D005);
        for case in 0..500 {
            let s = arbitrary_string(&mut rng);
            let v = Json::Str(s.clone());
            let rendered = v.render();
            let back = Json::parse(&rendered)
                .unwrap_or_else(|e| panic!("case {case}: {e} on {rendered:?}"));
            assert_eq!(back, v, "case {case}: {rendered:?}");
        }
    }

    #[test]
    fn property_nested_structures_round_trip() {
        let mut rng = crate::rng::SplitMix64::new(0xB10C_CAFE);
        for case in 0..300 {
            let v = arbitrary_value(&mut rng, 4);
            for rendered in [v.render(), v.render_pretty()] {
                let back = Json::parse(&rendered)
                    .unwrap_or_else(|e| panic!("case {case}: {e} on {rendered:?}"));
                assert_eq!(back, v, "case {case}: {rendered:?}");
            }
        }
    }

    #[test]
    fn accessors_are_typed() {
        let v = Json::parse(r#"{"n": 3}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }
}
