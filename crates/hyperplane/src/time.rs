//! The linear time transformation Π.

use crate::Error;
use loom_loopir::{IterSpace, Point};
use loom_rational::QVec;
use std::fmt;

/// A linear time transformation `Π = (a₁, …, aₙ)`: iteration `x` executes
/// at step `Π·x`.
///
/// ```
/// use loom_hyperplane::TimeFn;
/// let pi = TimeFn::new(vec![1, 1]);
/// assert!(pi.is_legal_for(&[vec![0, 1], vec![1, 0], vec![1, 1]]));
/// assert_eq!(pi.time_of(&[2, 3]), 5);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimeFn {
    coeffs: Vec<i64>,
}

impl TimeFn {
    /// Wrap a coefficient vector.
    pub fn new(coeffs: Vec<i64>) -> TimeFn {
        TimeFn { coeffs }
    }

    /// The wavefront transformation `Π = (1, 1, …, 1)` — legal whenever
    /// all dependences have positive coordinate sums, which holds for all
    /// the paper's example loops.
    pub fn wavefront(n: usize) -> TimeFn {
        TimeFn { coeffs: vec![1; n] }
    }

    /// Coefficients.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// Execution step of an iteration point: `Π·x`.
    pub fn time_of(&self, point: &[i64]) -> i64 {
        assert_eq!(point.len(), self.dim(), "time_of: arity mismatch");
        self.coeffs.iter().zip(point).map(|(&a, &x)| a * x).sum()
    }

    /// `Π·d` for a dependence vector.
    pub fn dot(&self, d: &[i64]) -> i64 {
        self.time_of(d)
    }

    /// `true` iff `Π·d > 0` for every dependence in `deps`.
    pub fn is_legal_for(&self, deps: &[Point]) -> bool {
        deps.iter().all(|d| self.dot(d) > 0)
    }

    /// Check legality, reporting the first violated dependence.
    pub fn check_legal(&self, deps: &[Point]) -> Result<(), Error> {
        for d in deps {
            if d.len() != self.dim() {
                return Err(Error::DimMismatch {
                    expected: self.dim(),
                    found: d.len(),
                });
            }
            if d.iter().all(|&x| x == 0) {
                return Err(Error::ZeroDependence);
            }
            if self.dot(d) <= 0 {
                return Err(Error::Illegal {
                    dependence: d.clone(),
                });
            }
        }
        Ok(())
    }

    /// The smallest and largest step over an index set, or `None` for an
    /// empty space. Exact for any affine-bounded space; rectangular
    /// (constant-bound) spaces use a closed form — the extremes of a
    /// linear `Π·x` over a box decompose per dimension — so sizes whose
    /// lattice could never be walked still sort in O(dim). Coupled
    /// bounds fall back to exact enumeration.
    pub fn step_range(&self, space: &IterSpace) -> Option<(i64, i64)> {
        if space.dim() == self.dim()
            && space.dim() > 0
            && (0..space.dim())
                .all(|j| space.lower(j).is_constant() && space.upper(j).is_constant())
        {
            let (mut lo_sum, mut hi_sum) = (0i64, 0i64);
            for j in 0..space.dim() {
                let lo = space.lower(j).constant_term();
                let hi = space.upper(j).constant_term();
                if lo > hi {
                    return None;
                }
                let (a, b) = (self.coeffs[j] * lo, self.coeffs[j] * hi);
                lo_sum += a.min(b);
                hi_sum += a.max(b);
            }
            return Some((lo_sum, hi_sum));
        }
        let mut range: Option<(i64, i64)> = None;
        for p in space.points() {
            let t = self.time_of(&p);
            range = Some(match range {
                None => (t, t),
                Some((lo, hi)) => (lo.min(t), hi.max(t)),
            });
        }
        range
    }

    /// Number of distinct execution steps (`max − min + 1`) over a space;
    /// 0 for an empty space. Note: counts the step *span*, which for a
    /// connected index set equals the number of populated hyperplanes.
    pub fn steps(&self, space: &IterSpace) -> i64 {
        self.step_range(space).map_or(0, |(lo, hi)| hi - lo + 1)
    }

    /// Π viewed as a rational vector (the projection direction of the
    /// partitioning phase).
    pub fn as_qvec(&self) -> QVec {
        QVec::from_ints(&self.coeffs)
    }
}

impl fmt::Debug for TimeFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for TimeFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Π=(")?;
        for (i, c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legality_paper_l1() {
        let pi = TimeFn::new(vec![1, 1]);
        let d = vec![vec![0, 1], vec![1, 1], vec![1, 0]];
        assert!(pi.is_legal_for(&d));
        assert!(pi.check_legal(&d).is_ok());
        // (1, -1) would break d1 = (0,1)? (1,-1)·(0,1) = -1 ≤ 0.
        let bad = TimeFn::new(vec![1, -1]);
        assert!(!bad.is_legal_for(&d));
        assert_eq!(
            bad.check_legal(&d),
            Err(Error::Illegal {
                dependence: vec![0, 1]
            })
        );
    }

    #[test]
    fn zero_dependence_rejected() {
        let pi = TimeFn::new(vec![1, 1]);
        assert_eq!(pi.check_legal(&[vec![0, 0]]), Err(Error::ZeroDependence));
    }

    #[test]
    fn dim_mismatch_detected() {
        let pi = TimeFn::new(vec![1, 1]);
        assert!(matches!(
            pi.check_legal(&[vec![1, 0, 0]]),
            Err(Error::DimMismatch { .. })
        ));
    }

    #[test]
    fn steps_over_rect() {
        let pi = TimeFn::new(vec![1, 1]);
        let s = IterSpace::rect(&[4, 4]).unwrap();
        // i+j over 0..=3 × 0..=3 spans 0..=6 → 7 hyperplanes (paper Fig. 1).
        assert_eq!(pi.step_range(&s), Some((0, 6)));
        assert_eq!(pi.steps(&s), 7);
    }

    #[test]
    fn steps_matmul() {
        let pi = TimeFn::wavefront(3);
        let s = IterSpace::rect(&[4, 4, 4]).unwrap();
        assert_eq!(pi.steps(&s), 10); // 0..=9
    }

    #[test]
    fn steps_empty_space() {
        let s = IterSpace::rect_bounds(&[1], &[0]).unwrap();
        assert_eq!(TimeFn::new(vec![1]).steps(&s), 0);
    }

    #[test]
    fn display() {
        assert_eq!(TimeFn::new(vec![2, -1]).to_string(), "Π=(2,-1)");
    }
}
