//! Mapping partitioned blocks onto hypercube multiprocessors
//! (Algorithm 2 of the paper), plus baseline mappings and quality
//! metrics.
//!
//! * [`gray`] — reflected binary Gray codes,
//! * [`hypercube`] — the binary n-cube topology,
//! * [`bisect`] — Phase I cluster formation: recursive bisection of the
//!   blocks along the grouping / auxiliary grouping directions,
//! * [`allocate`] — Phase II cluster allocation: concatenated
//!   per-direction Gray codes give each cluster the address of its
//!   processor,
//! * [`baseline`] — naive (block-contiguous) and seeded-random mappings
//!   for comparison,
//! * [`metrics`] — remote traffic, dilation, and link-congestion metrics
//!   for any mapping of a TIG onto a hypercube.
//!
//! ```
//! use loom_mapping::{map_positions, metrics, Hypercube};
//! use loom_partition::Tig;
//! use loom_rational::Ratio;
//!
//! // The paper's Fig. 8: a 4×4 mesh of blocks onto a 3-cube.
//! let positions: Vec<Vec<Ratio>> = (0..16)
//!     .map(|v| vec![Ratio::int(v % 4), Ratio::int(v / 4)])
//!     .collect();
//! let m = map_positions(&positions, 3).unwrap();
//! let q = metrics::evaluate(&Tig::mesh(4, 4), m.assignment(), Hypercube::new(3));
//! assert!((q.mean_dilation() - 1.0).abs() < 1e-9); // nearest-neighbor
//! ```

#![deny(missing_docs)]

pub mod allocate;
pub mod baseline;
pub mod bisect;
pub mod gray;
pub mod hypercube;
pub mod metrics;
pub mod other_targets;

pub use allocate::{map_partitioning, map_positions, Mapping};
pub use bisect::{form_clusters, form_clusters_with_schedule, ClusterFormation};
pub use hypercube::Hypercube;
pub use metrics::MappingQuality;
pub use other_targets::{map_partitioning_mesh, map_partitioning_ring, TargetMapping};

/// Errors raised by the mapping phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// More clusters than blocks: the cube is too large for the TIG.
    CubeTooLarge {
        /// Number of blocks available.
        blocks: usize,
        /// Requested cube dimension.
        cube_dim: usize,
    },
    /// Position table is ragged or empty.
    BadPositions,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::CubeTooLarge { blocks, cube_dim } => write!(
                f,
                "cannot split {blocks} blocks into 2^{cube_dim} non-empty clusters"
            ),
            Error::BadPositions => write!(f, "ragged or empty block-position table"),
        }
    }
}

impl std::error::Error for Error {}
