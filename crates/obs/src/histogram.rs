//! A fixed-size histogram with power-of-two buckets.

/// Counts `u64` samples in buckets `[0]`, `[1]`, `[2,3]`, `[4,7]`, … —
/// 65 buckets cover the whole `u64` range, so recording never allocates
/// or saturates. Tracks count, sum, min, and max exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of a value: 0 for 0, else `floor(log2(v)) + 1`.
    /// Two values share an index iff the histogram cannot tell them
    /// apart, which makes the index a ready-made noise scale: timings
    /// whose indices differ by ≤ 1 are within one power-of-two bucket
    /// of each other.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Non-empty buckets as `(lo, hi, count)` inclusive ranges, in
    /// ascending value order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| match i {
                0 => (0, 0, c),
                64 => (1 << 63, u64::MAX, c),
                _ => (1 << (i - 1), (1 << i) - 1, c),
            })
            .collect()
    }

    /// An upper bound on the `q`-quantile (`0.0 ≤ q ≤ 1.0`), `None`
    /// when empty.
    ///
    /// Walks the buckets until the cumulative count covers `q` of the
    /// samples and returns that bucket's inclusive upper edge, clamped
    /// into `[min, max]` — so `quantile(0.0)` is exactly the minimum,
    /// `quantile(1.0)` never exceeds the maximum, and every value is
    /// within one power-of-two bucket of the true order statistic.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        // Rank of the order statistic we need to cover, in 1..=count.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let hi = match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return Some(hi.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn bucket_boundaries() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(
            buckets,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (1 << 63, u64::MAX, 1),
            ]
        );
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn stats_track_samples() {
        let mut h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.sum(), 60);
        assert_eq!(h.mean(), Some(20.0));
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn quantile_on_empty_and_single_sample() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        let mut h = Histogram::new();
        h.record(10);
        // Every quantile of a one-sample histogram is that sample: the
        // covering bucket is [8, 15] but the clamp pins it to 10.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(10), "q={q}");
        }
    }

    #[test]
    fn quantile_at_power_of_two_boundaries() {
        // Samples sitting exactly on bucket edges: 1, 2, 4, 8. Buckets
        // are [1], [2,3], [4,7], [8,15].
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8] {
            h.record(v);
        }
        // q=0 → min exactly; q=1 → clamped to max exactly.
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(8));
        // Interior quantiles return the covering bucket's upper edge:
        // rank 1 → bucket [1], rank 2 → [2,3], rank 3 → [4,7].
        assert_eq!(h.quantile(0.25), Some(1));
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(0.75), Some(7));
        // The bound property: quantile(q) is never below the true order
        // statistic and never above the next bucket edge.
        let sorted = [1u64, 2, 4, 8];
        for (k, &v) in sorted.iter().enumerate() {
            let q = (k + 1) as f64 / sorted.len() as f64;
            let est = h.quantile(q).unwrap();
            assert!(est >= v, "q={q}: {est} < {v}");
            assert!(
                Histogram::bucket_index(est) <= Histogram::bucket_index(v),
                "q={q}: estimate escapes the sample's bucket"
            );
        }
    }

    #[test]
    fn quantile_zero_heavy() {
        let mut h = Histogram::new();
        for _ in 0..9 {
            h.record(0);
        }
        h.record(1 << 20);
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.quantile(0.9), Some(0));
        assert_eq!(h.quantile(1.0), Some(1 << 20));
    }

    #[test]
    fn bucket_index_is_monotone_on_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        for k in 1..63 {
            let edge = 1u64 << k;
            assert_eq!(
                Histogram::bucket_index(edge),
                Histogram::bucket_index(edge - 1) + 1,
                "edge 2^{k} must open a new bucket"
            );
            assert_eq!(
                Histogram::bucket_index(edge),
                Histogram::bucket_index(2 * edge - 1),
                "2^{k}..2^(k+1)-1 share a bucket"
            );
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(100));
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.min(), Some(1));
    }
}
