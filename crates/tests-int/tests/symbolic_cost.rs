//! Property harness for the symbolic cost engine: the closed-form
//! `T_exec` quasi-polynomials must agree with the cycle-accurate
//! simulator **exactly** — on every builtin workload family across
//! sizes, on the parallel configurations that derive exactly, through
//! `ExploreConfig::symbolic` (byte-identical rankings with honest
//! fallback), and on the paper's Table I reproduced from the forms.

use loom_core::analytic::matvec_exec_terms;
use loom_core::explore::{explore_reference, explore_with, ExploreConfig, SymbolicExplore};
use loom_core::symbolic_cost::{derive, Derivation, DeriveOptions, ProbeCache, SymbolicCost};
use loom_core::{MachineOptions, Pipeline, PipelineConfig};
use loom_machine::MachineParams;
use loom_obs::Recorder;
use loom_workloads::Family;
use std::sync::Arc;

const ALL_FAMILIES: [&str; 10] = [
    "l1",
    "matvec",
    "dft",
    "conv",
    "sor",
    "triangular",
    "matmul",
    "transitive",
    "conv2d",
    "heat2d",
];

/// A machine whose short transients keep most parallel configurations
/// inside one cost regime — the derivation-friendly counterpoint to
/// `classic_1991`'s long pipeline-fill phases.
fn low_latency() -> MachineParams {
    MachineParams {
        t_calc: 3,
        t_start: 2,
        t_comm: 1,
        t_recv: 0,
    }
}

fn machine(params: MachineParams) -> MachineOptions {
    MachineOptions {
        params,
        ..Default::default()
    }
}

/// Derive the closed forms for a builtin family at `target`, sharing
/// nothing: fresh cache, default options unless overridden.
fn derive_builtin(
    name: &str,
    cube_dim: usize,
    target: i64,
    params: MachineParams,
    opts: &DeriveOptions,
) -> (Derivation, Family) {
    let fam = loom_workloads::family_of(name, None).expect("builtin family");
    let w = fam(8);
    let deps = w.verified_deps();
    let pi = w.pi.clone();
    let nest_fam = {
        let fam = fam.clone();
        move |n: i64| fam(n).nest
    };
    let mut cache = ProbeCache::new();
    let d = derive(
        &nest_fam,
        &deps,
        &pi,
        &loom_partition::PartitionConfig::default(),
        cube_dim,
        target,
        &machine(params),
        opts,
        &mut cache,
    );
    (d, fam)
}

/// The oracle: run the full pipeline (partition → map → simulate) at
/// one concrete size and return `(makespan, messages)`.
fn simulate(fam: &Family, n: i64, cube_dim: usize, params: MachineParams) -> (u64, u64) {
    let w = fam(n);
    let out = Pipeline::new(w.nest.clone())
        .run(&PipelineConfig {
            time_fn: Some(w.pi.clone()),
            cube_dim,
            machine: Some(machine(params)),
            ..Default::default()
        })
        .expect("pipeline simulates");
    let sim = out.sim.expect("simulation enabled");
    (sim.makespan, sim.messages)
}

fn assert_exact_at(
    cost: &SymbolicCost,
    fam: &Family,
    n: i64,
    cube_dim: usize,
    params: MachineParams,
    ctx: &str,
) {
    let (makespan, messages) = simulate(fam, n, cube_dim, params);
    assert_eq!(
        cost.makespan(n),
        Some(makespan),
        "{ctx}: symbolic T_exec must equal the simulated makespan at n={n}"
    );
    assert_eq!(
        cost.messages_at(n),
        Some(messages),
        "{ctx}: symbolic message count must match the simulator at n={n}"
    );
}

/// Every builtin family derives exactly on the serial machine (`N = 1`
/// — the paper's first Table I column: no messages, `T_exec` is pure
/// compute), and the closed form equals the simulated makespan at
/// three or more sizes including the target.
#[test]
fn serial_closed_form_is_exact_for_every_builtin_family() {
    let target = 33i64;
    for name in ALL_FAMILIES {
        let (d, fam) = derive_builtin(
            name,
            0,
            target,
            MachineParams::classic_1991(),
            &DeriveOptions::default(),
        );
        let Derivation::Exact(cost) = d else {
            panic!("{name}: serial derivation must be exact, got {d:?}");
        };
        let base = cost.t_exec.base();
        for n in [base, base + 5, target] {
            assert_exact_at(&cost, &fam, n, 0, MachineParams::classic_1991(), name);
        }
    }
}

/// The parallel configurations that settle into one cost regime derive
/// exactly, and the forms reproduce the simulator point-for-point —
/// makespan *and* message count — across sizes up to the target.
#[test]
fn parallel_closed_forms_match_the_simulator_exactly() {
    let target = 33i64;
    let classic = MachineParams::classic_1991();
    let cases: &[(&str, usize, MachineParams)] = &[
        ("l1", 1, low_latency()),
        ("l1", 2, low_latency()),
        ("matvec", 1, classic),
        ("matvec", 2, classic),
        ("dft", 1, low_latency()),
        ("dft", 2, low_latency()),
        ("conv", 1, low_latency()),
        ("sor", 1, classic),
        ("triangular", 1, classic),
    ];
    for &(name, cube_dim, params) in cases {
        let (d, fam) = derive_builtin(name, cube_dim, target, params, &DeriveOptions::default());
        let Derivation::Exact(cost) = d else {
            panic!("{name} cube_dim={cube_dim}: expected an exact derivation, got {d:?}");
        };
        let base = cost.t_exec.base();
        let ctx = format!("{name} cube_dim={cube_dim}");
        for n in [base, base + 3, target] {
            assert_exact_at(&cost, &fam, n, cube_dim, params, &ctx);
        }
    }
}

/// `ExploreConfig::symbolic` returns the byte-identical ranking the
/// simulating explorer computes — whether candidates derive exactly
/// (matvec), mix exact and fallback (conv: serial derives, the
/// parallel cubes hit regime transients), or all ride the fallback
/// because the probe budget is too small to derive anything (matmul
/// with a one-point budget).
#[test]
fn symbolic_explore_ranking_is_byte_identical_with_honest_fallback() {
    let classic = MachineParams::classic_1991();
    struct Case {
        name: &'static str,
        size: i64,
        params: MachineParams,
        budget: Option<u64>,
        expect_exact: bool,
        require_fallback: bool,
    }
    let cases = [
        Case {
            name: "matvec",
            size: 12,
            params: classic,
            budget: None,
            expect_exact: true,
            require_fallback: false,
        },
        Case {
            name: "conv",
            size: 10,
            params: low_latency(),
            budget: None,
            expect_exact: true,
            require_fallback: true,
        },
        Case {
            name: "matmul",
            size: 5,
            params: classic,
            budget: Some(1),
            expect_exact: false,
            require_fallback: true,
        },
    ];
    for case in cases {
        let fam = loom_workloads::family_of(case.name, None).expect("builtin family");
        let nest = fam(case.size).nest;
        let cfg = ExploreConfig {
            pi_bound: 2,
            top: 10,
            machine: machine(case.params),
            threads: 2,
            prune: true,
            symbolic: None,
        };
        let baseline = explore_reference(&nest, &[0, 1, 2], &cfg).expect("reference explores");
        let mut opts = DeriveOptions::default();
        if let Some(b) = case.budget {
            opts.max_probe_points = b;
        }
        let rec = Recorder::enabled();
        let got = explore_with(
            &nest,
            &[0, 1, 2],
            &ExploreConfig {
                symbolic: Some(SymbolicExplore {
                    family: Arc::new({
                        let fam = fam.clone();
                        move |n| fam(n).nest
                    }),
                    size: case.size,
                    opts,
                }),
                ..cfg
            },
            &rec,
        )
        .expect("symbolic explore runs");
        assert_eq!(
            got, baseline,
            "{}: symbolic ranking must be byte-identical to the simulating sweep",
            case.name
        );
        let counters = rec.counters();
        let exact = counters.get("explore.symbolic.exact").copied().unwrap_or(0);
        let fallback = counters
            .get("explore.symbolic.fallback")
            .copied()
            .unwrap_or(0);
        assert_eq!(
            exact > 0,
            case.expect_exact,
            "{}: exact counter {exact} (counters {counters:?})",
            case.name
        );
        if case.require_fallback {
            assert!(
                fallback > 0,
                "{}: expected fallback candidates (counters {counters:?})",
                case.name
            );
        }
    }
}

/// Table I of the paper, reproduced from closed forms at `M = 1024`:
/// all six printed `(calc, comm)` coefficient pairs from the analytic
/// formula, the serial row independently re-derived by the symbolic
/// engine (its `T_exec(1024)` is the paper's 2M² with `t_calc = 1`),
/// and the `N = 4` row's `2W` computation term recovered from the
/// engine's busiest-processor form — without ever simulating at
/// `M = 1024` (the probe budget cannot afford that size; the ladder
/// validates the fit geometrically below it).
#[test]
fn table_i_is_reproduced_from_the_closed_forms() {
    let expect = [
        (1u64, 2_097_152u64, 0u64),
        (4, 786_944, 2046),
        (16, 245_888, 2046),
        (64, 64_544, 2046),
        (256, 16_328, 2046),
        (1024, 4094, 2046),
    ];
    for &(n, calc, comm) in &expect {
        let terms = matvec_exec_terms(1024, n);
        assert_eq!(
            (terms.calc_coeff, terms.comm_coeff),
            (calc, comm),
            "Table I row N = {n}"
        );
    }

    // Serial row, re-derived: T_exec(M) = 2M²·t_calc with no messages.
    let m = 1024i64;
    let (d, _) = derive_builtin(
        "matvec",
        0,
        m,
        MachineParams::classic_1991(),
        &DeriveOptions::default(),
    );
    let Derivation::Exact(cost) = d else {
        panic!("serial matvec must derive exactly, got {d:?}");
    };
    assert_eq!(cost.makespan(m), Some(2_097_152), "Table I N = 1 ticks");
    assert_eq!(cost.messages_at(m), Some(0));
    assert_eq!(cost.max_proc_flops.eval_u64(m), Some(2_097_152));

    // N = 4 row: the busiest-processor form is pure lattice geometry
    // (machine constants cancel), so a low-latency derivation recovers
    // the paper's 2W = 786 944 — and the same form holds at any size.
    let (d, fam) = derive_builtin("matvec", 2, m, low_latency(), &DeriveOptions::default());
    let Derivation::Exact(cost) = d else {
        panic!("matvec cube_dim=2 must derive exactly at M = 1024, got {d:?}");
    };
    assert_eq!(
        cost.max_proc_flops.eval_u64(m),
        Some(786_944),
        "Table I N = 4: 2W"
    );
    // The paper's printed W assumes M divisible by N (Table I uses
    // M = 1024 on 4 processors); off-multiple sizes round differently
    // than the real Algorithm 1 partition, so compare on multiples.
    for n in [200i64, 512] {
        assert_eq!(
            cost.max_proc_flops.eval_u64(n),
            Some(matvec_exec_terms(n as u64, 4).calc_coeff),
            "2W form vs analytic at n = {n}"
        );
    }
    // One mid-size oracle check of the full T_exec form (the target
    // size itself is past the probe budget by design).
    assert_exact_at(&cost, &fam, 200, 2, low_latency(), "matvec cube_dim=2");
}
