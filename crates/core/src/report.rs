//! Minimal aligned-text tables for the repro binaries.

use std::fmt;

/// A text table with a header row and left-aligned columns, rendered
/// with two-space gutters — the format every `repro_*` binary prints.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Panics if the cell count differs from the header
    /// count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:<width$}", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let rule: Vec<String> = (0..ncols).map(|i| "-".repeat(widths[i])).collect();
        render(f, &rule)?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["N", "T_exec"]);
        t.row(["1", "2097152·t_calc"]);
        t.row(["1024", "4094·t_calc"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("N     "));
        assert!(lines[1].starts_with("----"));
        assert!(lines[3].starts_with("1024"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_row_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }
}
