//! The paper's workload loop nests, as [`loom_loopir::LoopNest`]
//! generators.
//!
//! §I of the paper motivates the grouping approach with algorithms whose
//! index sets *cannot* be partitioned into independent blocks: matrix
//! multiplication, discrete Fourier transform, convolution, and
//! transitive closure; §II uses the 2-deep loop L1 as the running
//! example and §IV evaluates on matrix–vector multiplication. Every one
//! of those is generated here (plus an SOR stencil), each with its
//! documented dependence set, so examples, tests, and benches all pull
//! workloads from one place.

#![deny(missing_docs)]

pub mod conv;
pub mod conv2d;
pub mod dft;
pub mod heat2d;
pub mod l1;
pub mod matmul;
pub mod matvec;
pub mod sor;
pub mod transitive;
pub mod triangular;

use loom_loopir::{DepOptions, LoopNest, Point};

/// A workload: a nest plus the dependence set the paper associates
/// with it.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The loop nest.
    pub nest: LoopNest,
    /// The dependence vectors the paper's model assigns this nest
    /// (verified against [`loom_loopir::extract_dependences`] in tests).
    pub deps: Vec<Point>,
    /// The canonical wavefront time function used by the paper for this
    /// nest.
    pub pi: Vec<i64>,
}

impl Workload {
    /// Extract the dependence set from the nest and confirm it matches
    /// the documented one. Panics on mismatch (programming error in the
    /// generator).
    pub fn verified_deps(&self) -> Vec<Point> {
        let extracted = loom_loopir::deps::dependence_vectors(&self.nest, DepOptions::default())
            .expect("workload nests are uniform by construction");
        assert_eq!(
            extracted,
            self.deps,
            "workload `{}`: documented deps diverge from extraction",
            self.nest.name()
        );
        extracted
    }

    /// `true` iff the documented time function Π is legal for the
    /// documented dependence set.
    pub fn pi_is_legal(&self) -> bool {
        loom_hyperplane::TimeFn::new(self.pi.clone()).is_legal_for(&self.deps)
    }

    /// The documented time function as a [`loom_hyperplane::TimeFn`].
    pub fn time_fn(&self) -> loom_hyperplane::TimeFn {
        loom_hyperplane::TimeFn::new(self.pi.clone())
    }
}

/// A size-parameterized workload family: the generator behind a
/// builtin workload name, with every secondary shape parameter pinned
/// so only the primary iteration-space size scales. This is the
/// iteration-space *size parameter* the symbolic cost engine
/// (`loom_core::symbolic_cost`) derives closed forms over: `family(n)`
/// must produce the same dependence set for every `n`, which pinning
/// the secondary parameter guarantees for all builtins.
pub type Family = std::sync::Arc<dyn Fn(i64) -> Workload + Send + Sync>;

/// The size family of a builtin workload, or `None` for unknown names.
///
/// `size2` pins the secondary parameter where the generator takes one
/// (`conv`/`conv2d` taps, `sor` columns, `heat2d` grid size); `None`
/// uses the paper-scale default. Single-parameter generators ignore it.
pub fn family_of(name: &str, size2: Option<i64>) -> Option<Family> {
    use std::sync::Arc;
    let f: Family = match name {
        "l1" => Arc::new(l1::workload),
        "matmul" => Arc::new(matmul::workload),
        "matvec" => Arc::new(matvec::workload),
        "transitive" => Arc::new(transitive::workload),
        "dft" => Arc::new(dft::workload),
        "triangular" => Arc::new(triangular::workload),
        "conv" => {
            let taps = size2.unwrap_or(4).max(1);
            Arc::new(move |n| conv::workload(n, taps))
        }
        "conv2d" => {
            let taps = size2.unwrap_or(2).max(1);
            Arc::new(move |n| conv2d::workload(n, taps))
        }
        "sor" => {
            let cols = size2.unwrap_or(6).max(1);
            Arc::new(move |n| sor::workload(n, cols))
        }
        "heat2d" => {
            let size = size2.unwrap_or(4).max(2);
            Arc::new(move |n| heat2d::workload(n, size))
        }
        _ => return None,
    };
    Some(f)
}

/// Every workload generator at its paper-scale default, for sweep-style
/// tests and benches.
pub fn all_default() -> Vec<Workload> {
    vec![
        l1::workload(4),
        matmul::workload(4),
        matvec::workload(8),
        conv::workload(8, 4),
        sor::workload(6, 6),
        transitive::workload(4),
        dft::workload(8),
        conv2d::workload(4, 2),
        triangular::workload(6),
        heat2d::workload(3, 4),
    ]
}
