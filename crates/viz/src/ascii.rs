//! ASCII grids for 2-D iteration spaces.

use loom_hyperplane::Schedule;
use loom_loopir::IterSpace;
use loom_partition::Partitioning;

/// The glyph for a small id: `A…Z`, `a…z`, then `#`.
fn glyph(id: usize) -> char {
    match id {
        0..=25 => (b'A' + id as u8) as char,
        26..=51 => (b'a' + (id - 26) as u8) as char,
        _ => '#',
    }
}

/// Render a 2-D partitioning as a grid of block letters (rows = first
/// index, columns = second; the shape of the paper's Fig. 3(b) with
/// blocks instead of dashed boxes). Returns `None` for non-2-D spaces.
pub fn block_grid(p: &Partitioning) -> Option<String> {
    let space = p.structure().space();
    if space.dim() != 2 {
        return None;
    }
    let bbox = space.bounding_box();
    let mut out = String::new();
    for i in bbox[0].0..=bbox[0].1 {
        for j in bbox[1].0..=bbox[1].1 {
            let c = match p.structure().id_of(&[i, j]) {
                Some(id) => glyph(p.block_of(id)),
                None => '.',
            };
            out.push(c);
            out.push(' ');
        }
        out.pop();
        out.push('\n');
    }
    Some(out)
}

/// Render a 2-D space's hyperplane schedule as a grid of step digits
/// (mod 10) — the paper's Fig. 1 annotation. `None` for non-2-D spaces.
pub fn wavefront_grid(schedule: &Schedule, space: &IterSpace) -> Option<String> {
    if space.dim() != 2 {
        return None;
    }
    let bbox = space.bounding_box();
    let mut out = String::new();
    for i in bbox[0].0..=bbox[0].1 {
        for j in bbox[1].0..=bbox[1].1 {
            let c = if space.contains(&[i, j]) {
                match schedule.step_of(&[i, j]) {
                    Some(t) => char::from_digit((t % 10) as u32, 10).unwrap(),
                    None => '?',
                }
            } else {
                '.'
            };
            out.push(c);
            out.push(' ');
        }
        out.pop();
        out.push('\n');
    }
    Some(out)
}

/// Render per-processor utilization as an ASCII bar chart: one row per
/// processor, `#` for compute occupancy, `+` for communication, `.` for
/// idle time, scaled to `width` characters of makespan. Takes plain
/// occupancy slices (the shape of
/// [`SimReport`](../../loom_machine/sim/struct.SimReport.html)'s
/// `compute`/`comm` vectors) so any caller can chart any breakdown.
///
/// ```
/// let chart = loom_viz::utilization_chart(&[8, 2], &[2, 0], 10, 10);
/// assert_eq!(chart.lines().next().unwrap(), "P0 |########++| 100% (80% compute, 20% comm)");
/// ```
pub fn utilization_chart(compute: &[u64], comm: &[u64], makespan: u64, width: usize) -> String {
    assert_eq!(compute.len(), comm.len(), "occupancy vectors must match");
    let width = width.max(1);
    let scale = |v: u64| {
        if makespan == 0 {
            0
        } else {
            ((v as u128 * width as u128) / makespan as u128) as usize
        }
    };
    let pct = |v: u64| {
        if makespan == 0 {
            0
        } else {
            (v as u128 * 100 / makespan as u128) as u64
        }
    };
    let mut out = String::new();
    for (p, (&c, &m)) in compute.iter().zip(comm).enumerate() {
        let nc = scale(c).min(width);
        let nm = scale(m).min(width - nc);
        out.push_str(&format!(
            "P{p} |{}{}{}| {}% ({}% compute, {}% comm)\n",
            "#".repeat(nc),
            "+".repeat(nm),
            ".".repeat(width - nc - nm),
            pct(c + m),
            pct(c),
            pct(m),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_hyperplane::TimeFn;
    use loom_partition::{partition, PartitionConfig};

    fn l1_partitioning() -> Partitioning {
        let w = loom_workloads::l1::workload(4);
        partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn l1_block_grid_shape() {
        let g = block_grid(&l1_partitioning()).unwrap();
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.split(' ').count() == 4));
        // Exactly 4 distinct block glyphs appear.
        let mut glyphs: Vec<char> = g.chars().filter(|c| c.is_ascii_alphabetic()).collect();
        glyphs.sort();
        glyphs.dedup();
        assert_eq!(glyphs.len(), 4);
        // Anti-diagonal structure: [0,3] and [3,0] are in different blocks.
        let at = |i: usize, j: usize| lines[i].split(' ').nth(j).unwrap().chars().next().unwrap();
        assert_ne!(at(0, 3), at(3, 0));
        // Points on the same line i−j=const share a glyph.
        assert_eq!(at(0, 0), at(3, 3));
    }

    #[test]
    fn l1_wavefront_grid_shape() {
        let w = loom_workloads::l1::workload(4);
        let s = Schedule::build(TimeFn::new(w.pi.clone()), w.nest.space());
        let g = wavefront_grid(&s, w.nest.space()).unwrap();
        let expect = "0 1 2 3\n1 2 3 4\n2 3 4 5\n3 4 5 6\n";
        assert_eq!(g, expect);
    }

    #[test]
    fn non_2d_returns_none() {
        let w = loom_workloads::matmul::workload(3);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        assert!(block_grid(&p).is_none());
    }

    #[test]
    fn utilization_chart_bars_scale() {
        let chart = utilization_chart(&[10, 0, 5], &[0, 10, 0], 10, 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "P0 |####################| 100% (100% compute, 0% comm)"
        );
        assert_eq!(
            lines[1],
            "P1 |++++++++++++++++++++| 100% (0% compute, 100% comm)"
        );
        assert_eq!(
            lines[2],
            "P2 |##########..........| 50% (50% compute, 0% comm)"
        );
    }

    #[test]
    fn utilization_chart_degenerate_inputs() {
        // Zero makespan never divides by zero.
        let chart = utilization_chart(&[0], &[0], 0, 8);
        assert_eq!(chart, "P0 |........| 0% (0% compute, 0% comm)\n");
        // Empty machine renders nothing.
        assert_eq!(utilization_chart(&[], &[], 10, 8), "");
    }

    #[test]
    fn glyph_ranges() {
        assert_eq!(glyph(0), 'A');
        assert_eq!(glyph(25), 'Z');
        assert_eq!(glyph(26), 'a');
        assert_eq!(glyph(51), 'z');
        assert_eq!(glyph(52), '#');
    }
}
