//! Mapping partitioned blocks onto non-hypercube machines.
//!
//! The paper's Algorithm 2 targets hypercubes and leaves other machines
//! to "techniques developed for task allocation on multiprocessor
//! systems" (its §V). This module supplies the natural analogues for the
//! other classic message-passing topologies:
//!
//! * **mesh** — bisect into a `cols × rows` chunk grid (X splits for
//!   columns, Y splits for rows, interleaved) and place chunk `(x, y)`
//!   on mesh node `(x, y)`; with a single bisection direction the
//!   clusters snake through the mesh boustrophedon, so consecutive
//!   clusters stay adjacent,
//! * **ring** — order clusters along the first direction and place the
//!   `k`-th cluster on node `k`; chain neighbors are ring neighbors.

use crate::bisect::{form_clusters_with_schedule, ClusterFormation};
use crate::Error;
use loom_partition::Partitioning;
use loom_rational::Ratio;

/// A placement of blocks onto a `rows × cols` mesh (nodes numbered
/// row-major) or a ring.
#[derive(Clone, Debug)]
pub struct TargetMapping {
    num_procs: usize,
    proc_of_block: Vec<usize>,
    formation: ClusterFormation,
}

impl TargetMapping {
    /// Number of processors in the target machine.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Processor of block `b`.
    pub fn proc_of(&self, b: usize) -> usize {
        self.proc_of_block[b]
    }

    /// The full block → processor table.
    pub fn assignment(&self) -> &[usize] {
        &self.proc_of_block
    }

    /// The underlying cluster formation.
    pub fn formation(&self) -> &ClusterFormation {
        &self.formation
    }
}

fn log2_exact(n: usize) -> Option<u32> {
    (n.is_power_of_two()).then(|| n.trailing_zeros())
}

/// Map blocks (with bisection-direction coordinates) onto a
/// `rows × cols` mesh. Both extents must be powers of two.
pub fn map_positions_mesh(
    positions: &[Vec<Ratio>],
    rows: usize,
    cols: usize,
) -> Result<TargetMapping, Error> {
    let (Some(row_bits), Some(col_bits)) = (log2_exact(rows), log2_exact(cols)) else {
        return Err(Error::BadPositions);
    };
    let ndirs = positions.first().map_or(0, Vec::len);
    if ndirs == 0 {
        return Err(Error::BadPositions);
    }
    // Build the split schedule: X (direction 0) gets col_bits splits,
    // Y (direction 1, or 0 again for chain-shaped inputs) gets row_bits,
    // interleaved for balanced chunks.
    let ydir = if ndirs >= 2 { 1 } else { 0 };
    let mut schedule = Vec::with_capacity((row_bits + col_bits) as usize);
    let mut x_left = col_bits;
    let mut y_left = row_bits;
    while x_left > 0 || y_left > 0 {
        if x_left > 0 {
            schedule.push(0);
            x_left -= 1;
        }
        if y_left > 0 {
            schedule.push(ydir);
            y_left -= 1;
        }
    }
    let formation = form_clusters_with_schedule(positions, &schedule)?;

    let mut proc_of_block = vec![0usize; positions.len()];
    if ndirs >= 2 {
        // Chunk (x, y) → node (row = y, col = x): mesh-adjacent chunks
        // land on mesh-adjacent nodes by construction.
        for (ci, cluster) in formation.clusters.iter().enumerate() {
            let x = formation.coords[ci][0] as usize;
            let y = formation.coords[ci][1] as usize;
            let proc = y * cols + x;
            for &b in cluster {
                proc_of_block[b] = proc;
            }
        }
    } else {
        // One direction: clusters form a chain ordered by their single
        // coordinate; snake it through the mesh so consecutive chain
        // clusters are mesh neighbors.
        let mut order: Vec<usize> = (0..formation.clusters.len()).collect();
        order.sort_by_key(|&ci| formation.coords[ci][0]);
        for (k, &ci) in order.iter().enumerate() {
            let r = k / cols;
            let c = if r.is_multiple_of(2) {
                k % cols
            } else {
                cols - 1 - (k % cols)
            };
            let proc = r * cols + c;
            for &b in &formation.clusters[ci] {
                proc_of_block[b] = proc;
            }
        }
    }
    Ok(TargetMapping {
        num_procs: rows * cols,
        proc_of_block,
        formation,
    })
}

/// Map blocks onto a ring of `len` nodes (`len` a power of two): the
/// `k`-th cluster along direction 0 goes to node `k`.
pub fn map_positions_ring(positions: &[Vec<Ratio>], len: usize) -> Result<TargetMapping, Error> {
    let Some(bits) = log2_exact(len) else {
        return Err(Error::BadPositions);
    };
    let schedule = vec![0usize; bits as usize];
    let formation = form_clusters_with_schedule(positions, &schedule)?;
    let mut proc_of_block = vec![0usize; positions.len()];
    for (ci, cluster) in formation.clusters.iter().enumerate() {
        let proc = formation.coords[ci][0] as usize;
        for &b in cluster {
            proc_of_block[b] = proc;
        }
    }
    Ok(TargetMapping {
        num_procs: len,
        proc_of_block,
        formation,
    })
}

/// Block coordinates of a partitioning along its grouping / auxiliary
/// directions (the same positions Algorithm 2's hypercube path uses).
pub fn partition_positions(p: &Partitioning) -> Vec<Vec<Ratio>> {
    let omega = p.vectors().omega();
    if omega.is_empty() {
        (0..p.num_blocks())
            .map(|b| vec![Ratio::int(b as i64)])
            .collect()
    } else {
        let dirs: Vec<_> = omega
            .iter()
            .map(|&i| p.projected().deps()[i].clone())
            .collect();
        p.grouping()
            .groups
            .iter()
            .map(|g| dirs.iter().map(|d| g.base.dot(d)).collect())
            .collect()
    }
}

/// Map a partitioning onto a mesh.
pub fn map_partitioning_mesh(
    p: &Partitioning,
    rows: usize,
    cols: usize,
) -> Result<TargetMapping, Error> {
    map_positions_mesh(&partition_positions(p), rows, cols)
}

/// Map a partitioning onto a ring.
pub fn map_partitioning_ring(p: &Partitioning, len: usize) -> Result<TargetMapping, Error> {
    map_positions_ring(&partition_positions(p), len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_positions(rows: usize, cols: usize) -> Vec<Vec<Ratio>> {
        let mut pos = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                pos.push(vec![Ratio::int(c as i64), Ratio::int(r as i64)]);
            }
        }
        pos
    }

    fn chain_positions(n: usize) -> Vec<Vec<Ratio>> {
        (0..n).map(|i| vec![Ratio::int(i as i64)]).collect()
    }

    #[test]
    fn grid_onto_mesh_preserves_adjacency() {
        // 8×8 blocks onto a 4×4 mesh: chunk (x,y) → node (x,y); every
        // grid-neighboring block pair lands on the same or mesh-adjacent
        // nodes.
        let pos = grid_positions(8, 8);
        let m = map_positions_mesh(&pos, 4, 4).unwrap();
        assert_eq!(m.num_procs(), 16);
        let mesh = loom_machine::Topology::Mesh { rows: 4, cols: 4 };
        for r in 0..8usize {
            for c in 0..8usize {
                let b = r * 8 + c;
                if c + 1 < 8 {
                    let d = mesh.distance(m.proc_of(b), m.proc_of(b + 1));
                    assert!(d <= 1, "x-neighbors {}..{} at distance {d}", b, b + 1);
                }
                if r + 1 < 8 {
                    let d = mesh.distance(m.proc_of(b), m.proc_of(b + 8));
                    assert!(d <= 1, "y-neighbors {}..{} at distance {d}", b, b + 8);
                }
            }
        }
    }

    #[test]
    fn chain_onto_mesh_snakes() {
        let pos = chain_positions(32);
        let m = map_positions_mesh(&pos, 4, 4).unwrap();
        let mesh = loom_machine::Topology::Mesh { rows: 4, cols: 4 };
        // Consecutive chain blocks: same or adjacent node.
        for b in 0..31 {
            let d = mesh.distance(m.proc_of(b), m.proc_of(b + 1));
            assert!(d <= 1, "chain {}..{} at distance {d}", b, b + 1);
        }
    }

    #[test]
    fn chain_onto_ring_wraps_contiguously() {
        let pos = chain_positions(16);
        let m = map_positions_ring(&pos, 8).unwrap();
        assert_eq!(m.num_procs(), 8);
        let ring = loom_machine::Topology::Ring(8);
        for b in 0..15 {
            let d = ring.distance(m.proc_of(b), m.proc_of(b + 1));
            assert!(d <= 1, "chain {}..{} at distance {d}", b, b + 1);
        }
        // Balanced: two blocks per node.
        for node in 0..8 {
            assert_eq!(m.assignment().iter().filter(|&&p| p == node).count(), 2);
        }
    }

    #[test]
    fn matvec_partitioning_onto_ring_and_mesh() {
        use loom_hyperplane::TimeFn;
        use loom_partition::{partition, PartitionConfig};
        let w = loom_workloads::matvec::workload(16);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let ring = map_partitioning_ring(&p, 4).unwrap();
        assert_eq!(ring.assignment().len(), 16);
        let mesh = map_partitioning_mesh(&p, 2, 4).unwrap();
        assert_eq!(mesh.num_procs(), 8);
        assert!(mesh.assignment().iter().all(|&x| x < 8));
    }

    #[test]
    fn non_power_of_two_rejected() {
        let pos = chain_positions(16);
        assert_eq!(
            map_positions_mesh(&pos, 3, 4).unwrap_err(),
            Error::BadPositions
        );
        assert_eq!(
            map_positions_ring(&pos, 6).unwrap_err(),
            Error::BadPositions
        );
    }
}
