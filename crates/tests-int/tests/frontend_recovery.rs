//! Integration tests for the resilient `.loom` front end.
//!
//! Three angles:
//!
//! * **seed-parser equality** — every valid `samples/*.loom` must parse
//!   to IR whose pretty `Debug` dump is byte-identical to the golden
//!   dumps taken from the pre-recovery parser
//!   (`golden/frontend/*.ir`);
//! * **recovery goldens** — every `samples/corrupt/*.loom` must produce
//!   at least two spanned diagnostics in a single pass, and the full
//!   human report is snapshot-tested (plus JSON and SARIF for one
//!   representative file);
//! * **policy plumbing** — `--allow`-style suppression downgrades LP
//!   diagnostics exactly like LC ones, resource caps come back as
//!   `LP008` instead of resource exhaustion, and the compat
//!   `parse_nest` surfaces the first recovered diagnostic.
//!
//! Regenerate the goldens with `GOLDEN_DUMP=1 cargo test -p
//! loom-tests-int --test frontend_recovery`.

use loom_check::report_from_parse;
use loom_loopir::{parse_nest, parse_nest_recovering, parse_nest_with_limits, FrontLimits};

fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn read(rel: &str) -> String {
    let path = repo_path(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Compare `got` against the golden file at `rel`, regenerating it when
/// `GOLDEN_DUMP=1` is set.
fn assert_golden(rel: &str, got: &str) {
    let path = repo_path(rel);
    if std::env::var("GOLDEN_DUMP").as_deref() == Ok("1") {
        std::fs::write(&path, got).unwrap_or_else(|e| panic!("{path}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(
        got, want,
        "{rel} drifted; regenerate with GOLDEN_DUMP=1 if intentional"
    );
}

const SAMPLES: [&str; 8] = [
    "heat1d.loom",
    "l1.loom",
    "matmul.loom",
    "nonuniform.loom",
    "strided.loom",
    "vardist_diag2d.loom",
    "vardist_scale.loom",
    "wavefront_dp.loom",
];

const CORRUPT: [&str; 5] = [
    "bad_headers.loom",
    "bad_subscripts.loom",
    "garbage.loom",
    "missing_semi.loom",
    "unbalanced.loom",
];

/// The acceptance bar for the rewrite: on every valid sample the
/// recovering parser produces IR byte-identical to the seed parser's
/// (dumps in `golden/frontend/*.ir`, taken before the rewrite).
#[test]
fn valid_samples_match_seed_parser_ir_exactly() {
    for sample in SAMPLES {
        let src = read(&format!("samples/{sample}"));
        let out = parse_nest_recovering(sample, &src);
        assert_eq!(out.diags, vec![], "{sample}: clean input produced diags");
        let nest = out.nest.expect(sample);
        let stem = sample.trim_end_matches(".loom");
        assert_golden(
            &format!("crates/tests-int/golden/frontend/{stem}.ir"),
            &format!("{nest:#?}\n"),
        );
    }
}

/// Every corrupt sample yields at least two diagnostics in ONE pass,
/// each carrying a real source span.
#[test]
fn corrupt_samples_recover_at_least_two_diagnostics() {
    for sample in CORRUPT {
        let src = read(&format!("samples/corrupt/{sample}"));
        let out = parse_nest_recovering(sample, &src);
        assert!(
            out.diags.len() >= 2,
            "{sample}: expected >= 2 diagnostics, got {:#?}",
            out.diags
        );
        for d in &out.diags {
            assert!(d.line >= 1 && d.col >= 1, "{sample}: unmapped span in {d}");
            assert!(d.start <= d.end, "{sample}: inverted span in {d}");
            assert!(d.end <= src.len(), "{sample}: span past EOF in {d}");
        }
    }
}

/// Human-report goldens for the whole corrupt corpus: the exact codes,
/// positions, and messages are part of the front end's contract.
#[test]
fn corrupt_human_reports_are_golden() {
    for sample in CORRUPT {
        let src = read(&format!("samples/corrupt/{sample}"));
        let out = parse_nest_recovering(sample, &src);
        let report = report_from_parse(&out.diags);
        let stem = sample.trim_end_matches(".loom");
        assert_golden(
            &format!("crates/tests-int/golden/frontend/corrupt/{stem}.human.txt"),
            &report.render_human(),
        );
    }
}

/// JSON and SARIF renderings for one representative corrupt file — the
/// machine-readable envelopes around LP diagnostics are stable too.
#[test]
fn corrupt_json_and_sarif_reports_are_golden() {
    let src = read("samples/corrupt/bad_subscripts.loom");
    let out = parse_nest_recovering("bad_subscripts.loom", &src);
    let report = report_from_parse(&out.diags);
    assert_golden(
        "crates/tests-int/golden/frontend/corrupt/bad_subscripts.json",
        &format!("{}\n", report.to_json().render_pretty()),
    );
    assert_golden(
        "crates/tests-int/golden/frontend/corrupt/bad_subscripts.sarif",
        &format!(
            "{}\n",
            report
                .to_sarif(Some("samples/corrupt/bad_subscripts.loom"))
                .render_pretty()
        ),
    );
}

/// `--allow` suppression applies to LP rules exactly like LC rules:
/// allowing every recovered code downgrades the report to warnings.
#[test]
fn allow_downgrades_front_end_diagnostics() {
    let src = read("samples/corrupt/bad_subscripts.loom");
    let out = parse_nest_recovering("bad_subscripts.loom", &src);
    let mut report = report_from_parse(&out.diags);
    assert!(report.has_errors());
    let codes: Vec<String> = out
        .diags
        .iter()
        .map(|d| d.code.code().to_string())
        .collect();
    report.allow(&codes);
    assert!(!report.has_errors(), "{}", report.render_human());
    // The partial IR survived recovery, so a fully-suppressed report
    // leaves something to work with.
    assert!(out.nest.is_some());
}

/// The compat entry point reports the FIRST recovered diagnostic, so
/// pre-rewrite callers see the same error-first behavior.
#[test]
fn parse_nest_surfaces_first_diagnostic() {
    for sample in CORRUPT {
        let src = read(&format!("samples/corrupt/{sample}"));
        let out = parse_nest_recovering(sample, &src);
        let err = parse_nest(sample, &src).expect_err(sample);
        assert_eq!(err.at, out.diags[0].start, "{sample}");
        assert_eq!(err.message, out.diags[0].message, "{sample}");
    }
}

/// Recovery is deterministic: two parses of the same bytes produce
/// identical diagnostics and identical IR dumps.
#[test]
fn recovery_is_deterministic_over_the_corpus() {
    for sample in CORRUPT {
        let src = read(&format!("samples/corrupt/{sample}"));
        let a = parse_nest_recovering(sample, &src);
        let b = parse_nest_recovering(sample, &src);
        assert_eq!(a.diags, b.diags, "{sample}");
        assert_eq!(
            a.nest.map(|n| format!("{n:#?}")),
            b.nest.map(|n| format!("{n:#?}")),
            "{sample}"
        );
    }
}

/// Resource caps produce LP008 diagnostics at the boundary instead of
/// panics, stack overflow, or unbounded memory.
#[test]
fn resource_caps_report_lp008_at_the_boundary() {
    let limits = FrontLimits {
        max_input_bytes: 64,
        ..FrontLimits::default()
    };
    let src = read("samples/matmul.loom");
    assert!(src.len() > 64);
    let out = parse_nest_with_limits("matmul.loom", &src, &limits);
    assert_eq!(out.diags.len(), 1);
    assert_eq!(out.diags[0].code.code(), "LP008");
    assert!(out.nest.is_none());

    // At the cap the same input parses cleanly.
    let relaxed = FrontLimits {
        max_input_bytes: src.len(),
        ..FrontLimits::default()
    };
    let out = parse_nest_with_limits("matmul.loom", &src, &relaxed);
    assert_eq!(out.diags, vec![]);
    assert!(out.nest.is_some());

    // Deep expression nesting trips the depth cap, not the stack.
    let deep = format!(
        "for i = 0 to 3\n  A[i] = {}A[i]{};\n",
        "(".repeat(4096),
        ")".repeat(4096)
    );
    let out = parse_nest_recovering("deep", &deep);
    assert!(
        out.diags.iter().any(|d| d.code.code() == "LP008"),
        "{:#?}",
        out.diags
    );
}
