//! Rule `LC004` — Gray-code mapping adjacency.
//!
//! Algorithm 2 bisects the groups along the grouping direction Ω and
//! allocates the clusters to subcubes via a Gray code, precisely so
//! that groups exchanging data along Ω land on hypercube neighbors
//! (hop count 1). This check recomputes which group pairs are
//! Ω-adjacent directly from the projected structure, then measures the
//! Hamming distance of every communicating pair under the given
//! assignment: an Ω-adjacent pair more than one hop apart is an error
//! (the Gray property is broken); any other communicating pair routed
//! over several hops is reported as dilation at warning severity,
//! since the paper's bound only covers the Ω directions.
//!
//! The 1-hop guarantee is exact only when every cluster holds a single
//! block (`num_blocks ≤ 2^n`). With more blocks than processors,
//! Phase I folds several groups into each cluster and only
//! *consecutive clusters* are Gray-adjacent — Ω-neighbors in
//! non-consecutive clusters can legitimately sit several hops apart,
//! so in the folded regime every multi-hop pair is reported as a
//! dilation warning rather than an error.

use crate::diag::{Diagnostic, RuleId, Span};
use loom_mapping::Hypercube;
use loom_partition::{Partitioning, Tig};
use std::collections::BTreeSet;

/// Group pairs connected by a grouping/auxiliary (Ω) dependence:
/// stepping any member point of one group by an Ω direction lands in
/// the other.
fn omega_adjacent_pairs(p: &Partitioning) -> BTreeSet<(usize, usize)> {
    let qp = p.projected();
    let g = p.grouping();
    let omega = p.vectors().omega();
    let mut pairs = BTreeSet::new();
    for pid in 0..qp.len() {
        let from = g.group_of[pid];
        for &k in &omega {
            let d = &qp.deps()[k];
            if d.is_zero() {
                continue;
            }
            let q = &qp.points()[pid] + d;
            if let Some(qid) = qp.id_of(&q) {
                let to = g.group_of[qid];
                if to != from {
                    pairs.insert((from.min(to), from.max(to)));
                }
            }
        }
    }
    pairs
}

/// Check the block → processor assignment against the TIG: every
/// Ω-adjacent communicating pair must be at most one hop apart.
///
/// Takes the raw `assignment` slice (block id → processor) rather than
/// an opaque [`loom_mapping::Mapping`], so tests can hand in a
/// deliberately scrambled allocation.
pub fn check_gray(
    p: &Partitioning,
    tig: &Tig,
    assignment: &[usize],
    cube_dim: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let cube = Hypercube::new(cube_dim);
    if assignment.len() != p.num_blocks() {
        out.push(Diagnostic::error(
            RuleId::GrayAdjacency,
            Span::Nest,
            format!(
                "assignment covers {} block(s), but the partitioning has {}",
                assignment.len(),
                p.num_blocks()
            ),
        ));
        return out;
    }
    for (b, &proc) in assignment.iter().enumerate() {
        if proc >= cube.len() {
            out.push(Diagnostic::error(
                RuleId::GrayAdjacency,
                Span::Block { block: b },
                format!(
                    "block assigned to processor {proc}, but the {cube_dim}-cube \
                     has only {} processors",
                    cube.len()
                ),
            ));
            return out;
        }
    }
    let omega_adjacent = omega_adjacent_pairs(p);
    // With more blocks than processors, Phase I folds several groups per
    // cluster and only consecutive clusters are Gray-adjacent; the exact
    // 1-hop guarantee then no longer covers every Ω-neighbor pair.
    let strict = p.num_blocks() <= cube.len();
    for ((a, b), _weight) in tig.edges() {
        let (pa, pb) = (assignment[a], assignment[b]);
        if pa == pb {
            continue;
        }
        let hops = cube.distance(pa, pb);
        if hops <= 1 {
            continue;
        }
        let span = Span::TigEdge { a, b };
        if strict && omega_adjacent.contains(&(a, b)) {
            out.push(Diagnostic::error(
                RuleId::GrayAdjacency,
                span,
                format!(
                    "\u{3a9}-neighbor blocks mapped to processors {pa} and {pb}, \
                     {hops} hops apart; Gray-code allocation guarantees 1"
                ),
            ));
        } else if omega_adjacent.contains(&(a, b)) {
            out.push(Diagnostic::warning(
                RuleId::GrayAdjacency,
                span,
                format!(
                    "\u{3a9}-neighbor blocks mapped {hops} hops apart on \
                     processors {pa} and {pb} (clusters hold several blocks, \
                     so the 1-hop guarantee does not apply)"
                ),
            ));
        } else {
            out.push(Diagnostic::warning(
                RuleId::GrayAdjacency,
                span,
                format!(
                    "communicating blocks mapped {hops} hops apart \
                     (dilation {hops}) on processors {pa} and {pb}"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_hyperplane::TimeFn;
    use loom_loopir::IterSpace;
    use loom_mapping::map_partitioning;
    use loom_partition::{partition, PartitionConfig};

    fn matvec(cube_dim: usize) -> (Partitioning, Tig, Vec<usize>) {
        let p = partition(
            IterSpace::rect(&[12, 12]).unwrap(),
            vec![vec![1, 0], vec![0, 1]],
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap();
        let tig = Tig::from_partitioning(&p);
        let m = map_partitioning(&p, cube_dim).unwrap();
        let assignment = m.assignment().to_vec();
        (p, tig, assignment)
    }

    #[test]
    fn algorithm2_mapping_has_no_errors() {
        for cube_dim in 0..=3 {
            let (p, tig, assignment) = matvec(cube_dim);
            let ds = check_gray(&p, &tig, &assignment, cube_dim);
            assert!(
                !ds.iter().any(|d| d.severity == crate::Severity::Error),
                "cube_dim {cube_dim}: {ds:?}"
            );
        }
    }

    #[test]
    fn scrambled_assignment_flagged() {
        // 12 blocks on a 4-cube: singleton clusters, so the 1-hop
        // guarantee is exact. A binary (non-Gray) walk puts chain
        // neighbors 1(001)–2(010) two hops apart.
        let (p, tig, _) = matvec(3);
        let assignment: Vec<usize> = (0..p.num_blocks()).collect();
        let ds = check_gray(&p, &tig, &assignment, 4);
        assert!(
            ds.iter()
                .any(|d| d.severity == crate::Severity::Error && d.rule == RuleId::GrayAdjacency),
            "{ds:?}"
        );
    }

    #[test]
    fn folded_mapping_downgrades_to_warning() {
        // More blocks than processors: Ω-neighbor pairs beyond one hop
        // are dilation warnings, never errors.
        let (p, tig, _) = matvec(2);
        // Binary walk on a 2-cube: chain neighbors 1(01)–2(10) are two
        // hops apart, but with 12 blocks in 4 clusters that is dilation.
        let assignment: Vec<usize> = (0..p.num_blocks()).map(|b| b % 4).collect();
        let ds = check_gray(&p, &tig, &assignment, 2);
        assert!(!ds.is_empty(), "expected dilation warnings");
        assert!(
            ds.iter().all(|d| d.severity != crate::Severity::Error),
            "{ds:?}"
        );
    }

    #[test]
    fn wrong_assignment_length_rejected() {
        let (p, tig, _) = matvec(1);
        let ds = check_gray(&p, &tig, &[0], 1);
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn out_of_range_processor_rejected() {
        let (p, tig, mut assignment) = matvec(1);
        assignment[0] = 7;
        let ds = check_gray(&p, &tig, &assignment, 1);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].span, Span::Block { block: 0 });
    }
}
