//! Steps 3–5 of Algorithm 1: region-growing the projected points into
//! groups.

use crate::grouping::GroupingVectors;
use crate::project::ProjectedStructure;
use loom_rational::{QVec, Ratio};
use std::collections::{BTreeSet, VecDeque};

/// One group of projected points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    /// The base vertex `v₀^p` (may lie outside `V^p` for boundary groups
    /// whose low end is clipped by the index-set boundary).
    pub base: QVec,
    /// Projected-point ids in the group, ordered along the grouping
    /// vector from the base.
    pub members: Vec<usize>,
}

/// The grouping of a projected structure: a disjoint cover of `V^p`.
#[derive(Clone, Debug)]
pub struct Grouping {
    /// All groups, in creation (breadth-first) order.
    pub groups: Vec<Group>,
    /// Group id of each projected point.
    pub group_of: Vec<usize>,
}

impl Grouping {
    /// Number of groups (17 for the paper's 4×4×4 matmul example with the
    /// paper's seed).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` iff there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// Configuration of the growth (the "arbitrary" choices Step 3 leaves
/// open, pinned down for reproducibility).
#[derive(Clone, Debug, Default)]
pub struct GrowConfig {
    /// Base vertex of the first group. Defaults to the lexicographically
    /// smallest projected point. The paper's matmul walkthrough uses
    /// `(−1, −1, 2)`.
    pub seed: Option<QVec>,
}

/// Region-grow the groups (Algorithm 1, Steps 3–5).
///
/// Starting from a seed group of `r` points along the grouping vector,
/// breadth-first exploration visits the forward/backward neighboring
/// groups along the grouping vector (stride `r·d_l^p`) and along each
/// auxiliary vector (stride `d_j^p`), creating each group's members as the
/// projected points `base + k·d_l^p, 0 ≤ k < r` that exist and are still
/// ungrouped. When an island is exhausted but ungrouped points remain
/// (disconnected or irregular regions), growth reseeds at the smallest
/// ungrouped point.
pub fn grow(qp: &ProjectedStructure, gv: &GroupingVectors, config: &GrowConfig) -> Grouping {
    const UNASSIGNED: usize = usize::MAX;
    let n_points = qp.len();
    let mut group_of = vec![UNASSIGNED; n_points];
    let mut groups: Vec<Group> = Vec::new();

    let Some(gidx) = gv.grouping else {
        // Degenerate case: every projected point is its own group.
        for (pid, slot) in group_of.iter_mut().enumerate() {
            *slot = groups.len();
            groups.push(Group {
                base: qp.points()[pid].clone(),
                members: vec![pid],
            });
        }
        return Grouping { groups, group_of };
    };

    let dl = qp.deps()[gidx].clone();
    let r = gv.r;
    let stride = dl.scale(Ratio::int(r)); // r·d_l^p — same-line group stride
    let aux: Vec<QVec> = gv.auxiliary.iter().map(|&i| qp.deps()[i].clone()).collect();

    let mut visited_bases: BTreeSet<QVec> = BTreeSet::new();
    let mut remaining: BTreeSet<usize> = (0..n_points).collect();

    let mut first_seed = config
        .seed
        .clone()
        .or_else(|| qp.points().iter().min().cloned());

    while let Some(&start_pid) = remaining.iter().next() {
        // Step 3: seed a group. The very first seed may be user-chosen;
        // reseeds use the smallest ungrouped point.
        let seed_base = first_seed
            .take()
            .unwrap_or_else(|| qp.points()[start_pid].clone());

        let mut queue: VecDeque<QVec> = VecDeque::new();
        queue.push_back(seed_base);

        // Step 4: breadth-first neighbor expansion.
        while let Some(base) = queue.pop_front() {
            if !visited_bases.insert(base.clone()) {
                continue;
            }
            let mut members = Vec::new();
            for k in 0..r {
                let pos = &base + &dl.scale(Ratio::int(k));
                if let Some(pid) = qp.id_of(&pos) {
                    if group_of[pid] == UNASSIGNED {
                        members.push(pid);
                    }
                }
            }
            if members.is_empty() {
                continue; // nothing here: do not expand past empty space
            }
            let gid = groups.len();
            for &pid in &members {
                group_of[pid] = gid;
                remaining.remove(&pid);
            }
            groups.push(Group {
                base: base.clone(),
                members,
            });
            // Forward/backward neighbors along the grouping vector …
            queue.push_back(&base + &stride);
            queue.push_back(&base - &stride);
            // … and along each auxiliary grouping vector.
            for a in &aux {
                queue.push_back(&base + a);
                queue.push_back(&base - a);
            }
        }
        // Step 5: loop reseeds while ungrouped points remain.
    }

    Grouping { groups, group_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::select_vectors;
    use crate::project::ComputationalStructure;
    use loom_hyperplane::TimeFn;
    use loom_loopir::IterSpace;

    fn build(
        sizes: &[i64],
        deps: Vec<Vec<i64>>,
        pi: Vec<i64>,
        prefer: Option<usize>,
        seed: Option<QVec>,
    ) -> (ProjectedStructure, GroupingVectors, Grouping) {
        let cs = ComputationalStructure::new(IterSpace::rect(sizes).unwrap(), deps).unwrap();
        let qp = ProjectedStructure::project(&cs, &TimeFn::new(pi));
        let gv = select_vectors(&qp, prefer).unwrap();
        let g = grow(&qp, &gv, &GrowConfig { seed });
        (qp, gv, g)
    }

    fn assert_disjoint_cover(qp: &ProjectedStructure, g: &Grouping) {
        let mut seen = vec![false; qp.len()];
        for (gid, grp) in g.groups.iter().enumerate() {
            assert!(!grp.members.is_empty(), "empty group {gid}");
            for &pid in &grp.members {
                assert!(!seen[pid], "point {pid} in two groups");
                seen[pid] = true;
                assert_eq!(g.group_of[pid], gid);
            }
        }
        assert!(seen.iter().all(|&s| s), "ungrouped projected point");
    }

    #[test]
    fn l1_grouping_matches_paper_fig3b() {
        // Paper: four groups; each holds two projected points except the
        // boundary group G₄ (sizes 2,2,2,1).
        let (qp, gv, g) = build(
            &[4, 4],
            vec![vec![0, 1], vec![1, 1], vec![1, 0]],
            vec![1, 1],
            None,
            None,
        );
        assert_eq!(gv.r, 2);
        assert_eq!(g.len(), 4);
        assert_disjoint_cover(&qp, &g);
        let mut sizes: Vec<usize> = g.groups.iter().map(|x| x.members.len()).collect();
        sizes.sort();
        assert_eq!(sizes, vec![1, 2, 2, 2]);
    }

    #[test]
    fn matmul_grouping_with_paper_seed_gives_17_groups() {
        // Example 2 / Fig. 6: grouping vector d_A^p, auxiliary d_C^p,
        // seed (−1,−1,2) → 17 groups.
        let seed = QVec::new(vec![Ratio::int(-1), Ratio::int(-1), Ratio::int(2)]);
        let (qp, gv, g) = build(
            &[4, 4, 4],
            vec![vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 1]],
            vec![1, 1, 1],
            Some(0), // d_A
            Some(seed),
        );
        assert_eq!(gv.r, 3);
        assert_disjoint_cover(&qp, &g);
        assert_eq!(g.len(), 17, "paper reports 17 partitioned groups");
    }

    #[test]
    fn matmul_grouping_default_seed_covers_all() {
        let (qp, _, g) = build(
            &[4, 4, 4],
            vec![vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 1]],
            vec![1, 1, 1],
            None,
            None,
        );
        assert_disjoint_cover(&qp, &g);
        // Group sizes never exceed r = 3.
        assert!(g.groups.iter().all(|x| x.members.len() <= 3));
    }

    #[test]
    fn members_ordered_along_grouping_vector() {
        let (qp, gv, g) = build(
            &[4, 4, 4],
            vec![vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 1]],
            vec![1, 1, 1],
            Some(0),
            None,
        );
        let dl = &qp.deps()[gv.grouping.unwrap()];
        for grp in &g.groups {
            for w in grp.members.windows(2) {
                let diff = &qp.points()[w[1]] - &qp.points()[w[0]];
                // Consecutive members differ by a positive multiple of d_l^p
                // (gaps happen at clipped boundaries).
                assert!(
                    diff.positively_parallel(dl) || diff == *dl,
                    "members not along grouping vector"
                );
            }
        }
    }

    #[test]
    fn degenerate_grouping_one_group_per_line() {
        let (qp, gv, g) = build(&[4, 4], vec![vec![1, 1]], vec![1, 1], None, None);
        assert_eq!(gv.grouping, None);
        assert_eq!(g.len(), qp.len());
        assert_disjoint_cover(&qp, &g);
    }

    #[test]
    fn matvec_grouping_halves_lines() {
        // Matvec M=8: 15 projection lines, r = 2 → 8 groups (paper: M
        // groups, boundary group of one).
        let (qp, gv, g) = build(
            &[8, 8],
            vec![vec![1, 0], vec![0, 1]],
            vec![1, 1],
            None,
            None,
        );
        assert_eq!(gv.r, 2);
        assert_eq!(qp.len(), 15);
        assert_eq!(g.len(), 8);
        assert_disjoint_cover(&qp, &g);
    }
}
