//! Dump the parsed IR of a `.loom` file as pretty-printed `Debug` text.
//!
//! The frontend-golden tests compare the resilient parser's output
//! against dumps taken from the seed (pre-recovery) parser, byte for
//! byte; regenerate them with
//! `cargo run -p loom-loopir --example dump_ir -- samples/foo.loom`.

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: dump_ir <file.loom>");
        std::process::exit(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let name = path.rsplit('/').next().unwrap_or("nest");
    match loom_loopir::parse::parse_nest(name, &src) {
        Ok(nest) => println!("{nest:#?}"),
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}
