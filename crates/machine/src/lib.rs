//! A deterministic discrete-event simulator of a message-passing
//! multiprocessor, parameterized by the cost model the paper uses:
//! `t_calc` per floating-point operation, and `t_start + k·t_comm` to
//! transmit `k` words between adjacent processors (store-and-forward
//! over multi-hop routes).
//!
//! This is the substitute for the 1991 hypercube hardware the paper's
//! analysis assumes (see DESIGN.md §4): partitioned blocks are placed on
//! processors, iterations execute in data-driven order respecting the
//! hyperplane schedule, and every interblock dependence arc that crosses
//! processors becomes a message. The simulator reports makespan,
//! per-processor compute/communication occupancy, and message counts, so
//! benches can reproduce the *shape* of the paper's Table I.
//!
//! * [`topology`] — hypercube / mesh / ring / complete interconnects,
//! * [`cost`] — the `(t_calc, t_start, t_comm)` machine parameters,
//! * [`program`] — the executable form of a partitioned + mapped nest,
//! * [`sim`] — the event-driven engine and its report,
//! * [`fault`] — deterministic fault injection (link outages, message
//!   drop/corruption/delay, slowdowns, fail-stop crashes) with
//!   retry/reroute/remap recovery,
//! * [`trace`] — optional execution traces, a post-hoc validity check,
//!   and Chrome trace-event export,
//! * [`metrics`] — rich opt-in telemetry (per-processor tick
//!   breakdowns, per-link traffic, message logs),
//! * [`profile`] — critical-path extraction over a traced + metered
//!   run: attributes every tick of the makespan to compute / startup /
//!   transit / contention / recv / fault-recovery buckets.
//!
//! ```
//! use loom_machine::{simulate, MachineParams, Program, SimConfig};
//!
//! // Two tasks chained across two processors: the message costs
//! // t_start + t_comm = 55 ticks on the classic machine.
//! let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
//! let report = simulate(
//!     &prog,
//!     &SimConfig::paper_hypercube(1, MachineParams::classic_1991()),
//! ).unwrap();
//! assert_eq!(report.makespan, 1 + 55 + 1);
//! assert_eq!(report.messages, 1);
//! ```

#![deny(missing_docs)]

pub mod cost;
pub mod fault;
pub mod metrics;
pub mod profile;
pub mod program;
pub mod sim;
pub mod topology;
pub mod trace;

pub use cost::MachineParams;
pub use fault::{
    DegradationReport, FaultConfig, FaultEvent, FaultImpact, FaultPlan, RecoveryPolicy,
};
pub use metrics::SimMetrics;
pub use profile::{critical_path, critical_path_top_k, Attribution, CriticalPathReport};
pub use program::Program;
pub use sim::{
    oracle_summary, simulate, simulate_scratch, simulate_with_faults, simulate_with_faults_scratch,
    OracleSummary, SimConfig, SimError, SimReport, SimScratch,
};
pub use topology::Topology;
