//! Source round-trip: every workload rendered to `.loom` text and
//! re-parsed must have the same space, dependences, and — run through
//! the sequential oracle — identical numerical results.

use loom_exec::memory::address_hash_init;
use loom_exec::{equivalent, sequential};
use loom_loopir::deps::{dependence_vectors, DepOptions};
use loom_loopir::parse::{parse_nest, to_source};

#[test]
fn workloads_round_trip_through_source() {
    for w in loom_workloads::all_default() {
        let Some(src) = to_source(&w.nest) else {
            // SOR (1/3) and heat2d (0.2) use fractional constants, which
            // the integer-literal grammar cannot express; refusing to
            // render them is correct.
            assert!(
                matches!(w.nest.name(), "sor" | "heat2d"),
                "{} unexpectedly not renderable",
                w.nest.name()
            );
            continue;
        };
        let reparsed = parse_nest(w.nest.name(), &src)
            .unwrap_or_else(|e| panic!("{}: {e}\nsource:\n{src}", w.nest.name()));
        assert_eq!(
            reparsed.space().count(),
            w.nest.space().count(),
            "{}",
            w.nest.name()
        );
        assert_eq!(
            dependence_vectors(&reparsed, DepOptions::default()).unwrap(),
            dependence_vectors(&w.nest, DepOptions::default()).unwrap(),
            "{}",
            w.nest.name()
        );
        // The strongest check: identical numerical results.
        let a = sequential(&w.nest, &address_hash_init);
        let b = sequential(&reparsed, &address_hash_init);
        assert_eq!(equivalent(&a, &b), Ok(()), "{} diverged", w.nest.name());
    }
}

#[test]
fn sample_files_parse_and_pipeline() {
    for sample in [
        "l1.loom",
        "heat1d.loom",
        "strided.loom",
        "matmul.loom",
        "wavefront_dp.loom",
    ] {
        let path = format!("{}/../../samples/{sample}", env!("CARGO_MANIFEST_DIR"));
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let nest = parse_nest(sample, &src).unwrap_or_else(|e| panic!("{sample}: {e}"));
        let deps = dependence_vectors(&nest, DepOptions::default()).unwrap();
        assert!(!deps.is_empty(), "{sample} has no dependences?");
        let pi = loom_hyperplane::find_optimal(
            &deps,
            nest.space(),
            loom_hyperplane::SearchConfig::default(),
        )
        .unwrap();
        let p = loom_partition::partition(
            nest.space().clone(),
            deps,
            pi,
            &loom_partition::PartitionConfig::default(),
        )
        .unwrap();
        assert!(
            loom_partition::laws::check_all(&p).is_empty(),
            "{sample} violates laws"
        );
    }
}
