//! Deterministic fault injection for the simulated machine.
//!
//! The paper's cost analysis assumes a perfectly reliable 1991
//! hypercube: every message arrives and every processor survives. This
//! module supplies the misbehaving machine — a [`FaultPlan`] describes
//! *exactly* which links fail, which processors slow down or crash, and
//! how often messages are dropped, corrupted, or delayed. Everything is
//! seeded by the in-repo SplitMix64, so the same
//! `(program, plan, seed, policy)` quadruple reproduces the same
//! degraded execution bit for bit, and a plan serializes to/from JSON so
//! fault scenarios are artifacts you can commit, diff, and replay.
//!
//! What happens when a fault hits is decided by the [`RecoveryPolicy`]:
//!
//! * [`RecoveryPolicy::Abort`] — no recovery at all; the first fault
//!   that strands a task fails the simulation with a typed
//!   [`SimError::Unrecoverable`](crate::sim::SimError::Unrecoverable)
//!   carrying a causal explanation.
//! * [`RecoveryPolicy::RetryOnly`] — reliable messaging (per-message
//!   ack, timeout, bounded exponential backoff, rerouting around dead
//!   links), but a fail-stop crash that strands tasks is fatal.
//! * [`RecoveryPolicy::Remap`] — retries *plus* crash recovery: the
//!   dead processor's remaining tasks move to its Gray-code nearest
//!   surviving neighbor and the paper's cost model is charged for the
//!   state-transfer message.
//!
//! The outcome is summarized in a [`DegradationReport`] attached to the
//! [`SimReport`](crate::SimReport).

use loom_obs::Json;

/// How the simulated system reacts when an injected fault hits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// No recovery: the first fault that strands a task fails the run
    /// with [`SimError::Unrecoverable`](crate::sim::SimError::Unrecoverable).
    Abort,
    /// Reliable messaging only: ack/timeout/backoff retries and
    /// rerouting, but fail-stop crashes that strand tasks are fatal.
    #[default]
    RetryOnly,
    /// Retries plus crash recovery by remapping the dead processor's
    /// remaining tasks onto its Gray-code nearest surviving neighbor.
    Remap,
}

impl RecoveryPolicy {
    /// The CLI-facing name (`abort` / `retry` / `remap`).
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPolicy::Abort => "abort",
            RecoveryPolicy::RetryOnly => "retry",
            RecoveryPolicy::Remap => "remap",
        }
    }
}

impl std::str::FromStr for RecoveryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<RecoveryPolicy, String> {
        match s {
            "abort" => Ok(RecoveryPolicy::Abort),
            "retry" | "retry-only" => Ok(RecoveryPolicy::RetryOnly),
            "remap" => Ok(RecoveryPolicy::Remap),
            other => Err(format!(
                "unknown recovery policy `{other}` (expected abort|retry|remap)"
            )),
        }
    }
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// The directed link `from → to` is down from tick `at` until tick
    /// `until` (exclusive); `None` means permanently.
    LinkDown {
        /// Source endpoint of the directed link.
        from: usize,
        /// Destination endpoint of the directed link.
        to: usize,
        /// First tick the link is down.
        at: u64,
        /// First tick the link is back up (`None` = never).
        until: Option<u64>,
    },
    /// Processor `proc` computes `factor`× slower from `at` until
    /// `until` (exclusive); `None` means for the rest of the run.
    ProcSlow {
        /// The slowed processor.
        proc: usize,
        /// Integer slowdown multiplier (≥ 1; 1 is a no-op).
        factor: u64,
        /// First slowed tick.
        at: u64,
        /// First tick back at full speed (`None` = never).
        until: Option<u64>,
    },
    /// Processor `proc` fail-stops at tick `at`: whatever it was running
    /// dies with it, and its unfinished tasks are stranded unless the
    /// policy is [`RecoveryPolicy::Remap`].
    ProcCrash {
        /// The crashing processor.
        proc: usize,
        /// Crash tick.
        at: u64,
    },
}

impl FaultEvent {
    /// One-line human description, used in error explanations and the
    /// Perfetto fault band labels.
    pub fn describe(&self) -> String {
        match *self {
            FaultEvent::LinkDown {
                from,
                to,
                at,
                until,
            } => match until {
                Some(u) => format!("link {from}->{to} down [{at},{u})"),
                None => format!("link {from}->{to} down from {at}"),
            },
            FaultEvent::ProcSlow {
                proc,
                factor,
                at,
                until,
            } => match until {
                Some(u) => format!("P{proc} slowed {factor}x [{at},{u})"),
                None => format!("P{proc} slowed {factor}x from {at}"),
            },
            FaultEvent::ProcCrash { proc, at } => format!("P{proc} crashed at {at}"),
        }
    }

    fn to_json(&self) -> Json {
        fn until_json(until: Option<u64>) -> Json {
            match until {
                Some(u) => Json::from(u),
                None => Json::Null,
            }
        }
        match *self {
            FaultEvent::LinkDown {
                from,
                to,
                at,
                until,
            } => Json::obj(vec![
                ("kind", Json::from("link_down")),
                ("from", Json::from(from)),
                ("to", Json::from(to)),
                ("at", Json::from(at)),
                ("until", until_json(until)),
            ]),
            FaultEvent::ProcSlow {
                proc,
                factor,
                at,
                until,
            } => Json::obj(vec![
                ("kind", Json::from("proc_slow")),
                ("proc", Json::from(proc)),
                ("factor", Json::from(factor)),
                ("at", Json::from(at)),
                ("until", until_json(until)),
            ]),
            FaultEvent::ProcCrash { proc, at } => Json::obj(vec![
                ("kind", Json::from("proc_crash")),
                ("proc", Json::from(proc)),
                ("at", Json::from(at)),
            ]),
        }
    }
}

/// A malformed fault-plan document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanParseError {
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid fault plan: {}", self.message)
    }
}

impl std::error::Error for PlanParseError {}

fn bad(msg: impl Into<String>) -> PlanParseError {
    PlanParseError {
        message: msg.into(),
    }
}

/// A complete, deterministic description of every fault a simulation
/// will suffer.
///
/// Two fault sources compose:
///
/// * **scheduled events** ([`FaultEvent`]) — link outages, slowdowns,
///   and crashes pinned to exact ticks;
/// * **per-message noise** — each transmission attempt is independently
///   dropped / corrupted / delayed with the configured per-mille
///   probabilities, drawn from a SplitMix64 stream seeded by `seed`, so
///   the whole noise process replays exactly.
///
/// An all-zero plan ([`FaultPlan::is_empty`]) injects nothing: the
/// engine takes the exact baseline code path and the run is
/// bit-identical to [`simulate`](crate::simulate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the per-message noise stream.
    pub seed: u64,
    /// Per-message drop probability, in 1/1000.
    pub drop_per_mille: u32,
    /// Per-message corruption probability, in 1/1000 (a corrupted
    /// message reaches the receiver but fails its checksum and is
    /// retransmitted like a drop).
    pub corrupt_per_mille: u32,
    /// Per-message delay probability, in 1/1000.
    pub delay_per_mille: u32,
    /// Delayed messages arrive `1..=max_delay_ticks` ticks late.
    pub max_delay_ticks: u64,
    /// Base retransmission timeout: attempt `k` retries after
    /// `retry_timeout << min(k, 6)` ticks (bounded exponential backoff).
    pub retry_timeout: u64,
    /// Retransmission attempts before the message — and the run — is
    /// declared [`Unrecoverable`](crate::sim::SimError::Unrecoverable).
    pub max_retries: u32,
    /// Scheduled link/processor faults.
    pub events: Vec<FaultEvent>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_per_mille: 0,
            corrupt_per_mille: 0,
            delay_per_mille: 0,
            max_delay_ticks: 0,
            retry_timeout: 256,
            max_retries: 8,
            events: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// The empty plan: nothing ever goes wrong.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A message-noise-only plan with the given per-mille rates.
    pub fn message_noise(seed: u64, drop: u32, corrupt: u32, delay: u32) -> FaultPlan {
        FaultPlan {
            seed,
            drop_per_mille: drop,
            corrupt_per_mille: corrupt,
            delay_per_mille: delay,
            max_delay_ticks: if delay > 0 { 64 } else { 0 },
            ..FaultPlan::default()
        }
    }

    /// Append an event (builder style).
    pub fn with_event(mut self, ev: FaultEvent) -> FaultPlan {
        self.events.push(ev);
        self
    }

    /// Append a fail-stop crash (builder style).
    pub fn with_crash(self, proc: usize, at: u64) -> FaultPlan {
        self.with_event(FaultEvent::ProcCrash { proc, at })
    }

    /// `true` iff this plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.drop_per_mille == 0
            && self.corrupt_per_mille == 0
            && self.delay_per_mille == 0
    }

    /// `true` iff any per-message noise rate is nonzero.
    pub fn has_message_noise(&self) -> bool {
        self.drop_per_mille > 0 || self.corrupt_per_mille > 0 || self.delay_per_mille > 0
    }

    /// `true` iff any link outage is scheduled.
    pub fn has_link_faults(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::LinkDown { .. }))
    }

    /// All scheduled crashes, as `(proc, tick)` pairs.
    pub fn crashes(&self) -> Vec<(usize, u64)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::ProcCrash { proc, at } => Some((proc, at)),
                _ => None,
            })
            .collect()
    }

    /// `true` iff the directed link `from → to` is down at any point of
    /// the closed tick interval `[t0, t1]`.
    pub fn link_down_during(&self, from: usize, to: usize, t0: u64, t1: u64) -> bool {
        self.events.iter().any(|e| match *e {
            FaultEvent::LinkDown {
                from: f,
                to: t,
                at,
                until,
            } => f == from && t == to && at <= t1 && until.is_none_or(|u| u > t0),
            _ => false,
        })
    }

    /// `true` iff the directed link is down forever from some tick ≤
    /// `t` (no retry can ever cross it again).
    pub fn link_dead_forever(&self, from: usize, to: usize, t: u64) -> bool {
        self.events.iter().any(|e| match *e {
            FaultEvent::LinkDown {
                from: f,
                to: tt,
                at,
                until,
            } => f == from && tt == to && until.is_none() && at <= t,
            _ => false,
        })
    }

    /// The combined slowdown multiplier of `proc` at tick `t` (1 when
    /// unaffected). Overlapping windows multiply.
    pub fn slow_factor(&self, proc: usize, t: u64) -> u64 {
        let mut factor = 1u64;
        for e in &self.events {
            if let FaultEvent::ProcSlow {
                proc: p,
                factor: f,
                at,
                until,
            } = *e
            {
                if p == proc && at <= t && until.is_none_or(|u| u > t) {
                    factor = factor.saturating_mul(f.max(1));
                }
            }
        }
        factor
    }

    /// Serialize to the JSON document `loom sim --fault-plan` reads.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::from(self.seed)),
            ("drop_per_mille", Json::from(self.drop_per_mille as u64)),
            (
                "corrupt_per_mille",
                Json::from(self.corrupt_per_mille as u64),
            ),
            ("delay_per_mille", Json::from(self.delay_per_mille as u64)),
            ("max_delay_ticks", Json::from(self.max_delay_ticks)),
            ("retry_timeout", Json::from(self.retry_timeout)),
            ("max_retries", Json::from(self.max_retries as u64)),
            (
                "events",
                Json::Arr(self.events.iter().map(FaultEvent::to_json).collect()),
            ),
        ])
    }

    /// Parse a plan from its JSON form. Unknown keys are rejected so a
    /// typo'd field never silently disables a fault.
    pub fn from_json(doc: &Json) -> Result<FaultPlan, PlanParseError> {
        let Json::Obj(pairs) = doc else {
            return Err(bad("top level must be an object"));
        };
        let known = [
            "seed",
            "drop_per_mille",
            "corrupt_per_mille",
            "delay_per_mille",
            "max_delay_ticks",
            "retry_timeout",
            "max_retries",
            "events",
        ];
        for (k, _) in pairs {
            if !known.contains(&k.as_str()) {
                return Err(bad(format!("unknown field `{k}`")));
            }
        }
        let field_u64 = |key: &str, default: u64| -> Result<u64, PlanParseError> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer"))),
            }
        };
        let field_rate = |key: &str| -> Result<u32, PlanParseError> {
            let v = field_u64(key, 0)?;
            if v > 1000 {
                return Err(bad(format!("`{key}` is a per-mille rate; {v} > 1000")));
            }
            Ok(v as u32)
        };
        let defaults = FaultPlan::default();
        let mut plan = FaultPlan {
            seed: field_u64("seed", defaults.seed)?,
            drop_per_mille: field_rate("drop_per_mille")?,
            corrupt_per_mille: field_rate("corrupt_per_mille")?,
            delay_per_mille: field_rate("delay_per_mille")?,
            max_delay_ticks: field_u64("max_delay_ticks", defaults.max_delay_ticks)?,
            retry_timeout: field_u64("retry_timeout", defaults.retry_timeout)?,
            max_retries: field_u64("max_retries", defaults.max_retries as u64)? as u32,
            events: Vec::new(),
        };
        if let Some(evs) = doc.get("events") {
            let Json::Arr(items) = evs else {
                return Err(bad("`events` must be an array"));
            };
            for (i, item) in items.iter().enumerate() {
                plan.events.push(parse_event(item, i)?);
            }
        }
        Ok(plan)
    }
}

fn parse_event(item: &Json, index: usize) -> Result<FaultEvent, PlanParseError> {
    let at_event = |msg: String| bad(format!("events[{index}]: {msg}"));
    let kind = item
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| at_event("missing `kind`".into()))?;
    let get_u64 = |key: &str| -> Result<u64, PlanParseError> {
        item.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| at_event(format!("`{key}` must be a non-negative integer")))
    };
    let get_until = |key: &str| -> Result<Option<u64>, PlanParseError> {
        match item.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| at_event(format!("`{key}` must be a non-negative integer or null"))),
        }
    };
    match kind {
        "link_down" => Ok(FaultEvent::LinkDown {
            from: get_u64("from")? as usize,
            to: get_u64("to")? as usize,
            at: get_u64("at")?,
            until: get_until("until")?,
        }),
        "proc_slow" => Ok(FaultEvent::ProcSlow {
            proc: get_u64("proc")? as usize,
            factor: get_u64("factor")?,
            at: get_u64("at")?,
            until: get_until("until")?,
        }),
        "proc_crash" => Ok(FaultEvent::ProcCrash {
            proc: get_u64("proc")? as usize,
            at: get_u64("at")?,
        }),
        other => Err(at_event(format!("unknown kind `{other}`"))),
    }
}

/// One fault occurrence that directly delayed the run, for the
/// per-fault attribution table and the Perfetto fault bands.
///
/// `delay_ticks` is the *direct* delay the fault added at its site
/// (retry backoff for a drop, added latency for a delay, state-transfer
/// time for a crash, extra compute for a slowdown) — an upper bound on
/// its critical-path contribution, attributed at the moment the fault
/// hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultImpact {
    /// What hit (human description, e.g. `"drop P0->P2 attempt 0"`).
    pub fault: String,
    /// Tick at which it hit.
    pub at: u64,
    /// Processor where the impact landed (the sender for message
    /// faults, the survivor for crashes).
    pub proc: u32,
    /// Direct delay charged at the site, in ticks.
    pub delay_ticks: u64,
}

/// What the faults did to the run: the resilience counterpart of
/// [`SimReport`](crate::SimReport), attached to it by
/// [`simulate_with_faults`](crate::sim::simulate_with_faults).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Scheduled fault events in the plan.
    pub faults_injected: u64,
    /// Faults (scheduled or noise) that actually impacted the run.
    pub faults_hit: u64,
    /// Message transmission attempts that were dropped (including
    /// losses to down links mid-flight).
    pub drops: u64,
    /// Attempts that arrived corrupted and were retransmitted.
    pub corruptions: u64,
    /// Attempts that arrived late.
    pub delays: u64,
    /// Total extra latency the delayed attempts suffered.
    pub delay_ticks_added: u64,
    /// Messages that left on a non-default route to avoid dead links.
    pub reroutes: u64,
    /// Retransmission attempts issued by the reliable-messaging layer.
    pub retries: u64,
    /// Words carried by retransmissions (wasted bandwidth).
    pub retransmitted_words: u64,
    /// Fail-stop crashes suffered.
    pub crashes: u64,
    /// Tasks remapped off crashed processors (`Remap` policy).
    pub remapped_tasks: u64,
    /// Sends that became local because their destination tasks were
    /// remapped onto the sender.
    pub localized_sends: u64,
    /// Words of crash state transferred to survivors.
    pub state_transfer_words: u64,
    /// Ticks survivors spent receiving crash state (charged with the
    /// paper's `h·(t_start + k·t_comm)` model).
    pub state_transfer_ticks: u64,
    /// Makespan of the same program on the fault-free machine.
    pub baseline_makespan: u64,
    /// Makespan of the degraded run.
    pub degraded_makespan: u64,
    /// Per-fault direct-delay attribution, in hit order.
    pub attribution: Vec<FaultImpact>,
}

impl DegradationReport {
    /// Makespan inflation relative to the fault-free run:
    /// `degraded / baseline − 1` (0 when the baseline is empty).
    pub fn makespan_inflation(&self) -> f64 {
        if self.baseline_makespan == 0 {
            return 0.0;
        }
        self.degraded_makespan as f64 / self.baseline_makespan as f64 - 1.0
    }

    /// Flatten to JSON (the shape `loom sim --degradation-out` writes
    /// and the fault-sweep smoke test parses).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("faults_injected", Json::from(self.faults_injected)),
            ("faults_hit", Json::from(self.faults_hit)),
            ("drops", Json::from(self.drops)),
            ("corruptions", Json::from(self.corruptions)),
            ("delays", Json::from(self.delays)),
            ("delay_ticks_added", Json::from(self.delay_ticks_added)),
            ("reroutes", Json::from(self.reroutes)),
            ("retries", Json::from(self.retries)),
            ("retransmitted_words", Json::from(self.retransmitted_words)),
            ("crashes", Json::from(self.crashes)),
            ("remapped_tasks", Json::from(self.remapped_tasks)),
            ("localized_sends", Json::from(self.localized_sends)),
            (
                "state_transfer_words",
                Json::from(self.state_transfer_words),
            ),
            (
                "state_transfer_ticks",
                Json::from(self.state_transfer_ticks),
            ),
            ("baseline_makespan", Json::from(self.baseline_makespan)),
            ("degraded_makespan", Json::from(self.degraded_makespan)),
            ("makespan_inflation", Json::from(self.makespan_inflation())),
            (
                "attribution",
                Json::Arr(
                    self.attribution
                        .iter()
                        .map(|i| {
                            Json::obj(vec![
                                ("fault", Json::from(i.fault.as_str())),
                                ("at", Json::from(i.at)),
                                ("proc", Json::from(i.proc as u64)),
                                ("delay_ticks", Json::from(i.delay_ticks)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// How a simulation run under faults is configured: the plan, the
/// policy, and an optional seed override (the CLI's `--fault-seed`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// What goes wrong.
    pub plan: FaultPlan,
    /// What the system does about it.
    pub policy: RecoveryPolicy,
    /// Replaces `plan.seed` when set.
    pub seed_override: Option<u64>,
}

impl FaultConfig {
    /// A config running `plan` under `policy`.
    pub fn new(plan: FaultPlan, policy: RecoveryPolicy) -> FaultConfig {
        FaultConfig {
            plan,
            policy,
            seed_override: None,
        }
    }

    /// The effective noise seed.
    pub fn seed(&self) -> u64 {
        self.seed_override.unwrap_or(self.plan.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            drop_per_mille: 25,
            corrupt_per_mille: 5,
            delay_per_mille: 100,
            max_delay_ticks: 32,
            retry_timeout: 128,
            max_retries: 6,
            events: vec![
                FaultEvent::LinkDown {
                    from: 0,
                    to: 1,
                    at: 10,
                    until: Some(50),
                },
                FaultEvent::ProcSlow {
                    proc: 2,
                    factor: 4,
                    at: 0,
                    until: None,
                },
                FaultEvent::ProcCrash { proc: 3, at: 100 },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let plan = sample_plan();
        let doc = plan.to_json();
        let back = FaultPlan::from_json(&doc).unwrap();
        assert_eq!(back, plan);
        // And re-serialization is deterministic (LC008's invariant).
        let reparsed = Json::parse(&doc.render_pretty()).unwrap();
        assert_eq!(FaultPlan::from_json(&reparsed).unwrap().to_json(), doc);
    }

    #[test]
    fn empty_plan_detection() {
        assert!(FaultPlan::none().is_empty());
        assert!(!sample_plan().is_empty());
        assert!(!FaultPlan::message_noise(1, 10, 0, 0).is_empty());
        assert!(!FaultPlan::none().with_crash(0, 5).has_message_noise());
    }

    #[test]
    fn unknown_fields_rejected() {
        let doc = Json::obj(vec![("drop_rate", Json::from(10u64))]);
        let err = FaultPlan::from_json(&doc).unwrap_err();
        assert!(err.message.contains("drop_rate"), "{err}");
        let doc = Json::obj(vec![(
            "events",
            Json::Arr(vec![Json::obj(vec![("kind", Json::from("meteor"))])]),
        )]);
        assert!(FaultPlan::from_json(&doc).is_err());
    }

    #[test]
    fn negative_ticks_rejected() {
        let doc = Json::obj(vec![(
            "events",
            Json::Arr(vec![Json::obj(vec![
                ("kind", Json::from("proc_crash")),
                ("proc", Json::from(1u64)),
                ("at", Json::Int(-5)),
            ])]),
        )]);
        let err = FaultPlan::from_json(&doc).unwrap_err();
        assert!(err.message.contains("non-negative"), "{err}");
    }

    #[test]
    fn rates_above_one_thousand_rejected() {
        let doc = Json::obj(vec![("drop_per_mille", Json::from(1001u64))]);
        assert!(FaultPlan::from_json(&doc).is_err());
    }

    #[test]
    fn link_windows_and_permanence() {
        let plan = sample_plan();
        assert!(plan.link_down_during(0, 1, 10, 10));
        assert!(plan.link_down_during(0, 1, 0, 10)); // touches the window
        assert!(plan.link_down_during(0, 1, 49, 60));
        assert!(!plan.link_down_during(0, 1, 50, 60)); // until is exclusive
        assert!(!plan.link_down_during(1, 0, 10, 10)); // directed
        assert!(!plan.link_dead_forever(0, 1, 10)); // transient
        let perm = FaultPlan::none().with_event(FaultEvent::LinkDown {
            from: 2,
            to: 3,
            at: 5,
            until: None,
        });
        assert!(perm.link_dead_forever(2, 3, 5));
        assert!(!perm.link_dead_forever(2, 3, 4)); // not yet down
    }

    #[test]
    fn slow_factors_multiply_and_window() {
        let plan = FaultPlan::none()
            .with_event(FaultEvent::ProcSlow {
                proc: 1,
                factor: 2,
                at: 10,
                until: Some(20),
            })
            .with_event(FaultEvent::ProcSlow {
                proc: 1,
                factor: 3,
                at: 15,
                until: None,
            });
        assert_eq!(plan.slow_factor(1, 5), 1);
        assert_eq!(plan.slow_factor(1, 10), 2);
        assert_eq!(plan.slow_factor(1, 15), 6);
        assert_eq!(plan.slow_factor(1, 20), 3);
        assert_eq!(plan.slow_factor(0, 15), 1);
    }

    #[test]
    fn policy_parsing() {
        use std::str::FromStr;
        assert_eq!(
            RecoveryPolicy::from_str("abort").unwrap(),
            RecoveryPolicy::Abort
        );
        assert_eq!(
            RecoveryPolicy::from_str("retry").unwrap(),
            RecoveryPolicy::RetryOnly
        );
        assert_eq!(
            RecoveryPolicy::from_str("remap").unwrap(),
            RecoveryPolicy::Remap
        );
        assert!(RecoveryPolicy::from_str("hope").is_err());
        assert_eq!(RecoveryPolicy::Remap.to_string(), "remap");
    }

    #[test]
    fn degradation_json_parses_and_inflation() {
        let mut d = DegradationReport {
            baseline_makespan: 100,
            degraded_makespan: 125,
            ..DegradationReport::default()
        };
        d.attribution.push(FaultImpact {
            fault: "drop P0->P1 attempt 0".into(),
            at: 42,
            proc: 0,
            delay_ticks: 128,
        });
        assert!((d.makespan_inflation() - 0.25).abs() < 1e-12);
        let doc = d.to_json();
        let parsed = Json::parse(&doc.render_pretty()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed.get("degraded_makespan").and_then(Json::as_u64),
            Some(125)
        );
        let zero = DegradationReport::default();
        assert_eq!(zero.makespan_inflation(), 0.0);
    }

    #[test]
    fn fault_config_seed_override() {
        let cfg = FaultConfig::new(sample_plan(), RecoveryPolicy::Remap);
        assert_eq!(cfg.seed(), 7);
        let cfg = FaultConfig {
            seed_override: Some(99),
            ..cfg
        };
        assert_eq!(cfg.seed(), 99);
    }
}
