//! Golden-output tests: one scenario per rule id, asserting the exact
//! human rendering and the exact JSON document. These strings are the
//! stable output contract — `loom check --json` consumers and the CI
//! smoke step both parse them, so a change here is a breaking change
//! and must be deliberate.

use loom_check::{
    check_access_dependences, check_gray, check_grouping_vectors, check_legality, check_lemma1,
    check_lemma1_symbolic_groups, check_neighbor_bound, check_protocol, check_races, Report,
};
use loom_codegen::{generate, Op};
use loom_hyperplane::TimeFn;
use loom_mapping::map_partitioning;
use loom_partition::grouping::GroupingVectors;
use loom_partition::{partition, PartitionConfig, Partitioning, Tig};
use std::collections::BTreeSet;

fn l1_partition() -> (loom_workloads::Workload, Partitioning) {
    let w = loom_workloads::l1::workload(4);
    let p = partition(
        w.nest.space().clone(),
        w.deps.clone(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .unwrap();
    (w, p)
}

/// Compare both renderings against their goldens. To regenerate after a
/// deliberate format change, run
/// `GOLDEN_DUMP=1 cargo test -p loom-check --test golden -- --nocapture`
/// and paste the printed blocks back into the expectations.
fn snapshot(name: &str, report: &Report, expected_human: &str, expected_json: &str) {
    if std::env::var("GOLDEN_DUMP").is_ok() {
        println!(
            "=== {name} HUMAN ===\n{}=== {name} JSON ===\n{}\n",
            report.render_human(),
            report.to_json().render_pretty()
        );
        return;
    }
    assert_eq!(
        report.render_human(),
        expected_human,
        "{name}: human rendering drifted"
    );
    assert_eq!(
        report.to_json().render_pretty(),
        expected_json,
        "{name}: JSON rendering drifted"
    );
}

#[test]
fn golden_lc001_schedule_legality() {
    let w = loom_workloads::l1::workload(4);
    let report = Report::from_diagnostics(check_legality(&TimeFn::new(vec![1, -1]), &w.deps));
    snapshot(
        "LC001",
        &report,
        r#"error[LC001] dep[0]=(0,1): Π·d = -1 < 1; the schedule does not advance across this dependence
error[LC001] dep[2]=(1,1): Π·d = 0 < 1; the schedule does not advance across this dependence
check: 2 error(s), 0 warning(s), 0 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC001",
      "name": "schedule-legality",
      "severity": "error",
      "span": {
        "kind": "dep",
        "index": 0,
        "vector": [
          0,
          1
        ]
      },
      "message": "Π·d = -1 < 1; the schedule does not advance across this dependence"
    },
    {
      "rule": "LC001",
      "name": "schedule-legality",
      "severity": "error",
      "span": {
        "kind": "dep",
        "index": 2,
        "vector": [
          1,
          1
        ]
      },
      "message": "Π·d = 0 < 1; the schedule does not advance across this dependence"
    }
  ],
  "counts": {
    "LC001": 2
  },
  "errors": 2,
  "warnings": 0
}
"#,
    );
}

#[test]
fn golden_lc002_block_shared_step() {
    let (w, p) = l1_partition();
    let mut blocks = p.blocks().to_vec();
    let moved = blocks.pop().unwrap();
    blocks[0].extend(moved);
    let report = Report::from_diagnostics(check_lemma1(
        &TimeFn::new(w.pi.clone()),
        p.structure().points(),
        &blocks,
    ));
    snapshot(
        "LC002",
        &report,
        r#"error[LC002] points (0,3) and (3,0): both iterations of block B0 execute at step 3; Lemma 1 requires distinct steps within a block
check: 1 error(s), 0 warning(s), 0 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC002",
      "name": "block-shared-step",
      "severity": "error",
      "span": {
        "kind": "point_pair",
        "a": [
          0,
          3
        ],
        "b": [
          3,
          0
        ]
      },
      "message": "both iterations of block B0 execute at step 3; Lemma 1 requires distinct steps within a block"
    }
  ],
  "counts": {
    "LC002": 1
  },
  "errors": 1,
  "warnings": 0
}
"#,
    );
}

#[test]
fn golden_lc003_neighbor_bound() {
    // One dependence (m = 1) of full rank (β = 1): bound 2·1−1 = 1.
    // Group 0 sends to two targets — one over the bound.
    let graph = vec![BTreeSet::from([1, 2]), BTreeSet::from([2]), BTreeSet::new()];
    let report = Report::from_diagnostics(check_neighbor_bound(&graph, 1, 1));
    snapshot(
        "LC003",
        &report,
        r#"error[LC003] group G0: group sends data to 2 other groups, exceeding 2m−β = 2·1−1 = 1 (Theorem 2)
check: 1 error(s), 0 warning(s), 0 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC003",
      "name": "neighbor-bound",
      "severity": "error",
      "span": {
        "kind": "group",
        "group": 0
      },
      "message": "group sends data to 2 other groups, exceeding 2m−β = 2·1−1 = 1 (Theorem 2)"
    }
  ],
  "counts": {
    "LC003": 1
  },
  "errors": 1,
  "warnings": 0
}
"#,
    );
}

#[test]
fn golden_lc004_gray_adjacency() {
    // 4 chain blocks on a full 2-cube; binary allocation puts chain
    // neighbors B1(01)–B2(10) two hops apart.
    let w = loom_workloads::matvec::workload(4);
    let p = partition(
        w.nest.space().clone(),
        w.deps.clone(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .unwrap();
    let tig = Tig::from_partitioning(&p);
    let binary: Vec<usize> = (0..p.num_blocks()).collect();
    let report = Report::from_diagnostics(check_gray(&p, &tig, &binary, 2));
    snapshot(
        "LC004",
        &report,
        r#"error[LC004] tig edge B1-B2: Ω-neighbor blocks mapped to processors 1 and 2, 2 hops apart; Gray-code allocation guarantees 1
check: 1 error(s), 0 warning(s), 0 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC004",
      "name": "gray-adjacency",
      "severity": "error",
      "span": {
        "kind": "tig_edge",
        "a": 1,
        "b": 2
      },
      "message": "Ω-neighbor blocks mapped to processors 1 and 2, 2 hops apart; Gray-code allocation guarantees 1"
    }
  ],
  "counts": {
    "LC004": 1
  },
  "errors": 1,
  "warnings": 0
}
"#,
    );
}

#[test]
fn golden_lc005_data_race() {
    let (w, p) = l1_partition();
    let m = map_partitioning(&p, 1).unwrap();
    let cg = generate(&w.nest, &p, m.assignment(), 2).unwrap();
    let mut program = cg.program;
    let point = program.per_proc[0]
        .iter()
        .find_map(|op| match op {
            Op::Compute { point } => Some(*point),
            _ => None,
        })
        .unwrap();
    program.per_proc[1].insert(0, Op::Compute { point });
    let report = Report::from_diagnostics(check_races(&w.nest, &program));
    snapshot(
        "LC005",
        &report,
        r#"error[LC005] element A(1,1): write at iteration (0,0) on P0 and write at iteration (0,0) on P1 are concurrent: no synchronization orders them
error[LC005] element B(1,0): write at iteration (0,0) on P0 and write at iteration (0,0) on P1 are concurrent: no synchronization orders them
check: 2 error(s), 0 warning(s), 0 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC005",
      "name": "data-race",
      "severity": "error",
      "span": {
        "kind": "element",
        "array": "A",
        "element": [
          1,
          1
        ]
      },
      "message": "write at iteration (0,0) on P0 and write at iteration (0,0) on P1 are concurrent: no synchronization orders them"
    },
    {
      "rule": "LC005",
      "name": "data-race",
      "severity": "error",
      "span": {
        "kind": "element",
        "array": "B",
        "element": [
          1,
          0
        ]
      },
      "message": "write at iteration (0,0) on P0 and write at iteration (0,0) on P1 are concurrent: no synchronization orders them"
    }
  ],
  "counts": {
    "LC005": 2
  },
  "errors": 2,
  "warnings": 0
}
"#,
    );
}

#[test]
fn golden_lc006_grouping_rank() {
    let (_, p) = l1_partition();
    let fabricated = GroupingVectors {
        beta: 2,
        ..p.vectors().clone()
    };
    let report = Report::from_diagnostics(check_grouping_vectors(p.projected(), &fabricated));
    snapshot(
        "LC006",
        &report,
        r#"error[LC006] nest: recorded β = 2 disagrees with rank(mat(D^p)) = 1
error[LC006] nest: Ω holds 1 vector(s) where β = 2 requires a rank-β independent set
check: 2 error(s), 0 warning(s), 0 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC006",
      "name": "grouping-rank",
      "severity": "error",
      "span": {
        "kind": "nest"
      },
      "message": "recorded β = 2 disagrees with rank(mat(D^p)) = 1"
    },
    {
      "rule": "LC006",
      "name": "grouping-rank",
      "severity": "error",
      "span": {
        "kind": "nest"
      },
      "message": "Ω holds 1 vector(s) where β = 2 requires a rank-β independent set"
    }
  ],
  "counts": {
    "LC006": 2
  },
  "errors": 2,
  "warnings": 0
}
"#,
    );
}

#[test]
fn golden_lc007_unmatched_message() {
    let (w, p) = l1_partition();
    let m = map_partitioning(&p, 1).unwrap();
    let cg = generate(&w.nest, &p, m.assignment(), 2).unwrap();
    let mut program = cg.program;
    let (proc, i) = program
        .per_proc
        .iter()
        .enumerate()
        .find_map(|(p, ops)| {
            ops.iter()
                .position(|op| matches!(op, Op::Send { .. }))
                .map(|i| (p, i))
        })
        .unwrap();
    program.per_proc[proc].remove(i);
    let report = Report::from_diagnostics(check_races(&w.nest, &program));
    snapshot(
        "LC007",
        &report,
        r#"error[LC007] P0 op 2: receive of message (source point 1, dep 1) from P1 can never be satisfied; the program deadlocks here
error[LC007] P1 op 0: receive of message (source point 0, dep 0) from P0 can never be satisfied; the program deadlocks here
check: 2 error(s), 0 warning(s), 0 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC007",
      "name": "unmatched-message",
      "severity": "error",
      "span": {
        "kind": "program_op",
        "proc": 0,
        "op": 2
      },
      "message": "receive of message (source point 1, dep 1) from P1 can never be satisfied; the program deadlocks here"
    },
    {
      "rule": "LC007",
      "name": "unmatched-message",
      "severity": "error",
      "span": {
        "kind": "program_op",
        "proc": 1,
        "op": 0
      },
      "message": "receive of message (source point 0, dep 0) from P0 can never be satisfied; the program deadlocks here"
    }
  ],
  "counts": {
    "LC007": 2
  },
  "errors": 2,
  "warnings": 0
}
"#,
    );
}

#[test]
fn golden_lc009_parametric_legality() {
    // The same merged-block shape as the LC002 golden, decided by the
    // symbolic engine: merge the last grouping line into group 0 and
    // let the Presburger core find the collision witness.
    let (_, p) = l1_partition();
    let mut groups: Vec<Vec<usize>> = p
        .grouping()
        .groups
        .iter()
        .map(|g| g.members.clone())
        .collect();
    let moved = groups.pop().unwrap();
    groups[0].extend(moved);
    let mut stats = loom_check::SymbolicStats::default();
    let report = Report::from_diagnostics(check_lemma1_symbolic_groups(&p, &groups, &mut stats));
    snapshot(
        "LC009",
        &report,
        r#"error[LC009] points (0,3) and (3,0): both iterations of block B0 execute at step 3; Lemma 1 requires distinct steps within a block
check: 1 error(s), 0 warning(s), 0 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC009",
      "name": "parametric-legality",
      "severity": "error",
      "span": {
        "kind": "point_pair",
        "a": [
          0,
          3
        ],
        "b": [
          3,
          0
        ]
      },
      "message": "both iterations of block B0 execute at step 3; Lemma 1 requires distinct steps within a block"
    }
  ],
  "counts": {
    "LC009": 1
  },
  "errors": 1,
  "warnings": 0
}
"#,
    );
}

#[test]
fn golden_lc010_access_dependence() {
    // The committed variable-distance sample: since the uniformization
    // engine landed, this nest is *admitted* — the exact certificate
    // (LC016) and over-approximation warning (LC017) are part of the
    // contract (the CI sample sweep relies on the zero exit).
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../samples/nonuniform.loom"
    ))
    .unwrap();
    let nest = loom_loopir::parse::parse_nest("nonuniform.loom", &src).unwrap();
    let report = Report::from_diagnostics(check_access_dependences(&nest, None));
    snapshot(
        "LC010",
        &report,
        r#"info[LC016] accesses A[2i] and A[i]: cover certified: every conflict distance is a non-negative integer combination of [[1]] (2 escape system(s) refuted)
warning[LC017] accesses A[2i] and A[i]: synthesized vector (1) over-approximates: iterations (2) and (3) never conflict on `A`, yet the folded nest synchronizes them; legal-Π census over [-2,2]^1: true relation admits 2 (best 8 step(s)), folded set admits 2 (best 8 step(s))
check: 0 error(s), 1 warning(s), 1 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC016",
      "name": "uniformize-soundness",
      "severity": "info",
      "span": {
        "kind": "access_pair",
        "array": "A",
        "a": "A[2i]",
        "b": "A[i]"
      },
      "message": "cover certified: every conflict distance is a non-negative integer combination of [[1]] (2 escape system(s) refuted)"
    },
    {
      "rule": "LC017",
      "name": "uniformize-tightness",
      "severity": "warning",
      "span": {
        "kind": "access_pair",
        "array": "A",
        "a": "A[2i]",
        "b": "A[i]"
      },
      "message": "synthesized vector (1) over-approximates: iterations (2) and (3) never conflict on `A`, yet the folded nest synchronizes them; legal-Π census over [-2,2]^1: true relation admits 2 (best 8 step(s)), folded set admits 2 (best 8 step(s))"
    }
  ],
  "counts": {
    "LC016": 1,
    "LC017": 1
  },
  "errors": 0,
  "warnings": 1
}
"#,
    );
}

#[test]
fn golden_lc011_protocol_summary() {
    let (_, p) = l1_partition();
    let tig = Tig::from_partitioning(&p);
    let mut edges: std::collections::BTreeMap<(usize, usize), u64> = tig.edges().collect();
    let (&key, &weight) = edges.iter().next().unwrap();
    edges.insert(key, weight + 1);
    let weights: Vec<u64> = (0..tig.len()).map(|v| tig.weight(v)).collect();
    let tampered = Tig::from_parts(weights, edges);
    let mut stats = loom_check::SymbolicStats::default();
    let report = Report::from_diagnostics(check_protocol(&p, &tampered, &mut stats));
    snapshot(
        "LC011",
        &report,
        r#"error[LC011] tig edge B0-B1: symbolic send/recv summary derives 2 message(s) between B0 and B1, but the task graph records 3; the communication protocol and the TIG disagree
check: 1 error(s), 0 warning(s), 0 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC011",
      "name": "protocol-summary",
      "severity": "error",
      "span": {
        "kind": "tig_edge",
        "a": 0,
        "b": 1
      },
      "message": "symbolic send/recv summary derives 2 message(s) between B0 and B1, but the task graph records 3; the communication protocol and the TIG disagree"
    }
  ],
  "counts": {
    "LC011": 1
  },
  "errors": 1,
  "warnings": 0
}
"#,
    );
}

#[test]
fn golden_lc012_blocking_cycle() {
    // `partition()` refuses illegal schedules, so a non-positive-lag
    // cycle cannot be staged through public constructors; the golden
    // pins the diagnostic's rendering contract in the exact shape
    // `check_blocking_cycles` emits.
    let report = Report::from_diagnostics(vec![loom_check::Diagnostic::error(
        loom_check::RuleId::BlockingCycle,
        loom_check::Span::Block { block: 0 },
        "blocks B0 → B1 → B0 form a cycle of blocking waits with total schedule lag \
         0 ≤ 0; a receive in this cycle can wait on its own block's progress forever"
            .to_string(),
    )]);
    snapshot(
        "LC012",
        &report,
        r#"error[LC012] block B0: blocks B0 → B1 → B0 form a cycle of blocking waits with total schedule lag 0 ≤ 0; a receive in this cycle can wait on its own block's progress forever
check: 1 error(s), 0 warning(s), 0 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC012",
      "name": "blocking-cycle",
      "severity": "error",
      "span": {
        "kind": "block",
        "block": 0
      },
      "message": "blocks B0 → B1 → B0 form a cycle of blocking waits with total schedule lag 0 ≤ 0; a receive in this cycle can wait on its own block's progress forever"
    }
  ],
  "counts": {
    "LC012": 1
  },
  "errors": 1,
  "warnings": 0
}
"#,
    );
}

/// Generate the l1 SPMD program the interleaving goldens corrupt:
/// size 6 on a 2-cube gives four processors with real concurrency.
fn l1_codegen() -> (loom_loopir::LoopNest, loom_codegen::gen::Codegen) {
    let w = loom_workloads::l1::workload(6);
    let p = partition(
        w.nest.space().clone(),
        w.deps.clone(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .unwrap();
    let m = map_partitioning(&p, 2).unwrap();
    let cg = generate(&w.nest, &p, m.assignment(), 4).unwrap();
    (w.nest, cg)
}

#[test]
fn golden_lc013_interleaving_deadlock() {
    let (nest, mut cg) = l1_codegen();
    cg.program =
        loom_check::mutate_program(&cg.program, loom_check::Mutation::DropSend, 1).unwrap();
    let mut stats = loom_check::InterleaveStats::default();
    let report = Report::from_diagnostics(loom_check::check_interleavings(
        &nest,
        &cg,
        &loom_check::InterleaveOptions::default(),
        &mut stats,
    ));
    snapshot(
        "LC013",
        &report,
        r#"error[LC013] trace P1:0..3 P3:0..5 P1:3..10 P0:0..4 P2:0..5 P3:5..11 P1:10..17 P0:4..7 P2:5..9: deadlock reachable after 44 ops (9 macro-steps): P1 waits for (source point 15, dep 1); P2 waits for (source point 16, dep 0); P3 waits for (source point 14, dep 0); no enabled processor remains
info[LC013] P1 op 17: P1 blocks here: receive of (source point 15, dep 1) is never satisfied in this interleaving
info[LC013] P2 op 9: P2 blocks here: receive of (source point 16, dep 0) is never satisfied in this interleaving
info[LC013] P3 op 11: P3 blocks here: receive of (source point 14, dep 0) is never satisfied in this interleaving
check: 1 error(s), 0 warning(s), 3 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC013",
      "name": "interleaving-deadlock",
      "severity": "error",
      "span": {
        "kind": "trace",
        "steps": [
          [
            1,
            0,
            3
          ],
          [
            3,
            0,
            5
          ],
          [
            1,
            3,
            10
          ],
          [
            0,
            0,
            4
          ],
          [
            2,
            0,
            5
          ],
          [
            3,
            5,
            11
          ],
          [
            1,
            10,
            17
          ],
          [
            0,
            4,
            7
          ],
          [
            2,
            5,
            9
          ]
        ]
      },
      "message": "deadlock reachable after 44 ops (9 macro-steps): P1 waits for (source point 15, dep 1); P2 waits for (source point 16, dep 0); P3 waits for (source point 14, dep 0); no enabled processor remains"
    },
    {
      "rule": "LC013",
      "name": "interleaving-deadlock",
      "severity": "info",
      "span": {
        "kind": "program_op",
        "proc": 1,
        "op": 17
      },
      "message": "P1 blocks here: receive of (source point 15, dep 1) is never satisfied in this interleaving"
    },
    {
      "rule": "LC013",
      "name": "interleaving-deadlock",
      "severity": "info",
      "span": {
        "kind": "program_op",
        "proc": 2,
        "op": 9
      },
      "message": "P2 blocks here: receive of (source point 16, dep 0) is never satisfied in this interleaving"
    },
    {
      "rule": "LC013",
      "name": "interleaving-deadlock",
      "severity": "info",
      "span": {
        "kind": "program_op",
        "proc": 3,
        "op": 11
      },
      "message": "P3 blocks here: receive of (source point 14, dep 0) is never satisfied in this interleaving"
    }
  ],
  "counts": {
    "LC013": 4
  },
  "errors": 1,
  "warnings": 0
}
"#,
    );
}

#[test]
fn golden_lc014_interleaving_determinacy() {
    let (nest, mut cg) = l1_codegen();
    cg.program =
        loom_check::mutate_program(&cg.program, loom_check::Mutation::SwapSendEarlier, 1).unwrap();
    let mut stats = loom_check::InterleaveStats::default();
    let report = Report::from_diagnostics(loom_check::check_interleavings(
        &nest,
        &cg,
        &loom_check::InterleaveOptions::default(),
        &mut stats,
    ));
    snapshot(
        "LC014",
        &report,
        r#"error[LC014] element A(3,4): replayed interleaving computes Some(105.09375) but the sequential oracle computes Some(212.96875); the parallel program is not equivalent to the nest
check: 1 error(s), 0 warning(s), 0 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC014",
      "name": "interleaving-determinacy",
      "severity": "error",
      "span": {
        "kind": "element",
        "array": "A",
        "element": [
          3,
          4
        ]
      },
      "message": "replayed interleaving computes Some(105.09375) but the sequential oracle computes Some(212.96875); the parallel program is not equivalent to the nest"
    }
  ],
  "counts": {
    "LC014": 1
  },
  "errors": 1,
  "warnings": 0
}
"#,
    );
}

#[test]
fn golden_lc015_block_access_bounds() {
    let (nest, mut cg) = l1_codegen();
    let first_compute = cg
        .program
        .per_proc
        .iter_mut()
        .flat_map(|ops| ops.iter_mut())
        .find_map(|op| match op {
            Op::Compute { point } => Some(point),
            _ => None,
        })
        .unwrap();
    *first_compute = 10_000;
    let mut stats = loom_check::AbsintStats::default();
    let report = Report::from_diagnostics(loom_check::check_block_bounds(&nest, &cg, &mut stats));
    snapshot(
        "LC015",
        &report,
        r#"error[LC015] P0 op 1: compute names point 10000 but the iteration table has 36 entries
check: 1 error(s), 0 warning(s), 0 note(s)
"#,
        r#"{
  "diagnostics": [
    {
      "rule": "LC015",
      "name": "block-access-bounds",
      "severity": "error",
      "span": {
        "kind": "program_op",
        "proc": 0,
        "op": 1
      },
      "message": "compute names point 10000 but the iteration table has 36 entries"
    }
  ],
  "counts": {
    "LC015": 1
  },
  "errors": 1,
  "warnings": 0
}
"#,
    );
}

/// SARIF golden: the exact document `loom check --format sarif` emits
/// for the committed non-uniform sample.
#[test]
fn golden_sarif_nonuniform() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../samples/nonuniform.loom"
    ))
    .unwrap();
    let nest = loom_loopir::parse::parse_nest("nonuniform.loom", &src).unwrap();
    let report = Report::from_diagnostics(check_access_dependences(&nest, None));
    let sarif = report
        .to_sarif(Some("samples/nonuniform.loom"))
        .render_pretty();
    if std::env::var("GOLDEN_DUMP").is_ok() {
        println!("=== SARIF ===\n{sarif}\n");
        return;
    }
    let expected = r#"{
  "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "loom-check",
          "version": "0.1.0",
          "informationUri": "https://example.invalid/loom/docs/CHECKS.md",
          "rules": [
            {
              "id": "LC001",
              "name": "schedule-legality",
              "shortDescription": {
                "text": "schedule-legality"
              }
            },
            {
              "id": "LC002",
              "name": "block-shared-step",
              "shortDescription": {
                "text": "block-shared-step"
              }
            },
            {
              "id": "LC003",
              "name": "neighbor-bound",
              "shortDescription": {
                "text": "neighbor-bound"
              }
            },
            {
              "id": "LC004",
              "name": "gray-adjacency",
              "shortDescription": {
                "text": "gray-adjacency"
              }
            },
            {
              "id": "LC005",
              "name": "data-race",
              "shortDescription": {
                "text": "data-race"
              }
            },
            {
              "id": "LC006",
              "name": "grouping-rank",
              "shortDescription": {
                "text": "grouping-rank"
              }
            },
            {
              "id": "LC007",
              "name": "unmatched-message",
              "shortDescription": {
                "text": "unmatched-message"
              }
            },
            {
              "id": "LC008",
              "name": "fault-plan",
              "shortDescription": {
                "text": "fault-plan"
              }
            },
            {
              "id": "LC009",
              "name": "parametric-legality",
              "shortDescription": {
                "text": "parametric-legality"
              }
            },
            {
              "id": "LC010",
              "name": "access-dependence",
              "shortDescription": {
                "text": "access-dependence"
              }
            },
            {
              "id": "LC011",
              "name": "protocol-summary",
              "shortDescription": {
                "text": "protocol-summary"
              }
            },
            {
              "id": "LC012",
              "name": "blocking-cycle",
              "shortDescription": {
                "text": "blocking-cycle"
              }
            },
            {
              "id": "LC013",
              "name": "interleaving-deadlock",
              "shortDescription": {
                "text": "interleaving-deadlock"
              }
            },
            {
              "id": "LC014",
              "name": "interleaving-determinacy",
              "shortDescription": {
                "text": "interleaving-determinacy"
              }
            },
            {
              "id": "LC015",
              "name": "block-access-bounds",
              "shortDescription": {
                "text": "block-access-bounds"
              }
            },
            {
              "id": "LC016",
              "name": "uniformize-soundness",
              "shortDescription": {
                "text": "uniformize-soundness"
              }
            },
            {
              "id": "LC017",
              "name": "uniformize-tightness",
              "shortDescription": {
                "text": "uniformize-tightness"
              }
            },
            {
              "id": "LC018",
              "name": "uniformize-legality",
              "shortDescription": {
                "text": "uniformize-legality"
              }
            },
            {
              "id": "LP001",
              "name": "lex-invalid-char",
              "shortDescription": {
                "text": "lex-invalid-char"
              }
            },
            {
              "id": "LP002",
              "name": "lex-int-overflow",
              "shortDescription": {
                "text": "lex-int-overflow"
              }
            },
            {
              "id": "LP003",
              "name": "parse-expected",
              "shortDescription": {
                "text": "parse-expected"
              }
            },
            {
              "id": "LP004",
              "name": "parse-unknown-index",
              "shortDescription": {
                "text": "parse-unknown-index"
              }
            },
            {
              "id": "LP005",
              "name": "parse-non-affine",
              "shortDescription": {
                "text": "parse-non-affine"
              }
            },
            {
              "id": "LP006",
              "name": "parse-bad-step",
              "shortDescription": {
                "text": "parse-bad-step"
              }
            },
            {
              "id": "LP007",
              "name": "parse-invalid-nest",
              "shortDescription": {
                "text": "parse-invalid-nest"
              }
            },
            {
              "id": "LP008",
              "name": "resource-limit",
              "shortDescription": {
                "text": "resource-limit"
              }
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "LC016",
          "ruleIndex": 15,
          "level": "note",
          "message": {
            "text": "accesses A[2i] and A[i]: cover certified: every conflict distance is a non-negative integer combination of [[1]] (2 escape system(s) refuted)"
          },
          "locations": [
            {
              "logicalLocations": [
                {
                  "fullyQualifiedName": "accesses A[2i] and A[i]"
                }
              ],
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "samples/nonuniform.loom"
                },
                "region": {
                  "startLine": 1,
                  "startColumn": 1
                }
              }
            }
          ]
        },
        {
          "ruleId": "LC017",
          "ruleIndex": 16,
          "level": "warning",
          "message": {
            "text": "accesses A[2i] and A[i]: synthesized vector (1) over-approximates: iterations (2) and (3) never conflict on `A`, yet the folded nest synchronizes them; legal-Π census over [-2,2]^1: true relation admits 2 (best 8 step(s)), folded set admits 2 (best 8 step(s))"
          },
          "locations": [
            {
              "logicalLocations": [
                {
                  "fullyQualifiedName": "accesses A[2i] and A[i]"
                }
              ],
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "samples/nonuniform.loom"
                },
                "region": {
                  "startLine": 1,
                  "startColumn": 1
                }
              }
            }
          ]
        }
      ]
    }
  ]
}
"#;
    assert_eq!(sarif, expected, "SARIF rendering drifted");
}
