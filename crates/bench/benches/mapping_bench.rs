//! Bench: Algorithm 2 (cluster formation + Gray allocation) and
//! mapping-quality evaluation.

use loom_hyperplane::TimeFn;
use loom_mapping::{baseline, map_partitioning, metrics, Hypercube};
use loom_obs::bench::Bench;
use loom_partition::{partition, PartitionConfig, Tig};

fn main() {
    let mut bench = Bench::from_env();
    for m in [32i64, 64, 128] {
        let w = loom_workloads::matvec::workload(m);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        bench.run(&format!("algorithm2/gray_map/{m}"), || {
            map_partitioning(&p, 3).unwrap()
        });
    }
    let tig = Tig::mesh(16, 16);
    let cube = Hypercube::new(4);
    for (name, a) in [
        ("naive", baseline::naive(256, 16)),
        ("random", baseline::random(256, 16, 7)),
    ] {
        bench.run(&format!("mapping_quality/{name}"), || {
            metrics::evaluate(&tig, &a, cube)
        });
    }
    print!("{}", bench.report());
}
