//! Execution in an arbitrary total order, with dependence validation,
//! plus exact comparison of executions.

use crate::memory::Memory;
use crate::oracle::execute_iteration;
use loom_hyperplane::Schedule;
use loom_loopir::{LoopNest, Point};
use loom_machine::trace::TaskRecord;
use std::collections::HashMap;

/// A divergence between two executions, or an invalid order.
#[derive(Clone, Debug, PartialEq)]
pub enum Divergence {
    /// The two stores disagree on an element's value.
    ValueMismatch {
        /// The array.
        array: String,
        /// The element.
        element: Vec<i64>,
        /// Value in the first store (`None` = unwritten).
        left: Option<f64>,
        /// Value in the second store.
        right: Option<f64>,
    },
    /// The order executed a point before one of its dependence
    /// predecessors.
    OrderViolation {
        /// The too-early point.
        point: Point,
        /// The not-yet-executed predecessor.
        predecessor: Point,
    },
    /// The order is not a permutation of the iteration space.
    NotAPermutation,
}

/// Execute the nest visiting `order[k]`-th points of `points` in
/// sequence. Validates that the order is a permutation and respects the
/// given dependence set (every `p − d` predecessor inside the space must
/// already have executed).
pub fn execute_in_order(
    nest: &LoopNest,
    points: &[Point],
    order: &[usize],
    deps: &[Point],
    init: &dyn Fn(&str, &[i64]) -> f64,
) -> Result<Memory, Divergence> {
    if order.len() != points.len() {
        return Err(Divergence::NotAPermutation);
    }
    let index: HashMap<&Point, usize> = points.iter().enumerate().map(|(i, p)| (p, i)).collect();
    let mut done = vec![false; points.len()];
    let mut mem = Memory::new();
    for &id in order {
        if id >= points.len() || done[id] {
            return Err(Divergence::NotAPermutation);
        }
        let p = &points[id];
        for d in deps {
            let pred: Point = p.iter().zip(d).map(|(&a, &b)| a - b).collect();
            if let Some(&pid) = index.get(&pred) {
                if !done[pid] {
                    return Err(Divergence::OrderViolation {
                        point: p.clone(),
                        predecessor: pred,
                    });
                }
            }
        }
        execute_iteration(nest, p, &mut mem, init);
        done[id] = true;
    }
    Ok(mem)
}

/// The iteration order induced by a hyperplane schedule: front by front,
/// points within a front in the order the schedule stores them (any
/// within-front order is valid — fronts are independent sets).
pub fn schedule_order(points: &[Point], schedule: &Schedule) -> Vec<usize> {
    let index: HashMap<&Point, usize> = points.iter().enumerate().map(|(i, p)| (p, i)).collect();
    let mut order = Vec::with_capacity(points.len());
    for t in 0..schedule.num_steps() {
        for p in schedule.front(t) {
            if let Some(&id) = index.get(p) {
                order.push(id);
            }
        }
    }
    order
}

/// The iteration order of a simulator trace: by start time, then task id
/// (concurrent tasks on distinct processors are independent, so the tie
/// break cannot change results).
pub fn trace_order(trace: &[TaskRecord]) -> Vec<usize> {
    let mut records: Vec<&TaskRecord> = trace.iter().collect();
    records.sort_by_key(|r| (r.start, r.task));
    records.iter().map(|r| r.task as usize).collect()
}

/// Compare two stores exactly; `Ok(())` iff identical. Floating-point
/// equality is intentional: a dependence-respecting reorder must be
/// *bit-identical*, because each element's write sequence is fixed.
pub fn equivalent(left: &Memory, right: &Memory) -> Result<(), Divergence> {
    for ((array, element), &v) in left.iter() {
        match right.get(array, element) {
            Some(w) if w == v => {}
            other => {
                return Err(Divergence::ValueMismatch {
                    array: array.clone(),
                    element: element.clone(),
                    left: Some(v),
                    right: other,
                })
            }
        }
    }
    for ((array, element), &w) in right.iter() {
        if left.get(array, element).is_none() {
            return Err(Divergence::ValueMismatch {
                array: array.clone(),
                element: element.clone(),
                left: None,
                right: Some(w),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::address_hash_init;
    use crate::oracle::sequential;
    use loom_hyperplane::TimeFn;

    fn l1() -> loom_workloads::Workload {
        loom_workloads::l1::workload(4)
    }

    #[test]
    fn schedule_order_matches_sequential() {
        let w = l1();
        let points: Vec<Point> = w.nest.space().points().collect();
        let sched = Schedule::build(TimeFn::new(w.pi.clone()), w.nest.space());
        let order = schedule_order(&points, &sched);
        let deps = w.verified_deps();
        let par = execute_in_order(&w.nest, &points, &order, &deps, &address_hash_init).unwrap();
        let seq = sequential(&w.nest, &address_hash_init);
        assert_eq!(equivalent(&par, &seq), Ok(()));
    }

    #[test]
    fn reversed_fronts_still_match() {
        // Any order *within* a front is legal; reverse each front.
        let w = l1();
        let points: Vec<Point> = w.nest.space().points().collect();
        let sched = Schedule::build(TimeFn::new(w.pi.clone()), w.nest.space());
        let index: HashMap<&Point, usize> =
            points.iter().enumerate().map(|(i, p)| (p, i)).collect();
        let mut order = Vec::new();
        for t in 0..sched.num_steps() {
            for p in sched.front(t).iter().rev() {
                order.push(index[p]);
            }
        }
        let deps = w.verified_deps();
        let par = execute_in_order(&w.nest, &points, &order, &deps, &address_hash_init).unwrap();
        assert_eq!(
            equivalent(&par, &sequential(&w.nest, &address_hash_init)),
            Ok(())
        );
    }

    #[test]
    fn bad_order_detected() {
        let w = l1();
        let points: Vec<Point> = w.nest.space().points().collect();
        let deps = w.verified_deps();
        // Reverse lexicographic order executes sinks first.
        let order: Vec<usize> = (0..points.len()).rev().collect();
        let err = execute_in_order(&w.nest, &points, &order, &deps, &|_, _| 0.0).unwrap_err();
        assert!(matches!(err, Divergence::OrderViolation { .. }));
    }

    #[test]
    fn non_permutation_detected() {
        let w = l1();
        let points: Vec<Point> = w.nest.space().points().collect();
        let deps = w.verified_deps();
        let short = vec![0usize, 1];
        assert_eq!(
            execute_in_order(&w.nest, &points, &short, &deps, &|_, _| 0.0).unwrap_err(),
            Divergence::NotAPermutation
        );
        let dup = vec![0usize; points.len()];
        assert_eq!(
            execute_in_order(&w.nest, &points, &dup, &deps, &|_, _| 0.0).unwrap_err(),
            Divergence::NotAPermutation
        );
    }

    #[test]
    fn equivalent_detects_mismatch() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write("A", vec![0], 1.0);
        b.write("A", vec![0], 2.0);
        assert!(matches!(
            equivalent(&a, &b),
            Err(Divergence::ValueMismatch { .. })
        ));
        let empty = Memory::new();
        assert!(matches!(
            equivalent(&a, &empty),
            Err(Divergence::ValueMismatch { right: None, .. })
        ));
        assert!(matches!(
            equivalent(&empty, &a),
            Err(Divergence::ValueMismatch { left: None, .. })
        ));
    }
}
