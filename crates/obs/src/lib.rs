//! `loom-obs` — the observability substrate of the loom workspace, built
//! with zero external dependencies (the whole workspace builds offline).
//!
//! The paper's argument is quantitative — `T_exec` splits into
//! computation and communication, Theorem 2 bounds neighbour counts,
//! contention lives on individual hypercube links — so every layer of
//! the pipeline needs a cheap way to *measure itself*:
//!
//! * [`recorder`] — [`Recorder`] collects named wall-clock [`Span`]s and
//!   monotonic [`Counter`]s; the disabled recorder costs one branch per
//!   call site, so un-instrumented runs pay ~nothing,
//! * [`flight`] — a bounded structured-event ring buffer
//!   ([`FlightRecorder`]) with a stable JSONL schema, plus span
//!   aggregation into per-stage exclusive-time summaries and
//!   collapsed-stack (flamegraph) export,
//! * [`histogram`] — a power-of-two-bucketed [`Histogram`] for tick and
//!   hop distributions,
//! * [`json`] — a tiny JSON value ([`Json`]) with a renderer and a
//!   parser, for machine-readable metrics files and round-trip tests,
//! * [`diff`] — cross-run regression detection over bench/metrics
//!   documents, with noise thresholds on the histogram's
//!   power-of-two bucket scale (behind `loom obs diff`),
//! * [`chrome`] — a builder for Chrome trace-event JSON
//!   ([`chrome::TraceBuilder`]) loadable in Perfetto or
//!   `chrome://tracing`,
//! * [`pool`] — a deterministic scoped-thread work pool ([`Pool`])
//!   whose `map_indexed` returns results in input order and whose
//!   single-thread mode is the exact serial path,
//! * [`rng`] — a deterministic [`SplitMix64`] generator for seeded
//!   baselines and property-style tests,
//! * [`bench`] — a tiny wall-clock micro-benchmark harness
//!   ([`bench::Bench`]) backing the `harness = false` bench targets.
//!
//! ```
//! use loom_obs::Recorder;
//!
//! let rec = Recorder::enabled();
//! {
//!     let _span = rec.span("phase.partition");
//!     rec.counter("blocks").add(17);
//! }
//! assert_eq!(rec.counters()["blocks"], 17);
//! assert_eq!(rec.spans()[0].name, "phase.partition");
//! ```

#![deny(missing_docs)]

pub mod bench;
pub mod chrome;
pub mod diff;
pub mod flight;
pub mod histogram;
pub mod json;
pub mod pool;
pub mod recorder;
pub mod rng;

pub use diff::{DiffOptions, DiffReport, Finding, FindingKind};
pub use flight::{FlightEvent, FlightRecorder, StageSummary};
pub use histogram::Histogram;
pub use json::{Json, JsonLimits};
pub use pool::Pool;
pub use recorder::{Counter, Recorder, Span, SpanRecord};
pub use rng::SplitMix64;
