//! A9 — explore throughput: the parallel, pruned, stage-cached
//! configuration search against the seed's serial implementation.
//!
//! For every builtin workload family and `pi_bound ∈ {1, 2, 3}` this
//! runs the configuration sweep twice — once through
//! `explore_reference` (the seed implementation: serial, unpruned, the
//! whole pipeline re-run per (Π, grouping, cube_dim) triple), once
//! through the rewritten `explore` on 4 worker threads with
//! branch-and-bound pruning and the partitioning stage shared across
//! machine sizes — asserts the ranked candidate lists are
//! **byte-identical**, and records wall time, candidate counts, and
//! pruning effectiveness. The sweep is written to `BENCH_explore.json`
//! (the repo's bench trajectory artifact); `--smoke` shrinks it to a
//! CI-sized subset and `--out <path>` redirects the artifact.

use loom_bench::maybe_write_metrics;
use loom_core::explore::{
    explore_reference, explore_with, Candidate, ExploreConfig, SymbolicExplore,
};
use loom_core::report::Table;
use loom_core::symbolic_cost::DeriveOptions;
use loom_core::MachineOptions;
use loom_machine::MachineParams;
use loom_obs::{Json, Recorder};
use std::sync::Arc;
use std::time::Instant;

const THREADS: usize = 4;
const CUBE_DIMS: [usize; 3] = [1, 2, 3];

fn config(pi_bound: i64, threads: usize, prune: bool) -> ExploreConfig {
    ExploreConfig {
        pi_bound,
        top: 10,
        machine: MachineOptions {
            params: MachineParams::classic_1991(),
            ..Default::default()
        },
        threads,
        prune,
        symbolic: None,
    }
}

struct Leg {
    ranked: Vec<Candidate>,
    micros: u64,
    candidates: u64,
    simulated: u64,
    pruned: u64,
}

fn run_baseline(nest: &loom_loopir::LoopNest, pi_bound: i64) -> (Vec<Candidate>, u64) {
    let start = Instant::now();
    let ranked =
        explore_reference(nest, &CUBE_DIMS, &config(pi_bound, 1, false)).expect("explore succeeds");
    (ranked, start.elapsed().as_micros() as u64)
}

fn run_leg(nest: &loom_loopir::LoopNest, pi_bound: i64, threads: usize, prune: bool) -> Leg {
    let rec = Recorder::enabled();
    let start = Instant::now();
    let ranked = explore_with(nest, &CUBE_DIMS, &config(pi_bound, threads, prune), &rec)
        .expect("explore succeeds");
    let micros = start.elapsed().as_micros() as u64;
    let counters = rec.counters();
    Leg {
        ranked,
        micros,
        candidates: counters["explore.candidates"],
        simulated: counters["explore.simulated"],
        pruned: counters["explore.pruned"],
    }
}

/// The builtin workload families at bench-grade sizes: big enough that
/// a candidate's pipeline + simulation outweighs thread dispatch, small
/// enough that the full sweep finishes in seconds. `--smoke` keeps the
/// default (test-sized) instances instead.
fn bench_workloads(smoke: bool) -> Vec<loom_workloads::Workload> {
    use loom_workloads::*;
    if smoke {
        return vec![
            matvec::workload(8),
            sor::workload(6, 6),
            matmul::workload(4),
        ];
    }
    vec![
        l1::workload(12),
        matmul::workload(6),
        matvec::workload(24),
        conv::workload(16, 8),
        sor::workload(16, 16),
        transitive::workload(6),
        dft::workload(16),
        conv2d::workload(8, 4),
        triangular::workload(14),
        heat2d::workload(6, 8),
    ]
}

/// A machine with short pipeline-fill transients: most matvec-like
/// configurations settle into a single cost regime, which is what the
/// closed-form derivation needs to certify a fit far below the target.
fn low_latency() -> MachineParams {
    MachineParams {
        t_calc: 3,
        t_start: 2,
        t_comm: 1,
        t_recv: 0,
    }
}

struct SymLeg {
    ranked: Vec<Candidate>,
    micros: u64,
    exact: u64,
    fallback: u64,
    probe_points: u64,
}

/// One `--symbolic` sweep: derive closed forms per (Π, grouping) pair,
/// evaluate at `size`, fall back to the simulator only on `Unknown`.
fn run_symbolic(
    name: &str,
    size: i64,
    pi_bound: i64,
    cube_dims: &[usize],
    params: MachineParams,
) -> SymLeg {
    let fam = loom_workloads::family_of(name, None).expect("builtin family");
    let nest = fam(size).nest;
    let rec = Recorder::enabled();
    let cfg = ExploreConfig {
        machine: MachineOptions {
            params,
            ..Default::default()
        },
        symbolic: Some(SymbolicExplore {
            family: Arc::new(move |n| fam(n).nest),
            size,
            opts: DeriveOptions::default(),
        }),
        ..config(pi_bound, THREADS, true)
    };
    let start = Instant::now();
    let ranked = explore_with(&nest, cube_dims, &cfg, &rec).expect("symbolic explore succeeds");
    let micros = start.elapsed().as_micros() as u64;
    let counters = rec.counters();
    SymLeg {
        ranked,
        micros,
        exact: counters["explore.symbolic.exact"],
        fallback: counters["explore.symbolic.fallback"],
        probe_points: counters["explore.symbolic.probe_points"],
    }
}

fn run_reference_with(
    name: &str,
    size: i64,
    pi_bound: i64,
    cube_dims: &[usize],
    params: MachineParams,
) -> (Vec<Candidate>, u64) {
    let fam = loom_workloads::family_of(name, None).expect("builtin family");
    let nest = fam(size).nest;
    let cfg = ExploreConfig {
        machine: MachineOptions {
            params,
            ..Default::default()
        },
        ..config(pi_bound, 1, false)
    };
    let start = Instant::now();
    let ranked = explore_reference(&nest, cube_dims, &cfg).expect("explore succeeds");
    (ranked, start.elapsed().as_micros() as u64)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_explore.json".to_string());
    let pi_bounds: &[i64] = if smoke { &[1, 2] } else { &[1, 2, 3] };

    println!(
        "A9 — explore throughput: {THREADS}-thread pruned stage-cached sweep vs the\n\
         seed's serial explorer (full pipeline per candidate triple){}\n",
        if smoke { " (smoke)" } else { "" }
    );
    let mut t = Table::new([
        "workload",
        "pi_bound",
        "candidates",
        "simulated",
        "pruned",
        "baseline_ms",
        "explore_ms",
        "speedup",
    ]);
    let mut entries: Vec<Json> = Vec::new();
    let mut best_speedup_at_2 = 0.0f64;
    for w in bench_workloads(smoke) {
        for &pi_bound in pi_bounds {
            let (reference, baseline_us) = run_baseline(&w.nest, pi_bound);
            let fast = run_leg(&w.nest, pi_bound, THREADS, true);
            assert_eq!(
                fast.ranked,
                reference,
                "RANKING DIVERGED for {} at pi_bound={pi_bound}",
                w.nest.name()
            );
            let speedup = baseline_us as f64 / fast.micros.max(1) as f64;
            if pi_bound == 2 {
                best_speedup_at_2 = best_speedup_at_2.max(speedup);
            }
            t.row([
                w.nest.name().to_string(),
                format!("{pi_bound}"),
                format!("{}", fast.candidates),
                format!("{}", fast.simulated),
                format!("{}", fast.pruned),
                format!("{:.1}", baseline_us as f64 / 1000.0),
                format!("{:.1}", fast.micros as f64 / 1000.0),
                format!("{speedup:.2}x"),
            ]);
            entries.push(Json::obj(vec![
                ("workload", Json::from(w.nest.name())),
                ("pi_bound", Json::from(pi_bound)),
                ("candidates", Json::from(fast.candidates)),
                ("simulated", Json::from(fast.simulated)),
                ("pruned", Json::from(fast.pruned)),
                ("baseline_us", Json::from(baseline_us)),
                ("explore_us", Json::from(fast.micros)),
                ("speedup", Json::from((speedup * 100.0).round() / 100.0)),
                ("ranking_identical", Json::from(true)),
            ]));
        }
    }
    println!("{t}");

    // --- symbolic sweep: closed-form T_exec vs the simulating path ---
    //
    // Identity rows run both paths and assert the byte-identical
    // ranking; the speedup row scales the size until the simulating
    // path pays millions of points per candidate while the symbolic
    // path still derives from small probe windows; the final row
    // evaluates a space the simulator cannot reach at all.
    println!("symbolic explore: closed-form T_exec vs simulating sweep\n");
    let mut st = Table::new([
        "workload",
        "size",
        "machine",
        "exact",
        "fallback",
        "baseline_ms",
        "symbolic_ms",
        "speedup",
    ]);
    let mut sym_entries: Vec<Json> = Vec::new();
    type SymRow = (
        &'static str,
        i64,
        i64,
        &'static [usize],
        MachineParams,
        &'static str,
    );
    let ident: &[SymRow] = if smoke {
        &[(
            "matvec",
            12,
            2,
            &[0, 1, 2],
            MachineParams::classic_1991(),
            "classic_1991",
        )]
    } else {
        &[
            (
                "matvec",
                12,
                2,
                &[0, 1, 2],
                MachineParams::classic_1991(),
                "classic_1991",
            ),
            ("matvec", 24, 2, &[0, 1, 2], low_latency(), "low_latency"),
            ("conv", 10, 2, &[0, 1, 2], low_latency(), "low_latency"),
            (
                "sor",
                10,
                2,
                &[0, 1, 2],
                MachineParams::classic_1991(),
                "classic_1991",
            ),
        ]
    };
    let speedup_rows: &[SymRow] = if smoke {
        &[]
    } else {
        &[
            ("matvec", 1024, 1, &[1, 2], low_latency(), "low_latency"),
            ("matvec", 2048, 1, &[1, 2], low_latency(), "low_latency"),
        ]
    };
    for &(name, size, pi_bound, dims, params, mname) in ident.iter().chain(speedup_rows) {
        let (reference, baseline_us) = run_reference_with(name, size, pi_bound, dims, params);
        let sym = run_symbolic(name, size, pi_bound, dims, params);
        assert_eq!(
            sym.ranked, reference,
            "SYMBOLIC RANKING DIVERGED for {name} at size {size}"
        );
        let speedup = baseline_us as f64 / sym.micros.max(1) as f64;
        st.row([
            name.to_string(),
            format!("{size}"),
            mname.to_string(),
            format!("{}", sym.exact),
            format!("{}", sym.fallback),
            format!("{:.1}", baseline_us as f64 / 1000.0),
            format!("{:.1}", sym.micros as f64 / 1000.0),
            format!("{speedup:.1}x"),
        ]);
        sym_entries.push(Json::obj(vec![
            ("workload", Json::from(name)),
            ("size", Json::from(size)),
            ("machine", Json::from(mname)),
            ("pi_bound", Json::from(pi_bound)),
            ("exact", Json::from(sym.exact)),
            ("fallback", Json::from(sym.fallback)),
            ("probe_points", Json::from(sym.probe_points)),
            ("baseline_us", Json::from(baseline_us)),
            ("symbolic_us", Json::from(sym.micros)),
            ("speedup", Json::from((speedup * 100.0).round() / 100.0)),
            ("ranking_identical", Json::from(true)),
        ]));
    }
    if !smoke {
        // The size-free showcase: M = 10⁶ is a 2·10¹²-point space — the
        // simulating path is out of reach, the closed forms evaluate in
        // O(1). Rehearse at a reachable size first: the sweep only runs
        // at M = 10⁶ when no candidate needed the simulator fallback
        // (one fallback there would BE the unreachable simulation).
        let rehearsal = run_symbolic("matvec", 64, 1, &[1, 2], low_latency());
        if rehearsal.fallback == 0 {
            let sym = run_symbolic("matvec", 1_000_000, 1, &[1, 2], low_latency());
            assert_eq!(sym.fallback, 0, "10^6 sweep must not simulate");
            let best = &sym.ranked[0];
            st.row([
                "matvec".to_string(),
                "1000000".to_string(),
                "low_latency".to_string(),
                format!("{}", sym.exact),
                format!("{}", sym.fallback),
                "unreachable".to_string(),
                format!("{:.1}", sym.micros as f64 / 1000.0),
                "-".to_string(),
            ]);
            sym_entries.push(Json::obj(vec![
                ("workload", Json::from("matvec")),
                ("size", Json::from(1_000_000i64)),
                ("machine", Json::from("low_latency")),
                ("pi_bound", Json::from(1i64)),
                ("space_points", Json::from(2_000_000_000_000u64)),
                ("exact", Json::from(sym.exact)),
                ("fallback", Json::from(sym.fallback)),
                ("probe_points", Json::from(sym.probe_points)),
                ("symbolic_us", Json::from(sym.micros)),
                ("best_makespan", Json::from(best.makespan)),
                ("simulator_reachable", Json::from(false)),
            ]));
        } else {
            println!(
                "skipping the 10^6 row: rehearsal at size 64 needed {} fallback(s)",
                rehearsal.fallback
            );
        }
    }
    println!("{st}");

    let doc = Json::obj(vec![
        ("bench", Json::from("explore")),
        ("threads", Json::from(THREADS)),
        (
            "cube_dims",
            Json::Arr(CUBE_DIMS.iter().map(|&d| Json::from(d)).collect()),
        ),
        ("smoke", Json::from(smoke)),
        (
            "best_speedup_at_pi_bound_2",
            Json::from((best_speedup_at_2 * 100.0).round() / 100.0),
        ),
        ("entries", Json::Arr(entries)),
        ("symbolic", Json::Arr(sym_entries)),
    ]);
    std::fs::write(&out_path, doc.render_pretty()).expect("write bench artifact");
    println!("wrote {out_path}");
    maybe_write_metrics("a9_explore", &doc);
    loom_bench::maybe_append_history("explore", &doc);
    println!(
        "\nevery row is double-checked: the pruned parallel sweep returned the\n\
         byte-identical top-10 the seed's serial explorer did; the speedup\n\
         comes from sharing the partitioning stage across machine sizes,\n\
         skipping candidates whose analytic lower bound cannot crack the\n\
         current top-10, and fanning pairs over {THREADS} workers."
    );
}
