//! The deterministic discrete-event engine.

use crate::cost::MachineParams;
use crate::metrics::{MsgRecord, SimMetrics};
use crate::program::Program;
use crate::topology::Topology;
use crate::trace::TaskRecord;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

/// Simulation configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Machine timing parameters.
    pub params: MachineParams,
    /// Interconnect (must have at least `program.num_procs` nodes).
    pub topology: Topology,
    /// Words carried by one dependence arc (1 in the paper's model).
    pub words_per_arc: u64,
    /// Combine all arcs from one task to one destination processor into a
    /// single message (an optimization the paper's per-word model does
    /// not perform; exposed for the ablation benches).
    pub batch_messages: bool,
    /// Model per-link contention: each directed link carries one message
    /// at a time, and store-and-forward messages queue at busy links.
    /// Off by default (the paper's cost model charges latency only).
    pub link_contention: bool,
    /// Record a full execution trace (costs memory proportional to the
    /// task count).
    pub record_trace: bool,
    /// Collect rich telemetry ([`SimMetrics`]): per-processor tick
    /// breakdowns, per-link traffic, hop histograms, and a message log.
    /// Purely observational — never changes simulated timing.
    pub collect_metrics: bool,
}

impl SimConfig {
    /// The paper's model on a hypercube: one word per arc, no batching.
    pub fn paper_hypercube(dim: usize, params: MachineParams) -> SimConfig {
        SimConfig {
            params,
            topology: Topology::Hypercube(dim),
            words_per_arc: 1,
            batch_messages: false,
            link_contention: false,
            record_trace: false,
            collect_metrics: false,
        }
    }
}

/// What the simulation measured.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Completion time of the last task.
    pub makespan: u64,
    /// Compute occupancy per processor.
    pub compute: Vec<u64>,
    /// Send occupancy per processor.
    pub comm: Vec<u64>,
    /// Messages sent.
    pub messages: u64,
    /// Words sent.
    pub words: u64,
    /// Execution trace, if requested.
    pub trace: Option<Vec<TaskRecord>>,
    /// Rich telemetry, if requested via
    /// [`SimConfig::collect_metrics`].
    pub metrics: Option<SimMetrics>,
}

impl SimReport {
    /// The busiest processor's total occupancy (compute + comm) — the
    /// quantity the paper's `T_exec` bounds.
    pub fn max_proc_occupancy(&self) -> u64 {
        self.compute
            .iter()
            .zip(&self.comm)
            .map(|(&c, &m)| c + m)
            .max()
            .unwrap_or(0)
    }

    /// Per-processor idle ticks: makespan minus compute and comm
    /// occupancy.
    pub fn idle_ticks(&self) -> Vec<u64> {
        self.compute
            .iter()
            .zip(&self.comm)
            .map(|(&c, &m)| self.makespan.saturating_sub(c + m))
            .collect()
    }

    /// Total communication occupancy divided by total compute occupancy
    /// across all processors (`0.0` for a compute-free program).
    pub fn comm_to_compute_ratio(&self) -> f64 {
        let compute: u64 = self.compute.iter().sum();
        if compute == 0 {
            return 0.0;
        }
        self.comm.iter().sum::<u64>() as f64 / compute as f64
    }

    /// Per-processor utilization: fraction of the makespan each
    /// processor was busy (compute + comm), in `[0, 1]`.
    pub fn per_proc_utilization(&self) -> Vec<f64> {
        if self.makespan == 0 {
            return vec![0.0; self.compute.len()];
        }
        self.compute
            .iter()
            .zip(&self.comm)
            .map(|(&c, &m)| (c + m) as f64 / self.makespan as f64)
            .collect()
    }
}

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Not every task completed — the arc set contains a cycle.
    Deadlock {
        /// Tasks that completed.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
    /// The topology is smaller than the program's processor count.
    MachineTooSmall {
        /// Processors the program needs.
        needed: usize,
        /// Processors the topology has.
        available: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { completed, total } => {
                write!(f, "deadlock: {completed}/{total} tasks completed")
            }
            SimError::MachineTooSmall { needed, available } => {
                write!(
                    f,
                    "program needs {needed} processors, machine has {available}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, PartialEq, Eq)]
enum Kind {
    TaskDone { proc: u32, task: u32 },
    SendDone { proc: u32 },
    Arrive { tasks: Vec<u32> },
    RecvDone { proc: u32, tasks: Vec<u32> },
}

#[derive(Debug, PartialEq, Eq)]
struct Ev {
    time: u64,
    seq: u64,
    kind: Kind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct PendingSend {
    dst_proc: u32,
    src_task: u32,
    tasks: Vec<u32>,
    words: u64,
}

struct Proc {
    busy_until: u64,
    ready: BinaryHeap<Reverse<(i64, u32)>>,
    sends: VecDeque<PendingSend>,
    /// Messages that arrived but still need `t_recv` of software
    /// processing before their data is usable.
    recvs: VecDeque<Vec<u32>>,
}

/// Run the program to completion on the configured machine.
///
/// Scheduling policy: each processor is a single resource shared by
/// computation and message startup. When free it first issues pending
/// sends (data flows out as early as possible), then executes the ready
/// task with the smallest hyperplane step — so the execution order defined
/// by the time transformation is preserved within every processor.
pub fn simulate(program: &Program, config: &SimConfig) -> Result<SimReport, SimError> {
    let n_tasks = program.len();
    let n_procs = program.num_procs;
    if config.topology.len() < n_procs {
        return Err(SimError::MachineTooSmall {
            needed: n_procs,
            available: config.topology.len(),
        });
    }

    // Adjacency (successor, words) and in-degrees.
    let mut out: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n_tasks];
    let mut indeg: Vec<u32> = vec![0; n_tasks];
    for (k, &(a, b)) in program.arcs.iter().enumerate() {
        out[a as usize].push((b, program.arc_words[k]));
        indeg[b as usize] += 1;
    }

    let mut procs: Vec<Proc> = (0..n_procs)
        .map(|_| Proc {
            busy_until: 0,
            ready: BinaryHeap::new(),
            sends: VecDeque::new(),
            recvs: VecDeque::new(),
        })
        .collect();
    for (t, &deg) in indeg.iter().enumerate() {
        if deg == 0 {
            let p = program.proc_of[t] as usize;
            procs[p].ready.push(Reverse((program.step_of[t], t as u32)));
        }
    }

    let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let dur_of = |task: u32| program.task_flops[task as usize] * config.params.t_calc;
    let mut compute = vec![0u64; n_procs];
    let mut comm = vec![0u64; n_procs];
    let mut messages = 0u64;
    let mut words_sent = 0u64;
    let mut completed = 0usize;
    let mut makespan = 0u64;
    let mut trace = config.record_trace.then(Vec::new);
    let mut metrics = config.collect_metrics.then(|| SimMetrics::new(n_procs));
    let mut link_free: std::collections::HashMap<(usize, usize), u64> =
        std::collections::HashMap::new();

    // Dispatch work on processor `p` if it is free at `now`.
    macro_rules! dispatch {
        ($p:expr, $now:expr) => {{
            let p = $p;
            let now = $now;
            if procs[p].busy_until <= now {
                if let Some(send) = procs[p].sends.pop_front() {
                    let occ = config.params.send_occupancy(send.words);
                    let dst = send.dst_proc as usize;
                    let hops = config.topology.distance(p, dst) as u64;
                    debug_assert!(hops > 0, "send to self");
                    // Only routed when someone needs the links.
                    let route = (config.link_contention || metrics.is_some())
                        .then(|| config.topology.route_links(p, dst));
                    let (sender_done, arrival) = if config.link_contention {
                        // Store-and-forward with one message per directed
                        // link at a time: queue at each busy link.
                        let mut cur = now;
                        let mut first_end = now + occ;
                        for (i, link) in route.as_deref().unwrap().iter().enumerate() {
                            let start = cur.max(link_free.get(link).copied().unwrap_or(0));
                            if let Some(m) = metrics.as_mut() {
                                let lm = m.links.entry(*link).or_default();
                                lm.wait_ticks += start - cur;
                            }
                            let end = start + occ;
                            link_free.insert(*link, end);
                            if i == 0 {
                                first_end = end;
                            }
                            cur = end;
                        }
                        (first_end, cur)
                    } else {
                        (now + occ, now + occ * hops)
                    };
                    if let Some(m) = metrics.as_mut() {
                        for link in route.as_deref().unwrap() {
                            let lm = m.links.entry(*link).or_default();
                            lm.messages += 1;
                            lm.words += send.words;
                            lm.busy_ticks += occ;
                        }
                        m.procs[p].msgs_sent += 1;
                        m.procs[p].send_ticks += sender_done - now;
                        m.hops.record(hops);
                        m.messages.push(MsgRecord {
                            src_proc: p as u32,
                            dst_proc: send.dst_proc,
                            src_task: send.src_task,
                            dst_tasks: send.tasks.clone(),
                            words: send.words,
                            send_start: now,
                            send_end: sender_done,
                            arrival,
                            hops: hops as u32,
                        });
                    }
                    // A blocking send occupies the sender until its first
                    // hop (including any wait for the outgoing link).
                    procs[p].busy_until = sender_done;
                    comm[p] += sender_done - now;
                    messages += 1;
                    words_sent += send.words;
                    seq += 1;
                    heap.push(Reverse(Ev {
                        time: sender_done,
                        seq,
                        kind: Kind::SendDone { proc: p as u32 },
                    }));
                    seq += 1;
                    heap.push(Reverse(Ev {
                        time: arrival,
                        seq,
                        kind: Kind::Arrive { tasks: send.tasks },
                    }));
                } else if let Some(tasks) = procs[p].recvs.pop_front() {
                    let occ = config.params.t_recv;
                    procs[p].busy_until = now + occ;
                    comm[p] += occ;
                    if let Some(m) = metrics.as_mut() {
                        m.procs[p].recv_ticks += occ;
                    }
                    seq += 1;
                    heap.push(Reverse(Ev {
                        time: now + occ,
                        seq,
                        kind: Kind::RecvDone {
                            proc: p as u32,
                            tasks,
                        },
                    }));
                } else if let Some(Reverse((_, task))) = procs[p].ready.pop() {
                    let task_dur = dur_of(task);
                    procs[p].busy_until = now + task_dur;
                    compute[p] += task_dur;
                    if let Some(m) = metrics.as_mut() {
                        m.procs[p].compute_ticks += task_dur;
                        m.procs[p].tasks += 1;
                    }
                    seq += 1;
                    heap.push(Reverse(Ev {
                        time: now + task_dur,
                        seq,
                        kind: Kind::TaskDone {
                            proc: p as u32,
                            task,
                        },
                    }));
                }
            }
        }};
    }

    for p in 0..n_procs {
        dispatch!(p, 0);
    }

    while let Some(Reverse(ev)) = heap.pop() {
        let now = ev.time;
        match ev.kind {
            Kind::TaskDone { proc, task } => {
                completed += 1;
                makespan = makespan.max(now);
                if let Some(tr) = trace.as_mut() {
                    tr.push(TaskRecord {
                        task,
                        proc,
                        start: now - dur_of(task),
                        end: now,
                    });
                }
                let p = proc as usize;
                // Local arcs complete immediately; remote arcs queue sends.
                let mut remote: Vec<(u32, u32, u64)> = Vec::new(); // (dst_proc, dst_task, words)
                for &(w, arc_w) in &out[task as usize] {
                    let q = program.proc_of[w as usize];
                    if q as usize == p {
                        indeg[w as usize] -= 1;
                        if indeg[w as usize] == 0 {
                            procs[p]
                                .ready
                                .push(Reverse((program.step_of[w as usize], w)));
                        }
                    } else {
                        remote.push((q, w, arc_w));
                    }
                }
                if config.batch_messages {
                    remote.sort_unstable();
                    let mut i = 0;
                    while i < remote.len() {
                        let dst = remote[i].0;
                        let mut tasks = Vec::new();
                        let mut words = 0u64;
                        while i < remote.len() && remote[i].0 == dst {
                            tasks.push(remote[i].1);
                            words += remote[i].2 * config.words_per_arc;
                            i += 1;
                        }
                        procs[p].sends.push_back(PendingSend {
                            dst_proc: dst,
                            src_task: task,
                            tasks,
                            words,
                        });
                    }
                } else {
                    for (dst, w, arc_w) in remote {
                        procs[p].sends.push_back(PendingSend {
                            dst_proc: dst,
                            src_task: task,
                            tasks: vec![w],
                            words: arc_w * config.words_per_arc,
                        });
                    }
                }
                dispatch!(p, now);
            }
            Kind::SendDone { proc } => {
                dispatch!(proc as usize, now);
            }
            Kind::Arrive { tasks } => {
                if let Some(m) = metrics.as_mut() {
                    m.procs[program.proc_of[tasks[0] as usize] as usize].msgs_received += 1;
                }
                if config.params.t_recv > 0 {
                    // All tasks of one message live on one processor.
                    let q = program.proc_of[tasks[0] as usize] as usize;
                    debug_assert!(tasks
                        .iter()
                        .all(|&w| program.proc_of[w as usize] as usize == q));
                    procs[q].recvs.push_back(tasks);
                    dispatch!(q, now);
                } else {
                    for w in tasks {
                        indeg[w as usize] -= 1;
                        if indeg[w as usize] == 0 {
                            let q = program.proc_of[w as usize] as usize;
                            procs[q]
                                .ready
                                .push(Reverse((program.step_of[w as usize], w)));
                            dispatch!(q, now);
                        }
                    }
                }
            }
            Kind::RecvDone { proc, tasks } => {
                let q = proc as usize;
                for w in tasks {
                    indeg[w as usize] -= 1;
                    if indeg[w as usize] == 0 {
                        procs[q]
                            .ready
                            .push(Reverse((program.step_of[w as usize], w)));
                    }
                }
                dispatch!(q, now);
            }
        }
    }

    if completed != n_tasks {
        return Err(SimError::Deadlock {
            completed,
            total: n_tasks,
        });
    }
    if let Some(tr) = trace.as_mut() {
        tr.sort_by_key(|r| (r.start, r.task));
    }
    Ok(SimReport {
        makespan,
        compute,
        comm,
        messages,
        words: words_sent,
        trace,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MachineParams {
        MachineParams {
            t_calc: 1,
            t_start: 10,
            t_comm: 2,
            t_recv: 0,
        }
    }

    fn config(n_procs_dim: usize) -> SimConfig {
        SimConfig {
            params: params(),
            topology: Topology::Hypercube(n_procs_dim),
            words_per_arc: 1,
            batch_messages: false,
            link_contention: false,
            record_trace: true,
            collect_metrics: false,
        }
    }

    #[test]
    fn single_proc_chain_is_serial() {
        // 3 tasks in a chain on one processor, 2 flops each.
        let prog = Program::from_parts(vec![0, 1, 2], vec![(0, 1), (1, 2)], vec![0, 0, 0], 2, 1);
        let r = simulate(&prog, &config(0)).unwrap();
        assert_eq!(r.makespan, 6);
        assert_eq!(r.compute, vec![6]);
        assert_eq!(r.comm, vec![0]);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn two_proc_chain_pays_message() {
        // task0 (proc0) → task1 (proc1), 1 flop, 1 word, 1 hop.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let r = simulate(&prog, &config(1)).unwrap();
        // t=1 task0 done; send occupies proc0 until 1+12; arrival at 13;
        // task1 runs 13→14.
        assert_eq!(r.makespan, 14);
        assert_eq!(r.compute, vec![1, 1]);
        assert_eq!(r.comm, vec![12, 0]);
        assert_eq!(r.messages, 1);
        assert_eq!(r.words, 1);
    }

    #[test]
    fn multi_hop_store_and_forward() {
        // proc 0b00 → proc 0b11 on a 2-cube: 2 hops.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 3], 1, 4);
        let r = simulate(&prog, &config(2)).unwrap();
        // Arrival at 1 + 2*12 = 25; completion at 26.
        assert_eq!(r.makespan, 26);
        // Sender only occupied for the first hop.
        assert_eq!(r.comm[0], 12);
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let prog = Program::from_parts(vec![0, 0], vec![], vec![0, 1], 5, 2);
        let r = simulate(&prog, &config(1)).unwrap();
        assert_eq!(r.makespan, 5);
        assert_eq!(r.compute, vec![5, 5]);
    }

    #[test]
    fn batching_reduces_messages_and_makespan() {
        // task0 on proc0 feeds 4 tasks on proc1.
        let prog = Program::from_parts(
            vec![0, 1, 1, 1, 1],
            vec![(0, 1), (0, 2), (0, 3), (0, 4)],
            vec![0, 1, 1, 1, 1],
            1,
            2,
        );
        let unbatched = simulate(&prog, &config(1)).unwrap();
        let mut cfg = config(1);
        cfg.batch_messages = true;
        let batched = simulate(&prog, &cfg).unwrap();
        assert_eq!(unbatched.messages, 4);
        assert_eq!(batched.messages, 1);
        assert_eq!(batched.words, 4);
        assert!(batched.makespan < unbatched.makespan);
        // One batched message: t_start + 4·t_comm = 18 occupancy.
        assert_eq!(batched.comm[0], 18);
    }

    #[test]
    fn deadlock_detected() {
        let prog = Program::from_parts(vec![0, 0], vec![(0, 1), (1, 0)], vec![0, 0], 1, 1);
        assert_eq!(
            simulate(&prog, &config(0)).unwrap_err(),
            SimError::Deadlock {
                completed: 0,
                total: 2
            }
        );
    }

    #[test]
    fn machine_too_small_detected() {
        let prog = Program::from_parts(vec![0], vec![], vec![0], 1, 4);
        assert_eq!(
            simulate(&prog, &config(1)).unwrap_err(),
            SimError::MachineTooSmall {
                needed: 4,
                available: 2
            }
        );
    }

    #[test]
    fn trace_records_every_task() {
        let prog = Program::from_parts(vec![0, 1, 2], vec![(0, 1), (1, 2)], vec![0, 0, 0], 2, 1);
        let r = simulate(&prog, &config(0)).unwrap();
        let tr = r.trace.unwrap();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr[0].start, 0);
        assert_eq!(tr[2].end, 6);
    }

    #[test]
    fn link_contention_serializes_shared_links() {
        // Two independent cross-proc sends from proc 0 to proc 1: with
        // contention off both messages pipeline through the wire model
        // (arrival = send end); with contention on, behavior over ONE
        // link is identical because the sender already serializes its
        // own sends. Use a two-hop route shared by two senders instead:
        // procs 0b00 and 0b01 both send to 0b11; the (0b01,0b11) link is
        // shared under e-cube routing.
        let prog = Program::from_parts(
            vec![0, 0, 1, 1],
            vec![(0, 2), (1, 3)],
            vec![0, 1, 3, 3],
            1,
            4,
        );
        let mut free = config(2);
        free.record_trace = false;
        let mut contended = free;
        contended.link_contention = true;
        let a = simulate(&prog, &free).unwrap();
        let b = simulate(&prog, &contended).unwrap();
        assert!(
            b.makespan >= a.makespan,
            "contention can only delay: {} vs {}",
            b.makespan,
            a.makespan
        );
        // Compute totals are unaffected.
        assert_eq!(a.compute, b.compute);
    }

    #[test]
    fn contention_off_matches_original_model() {
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 3], 1, 4);
        let r = simulate(&prog, &config(2)).unwrap();
        assert_eq!(r.makespan, 26); // same as multi_hop_store_and_forward
    }

    #[test]
    fn receive_overhead_charged_to_receiver() {
        // task0 (proc0) → task1 (proc1), t_recv = 3: arrival at 13, then
        // 3 ticks of receive processing, task1 runs 16→17.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let mut cfg = config(1);
        cfg.params = cfg.params.with_recv(3);
        let r = simulate(&prog, &cfg).unwrap();
        assert_eq!(r.makespan, 17);
        assert_eq!(r.comm[1], 3, "receiver pays t_recv");
        assert_eq!(r.comm[0], 12, "sender unchanged");
    }

    #[test]
    fn receive_overhead_monotone() {
        let prog = Program::from_parts(
            vec![0, 0, 1, 1],
            vec![(0, 2), (0, 3), (1, 2), (1, 3)],
            vec![0, 1, 0, 1],
            3,
            2,
        );
        let mut prev = 0;
        for t_recv in [0u64, 2, 8, 32] {
            let mut cfg = config(1);
            cfg.params = cfg.params.with_recv(t_recv);
            let r = simulate(&prog, &cfg).unwrap();
            assert!(r.makespan >= prev, "t_recv={t_recv}");
            prev = r.makespan;
        }
    }

    #[test]
    fn metrics_breakdown_matches_report() {
        // task0 (proc0) → task1 (proc1): one message, one hop.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let mut cfg = config(1);
        cfg.collect_metrics = true;
        let r = simulate(&prog, &cfg).unwrap();
        let m = r.metrics.as_ref().unwrap();
        assert_eq!(m.procs.len(), 2);
        // Tick breakdowns agree with the coarse report.
        for p in 0..2 {
            assert_eq!(m.procs[p].compute_ticks, r.compute[p]);
            assert_eq!(m.procs[p].send_ticks + m.procs[p].recv_ticks, r.comm[p]);
        }
        assert_eq!(m.procs[0].msgs_sent, 1);
        assert_eq!(m.procs[1].msgs_received, 1);
        assert_eq!(m.procs.iter().map(|p| p.tasks).sum::<u64>(), 2);
        // One message logged, one hop, over link (0,1).
        assert_eq!(m.messages.len(), 1);
        let msg = &m.messages[0];
        assert_eq!((msg.src_proc, msg.dst_proc), (0, 1));
        assert_eq!(msg.src_task, 0);
        assert_eq!(msg.dst_tasks, vec![1]);
        assert_eq!(msg.hops, 1);
        assert_eq!(msg.send_start, 1);
        assert_eq!(msg.send_end, 13);
        assert_eq!(msg.arrival, 13);
        assert_eq!(m.hops.count(), 1);
        assert_eq!(m.links.get(&(0, 1)).unwrap().messages, 1);
        assert_eq!(m.links.get(&(0, 1)).unwrap().busy_ticks, 12);
    }

    #[test]
    fn metrics_do_not_change_timing() {
        let prog = Program::from_parts(
            vec![0, 0, 1, 1],
            vec![(0, 2), (0, 3), (1, 2), (1, 3)],
            vec![0, 1, 0, 1],
            3,
            2,
        );
        for contention in [false, true] {
            let mut plain = config(1);
            plain.link_contention = contention;
            let mut metered = plain;
            metered.collect_metrics = true;
            let a = simulate(&prog, &plain).unwrap();
            let b = simulate(&prog, &metered).unwrap();
            assert_eq!(a.makespan, b.makespan, "contention={contention}");
            assert_eq!(a.compute, b.compute);
            assert_eq!(a.comm, b.comm);
            assert!(a.metrics.is_none());
            assert!(b.metrics.is_some());
        }
    }

    #[test]
    fn metrics_record_link_wait_under_contention() {
        // Two senders share the (0b01, 0b11) link under e-cube routing.
        let prog = Program::from_parts(
            vec![0, 0, 1, 1],
            vec![(0, 2), (1, 3)],
            vec![0, 1, 3, 3],
            1,
            4,
        );
        let mut cfg = config(2);
        cfg.link_contention = true;
        cfg.collect_metrics = true;
        let r = simulate(&prog, &cfg).unwrap();
        let m = r.metrics.as_ref().unwrap();
        let shared = m.links.get(&(0b01, 0b11)).unwrap();
        assert_eq!(shared.messages, 2);
        assert!(shared.wait_ticks > 0, "shared link should queue");
        assert_eq!(m.total_link_wait(), shared.wait_ticks);
        assert_eq!(m.hottest_link().unwrap().0, (0b01, 0b11));
    }

    #[test]
    fn derived_report_helpers() {
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let r = simulate(&prog, &config(1)).unwrap();
        // makespan 14; proc0 busy 1+12, proc1 busy 1.
        assert_eq!(r.idle_ticks(), vec![1, 13]);
        assert_eq!(r.comm_to_compute_ratio(), 6.0); // 12 comm / 2 compute
        let util = r.per_proc_utilization();
        assert!((util[0] - 13.0 / 14.0).abs() < 1e-12);
        assert!((util[1] - 1.0 / 14.0).abs() < 1e-12);
        // Degenerate empty report.
        let empty = SimReport {
            makespan: 0,
            compute: vec![0],
            comm: vec![0],
            messages: 0,
            words: 0,
            trace: None,
            metrics: None,
        };
        assert_eq!(empty.idle_ticks(), vec![0]);
        assert_eq!(empty.comm_to_compute_ratio(), 0.0);
        assert_eq!(empty.per_proc_utilization(), vec![0.0]);
    }

    #[test]
    fn determinism() {
        let prog = Program::from_parts(
            vec![0, 0, 1, 1],
            vec![(0, 2), (0, 3), (1, 2), (1, 3)],
            vec![0, 1, 0, 1],
            3,
            2,
        );
        let a = simulate(&prog, &config(1)).unwrap();
        let b = simulate(&prog, &config(1)).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.compute, b.compute);
        assert_eq!(a.comm, b.comm);
    }
}
