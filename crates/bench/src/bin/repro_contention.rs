//! A6 — link-contention ablation: the paper's cost model charges
//! latency only; this experiment shows when serialized links change the
//! picture (and that the Gray mapping's low congestion is what protects
//! it).

use loom_bench::partition_workload;
use loom_core::report::Table;
use loom_machine::{simulate, MachineParams, Program, SimConfig, Topology};
use loom_mapping::{baseline, map_partitioning};

fn main() {
    println!("A6 — latency-only vs contention-aware interconnect\n");
    let params = MachineParams::classic_1991();
    let w = loom_workloads::sor::workload(24, 24);
    let p = partition_workload(&w);
    let flops = w.nest.flops_per_iteration();
    let cube_dim = 3usize;
    let n = 1usize << cube_dim;

    let gray = map_partitioning(&p, cube_dim).expect("fits");
    let candidates: Vec<(&str, Vec<usize>)> = vec![
        ("gray", gray.assignment().to_vec()),
        ("random", baseline::random(p.num_blocks(), n, 1991)),
    ];
    let mut t = Table::new(["mapping", "contention", "makespan", "slowdown"]);
    for (name, assignment) in candidates {
        let prog = Program::from_partitioning(&p, &assignment, n, flops);
        let mut base = SimConfig {
            params,
            topology: Topology::Hypercube(cube_dim),
            words_per_arc: 1,
            batch_messages: false,
            link_contention: false,
            record_trace: false,
        };
        let free = simulate(&prog, &base).expect("sim").makespan;
        base.link_contention = true;
        let contended = simulate(&prog, &base).expect("sim").makespan;
        assert!(contended >= free, "contention can only delay");
        t.row([
            name.to_string(),
            "off".to_string(),
            format!("{free}"),
            "1.00".to_string(),
        ]);
        t.row([
            name.to_string(),
            "on".to_string(),
            format!("{contended}"),
            format!("{:.2}", contended as f64 / free as f64),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: the gray mapping keeps per-link load near the chain minimum,\n\
         so contention barely moves it; scattered mappings concentrate traffic on few\n\
         links and pay more when links serialize."
    );
}
