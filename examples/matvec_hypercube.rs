//! Matrix–vector multiplication on hypercubes: the paper's §IV analysis.
//!
//! Prints the symbolic Table I for M = 1024, then cross-checks the model
//! against the discrete-event simulator at a laptop-friendly M.
//!
//! ```text
//! cargo run --example matvec_hypercube [M]
//! ```

use loom_core::analytic::{matvec_exec_terms, table1_rows};
use loom_core::pipeline::MachineOptions;
use loom_core::report::Table;
use loom_core::{Pipeline, PipelineConfig};
use loom_machine::MachineParams;

fn main() {
    // --- The paper's Table I, symbolically. -------------------------------
    println!("Table I — T_exec(N) for M = 1024 (symbolic, as printed in the paper):\n");
    let mut t = Table::new(["N", "T_exec(N)"]);
    for (n, terms) in table1_rows(1024) {
        t.row([format!("{n}"), terms.render()]);
    }
    println!("{t}");

    // --- Simulated cross-check at a smaller scale. ------------------------
    let m: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let params = MachineParams::classic_1991();
    println!(
        "Simulated vs analytic on M = {m} (t_calc={}, t_start={}, t_comm={}):\n",
        params.t_calc, params.t_start, params.t_comm
    );
    let w = loom_workloads::matvec::workload(m);
    let mut t = Table::new([
        "N",
        "analytic T_exec",
        "sim makespan",
        "sim busiest proc",
        "messages",
    ]);
    let mut cube_dim = 0usize;
    while 1usize << cube_dim <= (m as usize) / 4 {
        let out = Pipeline::new(w.nest.clone())
            .run(&PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim,
                machine: Some(MachineOptions {
                    params,
                    ..Default::default()
                }),
                ..Default::default()
            })
            .expect("matvec pipeline");
        let sim = out.sim.unwrap();
        let analytic = matvec_exec_terms(m as u64, 1 << cube_dim).evaluate(&params);
        t.row([
            format!("{}", 1u64 << cube_dim),
            format!("{analytic}"),
            format!("{}", sim.makespan),
            format!("{}", sim.max_proc_occupancy()),
            format!("{}", sim.messages),
        ]);
        cube_dim += 2;
    }
    println!("{t}");
    println!(
        "The analytic column is the paper's worst-case bound; the simulator pipelines\n\
         sends with computation, so its makespan tracks the same shape from below."
    );
}
