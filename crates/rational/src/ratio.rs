//! A normalized rational number over `i64`.

use crate::NumericError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1` (zero is represented as `0/1`).
///
/// Intermediate products are computed in `i128` and the result is checked to
/// fit back into `i64`; operations panic on overflow. Coordinates in this
/// project stay tiny (loop bounds × small dependence components), so an
/// overflow indicates a logic error, not bad input.
///
/// ```
/// use loom_rational::Ratio;
/// let a = Ratio::new(1, 2);
/// let b = Ratio::new(1, 3);
/// assert_eq!(a + b, Ratio::new(5, 6));
/// assert_eq!((a * b).to_string(), "1/6");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i64,
    den: i64,
}

impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// One.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Construct and normalize a rational. Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Ratio {
        assert!(den != 0, "rational with zero denominator");
        Self::norm128(num as i128, den as i128)
    }

    /// Construct and normalize a rational, reporting a zero denominator
    /// or overflow (e.g. `i64::MIN` with a negative denominator, whose
    /// sign flip leaves `2⁶³`) as a [`NumericError`] instead of
    /// panicking — for call sites fed directly by user input.
    pub fn checked_new(num: i64, den: i64) -> Result<Ratio, NumericError> {
        if den == 0 {
            return Err(NumericError::ZeroDenominator);
        }
        Self::checked_norm128(num as i128, den as i128)
    }

    /// A whole number `n/1`.
    pub const fn int(n: i64) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    fn norm128(num: i128, den: i128) -> Ratio {
        Self::checked_norm128(num, den).expect("rational overflow")
    }

    fn checked_norm128(num: i128, den: i128) -> Result<Ratio, NumericError> {
        debug_assert!(den != 0);
        let sign = if den < 0 { -1 } else { 1 };
        let (mut n, mut d) = (num * sign as i128, den * sign as i128);
        let g = gcd128(n, d);
        if g > 1 {
            n /= g;
            d /= g;
        }
        Ok(Ratio {
            num: i64::try_from(n).map_err(|_| NumericError::Overflow {
                context: "rational numerator normalization",
            })?,
            den: i64::try_from(d).map_err(|_| NumericError::Overflow {
                context: "rational denominator normalization",
            })?,
        })
    }

    /// Numerator (sign-carrying).
    pub const fn num(self) -> i64 {
        self.num
    }

    /// Denominator (always positive).
    pub const fn den(self) -> i64 {
        self.den
    }

    /// `true` iff the value is an integer.
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// `true` iff the value is zero.
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// The integer value, if this rational is an integer.
    pub fn to_integer(self) -> Option<i64> {
        self.is_integer().then_some(self.num)
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(self) -> Ratio {
        assert!(self.num != 0, "reciprocal of zero");
        Ratio::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Sign: `-1`, `0`, or `1`.
    pub const fn signum(self) -> i64 {
        self.num.signum()
    }

    /// Floor to the nearest integer at or below.
    pub fn floor(self) -> i64 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling to the nearest integer at or above.
    pub fn ceil(self) -> i64 {
        -((-self.num).div_euclid(self.den))
    }

    /// Lossy conversion for reporting only — never use for decisions.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

fn gcd128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Ratio {
        Ratio::int(n)
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio::norm128(
            self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128,
            self.den as i128 * rhs.den as i128,
        )
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio::norm128(
            self.num as i128 * rhs.num as i128,
            self.den as i128 * rhs.den as i128,
        )
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, rhs: Ratio) -> Ratio {
        assert!(rhs.num != 0, "division by zero rational");
        Ratio::norm128(
            self.num as i128 * rhs.den as i128,
            self.den as i128 * rhs.num as i128,
        )
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}
impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}
impl MulAssign for Ratio {
    fn mul_assign(&mut self, rhs: Ratio) {
        *self = *self * rhs;
    }
}
impl DivAssign for Ratio {
    fn div_assign(&mut self, rhs: Ratio) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // den > 0 on both sides, so cross-multiplication preserves order.
        (self.num as i128 * other.den as i128).cmp(&(other.num as i128 * self.den as i128))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_obs::SplitMix64;

    #[test]
    fn normalization() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, 4), Ratio::new(1, -2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(0, -7), Ratio::ZERO);
        assert_eq!(Ratio::new(6, 3).to_integer(), Some(2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        Ratio::new(1, 0);
    }

    #[test]
    fn checked_new_reports_instead_of_panicking() {
        assert_eq!(Ratio::checked_new(1, 0), Err(NumericError::ZeroDenominator));
        assert_eq!(Ratio::checked_new(2, 4), Ok(Ratio::new(1, 2)));
        // −(i64::MIN) = 2⁶³ does not fit: overflow, not a panic.
        assert!(matches!(
            Ratio::checked_new(i64::MIN, -1),
            Err(NumericError::Overflow { .. })
        ));
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(1, 3);
        assert_eq!(a + b, Ratio::new(5, 6));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 6));
        assert_eq!(a / b, Ratio::new(3, 2));
        assert_eq!(-a, Ratio::new(-1, 2));
        assert_eq!(a.recip(), Ratio::int(2));
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::new(-1, 3));
        assert!(Ratio::new(2, 4) == Ratio::new(1, 2));
        let mut v = vec![Ratio::new(3, 2), Ratio::new(-1, 2), Ratio::ZERO];
        v.sort();
        assert_eq!(v, vec![Ratio::new(-1, 2), Ratio::ZERO, Ratio::new(3, 2)]);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Ratio::new(7, 2).floor(), 3);
        assert_eq!(Ratio::new(7, 2).ceil(), 4);
        assert_eq!(Ratio::new(-7, 2).floor(), -4);
        assert_eq!(Ratio::new(-7, 2).ceil(), -3);
        assert_eq!(Ratio::int(5).floor(), 5);
        assert_eq!(Ratio::int(5).ceil(), 5);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn numerator_overflow_panics() {
        let huge = Ratio::int(i64::MAX);
        let _ = huge + huge;
    }

    #[test]
    fn near_overflow_still_exact() {
        // i128 intermediates keep large-but-representable results exact.
        let a = Ratio::new(i64::MAX / 2, 3);
        let b = Ratio::new(1, 3);
        assert_eq!((a + b).den(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(-3, 2).to_string(), "-3/2");
        assert_eq!(Ratio::int(4).to_string(), "4");
        assert_eq!(Ratio::ZERO.to_string(), "0");
    }

    /// Deterministic property harness: 256 random small ratios per seed.
    fn small_ratio(rng: &mut SplitMix64) -> Ratio {
        Ratio::new(rng.range_i64(-1000, 1000), rng.range_i64(1, 1000))
    }

    fn for_random_ratios(seed: u64, check: impl Fn(Ratio, Ratio, Ratio)) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..256 {
            let (a, b, c) = (
                small_ratio(&mut rng),
                small_ratio(&mut rng),
                small_ratio(&mut rng),
            );
            check(a, b, c);
        }
    }

    #[test]
    fn add_commutes() {
        for_random_ratios(1, |a, b, _| assert_eq!(a + b, b + a, "{a} + {b}"));
    }

    #[test]
    fn add_associates() {
        for_random_ratios(2, |a, b, c| {
            assert_eq!((a + b) + c, a + (b + c), "{a} {b} {c}");
        });
    }

    #[test]
    fn mul_distributes() {
        for_random_ratios(3, |a, b, c| {
            assert_eq!(a * (b + c), a * b + a * c, "{a} {b} {c}");
        });
    }

    #[test]
    fn sub_then_add_roundtrips() {
        for_random_ratios(4, |a, b, _| assert_eq!(a - b + b, a, "{a} {b}"));
    }

    #[test]
    fn div_inverts_mul() {
        for_random_ratios(5, |a, b, _| {
            if !b.is_zero() {
                assert_eq!(a * b / b, a, "{a} {b}");
            }
        });
    }

    #[test]
    fn normalized_invariant() {
        for_random_ratios(6, |a, _, _| {
            assert!(a.den() > 0, "{a}");
            assert_eq!(
                crate::int::gcd(a.num(), a.den()),
                if a.is_zero() { a.den() } else { 1 },
                "{a}"
            );
        });
    }

    #[test]
    fn floor_ceil_bracket() {
        for_random_ratios(7, |a, _, _| {
            assert!(Ratio::int(a.floor()) <= a, "{a}");
            assert!(a <= Ratio::int(a.ceil()), "{a}");
            assert!(a.ceil() - a.floor() <= 1, "{a}");
        });
    }

    #[test]
    fn ord_matches_f64() {
        // f64 is exact for these small values, so orderings must agree.
        for_random_ratios(8, |a, b, _| {
            assert_eq!(
                a.cmp(&b),
                a.to_f64().partial_cmp(&b.to_f64()).unwrap(),
                "{a} vs {b}"
            );
        });
    }
}
