//! Cross-crate end-to-end tests: every workload through the full
//! pipeline, with structural laws and execution traces verified.

use loom_core::pipeline::MachineOptions;
use loom_core::{Pipeline, PipelineConfig};
use loom_machine::trace::verify_trace;
use loom_machine::{MachineParams, Program};
use loom_partition::laws;

fn run(nest: &loom_loopir::LoopNest, pi: &[i64], cube_dim: usize) -> loom_core::PipelineOutput {
    Pipeline::new(nest.clone())
        .run(&PipelineConfig {
            time_fn: Some(pi.to_vec()),
            cube_dim,
            machine: Some(MachineOptions {
                params: MachineParams::classic_1991(),
                record_trace: true,
                ..Default::default()
            }),
            ..Default::default()
        })
        .expect("pipeline runs")
}

#[test]
fn all_workloads_full_pipeline_on_2cube() {
    for w in loom_workloads::all_default() {
        let out = run(
            &w.nest,
            &w.pi,
            1.min(w.nest.space().count().ilog2() as usize),
        );
        // Laws hold for every partitioning the pipeline produces.
        assert!(
            laws::check_all(&out.partitioning).is_empty(),
            "law violation on {}",
            w.nest.name()
        );
        // Every iteration lands in exactly one block.
        let covered: usize = out.partitioning.blocks().iter().map(Vec::len).sum();
        assert_eq!(covered, w.nest.space().count(), "{}", w.nest.name());
        // The simulation completed all tasks and its trace is valid.
        let sim = out.sim.as_ref().unwrap();
        let program = Program::from_partitioning(
            &out.partitioning,
            out.mapping.assignment(),
            out.mapping.cube().len(),
            w.nest.flops_per_iteration(),
        );
        let violations = verify_trace(&program, sim.trace.as_ref().unwrap());
        assert!(violations.is_empty(), "{}: {violations:?}", w.nest.name());
    }
}

#[test]
fn searched_pi_never_worse_than_documented() {
    // The hyperplane search must find a Π at least as good as the
    // paper's canonical wavefront for each workload.
    for w in loom_workloads::all_default() {
        let deps = w.verified_deps();
        let found = loom_hyperplane::find_optimal(
            &deps,
            w.nest.space(),
            loom_hyperplane::SearchConfig::default(),
        )
        .unwrap();
        let documented = loom_hyperplane::TimeFn::new(w.pi.clone());
        assert!(
            found.steps(w.nest.space()) <= documented.steps(w.nest.space()),
            "{}: search found {:?} worse than documented {:?}",
            w.nest.name(),
            found,
            documented
        );
    }
}

#[test]
fn simulated_compute_totals_are_conserved() {
    // Total compute across processors == points × flops × t_calc,
    // regardless of mapping.
    let w = loom_workloads::sor::workload(12, 12);
    for cube_dim in [0usize, 1, 2] {
        let out = run(&w.nest, &w.pi, cube_dim);
        let sim = out.sim.unwrap();
        let total: u64 = sim.compute.iter().sum();
        assert_eq!(
            total,
            144 * w.nest.flops_per_iteration() * MachineParams::classic_1991().t_calc
        );
    }
}

#[test]
fn makespan_lower_bounded_by_critical_path_and_compute() {
    let w = loom_workloads::matvec::workload(24);
    let out = run(&w.nest, &w.pi, 2);
    let sim = out.sim.unwrap();
    let flops = w.nest.flops_per_iteration();
    let t_calc = MachineParams::classic_1991().t_calc;
    // Critical path: the number of hyperplane steps × task duration.
    let steps = out.pi.steps(w.nest.space()) as u64;
    assert!(sim.makespan >= steps * flops * t_calc);
    // And by the busiest processor's pure compute.
    let max_compute = sim.compute.iter().copied().max().unwrap();
    assert!(sim.makespan >= max_compute);
}

#[test]
fn batching_ablation_improves_comm_bound_runs() {
    let w = loom_workloads::matvec::workload(32);
    let mk = |batch: bool| {
        Pipeline::new(w.nest.clone())
            .run(&PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim: 2,
                machine: Some(MachineOptions {
                    params: MachineParams::classic_1991(),
                    batch_messages: batch,
                    ..Default::default()
                }),
                ..Default::default()
            })
            .unwrap()
            .sim
            .unwrap()
    };
    let unbatched = mk(false);
    let batched = mk(true);
    assert!(batched.messages <= unbatched.messages);
    assert_eq!(batched.words, unbatched.words, "batching never drops words");
    assert!(
        batched.makespan <= unbatched.makespan,
        "batching cannot hurt under this cost model"
    );
}

#[test]
fn deeper_cubes_spread_compute() {
    let w = loom_workloads::matmul::workload(6);
    let out1 = run(&w.nest, &w.pi, 1);
    let out3 = run(&w.nest, &w.pi, 3);
    let max1 = out1.sim.unwrap().compute.iter().copied().max().unwrap();
    let max3 = out3.sim.unwrap().compute.iter().copied().max().unwrap();
    assert!(max3 < max1, "more processors → less compute per processor");
}
