//! Property-based tests over random 3-D uniform dependence sets: the
//! partitioner's laws, SPMD deadlock-freedom, and numerical equivalence
//! must hold for arbitrary members of the paper's loop class, not just
//! the named workloads.

use loom_codegen::generate;
use loom_exec::memory::address_hash_init;
use loom_exec::{equivalent, sequential};
use loom_hyperplane::TimeFn;
use loom_loopir::sem::Expr;
use loom_loopir::{Access, IterSpace, LoopNest, Stmt};
use loom_obs::SplitMix64;
use loom_partition::{laws, partition, PartitionConfig};
use std::collections::BTreeSet;

/// Random 3-D dependence sets legal under Π = (1,1,1).
fn dep_set_3d(rng: &mut SplitMix64) -> Vec<Vec<i64>> {
    loop {
        let n = 1 + rng.below(3) as usize;
        let mut set = BTreeSet::new();
        for _ in 0..n {
            set.insert((
                rng.range_i64(0, 2),
                rng.range_i64(-1, 2),
                rng.range_i64(-1, 2),
            ));
        }
        let deps: Vec<Vec<i64>> = set
            .into_iter()
            .filter(|&(a, b, c)| a + b + c > 0)
            .map(|(a, b, c)| vec![a, b, c])
            .collect();
        if !deps.is_empty() {
            return deps;
        }
    }
}

/// 32 random dependence sets per seed.
fn for_random_deps(seed: u64, mut check: impl FnMut(&mut SplitMix64, Vec<Vec<i64>>)) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..32 {
        let deps = dep_set_3d(&mut rng);
        check(&mut rng, deps);
    }
}

/// A synthetic single-statement nest whose flow dependences are exactly
/// `deps`: `A[i+M, j+M, k+M] = Σ A[i+M−d…]` with `M` a margin making all
/// subscripts well-formed (subscript values may be negative; the store
/// is sparse so that is fine).
fn nest_with_deps(deps: &[Vec<i64>], sizes: &[i64]) -> LoopNest {
    let n = 3;
    let write = Access::simple("A", n, &[(0, 0), (1, 0), (2, 0)]);
    let reads: Vec<Access> = deps
        .iter()
        .map(|d| Access::simple("A", n, &[(0, -d[0]), (1, -d[1]), (2, -d[2])]))
        .collect();
    let expr = Expr::sum_of_reads(reads.len());
    LoopNest::new(
        "synthetic3d",
        IterSpace::rect(sizes).unwrap(),
        vec![Stmt::assign(write, reads).with_expr(expr)],
    )
    .unwrap()
}

#[test]
fn laws_hold_in_3d() {
    for_random_deps(1, |rng, deps| {
        let (a, b, c) = (
            rng.range_i64(3, 6),
            rng.range_i64(3, 6),
            rng.range_i64(3, 6),
        );
        let space = IterSpace::rect(&[a, b, c]).unwrap();
        let p = partition(
            space,
            deps.clone(),
            TimeFn::wavefront(3),
            &PartitionConfig::default(),
        )
        .unwrap();
        let covered: usize = p.blocks().iter().map(Vec::len).sum();
        assert_eq!(covered, (a * b * c) as usize, "{deps:?}");
        let violations = laws::check_all(&p);
        assert!(
            violations.is_empty(),
            "{deps:?}: violations: {violations:?}"
        );
    });
}

#[test]
fn spmd_is_deadlock_free_and_exact_in_3d() {
    for_random_deps(2, |rng, deps| {
        let size = rng.range_i64(3, 5);
        let procs = rng.range_i64(2, 5) as usize;
        let salt = rng.below(8) as usize;
        let nest = nest_with_deps(&deps, &[size, size, size]);
        let extracted =
            loom_loopir::deps::dependence_vectors(&nest, loom_loopir::DepOptions::default())
                .unwrap();
        // The synthetic construction must reproduce the wanted flow deps
        // (extraction may add anti deps between read pairs — all are
        // handled by the partitioner as long as Π stays legal).
        let pi = TimeFn::wavefront(3);
        if !pi.is_legal_for(&extracted) {
            return;
        }
        let p = partition(
            nest.space().clone(),
            extracted,
            pi,
            &PartitionConfig::default(),
        )
        .unwrap();
        let assignment: Vec<usize> = (0..p.num_blocks()).map(|x| (x + salt) % procs).collect();
        // The synthetic write A[i,j,k] has full-rank subscripts, so
        // codegen always applies here.
        let cg = generate(&nest, &p, &assignment, procs).expect("chain-writable");
        assert!(cg.program.unmatched_messages().is_empty(), "{deps:?}");
        let result = loom_codegen::run(&nest, &cg, &address_hash_init)
            .expect("generated programs never deadlock");
        let serial = sequential(&nest, &address_hash_init);
        assert_eq!(equivalent(&result.gathered, &serial), Ok(()), "{deps:?}");
    });
}

#[test]
fn group_size_r_is_respected_in_3d() {
    for_random_deps(3, |rng, deps| {
        let size = rng.range_i64(4, 6);
        let space = IterSpace::rect(&[size, size, size]).unwrap();
        let p = partition(
            space,
            deps.clone(),
            TimeFn::wavefront(3),
            &PartitionConfig::default(),
        )
        .unwrap();
        let r = p.vectors().r as usize;
        for g in &p.grouping().groups {
            assert!(g.members.len() <= r, "{deps:?}: group exceeds r = {r}");
        }
    });
}
