//! Property-based tests over random 3-D uniform dependence sets: the
//! partitioner's laws, SPMD deadlock-freedom, and numerical equivalence
//! must hold for arbitrary members of the paper's loop class, not just
//! the named workloads.

use loom_codegen::generate;
use loom_exec::memory::address_hash_init;
use loom_exec::{equivalent, sequential};
use loom_hyperplane::TimeFn;
use loom_loopir::sem::Expr;
use loom_loopir::{Access, IterSpace, LoopNest, Stmt};
use loom_partition::{laws, partition, PartitionConfig};
use proptest::prelude::*;

/// Random 3-D dependence sets legal under Π = (1,1,1).
fn dep_set_3d() -> impl Strategy<Value = Vec<Vec<i64>>> {
    proptest::collection::btree_set((0i64..=1, -1i64..=1, -1i64..=1), 1..4).prop_filter_map(
        "wavefront-positive",
        |set| {
            let deps: Vec<Vec<i64>> = set
                .into_iter()
                .filter(|&(a, b, c)| a + b + c > 0)
                .map(|(a, b, c)| vec![a, b, c])
                .collect();
            (!deps.is_empty()).then_some(deps)
        },
    )
}

/// A synthetic single-statement nest whose flow dependences are exactly
/// `deps`: `A[i+M, j+M, k+M] = Σ A[i+M−d…]` with `M` a margin making all
/// subscripts well-formed (subscript values may be negative; the store
/// is sparse so that is fine).
fn nest_with_deps(deps: &[Vec<i64>], sizes: &[i64]) -> LoopNest {
    let n = 3;
    let write = Access::simple("A", n, &[(0, 0), (1, 0), (2, 0)]);
    let reads: Vec<Access> = deps
        .iter()
        .map(|d| {
            Access::simple(
                "A",
                n,
                &[
                    (0, -d[0]),
                    (1, -d[1]),
                    (2, -d[2]),
                ],
            )
        })
        .collect();
    let expr = Expr::sum_of_reads(reads.len());
    LoopNest::new(
        "synthetic3d",
        IterSpace::rect(sizes).unwrap(),
        vec![Stmt::assign(write, reads).with_expr(expr)],
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn laws_hold_in_3d(deps in dep_set_3d(), a in 3i64..6, b in 3i64..6, c in 3i64..6) {
        let space = IterSpace::rect(&[a, b, c]).unwrap();
        let p = partition(space, deps, TimeFn::wavefront(3), &PartitionConfig::default())
            .unwrap();
        let covered: usize = p.blocks().iter().map(Vec::len).sum();
        prop_assert_eq!(covered, (a * b * c) as usize);
        let violations = laws::check_all(&p);
        prop_assert!(violations.is_empty(), "violations: {:?}", violations);
    }

    #[test]
    fn spmd_is_deadlock_free_and_exact_in_3d(
        deps in dep_set_3d(), size in 3i64..5, procs in 2usize..5, salt in 0usize..8
    ) {
        let nest = nest_with_deps(&deps, &[size, size, size]);
        let extracted = loom_loopir::deps::dependence_vectors(
            &nest, loom_loopir::DepOptions::default()).unwrap();
        // The synthetic construction must reproduce the wanted flow deps
        // (extraction may add anti deps between read pairs — all are
        // handled by the partitioner as long as Π stays legal).
        let pi = TimeFn::wavefront(3);
        prop_assume!(pi.is_legal_for(&extracted));
        let p = partition(
            nest.space().clone(),
            extracted,
            pi,
            &PartitionConfig::default(),
        )
        .unwrap();
        let assignment: Vec<usize> = (0..p.num_blocks()).map(|x| (x + salt) % procs).collect();
        // The synthetic write A[i,j,k] has full-rank subscripts, so
        // codegen always applies here.
        let cg = generate(&nest, &p, &assignment, procs).expect("chain-writable");
        prop_assert!(cg.program.unmatched_messages().is_empty());
        let result = loom_codegen::run(&nest, &cg, &address_hash_init)
            .expect("generated programs never deadlock");
        let serial = sequential(&nest, &address_hash_init);
        prop_assert_eq!(equivalent(&result.gathered, &serial), Ok(()));
    }

    #[test]
    fn group_size_r_is_respected_in_3d(deps in dep_set_3d(), size in 4i64..6) {
        let space = IterSpace::rect(&[size, size, size]).unwrap();
        let p = partition(space, deps, TimeFn::wavefront(3), &PartitionConfig::default())
            .unwrap();
        let r = p.vectors().r as usize;
        for g in &p.grouping().groups {
            prop_assert!(g.members.len() <= r, "group exceeds r = {r}");
        }
    }
}
