//! Loop-nest intermediate representation and uniform dependence analysis.
//!
//! This crate is the "parallelizing compiler front end" of the
//! reproduction: it models the class of programs the paper treats — `n`
//! perfectly nested loops whose statements access arrays through affine
//! subscripts, with **constant loop-carried dependencies** — and extracts
//! the dependence-vector set `D` that drives the hyperplane method and the
//! Sheu–Tai partitioner.
//!
//! The pieces:
//!
//! * [`aff::Aff`] — affine expressions over the loop indices (subscripts
//!   and loop bounds),
//! * [`space::IterSpace`] — the index set `Jⁿ` with affine bounds and
//!   lexicographic enumeration,
//! * [`nest::LoopNest`] / [`nest::Stmt`] / [`access::Access`] — the program
//!   representation plus a small builder API,
//! * [`deps`] — uniform dependence extraction (flow, anti, output, and the
//!   input-reuse dependences that the paper introduces by rewriting loops
//!   into single-assignment form, e.g. matmul's `(0,1,0)`/`(1,0,0)`
//!   propagation vectors).

#![deny(missing_docs)]

pub mod access;
pub mod aff;
pub mod deps;
pub mod front;
pub mod lex;
pub mod nest;
pub mod normalize;
pub mod parse;
pub mod sem;
pub mod space;
pub mod uniformize;

pub use access::Access;
pub use aff::Aff;
pub use deps::{
    accesses_by_array, extract_dependences, extract_dependences_relaxed, AccessSite, DepKind,
    DepOptions, Dependence, NonUniformPair,
};
pub use front::{FrontDiag, FrontLimits, LpCode, ParseOutcome};
pub use nest::{LoopNest, Stmt};
pub use parse::{parse_nest, parse_nest_recovering, parse_nest_with_limits, ParseError};
pub use space::IterSpace;
pub use uniformize::{uniformize, FoldError, PairFold, Uniformization};

/// An iteration-space point (loop index value).
pub type Point = Vec<i64>;

/// Errors raised while constructing or analyzing a loop nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A bound or subscript references a loop index that does not exist.
    DimMismatch {
        /// What was being constructed.
        what: &'static str,
        /// Expected dimensionality.
        expected: usize,
        /// Found dimensionality.
        found: usize,
    },
    /// A loop bound references the loop's own or an inner index.
    ForwardBound {
        /// Depth of the offending loop (0-based).
        level: usize,
    },
    /// The nest has no statements or zero dimensions.
    Empty,
    /// Dependence analysis found a non-constant (non-uniform) dependence,
    /// which is outside the class the hyperplane method handles.
    NonUniform {
        /// Array whose accesses produce the non-uniform dependence.
        array: String,
    },
    /// Dependence analysis overflowed `i64` while solving the subscript
    /// equations (pathological subscript coefficients).
    Overflow {
        /// Array whose subscripts triggered the overflow.
        array: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::DimMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what}: expected dimension {expected}, found {found}"),
            Error::ForwardBound { level } => write!(
                f,
                "bound of loop {level} references its own or an inner index"
            ),
            Error::Empty => write!(f, "loop nest is empty"),
            Error::NonUniform { array } => write!(
                f,
                "accesses to array `{array}` induce a non-uniform dependence"
            ),
            Error::Overflow { array } => write!(
                f,
                "dependence analysis of array `{array}` overflowed 64-bit arithmetic"
            ),
        }
    }
}

impl std::error::Error for Error {}
