//! Integer linear algebra: column echelon (Hermite-style) reduction,
//! integer system solving, and integer nullspace lattice bases.
//!
//! Dependence extraction must answer "does `U d = c` have an *integer*
//! solution `d`, and what lattice do the solutions form?" — rational
//! elimination alone can miss integer solutions (its particular solution
//! may be fractional even when an integer one exists), so we reduce with
//! unimodular column operations instead.

use crate::NumericError;
use std::fmt;

/// A dense integer matrix, row-major, with `i64` entries.
///
/// All internal arithmetic is widened to `i128` and checked on the way
/// back down; overflow panics (inputs in this project are tiny subscript
/// coefficients).
#[derive(Clone, PartialEq, Eq)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IMat {
    /// A zero matrix.
    pub fn zero(rows: usize, cols: usize) -> IMat {
        IMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The identity of size `n`.
    pub fn identity(n: usize) -> IMat {
        let mut m = IMat::zero(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Build from rows. Panics on ragged input.
    pub fn from_rows(rows: &[&[i64]]) -> IMat {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged matrix rows");
            data.extend_from_slice(row);
        }
        IMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Column `j` as a vector.
    pub fn col(&self, j: usize) -> Vec<i64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Matrix–vector product. Panics on overflow; see
    /// [`try_mul_vec`](IMat::try_mul_vec) for the fallible variant.
    pub fn mul_vec(&self, v: &[i64]) -> Vec<i64> {
        self.try_mul_vec(v).expect("mat-vec overflow")
    }

    /// Matrix–vector product, reporting overflow instead of panicking.
    pub fn try_mul_vec(&self, v: &[i64]) -> Result<Vec<i64>, NumericError> {
        assert_eq!(v.len(), self.cols, "mat-vec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let s: i128 = (0..self.cols)
                    .map(|j| self[(i, j)] as i128 * v[j] as i128)
                    .sum();
                i64::try_from(s).map_err(|_| NumericError::Overflow {
                    context: "matrix-vector product",
                })
            })
            .collect()
    }

    /// Column operation `col[j] -= q * col[k]`.
    fn col_sub(&mut self, j: usize, q: i64, k: usize) -> Result<(), NumericError> {
        for i in 0..self.rows {
            let v = self[(i, j)] as i128 - q as i128 * self[(i, k)] as i128;
            self[(i, j)] = i64::try_from(v).map_err(|_| NumericError::Overflow {
                context: "column operation",
            })?;
        }
        Ok(())
    }

    fn col_swap(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for i in 0..self.rows {
            let t = self[(i, a)];
            self[(i, a)] = self[(i, b)];
            self[(i, b)] = t;
        }
    }

    fn col_neg(&mut self, j: usize) {
        for i in 0..self.rows {
            self[(i, j)] = -self[(i, j)];
        }
    }
}

impl std::ops::Index<(usize, usize)> for IMat {
    type Output = i64;
    fn index(&self, (i, j): (usize, usize)) -> &i64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for IMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut i64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            writeln!(f, "{:?}", &self.data[i * self.cols..(i + 1) * self.cols])?;
        }
        Ok(())
    }
}

/// The result of unimodular column reduction: `original · u = h` with `u`
/// unimodular and `h` in column-echelon form (each pivot row has its pivot
/// as the only nonzero among columns at or after the pivot column).
pub struct ColEchelon {
    /// The reduced matrix.
    pub h: IMat,
    /// The accumulated unimodular transform.
    pub u: IMat,
    /// `(row, col)` of each pivot, in increasing row and column order.
    pub pivots: Vec<(usize, usize)>,
}

/// Reduce `a` by unimodular column operations to column-echelon form.
/// Panics on overflow; see [`try_col_echelon`] for the fallible variant.
pub fn col_echelon(a: &IMat) -> ColEchelon {
    try_col_echelon(a).expect("column op overflow")
}

/// [`col_echelon`], reporting overflow instead of panicking.
pub fn try_col_echelon(a: &IMat) -> Result<ColEchelon, NumericError> {
    let mut h = a.clone();
    let mut u = IMat::identity(a.cols());
    let mut pivots = Vec::new();
    let mut c = 0;
    for r in 0..a.rows() {
        if c == a.cols() {
            break;
        }
        // Reduce row r across columns c.. to a single nonzero via gcd steps.
        loop {
            // Find the column with the smallest nonzero magnitude in row r.
            let mut best: Option<usize> = None;
            for j in c..a.cols() {
                if h[(r, j)] != 0 && best.is_none_or(|b| h[(r, j)].abs() < h[(r, b)].abs()) {
                    best = Some(j);
                }
            }
            let Some(p) = best else { break };
            h.col_swap(c, p);
            u.col_swap(c, p);
            let mut done = true;
            for j in (c + 1)..a.cols() {
                if h[(r, j)] != 0 {
                    let q = h[(r, j)].div_euclid(h[(r, c)]);
                    h.col_sub(j, q, c)?;
                    u.col_sub(j, q, c)?;
                    if h[(r, j)] != 0 {
                        done = false;
                    }
                }
            }
            if done {
                break;
            }
        }
        if h[(r, c)] != 0 {
            if h[(r, c)] < 0 {
                h.col_neg(c);
                u.col_neg(c);
            }
            pivots.push((r, c));
            c += 1;
        }
    }
    Ok(ColEchelon { h, u, pivots })
}

/// Solve `a · x = b` over the integers.
///
/// Returns `Some((x0, basis))` where `x0` is one integer solution and
/// `basis` generates the lattice of homogeneous solutions (so the full
/// solution set is `x0 + Σ tₖ·basisₖ`, `tₖ ∈ ℤ`); `None` if no integer
/// solution exists. Panics on overflow; see [`try_solve_integer`] for
/// the fallible variant.
#[allow(clippy::type_complexity)]
pub fn solve_integer(a: &IMat, b: &[i64]) -> Option<(Vec<i64>, Vec<Vec<i64>>)> {
    try_solve_integer(a, b).expect("solution overflow")
}

/// [`solve_integer`], reporting overflow instead of panicking. The
/// outer `Result` carries numeric failure; the inner `Option` is
/// `None` when the system has no integer solution.
#[allow(clippy::type_complexity)]
pub fn try_solve_integer(
    a: &IMat,
    b: &[i64],
) -> Result<Option<(Vec<i64>, Vec<Vec<i64>>)>, NumericError> {
    assert_eq!(a.rows(), b.len(), "solve_integer: rhs dimension mismatch");
    let e = try_col_echelon(a)?;
    // Forward-substitute h·y = b on pivot entries; non-pivot rows must
    // have zero residual.
    let mut y = vec![0i64; a.cols()];
    let mut pividx = 0;
    for (r, &br) in b.iter().enumerate() {
        let residual: i128 = br as i128
            - (0..a.cols())
                .map(|j| e.h[(r, j)] as i128 * y[j] as i128)
                .sum::<i128>();
        if pividx < e.pivots.len() && e.pivots[pividx].0 == r {
            let (_, c) = e.pivots[pividx];
            let piv = e.h[(r, c)] as i128;
            if residual % piv != 0 {
                return Ok(None);
            }
            y[c] = i64::try_from(residual / piv).map_err(|_| NumericError::Overflow {
                context: "integer solve back-substitution",
            })?;
            pividx += 1;
        } else if residual != 0 {
            return Ok(None);
        }
    }
    let x0 = e.u.try_mul_vec(&y)?;
    let pivot_cols: Vec<usize> = e.pivots.iter().map(|&(_, c)| c).collect();
    let basis = (0..a.cols())
        .filter(|j| !pivot_cols.contains(j))
        .map(|j| e.u.col(j))
        .collect();
    Ok(Some((x0, basis)))
}

/// A lattice basis for the integer nullspace of `a` (all integer `x` with
/// `a·x = 0`). Panics on overflow; see [`try_integer_nullspace`] for the
/// fallible variant.
pub fn integer_nullspace(a: &IMat) -> Vec<Vec<i64>> {
    try_integer_nullspace(a).expect("column op overflow")
}

/// [`integer_nullspace`], reporting overflow instead of panicking.
pub fn try_integer_nullspace(a: &IMat) -> Result<Vec<Vec<i64>>, NumericError> {
    Ok(try_solve_integer(a, &vec![0; a.rows()])?
        .expect("homogeneous system is always solvable")
        .1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_obs::SplitMix64;

    #[test]
    fn echelon_reproduces_product() {
        let a = IMat::from_rows(&[&[2, 4, 4], &[-6, 6, 12], &[10, 4, 16]]);
        let e = col_echelon(&a);
        // a · u == h must hold exactly.
        for j in 0..a.cols() {
            assert_eq!(a.mul_vec(&e.u.col(j)), e.h.col(j));
        }
        // Pivot rows have zeros right of the pivot.
        for &(r, c) in &e.pivots {
            for j in (c + 1)..a.cols() {
                assert_eq!(e.h[(r, j)], 0);
            }
            assert!(e.h[(r, c)] > 0);
        }
    }

    #[test]
    fn solve_full_rank() {
        let a = IMat::from_rows(&[&[1, 0], &[0, 1]]);
        let (x0, basis) = solve_integer(&a, &[3, -4]).unwrap();
        assert_eq!(x0, vec![3, -4]);
        assert!(basis.is_empty());
    }

    #[test]
    fn solve_needs_unimodular_moves() {
        // 2x + y = 1 has the integer solution (0, 1); naive rational
        // elimination with free vars at zero would propose (1/2, 0).
        let a = IMat::from_rows(&[&[2, 1]]);
        let (x0, basis) = solve_integer(&a, &[1]).unwrap();
        assert_eq!(a.mul_vec(&x0), vec![1]);
        assert_eq!(basis.len(), 1);
        assert_eq!(a.mul_vec(&basis[0]), vec![0]);
    }

    #[test]
    fn solve_no_integer_solution() {
        // 2x = 1 has no integer solution.
        let a = IMat::from_rows(&[&[2]]);
        assert!(solve_integer(&a, &[1]).is_none());
        // Inconsistent system.
        let a2 = IMat::from_rows(&[&[1], &[1]]);
        assert!(solve_integer(&a2, &[0, 1]).is_none());
    }

    #[test]
    fn nullspace_of_subscript_selections() {
        // Matmul's A[i,k] access in an (i,j,k) nest: U = [[1,0,0],[0,0,1]];
        // nullspace lattice is generated by (0,1,0) — the paper's d_A.
        let u = IMat::from_rows(&[&[1, 0, 0], &[0, 0, 1]]);
        let ns = integer_nullspace(&u);
        assert_eq!(ns.len(), 1);
        let g = &ns[0];
        assert_eq!(g[0], 0);
        assert_eq!(g[2], 0);
        assert_eq!(g[1].abs(), 1);
    }

    #[test]
    fn zero_matrix_nullspace() {
        let z = IMat::zero(2, 3);
        let ns = integer_nullspace(&z);
        assert_eq!(ns.len(), 3);
    }

    /// Deterministic property harness: random integer matrices with
    /// entries in [-4, 4].
    fn small_mat(rng: &mut SplitMix64, r: usize, c: usize) -> IMat {
        let mut m = IMat::zero(r, c);
        for i in 0..r {
            for j in 0..c {
                m[(i, j)] = rng.range_i64(-4, 5);
            }
        }
        m
    }

    fn for_random_mats(seed: u64, check: impl Fn(&mut SplitMix64, IMat)) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..128 {
            let m = small_mat(&mut rng, 3, 4);
            check(&mut rng, m);
        }
    }

    #[test]
    fn echelon_transform_is_consistent() {
        for_random_mats(1, |_, a| {
            let e = col_echelon(&a);
            for j in 0..4 {
                assert_eq!(a.mul_vec(&e.u.col(j)), e.h.col(j), "{a:?}");
            }
        });
    }

    #[test]
    fn solutions_verify() {
        for_random_mats(2, |rng, a| {
            // Construct b so a solution is guaranteed, then verify what we find.
            let x: Vec<i64> = (0..4).map(|_| rng.range_i64(-4, 5)).collect();
            let b = a.mul_vec(&x);
            let (x0, basis) = solve_integer(&a, &b).expect("constructed system must be solvable");
            assert_eq!(a.mul_vec(&x0), b.clone(), "{a:?}");
            for g in &basis {
                assert_eq!(a.mul_vec(g), vec![0; 3], "{a:?}");
                // Shifted solutions remain solutions.
                let shifted: Vec<i64> = x0.iter().zip(g).map(|(a, b)| a + b).collect();
                assert_eq!(a.mul_vec(&shifted), b.clone(), "{a:?}");
            }
        });
    }

    #[test]
    fn try_variants_agree_with_panicking_ones() {
        let a = IMat::from_rows(&[&[2, 4, 4], &[-6, 6, 12], &[10, 4, 16]]);
        let e = try_col_echelon(&a).unwrap();
        assert_eq!(e.h, col_echelon(&a).h);
        assert_eq!(
            try_solve_integer(&a, &[0, 0, 0]).unwrap(),
            solve_integer(&a, &[0, 0, 0])
        );
        assert_eq!(try_integer_nullspace(&a).unwrap(), integer_nullspace(&a));
    }

    #[test]
    fn overflow_reported_not_panicked() {
        // gcd steps on near-i64-max coprime entries overflow the column
        // updates; the try_ path must surface that as an error.
        let a = IMat::from_rows(&[&[i64::MAX, i64::MAX - 1], &[1, i64::MIN + 1]]);
        assert!(matches!(
            try_col_echelon(&a),
            Err(NumericError::Overflow { .. }) | Ok(_)
        ));
        let b = IMat::from_rows(&[&[i64::MAX, i64::MAX]]);
        assert!(matches!(
            b.try_mul_vec(&[i64::MAX, i64::MAX]),
            Err(NumericError::Overflow { .. })
        ));
    }

    #[test]
    fn nullspace_rank_complement() {
        for_random_mats(3, |_, a| {
            let e = col_echelon(&a);
            assert_eq!(integer_nullspace(&a).len(), 4 - e.pivots.len(), "{a:?}");
        });
    }
}
