//! Every concrete number the paper prints, asserted in one place.
//! This is the reproduction's ground truth; EXPERIMENTS.md references
//! these assertions.

use loom_core::analytic::matvec_exec_terms;
use loom_hyperplane::TimeFn;
use loom_partition::comm::{comm_stats, group_dependence_graph};
use loom_partition::{partition, PartitionConfig};
use loom_rational::{QVec, Ratio};

fn l1_partitioning() -> loom_partition::Partitioning {
    let w = loom_workloads::l1::workload(4);
    partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .unwrap()
}

fn paper_matmul() -> loom_partition::Partitioning {
    let w = loom_workloads::matmul::workload(4);
    partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig {
            grouping_choice: Some(1), // d_A in sorted order
            seed: Some(QVec::from_ints(&[-1, -1, 2])),
        },
    )
    .unwrap()
}

// --- Example 1 / §II ------------------------------------------------------

#[test]
fn example1_dependence_vectors() {
    let w = loom_workloads::l1::workload(4);
    assert_eq!(w.verified_deps(), vec![vec![0, 1], vec![1, 0], vec![1, 1]]);
}

#[test]
fn fig1_seven_hyperplanes() {
    let w = loom_workloads::l1::workload(4);
    assert_eq!(TimeFn::new(w.pi.clone()).steps(w.nest.space()), 7);
}

#[test]
fn fig3_seven_projected_points_and_specific_coordinates() {
    let p = l1_partitioning();
    let qp = p.projected();
    assert_eq!(qp.len(), 7);
    // The paper lists V^p = {(-3/2,3/2), (-1,1), (-1/2,1/2), (0,0),
    // (1/2,-1/2), (1,-1), (3/2,-3/2)}.
    let h = |a: i64, b: i64| QVec::new(vec![Ratio::new(a, 2), Ratio::new(b, 2)]);
    for v in [
        h(-3, 3),
        h(-2, 2),
        h(-1, 1),
        h(0, 0),
        h(1, -1),
        h(2, -2),
        h(3, -3),
    ] {
        assert!(qp.id_of(&v).is_some(), "missing projected point {v}");
    }
}

#[test]
fn fig3b_four_groups_of_two_lines() {
    let p = l1_partitioning();
    assert_eq!(p.num_blocks(), 4);
    assert_eq!(p.vectors().r, 2);
    let mut sizes: Vec<usize> = p
        .grouping()
        .groups
        .iter()
        .map(|g| g.members.len())
        .collect();
    sizes.sort();
    assert_eq!(sizes, vec![1, 2, 2, 2], "boundary group G4 has one line");
}

#[test]
fn section2_33_dependencies_12_interblock() {
    let stats = comm_stats(&l1_partitioning());
    assert_eq!(stats.total_arcs, 33);
    assert_eq!(stats.interblock_arcs, 12);
}

// --- Example 2 / §III -----------------------------------------------------

#[test]
fn example2_dependence_matrix() {
    let w = loom_workloads::matmul::workload(4);
    assert_eq!(
        w.verified_deps(),
        vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]]
    );
}

#[test]
fn fig5_37_projected_points_and_projected_deps() {
    let p = paper_matmul();
    let qp = p.projected();
    assert_eq!(qp.len(), 37);
    let third = |a: i64, b: i64, c: i64| {
        QVec::new(vec![Ratio::new(a, 3), Ratio::new(b, 3), Ratio::new(c, 3)])
    };
    // d_A^p = (-1/3, 2/3, -1/3), d_B^p = (2/3, -1/3, -1/3),
    // d_C^p = (-1/3, -1/3, 2/3); sorted dep order is [d_C, d_A, d_B].
    assert_eq!(qp.deps()[0], third(-1, -1, 2));
    assert_eq!(qp.deps()[1], third(-1, 2, -1));
    assert_eq!(qp.deps()[2], third(2, -1, -1));
}

#[test]
fn example2_rank_two_and_r_three() {
    let p = paper_matmul();
    assert_eq!(p.vectors().beta, 2);
    assert_eq!(p.vectors().r, 3);
    assert_eq!(p.vectors().auxiliary.len(), 1);
}

#[test]
fn step3_seed_group_members_match_paper() {
    // G1 = {(-1,-1,2), (-4/3,-1/3,5/3), (-5/3,1/3,4/3)}.
    let p = paper_matmul();
    let qp = p.projected();
    let seed_base = QVec::from_ints(&[-1, -1, 2]);
    let g0 = &p.grouping().groups[0];
    assert_eq!(g0.base, seed_base);
    let members: Vec<&QVec> = g0.members.iter().map(|&pid| &qp.points()[pid]).collect();
    let third = |a: i64, b: i64, c: i64| {
        QVec::new(vec![Ratio::new(a, 3), Ratio::new(b, 3), Ratio::new(c, 3)])
    };
    assert_eq!(members[0], &seed_base);
    assert_eq!(members[1], &third(-4, -1, 5));
    assert_eq!(members[2], &third(-5, 1, 4));
}

#[test]
fn step6_17_partitioned_groups() {
    assert_eq!(paper_matmul().num_blocks(), 17);
}

#[test]
fn fig7_g10_sends_to_four_groups_and_theorem2() {
    let p = paper_matmul();
    let graph = group_dependence_graph(&p);
    let m = 3;
    let beta = 2;
    let max_out = graph.iter().map(|s| s.len()).max().unwrap();
    assert_eq!(max_out, 2 * m - beta, "the bound is attained (paper's G10)");
    assert!(graph.iter().all(|s| s.len() <= 2 * m - beta));
}

// --- §IV / Table I --------------------------------------------------------

#[test]
fn matvec_projected_deps_and_m_groups() {
    // §IV: D^p = {(1/2,-1/2), (-1/2,1/2)}, M groups of two lines.
    let w = loom_workloads::matvec::workload(8);
    let p = partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .unwrap();
    let h = |a: i64, b: i64| QVec::new(vec![Ratio::new(a, 2), Ratio::new(b, 2)]);
    assert_eq!(p.projected().deps()[0], h(-1, 1));
    assert_eq!(p.projected().deps()[1], h(1, -1));
    assert_eq!(p.projected().len(), 2 * 8 - 1, "2M-1 projection lines");
    assert_eq!(p.num_blocks(), 8, "M groups");
}

#[test]
fn table1_all_rows_exact() {
    let rows = [
        (1u64, 2_097_152u64, 0u64),
        (4, 786_944, 2046),
        (16, 245_888, 2046),
        (64, 64_544, 2046),
        (256, 16_328, 2046),
        (1024, 4094, 2046),
    ];
    for (n, calc, comm) in rows {
        let t = matvec_exec_terms(1024, n);
        assert_eq!(t.calc_coeff, calc, "calc coefficient, N={n}");
        assert_eq!(t.comm_coeff, comm, "comm coefficient, N={n}");
    }
}

#[test]
fn table1_communication_term_is_machine_size_invariant() {
    // "the communication time of our method is invariant when the
    // machine size becomes larger".
    let comm: Vec<u64> = [4u64, 16, 64, 256, 1024]
        .iter()
        .map(|&n| matvec_exec_terms(1024, n).comm_coeff)
        .collect();
    assert!(comm.windows(2).all(|w| w[0] == w[1]));
}
