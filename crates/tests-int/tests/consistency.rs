//! Cross-component consistency: the discrete-event simulator, the SPMD
//! code generator, and the static communication accounting must all
//! agree on what crosses processor boundaries.

use loom_codegen::generate;
use loom_core::{Pipeline, PipelineConfig};
use loom_hyperplane::TimeFn;
use loom_machine::{simulate, MachineParams, Program, SimConfig};
use loom_partition::comm::block_traffic;
use loom_partition::{partition, PartitionConfig};

fn cases() -> Vec<(loom_workloads::Workload, Vec<usize>, usize)> {
    let mut out = Vec::new();
    for w in loom_workloads::all_default() {
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let blocks = p.num_blocks();
        let assignment: Vec<usize> = (0..blocks).map(|b| b % 2).collect();
        out.push((w, assignment, 2));
    }
    out
}

#[test]
fn simulator_and_codegen_agree_on_message_counts() {
    for (w, assignment, procs) in cases() {
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let prog = Program::from_partitioning(&p, &assignment, procs, 1);
        let sim = simulate(
            &prog,
            &SimConfig::paper_hypercube(1, MachineParams::low_latency()),
        )
        .unwrap();
        // conv2d's 2-D accumulation is outside the SPMD value-routing
        // class; message-count consistency still holds for the rest.
        if let Ok(cg) = generate(&w.nest, &p, &assignment, procs) {
            // Unbatched simulator messages = one per remote arc = SPMD sends.
            assert_eq!(
                sim.messages as usize,
                cg.program.num_messages(),
                "{}",
                w.nest.name()
            );
        }
        assert_eq!(
            sim.messages as usize,
            prog.remote_arcs(),
            "{}",
            w.nest.name()
        );
    }
}

#[test]
fn static_traffic_matches_program_remote_arcs() {
    for (w, assignment, _) in cases() {
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        // Sum block-to-block traffic restricted to cross-processor pairs.
        let cross: u64 = block_traffic(&p)
            .iter()
            .filter(|&(&(a, b), _)| assignment[a] != assignment[b])
            .map(|(_, &w)| w)
            .sum();
        let prog = Program::from_partitioning(&p, &assignment, 2, 1);
        assert_eq!(cross as usize, prog.remote_arcs(), "{}", w.nest.name());
    }
}

#[test]
fn pipeline_comm_equals_tig_traffic() {
    for w in loom_workloads::all_default() {
        let out = Pipeline::new(w.nest.clone())
            .run(&PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim: 1,
                machine: None,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(
            out.tig.total_traffic() as usize,
            out.comm.interblock_arcs,
            "{}",
            w.nest.name()
        );
    }
}
