//! Statement-level pipelining: when the body has several statements,
//! the classical fine-grain hyperplane schedule gives each statement its
//! own offset δ so cross-statement dependences pipeline instead of
//! forcing a larger Π.
//!
//! ```text
//! cargo run --example pipelined_stmts
//! ```

use loom_hyperplane::{compute_offsets, validate_offsets, TimeFn};
use loom_loopir::deps::{extract_dependences, DepOptions};
use loom_loopir::parse::parse_nest;

fn main() {
    // S0 produces T[i,j]; S1 consumes it in the SAME iteration and
    // produces U; S2 consumes U in the same iteration. A coarse schedule
    // relies on textual order inside a step; the fine schedule makes the
    // ordering explicit: δ = [0, 1, 2].
    let nest = parse_nest(
        "pipelined",
        "
        for i = 0 to 7
        for j = 0 to 7
          T[i, j] = A[i, j] + 1;
          U[i, j] = T[i, j] * 2;
          V[i+1, j+1] = U[i, j] + V[i, j];
        ",
    )
    .expect("parses");
    println!("{nest}");

    let opts = DepOptions {
        include_intra: true,
        ..Default::default()
    };
    let records = extract_dependences(&nest, opts).expect("uniform");
    println!("per-statement dependences:");
    for r in &records {
        println!("  {r}");
    }

    let pi = TimeFn::new(vec![1, 1]);
    let offsets = compute_offsets(nest.stmts().len(), &records, &pi)
        .expect("feasible at statement granularity");
    validate_offsets(&offsets, &records, &pi).expect("offsets valid");
    println!("\nΠ = (1,1); statement offsets δ = {offsets:?}");
    println!("fine-grain time of statement s at iteration x: Π·x + δ_s");
    for (s, d) in offsets.iter().enumerate() {
        println!("  S{s} at (0,0) runs at fine time {d}");
    }
    assert_eq!(offsets, vec![0, 1, 2]);
    println!("\nthe intra-iteration chain T → U → V pipelines across fine steps\nwhile the loop-carried V dependence still advances one Π-step per iteration.");
}
