//! A7 — speedup series: generalizing Table I's machine-size sweep to
//! every workload, on both a 1991 machine and a low-latency one — the
//! same loop can be communication-bound on one and scale on the other.

use loom_core::pipeline::MachineOptions;
use loom_core::report::Table;
use loom_core::{Pipeline, PipelineConfig};
use loom_machine::MachineParams;
use loom_workloads::Workload;

fn speedups(w: &Workload, params: MachineParams) -> Vec<Option<f64>> {
    let mut out = Vec::new();
    let mut serial = None;
    for cube_dim in [0usize, 1, 2, 3] {
        let result = Pipeline::new(w.nest.clone()).run(&PipelineConfig {
            time_fn: Some(w.pi.clone()),
            cube_dim,
            machine: Some(MachineOptions {
                params,
                ..Default::default()
            }),
            ..Default::default()
        });
        let makespan = result.ok().map(|o| o.sim.unwrap().makespan);
        if cube_dim == 0 {
            serial = makespan;
        }
        out.push(match (serial, makespan) {
            (Some(s), Some(m)) => Some(s as f64 / m as f64),
            _ => None,
        });
    }
    out
}

fn main() {
    println!("A7 — simulated speedup vs machine size, two machine presets\n");
    let workloads = vec![
        loom_workloads::matvec::workload(128),
        loom_workloads::sor::workload(48, 48),
        loom_workloads::matmul::workload(12),
        loom_workloads::conv::workload(96, 8),
        loom_workloads::triangular::workload(48),
    ];
    for (name, params) in [
        ("classic-1991 (t_start=50)", MachineParams::classic_1991()),
        ("low-latency (t_start=4)", MachineParams::low_latency()),
    ] {
        println!("{name}:\n");
        let mut t = Table::new(["workload", "S(2)", "S(4)", "S(8)"]);
        for w in &workloads {
            let s = speedups(w, params);
            let fmt = |x: &Option<f64>| x.map(|v| format!("{v:.2}x")).unwrap_or_else(|| "-".into());
            t.row([
                w.nest.name().to_string(),
                fmt(&s[1]),
                fmt(&s[2]),
                fmt(&s[3]),
            ]);
        }
        println!("{t}");
    }
    println!(
        "expected shape: on the classic machine only the coarser-grain problems\n\
         (matvec, sor) break even — §IV's medium-to-coarse-grain conclusion,\n\
         measured. Cheap communication rescues matmul and triangular too. conv1d\n\
         stays bound either way: its documented skewed Π = (2,1) doubles the\n\
         schedule length and every iteration forwards both h and x — `loom\n\
         explore --workload conv` finds better configurations."
    );

    // Assert the headline: low-latency S(4) > 1.5 for matvec 128.
    let s = speedups(
        &loom_workloads::matvec::workload(128),
        MachineParams::low_latency(),
    );
    assert!(s[2].unwrap() > 1.5, "matvec should scale on cheap comm");
}
