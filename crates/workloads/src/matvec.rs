//! Matrix–vector multiplication (the paper's loops L4/L5, §IV).

use crate::Workload;
use loom_loopir::sem::Expr;
use loom_loopir::{Access, IterSpace, LoopNest, Stmt};

/// `y[i] += A[i,j] · x[j]` over an `m × m` space.
///
/// Dependences (after the paper's single-assignment rewriting L5):
/// `d_x = (1,0)` — `x[j]` is reused down the `i` direction,
/// `d_y = (0,1)` — the `y[i]` accumulation chain.
/// The paper evaluates with `Π = (1,1)` and `M = 1024` in Table I.
pub fn workload(m: i64) -> Workload {
    let nest = LoopNest::new(
        "matvec",
        IterSpace::rect(&[m, m]).expect("positive extent"),
        vec![Stmt::assign(
            Access::simple("y", 2, &[(0, 0)]),
            vec![
                Access::simple("y", 2, &[(0, 0)]),
                Access::simple("A", 2, &[(0, 0), (1, 0)]),
                Access::simple("x", 2, &[(1, 0)]),
            ],
        )
        .with_flops(2)
        .with_expr(Expr::add(
            Expr::Read(0),
            Expr::mul(Expr::Read(1), Expr::Read(2)),
        ))],
    )
    .expect("matvec is well-formed");
    Workload {
        nest,
        deps: vec![vec![0, 1], vec![1, 0]],
        pi: vec![1, 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_verify() {
        workload(8).verified_deps();
    }

    #[test]
    fn two_flops_per_iteration() {
        // The paper charges 2W·t_calc: a multiply and an add per point.
        assert_eq!(workload(8).nest.flops_per_iteration(), 2);
    }
}
