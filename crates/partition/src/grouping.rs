//! Steps 1–2 of Algorithm 1: selecting the grouping vector and the
//! auxiliary grouping vectors.

use crate::project::ProjectedStructure;
use crate::Error;
use loom_rational::linalg;
use loom_rational::QVec;

/// The vectors steering the grouping phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupingVectors {
    /// Index (into the dependence set) of the grouping vector `d_l^p`,
    /// or `None` when every projected dependence is zero (all dependences
    /// parallel to Π) and grouping degenerates to one group per line.
    pub grouping: Option<usize>,
    /// Indices of the `β − 1` auxiliary grouping vectors `Ψ`.
    pub auxiliary: Vec<usize>,
    /// Group size `r = max r_i` (1 in the degenerate case).
    pub r: i64,
    /// `β = rank(mat(D^p))`.
    pub beta: usize,
}

impl GroupingVectors {
    /// Indices of grouping + auxiliary vectors, in selection order — the
    /// set Ω used by the hypercube mapping's cluster formation.
    pub fn omega(&self) -> Vec<usize> {
        self.grouping
            .into_iter()
            .chain(self.auxiliary.iter().copied())
            .collect()
    }
}

/// Select grouping and auxiliary grouping vectors for a projected
/// structure (Algorithm 1, Steps 1–2).
///
/// `prefer` optionally forces a specific dependence (by index) to be the
/// grouping vector — the paper allows an arbitrary choice among the
/// maximizers, and the ablation benches exercise all of them. A `prefer`
/// whose multiplier is not maximal is an error.
pub fn select_vectors(
    qp: &ProjectedStructure,
    prefer: Option<usize>,
) -> Result<GroupingVectors, Error> {
    let nonzero = qp.nonzero_dep_indices();
    if let Some(p) = prefer {
        if p >= qp.deps().len() {
            return Err(Error::BadDependenceIndex {
                index: p,
                len: qp.deps().len(),
            });
        }
    }
    if nonzero.is_empty() {
        return Ok(GroupingVectors {
            grouping: None,
            auxiliary: Vec::new(),
            r: 1,
            beta: 0,
        });
    }

    // Step 1: r_i = least positive integer with r_i·d_i^p ∈ ℤⁿ; r = max.
    let multipliers: Vec<(usize, i64)> = nonzero
        .iter()
        .map(|&i| (i, qp.deps()[i].least_integer_multiplier()))
        .collect();
    let r = multipliers.iter().map(|&(_, m)| m).max().unwrap();
    let grouping = match prefer {
        Some(p) => {
            let r_p = multipliers
                .iter()
                .find(|&&(i, _)| i == p)
                .map(|&(_, m)| m)
                .unwrap_or(1); // zero projection ⇒ multiplier 1
            if r_p != r {
                return Err(Error::InvalidGroupingChoice {
                    requested: p,
                    r_requested: r_p,
                    r_max: r,
                });
            }
            p
        }
        None => multipliers.iter().find(|&&(_, m)| m == r).unwrap().0,
    };

    // β = rank of the projected dependence matrix (nonzero columns
    // suffice — zero columns never change rank).
    let cols: Vec<QVec> = nonzero.iter().map(|&i| qp.deps()[i].clone()).collect();
    let beta = linalg::rank(&loom_rational::QMat::from_columns(&cols));

    // Step 2: grow an independent set {d_l^p} ∪ Ψ of size β.
    let mut chosen: Vec<QVec> = vec![qp.deps()[grouping].clone()];
    let mut auxiliary = Vec::new();
    for &i in &nonzero {
        if auxiliary.len() + 1 == beta {
            break;
        }
        if i == grouping {
            continue;
        }
        let mut trial = chosen.clone();
        trial.push(qp.deps()[i].clone());
        if linalg::independent(&trial) {
            chosen = trial;
            auxiliary.push(i);
        }
    }
    // A rank-β matrix always contains β independent columns, so the
    // greedy scan above must find them; if it ever does not (a rank
    // computation bug), fail loudly in every build profile instead of
    // silently producing a short Ω set — `loom-check` surfaces this as
    // an LC006 diagnostic.
    if auxiliary.len() + 1 != beta {
        return Err(Error::GroupingRankDeficit {
            found: auxiliary.len() + 1,
            beta,
        });
    }

    Ok(GroupingVectors {
        grouping: Some(grouping),
        auxiliary,
        r,
        beta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::ComputationalStructure;
    use loom_hyperplane::TimeFn;
    use loom_loopir::IterSpace;

    fn project(sizes: &[i64], deps: Vec<Vec<i64>>, pi: Vec<i64>) -> ProjectedStructure {
        let cs = ComputationalStructure::new(IterSpace::rect(sizes).unwrap(), deps).unwrap();
        ProjectedStructure::project(&cs, &TimeFn::new(pi))
    }

    #[test]
    fn l1_selection_matches_paper() {
        // L1: D^p = {(−1/2,1/2), 0, (1/2,−1/2)} → r = 2, β = 1,
        // no auxiliary vectors.
        let qp = project(
            &[4, 4],
            vec![vec![0, 1], vec![1, 1], vec![1, 0]],
            vec![1, 1],
        );
        let gv = select_vectors(&qp, None).unwrap();
        assert_eq!(gv.r, 2);
        assert_eq!(gv.beta, 1);
        assert_eq!(gv.grouping, Some(0));
        assert!(gv.auxiliary.is_empty());
        assert_eq!(gv.omega(), vec![0]);
    }

    #[test]
    fn matmul_selection_matches_paper() {
        // Example 2: r = 3, β = 2 → one auxiliary vector.
        let qp = project(
            &[4, 4, 4],
            vec![vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 1]],
            vec![1, 1, 1],
        );
        let gv = select_vectors(&qp, None).unwrap();
        assert_eq!(gv.r, 3);
        assert_eq!(gv.beta, 2);
        assert_eq!(gv.auxiliary.len(), 1);
        // Grouping + auxiliary must be independent and distinct.
        let g = gv.grouping.unwrap();
        assert_ne!(g, gv.auxiliary[0]);
    }

    #[test]
    fn matmul_prefer_each_maximizer() {
        // All three projected matmul deps have r_i = 3; any may be chosen.
        let qp = project(
            &[4, 4, 4],
            vec![vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 1]],
            vec![1, 1, 1],
        );
        for want in 0..3 {
            let gv = select_vectors(&qp, Some(want)).unwrap();
            assert_eq!(gv.grouping, Some(want));
            assert_eq!(gv.r, 3);
            assert_eq!(gv.auxiliary.len(), 1);
        }
    }

    #[test]
    fn prefer_non_maximizer_rejected() {
        // Matvec: d_x = (1,0) → (1/2,−1/2) has r = 2; d_y = (0,1) →
        // (−1/2,1/2) also r = 2. Mixed-r example: use L1 where d2
        // projects to zero (multiplier treated as 1).
        let qp = project(
            &[4, 4],
            vec![vec![0, 1], vec![1, 1], vec![1, 0]],
            vec![1, 1],
        );
        let err = select_vectors(&qp, Some(1)).unwrap_err();
        assert_eq!(
            err,
            Error::InvalidGroupingChoice {
                requested: 1,
                r_requested: 1,
                r_max: 2
            }
        );
    }

    #[test]
    fn bad_index_rejected() {
        let qp = project(&[4, 4], vec![vec![1, 0]], vec![1, 1]);
        assert!(matches!(
            select_vectors(&qp, Some(5)),
            Err(Error::BadDependenceIndex { index: 5, len: 1 })
        ));
    }

    #[test]
    fn all_deps_parallel_to_pi_degenerates() {
        // D = {(1,1)} with Π = (1,1): projection is zero.
        let qp = project(&[4, 4], vec![vec![1, 1]], vec![1, 1]);
        let gv = select_vectors(&qp, None).unwrap();
        assert_eq!(gv.grouping, None);
        assert_eq!(gv.r, 1);
        assert_eq!(gv.beta, 0);
        assert!(gv.omega().is_empty());
    }
}
