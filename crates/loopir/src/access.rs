//! Array accesses with affine subscripts.

use crate::aff::Aff;
use std::fmt;

/// One array access `array[e₁, …, e_k]` where each subscript `e` is an
/// affine expression over the loop indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Access {
    array: String,
    subscripts: Vec<Aff>,
}

impl Access {
    /// Build an access. All subscripts must share the nest arity.
    pub fn new(array: impl Into<String>, subscripts: Vec<Aff>) -> Access {
        let array = array.into();
        if let Some(first) = subscripts.first() {
            assert!(
                subscripts.iter().all(|s| s.dim() == first.dim()),
                "subscripts of `{array}` disagree on nest arity"
            );
        }
        Access { array, subscripts }
    }

    /// Convenience: `array[I_{k₁}+c₁, …]` — each subscript a single index
    /// variable plus an offset, the form all the paper's loops use.
    pub fn simple(array: impl Into<String>, n: usize, idx_offsets: &[(usize, i64)]) -> Access {
        Access::new(
            array,
            idx_offsets
                .iter()
                .map(|&(k, c)| Aff::var(n, k) + c)
                .collect(),
        )
    }

    /// The array name.
    pub fn array(&self) -> &str {
        &self.array
    }

    /// The subscript expressions.
    pub fn subscripts(&self) -> &[Aff] {
        &self.subscripts
    }

    /// Array rank (number of subscripts).
    pub fn rank(&self) -> usize {
        self.subscripts.len()
    }

    /// Nest arity the subscripts range over (0 for a scalar access).
    pub fn nest_arity(&self) -> usize {
        self.subscripts.first().map_or(0, |s| s.dim())
    }

    /// Evaluate the subscripts at an iteration point: the address of the
    /// element touched at that iteration.
    pub fn element_at(&self, point: &[i64]) -> Vec<i64> {
        self.subscripts.iter().map(|s| s.eval(point)).collect()
    }

    /// `true` iff the two accesses have identical linear subscript parts
    /// (the uniform-dependence precondition).
    pub fn same_linear_part(&self, other: &Access) -> bool {
        self.rank() == other.rank()
            && self
                .subscripts
                .iter()
                .zip(&other.subscripts)
                .all(|(a, b)| a.same_linear_part(b))
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.array)?;
        for (i, s) in self.subscripts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_access() {
        // A[i+1, j] in a 2-deep nest.
        let a = Access::simple("A", 2, &[(0, 1), (1, 0)]);
        assert_eq!(a.array(), "A");
        assert_eq!(a.rank(), 2);
        assert_eq!(a.nest_arity(), 2);
        assert_eq!(a.element_at(&[3, 5]), vec![4, 5]);
        assert_eq!(a.to_string(), "A[i+1,j]");
    }

    #[test]
    fn linear_part_comparison() {
        let w = Access::simple("A", 2, &[(0, 1), (1, 1)]); // A[i+1,j+1]
        let r = Access::simple("A", 2, &[(0, 1), (1, 0)]); // A[i+1,j]
        assert!(w.same_linear_part(&r));
        let other = Access::simple("A", 2, &[(1, 0), (0, 0)]); // A[j,i]
        assert!(!w.same_linear_part(&other));
        let scalar = Access::new("A", vec![Aff::var(2, 0)]);
        assert!(!w.same_linear_part(&scalar)); // different rank
    }

    #[test]
    fn lower_rank_access() {
        // A[i,k] inside a 3-deep (i,j,k) nest — rank 2, arity 3.
        let a = Access::simple("A", 3, &[(0, 0), (2, 0)]);
        assert_eq!(a.rank(), 2);
        assert_eq!(a.nest_arity(), 3);
        assert_eq!(a.element_at(&[1, 9, 2]), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "disagree on nest arity")]
    fn mismatched_subscript_arity() {
        Access::new("A", vec![Aff::var(2, 0), Aff::var(3, 1)]);
    }
}
