//! Padua's greatest-common-divisors partitioning.
//!
//! Along dimension `k`, let `g_k = gcd{ d_k : d ∈ D }`. Two iterations
//! can only depend on each other (transitively) if their coordinates are
//! congruent modulo `g_k` in every dimension, so the residue classes
//! `(i_1 mod g_1, …, i_n mod g_n)` are mutually independent blocks.
//! When `g_k = 0` (no dependence ever moves along dimension `k`) every
//! distinct coordinate value is its own class.

use crate::BaselineResult;
use loom_partition::ComputationalStructure;
use loom_rational::int::gcd;
use std::collections::BTreeMap;

/// The per-dimension GCDs of a dependence set.
pub fn dimension_gcds(deps: &[Vec<i64>], n: usize) -> Vec<i64> {
    (0..n)
        .map(|k| deps.iter().fold(0, |g, d| gcd(g, d[k])))
        .collect()
}

/// Partition a computational structure into GCD residue classes.
pub fn partition(cs: &ComputationalStructure) -> BaselineResult {
    let n = cs.space().dim();
    let gcds = dimension_gcds(cs.deps(), n);
    let mut classes: BTreeMap<Vec<i64>, usize> = BTreeMap::new();
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    let mut block_of = vec![0usize; cs.len()];
    for (id, p) in cs.points().iter().enumerate() {
        let label: Vec<i64> = p
            .iter()
            .zip(&gcds)
            .map(|(&x, &g)| if g == 0 { x } else { x.rem_euclid(g) })
            .collect();
        let bid = *classes.entry(label).or_insert_with(|| {
            blocks.push(Vec::new());
            blocks.len() - 1
        });
        blocks[bid].push(id);
        block_of[id] = bid;
    }
    BaselineResult {
        method: "gcd",
        blocks,
        block_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_loopir::IterSpace;

    fn cs(sizes: &[i64], deps: Vec<Vec<i64>>) -> ComputationalStructure {
        ComputationalStructure::new(IterSpace::rect(sizes).unwrap(), deps).unwrap()
    }

    #[test]
    fn matmul_is_sequential_under_gcd() {
        // The paper's motivating claim: matmul's unit dependence vectors
        // defeat all independent-partitioning methods.
        let s = cs(
            &[4, 4, 4],
            vec![vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 1]],
        );
        let r = partition(&s);
        assert!(r.is_sequential());
        assert_eq!(r.interblock_arcs(&s), 0);
    }

    #[test]
    fn stride2_deps_give_four_blocks() {
        let s = cs(&[4, 4], vec![vec![2, 0], vec![0, 2]]);
        let r = partition(&s);
        assert_eq!(r.num_blocks(), 4);
        assert_eq!(r.interblock_arcs(&s), 0);
        // Blocks are balanced 4-point classes.
        assert!(r.blocks.iter().all(|b| b.len() == 4));
    }

    #[test]
    fn free_dimension_splits_fully() {
        // D = {(1, 0)}: dimension 1 never crossed → each column separate.
        let s = cs(&[4, 4], vec![vec![1, 0]]);
        let r = partition(&s);
        assert_eq!(dimension_gcds(s.deps(), 2), vec![1, 0]);
        assert_eq!(r.num_blocks(), 4);
        assert_eq!(r.interblock_arcs(&s), 0);
    }

    #[test]
    fn negative_components_handled() {
        let s = cs(&[4, 4], vec![vec![2, -2]]);
        assert_eq!(dimension_gcds(s.deps(), 2), vec![2, 2]);
        let r = partition(&s);
        assert_eq!(r.num_blocks(), 4);
        assert_eq!(r.interblock_arcs(&s), 0);
    }

    #[test]
    fn no_deps_fully_parallel() {
        let s = cs(&[3, 3], vec![]);
        let r = partition(&s);
        assert_eq!(r.num_blocks(), 9);
    }
}
