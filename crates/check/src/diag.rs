//! The diagnostics model: rule ids, severities, spans into the loop IR,
//! and the [`Report`] that collects them with human and JSON renderers.

use loom_obs::Json;
use std::collections::BTreeMap;
use std::fmt;

/// Stable identifiers for every rule the checker knows. The numeric
/// codes (`LC001`…) are part of the tool's output contract: tests
/// snapshot them, CI greps them, and the JSON schema keys counters by
/// them, so codes are never reused or renumbered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `LC001` — schedule legality: `Π·dᵢ ≥ 1` for every dependence.
    ScheduleLegality,
    /// `LC002` — Lemma 1: no two iterations of one block share a step.
    BlockSharedStep,
    /// `LC003` — Theorem 2: group out-degree is at most `2m − β`.
    NeighborBound,
    /// `LC004` — Gray-code mapping: TIG edges map to unit hypercube hops.
    GrayAdjacency,
    /// `LC005` — static data race between concurrently-schedulable
    /// computes of the SPMD program.
    DataRace,
    /// `LC006` — grouping-vector selection: the chosen set must be a
    /// rank-β independent set (the invariant previously guarded only by
    /// a `debug_assert!` in `loom-partition`).
    GroupingRank,
    /// `LC007` — SPMD program consistency: every receive has a matching
    /// send that can reach it (no deadlock, no orphan message).
    UnmatchedMessage,
    /// `LC008` — fault-plan validity: every injected fault references a
    /// live processor or physical link, windows are well-ordered, and
    /// the plan survives a JSON round trip unchanged.
    FaultPlan,
}

impl RuleId {
    /// The stable code, e.g. `"LC001"`.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::ScheduleLegality => "LC001",
            RuleId::BlockSharedStep => "LC002",
            RuleId::NeighborBound => "LC003",
            RuleId::GrayAdjacency => "LC004",
            RuleId::DataRace => "LC005",
            RuleId::GroupingRank => "LC006",
            RuleId::UnmatchedMessage => "LC007",
            RuleId::FaultPlan => "LC008",
        }
    }

    /// The short kebab-case name, e.g. `"schedule-legality"`.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::ScheduleLegality => "schedule-legality",
            RuleId::BlockSharedStep => "block-shared-step",
            RuleId::NeighborBound => "neighbor-bound",
            RuleId::GrayAdjacency => "gray-adjacency",
            RuleId::DataRace => "data-race",
            RuleId::GroupingRank => "grouping-rank",
            RuleId::UnmatchedMessage => "unmatched-message",
            RuleId::FaultPlan => "fault-plan",
        }
    }

    /// Every rule, in code order.
    pub fn all() -> [RuleId; 8] {
        [
            RuleId::ScheduleLegality,
            RuleId::BlockSharedStep,
            RuleId::NeighborBound,
            RuleId::GrayAdjacency,
            RuleId::DataRace,
            RuleId::GroupingRank,
            RuleId::UnmatchedMessage,
            RuleId::FaultPlan,
        ]
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// How bad a diagnostic is. `Error` fails the pipeline stage and makes
/// the CLI exit nonzero; `Warning` and `Info` are reported but pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note (e.g. a check that could not run here).
    Info,
    /// Suspicious but not a proven correctness violation.
    Warning,
    /// A violated invariant: the transformed program is wrong.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{s}")
    }
}

/// Where in the loop IR / pipeline artifacts a diagnostic points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Span {
    /// The whole nest (no finer locus applies).
    Nest,
    /// Dependence `index` of the dependence set `D`.
    Dep {
        /// Index into `D`.
        index: usize,
        /// The dependence vector.
        vector: Vec<i64>,
    },
    /// Block `block` of the partitioning.
    Block {
        /// Block id.
        block: usize,
    },
    /// Group `group` of the projected grouping.
    Group {
        /// Group id.
        group: usize,
    },
    /// The TIG edge between blocks `a` and `b`.
    TigEdge {
        /// Smaller endpoint.
        a: usize,
        /// Larger endpoint.
        b: usize,
    },
    /// A pair of iteration points.
    PointPair {
        /// First point.
        a: Vec<i64>,
        /// Second point.
        b: Vec<i64>,
    },
    /// An array element.
    Element {
        /// Array name.
        array: String,
        /// Element indices.
        element: Vec<i64>,
    },
    /// Operation `op` of processor `proc`'s SPMD program.
    ProgramOp {
        /// Processor number.
        proc: u32,
        /// Index into the processor's op list.
        op: usize,
    },
    /// Scheduled fault `index` of a fault plan's event list.
    FaultEvent {
        /// Index into `FaultPlan::events`.
        index: usize,
    },
}

fn ints(v: &[i64]) -> String {
    let parts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("({})", parts.join(","))
}

fn ints_json(v: &[i64]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::Int(x)).collect())
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Nest => write!(f, "nest"),
            Span::Dep { index, vector } => write!(f, "dep[{index}]={}", ints(vector)),
            Span::Block { block } => write!(f, "block B{block}"),
            Span::Group { group } => write!(f, "group G{group}"),
            Span::TigEdge { a, b } => write!(f, "tig edge B{a}-B{b}"),
            Span::PointPair { a, b } => write!(f, "points {} and {}", ints(a), ints(b)),
            Span::Element { array, element } => write!(f, "element {array}{}", ints(element)),
            Span::ProgramOp { proc, op } => write!(f, "P{proc} op {op}"),
            Span::FaultEvent { index } => write!(f, "fault event [{index}]"),
        }
    }
}

impl Span {
    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        match self {
            Span::Nest => Json::obj(vec![("kind", Json::from("nest"))]),
            Span::Dep { index, vector } => Json::obj(vec![
                ("kind", Json::from("dep")),
                ("index", Json::from(*index)),
                ("vector", ints_json(vector)),
            ]),
            Span::Block { block } => Json::obj(vec![
                ("kind", Json::from("block")),
                ("block", Json::from(*block)),
            ]),
            Span::Group { group } => Json::obj(vec![
                ("kind", Json::from("group")),
                ("group", Json::from(*group)),
            ]),
            Span::TigEdge { a, b } => Json::obj(vec![
                ("kind", Json::from("tig_edge")),
                ("a", Json::from(*a)),
                ("b", Json::from(*b)),
            ]),
            Span::PointPair { a, b } => Json::obj(vec![
                ("kind", Json::from("point_pair")),
                ("a", ints_json(a)),
                ("b", ints_json(b)),
            ]),
            Span::Element { array, element } => Json::obj(vec![
                ("kind", Json::from("element")),
                ("array", Json::from(array.as_str())),
                ("element", ints_json(element)),
            ]),
            Span::ProgramOp { proc, op } => Json::obj(vec![
                ("kind", Json::from("program_op")),
                ("proc", Json::from(*proc as u64)),
                ("op", Json::from(*op)),
            ]),
            Span::FaultEvent { index } => Json::obj(vec![
                ("kind", Json::from("fault_event")),
                ("index", Json::from(*index)),
            ]),
        }
    }
}

/// One finding: a violated (or suspicious) invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// How bad it is.
    pub severity: Severity,
    /// Where it points.
    pub span: Span,
    /// The human explanation.
    pub message: String,
}

impl Diagnostic {
    /// An `Error`-severity diagnostic.
    pub fn error(rule: RuleId, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Error,
            span,
            message: message.into(),
        }
    }

    /// A `Warning`-severity diagnostic.
    pub fn warning(rule: RuleId, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Warning,
            span,
            message: message.into(),
        }
    }

    /// An `Info`-severity diagnostic.
    pub fn info(rule: RuleId, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Info,
            span,
            message: message.into(),
        }
    }

    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rule", Json::from(self.rule.code())),
            ("name", Json::from(self.rule.name())),
            ("severity", Json::from(self.severity.to_string())),
            ("span", self.span.to_json()),
            ("message", Json::from(self.message.as_str())),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.span, self.message
        )
    }
}

/// Every diagnostic a checking run produced, in rule-execution order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// A report holding the given diagnostics.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Report {
        Report { diagnostics }
    }

    /// Append one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append many diagnostics.
    pub fn extend(&mut self, ds: Vec<Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// All diagnostics.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` iff the report holds no diagnostics at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` iff any diagnostic is an `Error`.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Diagnostics per rule code (only rules that fired).
    pub fn rule_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for d in &self.diagnostics {
            *counts.entry(d.rule.code()).or_insert(0) += 1;
        }
        counts
    }

    /// Downgrade every `Error` of the listed rule codes to `Warning`
    /// (the CLI's `--allow LC004,LC005` suppression mechanism).
    pub fn allow(&mut self, codes: &[String]) {
        for d in &mut self.diagnostics {
            if d.severity == Severity::Error && codes.iter().any(|c| c == d.rule.code()) {
                d.severity = Severity::Warning;
            }
        }
    }

    /// The human rendering: one line per diagnostic plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "check: {} error(s), {} warning(s), {} note(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }

    /// The machine rendering: diagnostics, per-rule counts, and totals.
    pub fn to_json(&self) -> Json {
        let counts = self
            .rule_counts()
            .into_iter()
            .map(|(code, n)| (code.to_string(), Json::from(n)))
            .collect();
        Json::obj(vec![
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
            ("counts", Json::Obj(counts)),
            ("errors", Json::from(self.count(Severity::Error))),
            ("warnings", Json::from(self.count(Severity::Warning))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let codes: Vec<&str> = RuleId::all().iter().map(|r| r.code()).collect();
        assert_eq!(
            codes,
            vec!["LC001", "LC002", "LC003", "LC004", "LC005", "LC006", "LC007", "LC008"]
        );
    }

    #[test]
    fn report_counts_and_errors() {
        let mut r = Report::new();
        assert!(!r.has_errors());
        r.push(Diagnostic::error(
            RuleId::ScheduleLegality,
            Span::Nest,
            "bad",
        ));
        r.push(Diagnostic::warning(
            RuleId::GrayAdjacency,
            Span::TigEdge { a: 0, b: 1 },
            "far",
        ));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.rule_counts()["LC001"], 1);
        assert_eq!(r.rule_counts()["LC004"], 1);
    }

    #[test]
    fn allow_downgrades_errors() {
        let mut r = Report::from_diagnostics(vec![Diagnostic::error(
            RuleId::GrayAdjacency,
            Span::TigEdge { a: 0, b: 1 },
            "far",
        )]);
        r.allow(&["LC004".to_string()]);
        assert!(!r.has_errors());
        assert_eq!(r.count(Severity::Warning), 1);
    }

    #[test]
    fn human_line_format() {
        let d = Diagnostic::error(
            RuleId::ScheduleLegality,
            Span::Dep {
                index: 2,
                vector: vec![1, 0],
            },
            "\u{3a0}\u{b7}d = -1 < 1",
        );
        assert_eq!(
            d.to_string(),
            "error[LC001] dep[2]=(1,0): \u{3a0}\u{b7}d = -1 < 1"
        );
    }

    #[test]
    fn json_round_trips_through_parser() {
        let mut r = Report::new();
        r.push(Diagnostic::info(
            RuleId::DataRace,
            Span::Element {
                array: "A".into(),
                element: vec![1, 2],
            },
            "skipped",
        ));
        let rendered = r.to_json().render_pretty();
        let parsed = Json::parse(&rendered).expect("valid JSON");
        assert_eq!(
            parsed
                .get("diagnostics")
                .and_then(|d| d.idx(0))
                .and_then(|d| d.get("rule")),
            Some(&Json::from("LC005"))
        );
    }
}
