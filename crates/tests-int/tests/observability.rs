//! Integration tests for the observability layer: the Chrome trace
//! exporter's golden output, trace validation wired through the
//! pipeline, and the metrics JSON document's schema.

use loom_core::obs_export::metrics_json;
use loom_core::pipeline::MachineOptions;
use loom_core::{Pipeline, PipelineConfig};
use loom_machine::trace::chrome_trace;
use loom_machine::{simulate, MachineParams, Program, SimConfig, Topology};
use loom_obs::{Json, Recorder};

/// Two tasks on two hypercube processors with one message between them,
/// simulated with fixed params — the smallest program that exercises
/// every Chrome event kind (metadata, B/E, X, flow s/f).
fn two_proc_report() -> (Program, loom_machine::SimReport) {
    let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 3, 2);
    let config = SimConfig {
        params: MachineParams {
            t_calc: 1,
            t_start: 10,
            t_comm: 2,
            t_recv: 0,
        },
        topology: Topology::Hypercube(1),
        words_per_arc: 1,
        batch_messages: false,
        link_contention: false,
        record_trace: true,
        collect_metrics: true,
    };
    let report = simulate(&prog, &config).unwrap();
    (prog, report)
}

/// The exact trace the two-processor toy program exports. The simulator
/// is deterministic, so this file is a golden: any timing or format
/// change shows up as a diff here.
const GOLDEN: &str = r#"[
  {
    "name": "process_name",
    "ph": "M",
    "pid": 0,
    "tid": 0,
    "args": {
      "name": "loom simulator"
    }
  },
  {
    "name": "thread_name",
    "ph": "M",
    "pid": 0,
    "tid": 0,
    "args": {
      "name": "P0"
    }
  },
  {
    "name": "thread_name",
    "ph": "M",
    "pid": 0,
    "tid": 1,
    "args": {
      "name": "P1"
    }
  },
  {
    "name": "task 0",
    "ph": "B",
    "pid": 0,
    "tid": 0,
    "ts": 0
  },
  {
    "ph": "E",
    "pid": 0,
    "tid": 0,
    "ts": 3
  },
  {
    "name": "task 1",
    "ph": "B",
    "pid": 0,
    "tid": 1,
    "ts": 15
  },
  {
    "ph": "E",
    "pid": 0,
    "tid": 1,
    "ts": 18
  },
  {
    "name": "send to P1",
    "ph": "X",
    "pid": 0,
    "tid": 0,
    "ts": 3,
    "dur": 12
  },
  {
    "name": "msg",
    "cat": "msg",
    "ph": "s",
    "pid": 0,
    "tid": 0,
    "id": 0,
    "ts": 3
  },
  {
    "name": "msg",
    "cat": "msg",
    "ph": "f",
    "pid": 0,
    "tid": 1,
    "id": 0,
    "ts": 15,
    "bp": "e"
  }
]
"#;

#[test]
fn chrome_trace_golden_two_proc() {
    let (_, report) = two_proc_report();
    let json = chrome_trace(&report, 2).unwrap();
    assert_eq!(json.render_pretty(), GOLDEN);
}

#[test]
fn chrome_trace_is_valid_and_nested() {
    let (_, report) = two_proc_report();
    let json = chrome_trace(&report, 2).unwrap();
    // Valid JSON: the exporter's own parser round-trips it.
    let reparsed = Json::parse(&json.render_pretty()).unwrap();
    assert_eq!(reparsed, json);
    // B/E events nest correctly per thread: every E closes an open B,
    // their timestamps never run backwards, nothing is left open.
    // (Only B/E carry nesting; X and flow events are standalone.)
    let mut open: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
    let mut last_ts: std::collections::BTreeMap<i64, i64> = Default::default();
    for e in json.as_arr().unwrap() {
        let ph = e.get("ph").and_then(Json::as_str).unwrap();
        if ph != "B" && ph != "E" {
            continue;
        }
        let tid = e.get("tid").and_then(Json::as_i64).unwrap();
        let ts = e.get("ts").and_then(Json::as_i64).unwrap();
        let last = last_ts.entry(tid).or_insert(i64::MIN);
        assert!(ts >= *last, "task timestamps regress on tid {tid}");
        *last = ts;
        match ph {
            "B" => open.entry(tid).or_default().push(ts),
            _ => {
                let begin = open
                    .get_mut(&tid)
                    .and_then(Vec::pop)
                    .expect("E without a matching B");
                assert!(ts >= begin, "task ends before it begins");
            }
        }
    }
    assert!(open.values().all(Vec::is_empty), "unclosed B event");
}

#[test]
fn validate_trace_passes_on_clean_pipeline_run() {
    let w = loom_workloads::sor::workload(8, 8);
    let out = Pipeline::new(w.nest.clone())
        .run(&PipelineConfig {
            time_fn: Some(w.pi.clone()),
            cube_dim: 2,
            machine: Some(MachineOptions {
                validate_trace: true,
                ..Default::default()
            }),
            ..Default::default()
        })
        .expect("a clean simulation validates with zero violations");
    // validate_trace implies record_trace, so the trace is available.
    assert!(out.sim.unwrap().trace.is_some());
}

#[test]
fn metrics_document_schema_on_matmul() {
    let w = loom_workloads::matmul::workload(4);
    let rec = Recorder::enabled();
    let out = Pipeline::new(w.nest.clone())
        .run_with(
            &PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim: 2,
                machine: Some(MachineOptions {
                    collect_metrics: true,
                    ..Default::default()
                }),
                ..Default::default()
            },
            &rec,
        )
        .unwrap();
    let sim = out.sim.as_ref().unwrap();
    let doc = metrics_json(&rec, Some(sim));

    // Recorder section: every pipeline phase span is present.
    let spans = doc.get("recorder").unwrap().get("spans").unwrap();
    let names: Vec<&str> = spans
        .as_arr()
        .unwrap()
        .iter()
        .map(|s| s.get("name").and_then(Json::as_str).unwrap())
        .collect();
    for phase in [
        "pipeline.deps",
        "pipeline.partition",
        "pipeline.mapping",
        "pipeline.simulate",
        "pipeline.total",
    ] {
        assert!(names.contains(&phase), "missing span {phase}");
    }
    let counters = doc.get("recorder").unwrap().get("counters").unwrap();
    assert!(counters.get("pipeline.blocks").is_some());

    // Sim section: occupancy vectors sized to the machine, plus the
    // rich telemetry block with per-proc and per-link detail.
    let simj = doc.get("sim").unwrap();
    assert_eq!(simj.get("compute").unwrap().as_arr().unwrap().len(), 4);
    assert_eq!(simj.get("utilization").unwrap().as_arr().unwrap().len(), 4);
    let telemetry = simj.get("telemetry").unwrap();
    assert_eq!(telemetry.get("procs").unwrap().as_arr().unwrap().len(), 4);
    assert!(telemetry.get("links").is_some());
    assert!(telemetry.get("hop_histogram").is_some());
    assert_eq!(
        telemetry
            .get("messages_logged")
            .and_then(Json::as_i64)
            .unwrap() as u64,
        sim.messages
    );

    // The whole document is machine-readable.
    assert_eq!(Json::parse(&doc.render_pretty()).unwrap(), doc);
}
