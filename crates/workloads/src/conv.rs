//! 1-D convolution, one of the §I algorithms that independent
//! partitioning serializes.

use crate::Workload;
use loom_loopir::sem::Expr;
use loom_loopir::{Access, Aff, IterSpace, LoopNest, Stmt};

/// `y[i] += h[k] · x[i − k]` over `0 ≤ i < n_out`, `0 ≤ k < taps`.
///
/// Dependences: `d_y = (0,1)` (accumulation over `k`), `d_h = (1,0)`
/// (tap reuse across outputs), `d_x = (1,1)` (the sample `x[i−k]` is
/// reused at `(i+1, k+1)`).
pub fn workload(n_out: i64, taps: i64) -> Workload {
    let n = 2;
    let x_sub = Aff::var(n, 0) - Aff::var(n, 1); // i − k
    let nest = LoopNest::new(
        "conv1d",
        IterSpace::rect(&[n_out, taps]).expect("positive extents"),
        vec![Stmt::assign(
            Access::simple("y", n, &[(0, 0)]),
            vec![
                Access::simple("y", n, &[(0, 0)]),
                Access::simple("h", n, &[(1, 0)]),
                Access::new("x", vec![x_sub]),
            ],
        )
        .with_flops(2)
        .with_expr(Expr::add(
            Expr::Read(0),
            Expr::mul(Expr::Read(1), Expr::Read(2)),
        ))],
    )
    .expect("conv1d is well-formed");
    Workload {
        nest,
        deps: vec![vec![0, 1], vec![1, 0], vec![1, 1]],
        pi: vec![2, 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_verify() {
        workload(8, 4).verified_deps();
    }

    #[test]
    fn pi_legal() {
        assert!(workload(8, 4).pi_is_legal());
        // The plain wavefront (1,1) is *not* legal here? (1,1)·(1,1) = 2,
        // (1,1)·(0,1) = 1, (1,1)·(1,0) = 1 — it is legal; we use (2,1) to
        // match the subtraction subscript's skew in later ablations, but
        // both must be legal.
        assert!(loom_hyperplane::TimeFn::new(vec![1, 1]).is_legal_for(&workload(8, 4).deps));
    }

    #[test]
    fn rectangular_extent() {
        assert_eq!(workload(8, 4).nest.space().count(), 32);
    }
}
