//! `loom-check` — a static verifier and race detector for the
//! partition/map/codegen pipeline.
//!
//! The paper's correctness argument is a chain of theorems: the time
//! transformation Π is legal (`Π·d ≥ 1`), iterations merged into one
//! block never share a step (Lemma 1), each group talks to at most
//! `2m − β` others (Theorem 2), and the Gray-coded hypercube mapping
//! puts communicating neighbors one hop apart. This crate turns each
//! link of that chain — plus a happens-before data-race analysis of
//! the generated SPMD program — into an executable lint that inspects
//! the pipeline's artifacts *without running them* and reports every
//! violation as a structured [`Diagnostic`]: stable rule id, severity,
//! a span into the loop IR or the derived structures, a human message,
//! and machine-readable JSON.
//!
//! Rule catalogue (see `docs/CHECKS.md`):
//!
//! | id      | name               | checks                                  |
//! |---------|--------------------|-----------------------------------------|
//! | `LC001` | schedule-legality  | `Π·dᵢ ≥ 1` for every dependence         |
//! | `LC002` | block-shared-step  | Lemma 1, by exact rational arithmetic   |
//! | `LC003` | neighbor-bound     | Theorem 2's `2m − β` out-degree bound   |
//! | `LC004` | gray-adjacency     | unit-hop mapping of Ω-neighbor blocks   |
//! | `LC005` | data-race          | happens-before race scan of SPMD code   |
//! | `LC006` | grouping-rank      | Ω is a rank-β independent set           |
//! | `LC007` | unmatched-message  | every `Recv` is satisfiable, no orphans |
//! | `LC008` | fault-plan         | fault plans reference live hardware     |
//! | `LC009` | parametric-legality| legality + Lemma 1, proven symbolically |
//! | `LC010` | access-dependence  | declared `D` matches the subscripts     |
//! | `LC011` | protocol-summary   | symbolic send/recv summary ≡ TIG        |
//! | `LC012` | blocking-cycle     | no wait cycle with total lag ≤ 0        |
//! | `LC013` | interleaving-deadlock | deadlock-freedom under *every* interleaving (DPOR) |
//! | `LC014` | interleaving-determinacy | final memory is interleaving-independent |
//! | `LC015` | block-access-bounds | op indices and access images stay in bounds |
//! | `LC016` | uniformize-soundness | synthesized vectors cover the true dependence relation |
//! | `LC017` | uniformize-tightness | over-approximation and the parallelism it costs |
//! | `LC018` | uniformize-legality  | `Π·v ≥ 1` for every synthesized vector |
//!
//! `LC001`–`LC008` are *enumerative*: they certify one instantiated
//! iteration space by walking its points and messages. `LC009`–`LC012`
//! form the *symbolic* engine ([`symbolic`], backed by the bounded
//! Presburger core in [`presburger`]): they prove the same properties
//! from the lattice and affine structure in time independent of the
//! iteration-space extent, falling back to enumeration only on the
//! rare `Unknown`. `LC013`–`LC015` are the *interleaving* engine
//! ([`interleave`] + [`absint`]): a stateless model checker with
//! dynamic partial-order reduction explores every message interleaving
//! of the generated SPMD program, and an interval abstract
//! interpretation bounds its memory accesses. [`CheckMode`] selects
//! which engine [`check_pipeline_mode`] runs; the enumerative rules
//! stay available as the cross-validation oracle.
//!
//! The checks run standalone (each `check_*` function takes exactly
//! the artifacts it inspects), through [`check_pipeline`] on a bundle
//! of everything the pipeline produced, via `loom check` on the CLI,
//! or as a gated `loom-core` pipeline stage
//! (`MachineOptions::static_check` / `symbolic_check`).

#![deny(missing_docs)]

pub mod absint;
pub mod catalog;
mod diag;
mod faultplan;
pub mod frontend;
mod gray;
pub mod interleave;
mod legality;
mod lemma1;
pub mod presburger;
mod races;
pub mod symbolic;
mod theorem2;
pub mod uniformize;

pub use absint::{check_block_bounds, AbsintStats};
pub use catalog::{catalog, explain, RuleDoc};
pub use diag::{Diagnostic, Report, RuleId, Severity, Span};
pub use faultplan::check_fault_plan;
pub use frontend::{report_from_parse, rule_for};
pub use gray::check_gray;
pub use interleave::{
    check_interleavings, enumerate_naive, explore_dpor, mutate_program, DeadlockWitness,
    Exploration, InterleaveOptions, InterleaveStats, Mutation, NaiveResult,
};
pub use legality::check_legality;
pub use lemma1::check_lemma1;
pub use presburger::{System, Verdict};
pub use races::check_races;
pub use symbolic::{
    ap_overlap, block_traffic, check_access_dependences, check_access_dependences_uniformized,
    check_blocking_cycles, check_legality_symbolic, check_lemma1_symbolic,
    check_lemma1_symbolic_groups, check_protocol, BlockTraffic, SymbolicStats,
};
pub use theorem2::{check_grouping_vectors, check_neighbor_bound, check_theorem2};
pub use uniformize::{
    admit_uniformized, certify_cover, check_folded_legality, check_tightness, UniformizeStats,
};

use loom_hyperplane::TimeFn;
use loom_loopir::{LoopNest, Point};
use loom_obs::Recorder;
use loom_partition::{Partitioning, Tig};

/// Everything the pipeline produced, bundled for [`check_pipeline`].
pub struct PipelineCheck<'a> {
    /// The source nest.
    pub nest: &'a LoopNest,
    /// The extracted dependence vectors `D`.
    pub deps: &'a [Point],
    /// The chosen time transformation Π.
    pub pi: &'a TimeFn,
    /// Algorithm 1's partitioning.
    pub partitioning: &'a Partitioning,
    /// The Task Interaction Graph of the blocks.
    pub tig: &'a Tig,
    /// The block → processor assignment (Algorithm 2's Gray mapping).
    pub assignment: &'a [usize],
    /// Hypercube dimension the assignment targets.
    pub cube_dim: usize,
}

/// Which verification engine [`check_pipeline_mode`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckMode {
    /// The original point-and-message-walking rules (`LC001`–`LC007`).
    /// Cost grows with the iteration-space extent.
    Enumerative,
    /// The symbolic engine: `LC009` (parametric legality + Lemma 1),
    /// `LC010` (exact front-end dependence analysis), `LC011`/`LC012`
    /// (size-independent protocol verification) replace `LC001`,
    /// `LC002`, `LC005`, and `LC007`; the structural rules `LC003`,
    /// `LC004`, and `LC006` run unchanged. Cost is O(lines·deps),
    /// independent of the extent along Π.
    Symbolic,
    /// The interleaving engine: on top of the enumerative structural
    /// rules, `LC015` bounds every op index and access of the
    /// generated program by interval abstract interpretation, then
    /// `LC013`/`LC014` model-check deadlock-freedom and determinacy
    /// across **all** message interleavings with dynamic partial-order
    /// reduction (see [`interleave`]). Strictly stronger than the
    /// single-schedule `LC005`/`LC007` scan, at small-size cost.
    Interleaving,
}

/// Run every check against a pipeline's artifacts.
///
/// The race scan (`LC005`/`LC007`) needs an SPMD program; it is
/// generated here from the partitioning and assignment. Nests outside
/// the value-routable class (e.g. multi-dimensional accumulations like
/// conv2d) cannot be code-generated, and the race scan is skipped with
/// an `Info` diagnostic instead of an error — the remaining rules
/// still run.
pub fn check_pipeline(input: &PipelineCheck<'_>) -> Report {
    check_pipeline_with(input, &Recorder::disabled())
}

/// [`check_pipeline`] with instrumentation: when `recorder` is enabled,
/// the run records a `check.total` span and one `check.<code>` counter
/// per diagnostic.
pub fn check_pipeline_with(input: &PipelineCheck<'_>, recorder: &Recorder) -> Report {
    check_pipeline_mode(input, CheckMode::Enumerative, recorder)
}

/// [`check_pipeline_with`] with an explicit engine choice.
///
/// Symbolic runs additionally record how the proof obligations were
/// discharged as `check.symbolic.lattice` / `check.symbolic.fm` /
/// `check.symbolic.fallback` counters.
pub fn check_pipeline_mode(
    input: &PipelineCheck<'_>,
    mode: CheckMode,
    recorder: &Recorder,
) -> Report {
    let _total = recorder.span("check.total");
    let mut report = Report::new();
    match mode {
        CheckMode::Enumerative | CheckMode::Interleaving => {
            report.extend(check_legality(input.pi, input.deps));
            report.extend(check_lemma1(
                input.pi,
                input.partitioning.structure().points(),
                input.partitioning.blocks(),
            ));
        }
        CheckMode::Symbolic => {
            report.extend(check_legality_symbolic(input.pi, input.deps));
        }
    }
    report.extend(check_theorem2(input.partitioning));
    report.extend(check_grouping_vectors(
        input.partitioning.projected(),
        input.partitioning.vectors(),
    ));
    report.extend(check_gray(
        input.partitioning,
        input.tig,
        input.assignment,
        input.cube_dim,
    ));
    match mode {
        CheckMode::Enumerative => {
            match loom_codegen::generate(
                input.nest,
                input.partitioning,
                input.assignment,
                1usize << input.cube_dim,
            ) {
                Ok(cg) => report.extend(check_races(input.nest, &cg.program)),
                Err(e) => report.push(Diagnostic::info(
                    RuleId::DataRace,
                    Span::Nest,
                    format!("race analysis skipped: no SPMD program ({e})"),
                )),
            }
        }
        CheckMode::Symbolic => {
            let mut stats = SymbolicStats::default();
            report.extend(check_lemma1_symbolic(input.partitioning, &mut stats));
            let mut ustats = UniformizeStats::default();
            let (deps_diags, uniformized) =
                check_access_dependences_uniformized(input.nest, Some(input.deps), &mut ustats);
            report.extend(deps_diags);
            if let Some(u) = &uniformized {
                if !u.is_trivial() {
                    report.extend(check_folded_legality(input.pi, u));
                }
            }
            report.extend(check_protocol(input.partitioning, input.tig, &mut stats));
            report.extend(check_blocking_cycles(input.partitioning));
            recorder.add("check.symbolic.lattice", stats.lattice_proofs);
            recorder.add("check.symbolic.fm", stats.fm_decided);
            recorder.add("check.symbolic.fallback", stats.enumerated);
            recorder.add("check.uniformize.pairs", ustats.pairs_folded);
            recorder.add("check.uniformize.vectors", ustats.vectors_synthesized);
            recorder.add("check.uniformize.proofs", ustats.proofs);
            recorder.add("check.uniformize.refuted", ustats.refuted);
            recorder.add("check.uniformize.unknown", ustats.unknown);
            recorder.add("check.uniformize.tightness", ustats.tightness_warnings);
        }
        CheckMode::Interleaving => {
            match loom_codegen::generate(
                input.nest,
                input.partitioning,
                input.assignment,
                1usize << input.cube_dim,
            ) {
                Ok(cg) => {
                    let sub =
                        check_program(input.nest, &cg, &InterleaveOptions::default(), recorder);
                    report.extend(sub.diagnostics().to_vec());
                }
                Err(e) => report.push(Diagnostic::info(
                    RuleId::InterleavingDeadlock,
                    Span::Nest,
                    format!("interleaving exploration skipped: no SPMD program ({e})"),
                )),
            }
        }
    }
    for (code, n) in report.rule_counts() {
        recorder.add(&format!("check.{code}"), n);
    }
    report
}

/// Run the interleaving engine's program-level rules
/// (`LC015` bounds, then `LC013`/`LC014` model checking) over an
/// already-generated — possibly corrupted — SPMD program.
///
/// This is the entry point shared by the [`CheckMode::Interleaving`]
/// pipeline arm, the CLI's `--interleave` / `--corrupt` paths, and the
/// property harness: unlike [`check_pipeline_mode`] it takes the
/// program as-is instead of regenerating it, so seeded mutations (see
/// [`interleave::mutate_program`]) flow through the same verdict path
/// as pristine programs. The abstract interpretation runs first; if it
/// finds structural errors the model checker (which would index out of
/// bounds on them) is skipped with an `Info` diagnostic.
pub fn check_program(
    nest: &LoopNest,
    cg: &loom_codegen::gen::Codegen,
    opts: &InterleaveOptions,
    recorder: &Recorder,
) -> Report {
    let mut report = Report::new();
    let mut astats = AbsintStats::default();
    report.extend(check_block_bounds(nest, cg, &mut astats));
    recorder.add("check.absint.parametric", astats.parametric);
    recorder.add("check.absint.enumerated", astats.enumerated);
    let mut istats = InterleaveStats::default();
    if report.has_errors() {
        report.push(Diagnostic::info(
            RuleId::InterleavingDeadlock,
            Span::Nest,
            "interleaving exploration skipped: the program fails its bounds checks (LC015)",
        ));
    } else {
        report.extend(check_interleavings(nest, cg, opts, &mut istats));
    }
    recorder.add("check.interleave.explored", istats.explored);
    recorder.add("check.interleave.naive", istats.naive);
    recorder.add("check.interleave.transitions", istats.transitions);
    recorder.add("check.interleave.sleep_skips", istats.sleep_skips);
    recorder.add("check.interleave.deadlocks", istats.deadlocks);
    recorder.add("check.interleave.replays", istats.replays);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_mapping::map_partitioning;
    use loom_partition::{partition, PartitionConfig};

    fn bundle_of(w: &loom_workloads::Workload, cube_dim: usize) -> Report {
        let deps = w.verified_deps();
        let pi = w.time_fn();
        let p = partition(
            w.nest.space().clone(),
            deps.clone(),
            pi.clone(),
            &PartitionConfig::default(),
        )
        .unwrap();
        let tig = Tig::from_partitioning(&p);
        let m = map_partitioning(&p, cube_dim).unwrap();
        check_pipeline(&PipelineCheck {
            nest: &w.nest,
            deps: &deps,
            pi: &pi,
            partitioning: &p,
            tig: &tig,
            assignment: m.assignment(),
            cube_dim,
        })
    }

    #[test]
    fn l1_pipeline_is_clean() {
        let w = loom_workloads::l1::workload(4);
        let r = bundle_of(&w, 1);
        assert!(!r.has_errors(), "{}", r.render_human());
    }

    #[test]
    fn conv2d_skips_races_with_info() {
        let w = loom_workloads::conv2d::workload(4, 2);
        let r = bundle_of(&w, 1);
        assert!(!r.has_errors(), "{}", r.render_human());
        assert!(r
            .diagnostics()
            .iter()
            .any(|d| d.severity == Severity::Info && d.rule == RuleId::DataRace));
    }

    #[test]
    fn symbolic_pipeline_is_clean_and_counts_proofs() {
        for w in [
            loom_workloads::l1::workload(4),
            loom_workloads::matvec::workload(8),
            loom_workloads::matmul::workload(4),
        ] {
            let deps = w.verified_deps();
            let pi = w.time_fn();
            let p = partition(
                w.nest.space().clone(),
                deps.clone(),
                pi.clone(),
                &PartitionConfig::default(),
            )
            .unwrap();
            let tig = Tig::from_partitioning(&p);
            let m = map_partitioning(&p, 1).unwrap();
            let rec = Recorder::enabled();
            let r = check_pipeline_mode(
                &PipelineCheck {
                    nest: &w.nest,
                    deps: &deps,
                    pi: &pi,
                    partitioning: &p,
                    tig: &tig,
                    assignment: m.assignment(),
                    cube_dim: 1,
                },
                CheckMode::Symbolic,
                &rec,
            );
            assert!(!r.has_errors(), "{}: {}", w.nest.name(), r.render_human());
            let counters = rec.counters();
            assert!(counters.contains_key("check.symbolic.lattice"));
            assert!(counters.contains_key("check.symbolic.fm"));
            assert_eq!(counters.get("check.symbolic.fallback"), Some(&0));
        }
    }

    #[test]
    fn counters_flow_through_recorder() {
        let w = loom_workloads::l1::workload(4);
        let deps = w.verified_deps();
        let pi = loom_hyperplane::TimeFn::new(vec![1, 1]);
        let p = partition(
            w.nest.space().clone(),
            deps.clone(),
            pi.clone(),
            &PartitionConfig::default(),
        )
        .unwrap();
        let tig = Tig::from_partitioning(&p);
        let m = map_partitioning(&p, 1).unwrap();
        let mut scrambled = m.assignment().to_vec();
        scrambled.reverse();
        let rec = Recorder::enabled();
        let report = check_pipeline_with(
            &PipelineCheck {
                nest: &w.nest,
                deps: &deps,
                pi: &pi,
                partitioning: &p,
                tig: &tig,
                assignment: &scrambled,
                cube_dim: 1,
            },
            &rec,
        );
        let counters = rec.counters();
        for (code, n) in report.rule_counts() {
            assert_eq!(counters.get(&format!("check.{code}")), Some(&n));
        }
        assert!(rec.spans().iter().any(|s| s.name == "check.total"));
    }
}
