//! Quality metrics for a block→processor mapping of a TIG.

use crate::hypercube::Hypercube;
use loom_partition::Tig;
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate quality of a mapping: lower is better everywhere.
#[derive(Clone, Debug, PartialEq)]
pub struct MappingQuality {
    /// Traffic (edge weight) between blocks on *different* processors.
    pub remote_traffic: u64,
    /// Traffic weighted by hop count — the network load the mapping
    /// induces under e-cube routing.
    pub weighted_dilation: u64,
    /// Largest total load routed over any single directed link.
    pub max_link_congestion: u64,
    /// Largest per-processor computational weight.
    pub max_proc_load: u64,
    /// Mean per-processor computational weight.
    pub mean_proc_load: f64,
}

impl MappingQuality {
    /// Mean hops per remote unit of traffic (0 when nothing is remote).
    pub fn mean_dilation(&self) -> f64 {
        if self.remote_traffic == 0 {
            0.0
        } else {
            self.weighted_dilation as f64 / self.remote_traffic as f64
        }
    }

    /// Load imbalance: max/mean processor load (1.0 is perfect).
    pub fn imbalance(&self) -> f64 {
        if self.mean_proc_load == 0.0 {
            1.0
        } else {
            self.max_proc_load as f64 / self.mean_proc_load
        }
    }
}

impl fmt::Display for MappingQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "remote={} dilation={:.2} congestion={} imbalance={:.2}",
            self.remote_traffic,
            self.mean_dilation(),
            self.max_link_congestion,
            self.imbalance()
        )
    }
}

/// Evaluate a mapping of `tig` onto a hypercube given the
/// block→processor assignment. Panics if the assignment length differs
/// from the TIG size or names a processor outside the cube.
pub fn evaluate(tig: &Tig, assignment: &[usize], cube: Hypercube) -> MappingQuality {
    evaluate_on(
        tig,
        assignment,
        &loom_machine::Topology::Hypercube(cube.dim()),
    )
}

/// Evaluate a mapping of `tig` onto *any* machine topology (mesh, ring,
/// complete, hypercube) under that topology's deterministic shortest
/// routing. Panics on a malformed assignment.
pub fn evaluate_on(
    tig: &Tig,
    assignment: &[usize],
    topo: &loom_machine::Topology,
) -> MappingQuality {
    assert_eq!(assignment.len(), tig.len(), "assignment/TIG size mismatch");
    assert!(
        assignment.iter().all(|&p| p < topo.len()),
        "assignment names a processor outside the cube"
    );
    let mut remote = 0u64;
    let mut dilation = 0u64;
    let mut link_load: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for ((a, b), w) in tig.edges() {
        let (pa, pb) = (assignment[a], assignment[b]);
        if pa == pb {
            continue;
        }
        remote += w;
        dilation += w * topo.distance(pa, pb) as u64;
        // Charge both directions (the TIG is undirected): the route
        // there and back.
        for (u, v) in topo.route_links(pa, pb) {
            *link_load.entry((u, v)).or_insert(0) += w;
        }
        for (u, v) in topo.route_links(pb, pa) {
            *link_load.entry((u, v)).or_insert(0) += w;
        }
    }
    let mut proc_load = vec![0u64; topo.len()];
    for v in 0..tig.len() {
        proc_load[assignment[v]] += tig.weight(v);
    }
    let max_proc_load = proc_load.iter().copied().max().unwrap_or(0);
    let mean_proc_load = proc_load.iter().sum::<u64>() as f64 / topo.len() as f64;
    MappingQuality {
        remote_traffic: remote,
        weighted_dilation: dilation,
        max_link_congestion: link_load.values().copied().max().unwrap_or(0),
        max_proc_load,
        mean_proc_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::map_positions;
    use crate::baseline;
    use loom_rational::Ratio;

    fn mesh_positions(rows: usize, cols: usize) -> Vec<Vec<Ratio>> {
        let mut pos = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                pos.push(vec![Ratio::int(c as i64), Ratio::int(r as i64)]);
            }
        }
        pos
    }

    #[test]
    fn identity_mapping_of_local_tig_has_no_remote() {
        let tig = Tig::mesh(2, 2);
        // All four blocks on processor 0 of a 0-cube… use 1-cube with all
        // on node 0 to exercise the cube checks.
        let q = evaluate(&tig, &[0, 0, 0, 0], Hypercube::new(1));
        assert_eq!(q.remote_traffic, 0);
        assert_eq!(q.weighted_dilation, 0);
        assert_eq!(q.max_link_congestion, 0);
        assert_eq!(q.mean_dilation(), 0.0);
        assert_eq!(q.max_proc_load, 4);
    }

    #[test]
    fn gray_beats_random_on_mesh() {
        // The headline claim of Algorithm 2: Gray-coded recursive
        // bisection keeps neighboring blocks near each other.
        let tig = Tig::mesh(8, 8);
        let cube = Hypercube::new(4);
        let gray = map_positions(&mesh_positions(8, 8), 4).unwrap();
        let q_gray = evaluate(&tig, gray.assignment(), cube);
        let q_rand = evaluate(&tig, &baseline::random(64, 16, 7), cube);
        assert!(
            q_gray.weighted_dilation < q_rand.weighted_dilation,
            "gray {} !< random {}",
            q_gray.weighted_dilation,
            q_rand.weighted_dilation
        );
        assert!(q_gray.remote_traffic < q_rand.remote_traffic);
        // Gray mapping of a mesh is all nearest-neighbor: dilation 1.
        assert!((q_gray.mean_dilation() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_detects_skew() {
        let tig = Tig::mesh(2, 2);
        let q = evaluate(&tig, &[0, 0, 0, 1], Hypercube::new(1));
        assert!(q.imbalance() > 1.0);
        let balanced = evaluate(&tig, &[0, 0, 1, 1], Hypercube::new(1));
        assert!((balanced.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mesh_target_metrics() {
        use crate::other_targets::map_positions_mesh;
        let tig = Tig::mesh(8, 8);
        let pos = mesh_positions(8, 8);
        let m = map_positions_mesh(&pos, 4, 4).unwrap();
        let topo = loom_machine::Topology::Mesh { rows: 4, cols: 4 };
        let q = evaluate_on(&tig, m.assignment(), &topo);
        // Chunked grid placement: all remote edges one hop.
        assert!((q.mean_dilation() - 1.0).abs() < 1e-9);
        let rand = crate::baseline::random(64, 16, 3);
        let qr = evaluate_on(&tig, &rand, &topo);
        assert!(q.weighted_dilation < qr.weighted_dilation);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        evaluate(&Tig::mesh(2, 2), &[0, 0], Hypercube::new(1));
    }

    #[test]
    #[should_panic(expected = "outside the cube")]
    fn bad_processor_panics() {
        evaluate(&Tig::mesh(2, 2), &[0, 0, 0, 9], Hypercube::new(1));
    }
}
