//! Chrome trace-event JSON, loadable in Perfetto, `chrome://tracing`,
//! or Speedscope.
//!
//! Implements the subset of the [trace-event format] the simulator
//! needs: metadata (`M`) events to name processes/threads, duration
//! (`B`/`E`) and complete (`X`) events for slices, and flow (`s`/`f`)
//! events for the arrows that connect a message's send slice to its
//! receive site on another track.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! ```
//! use loom_obs::chrome::TraceBuilder;
//!
//! let mut tb = TraceBuilder::new();
//! tb.thread_name(0, 0, "P0");
//! tb.begin(0, 0, 0, "task 0");
//! tb.end(0, 0, 5);
//! let json = tb.render();
//! assert!(json.contains("\"ph\": \"B\""));
//! ```

use crate::json::Json;

/// Builds a trace-event array. All timestamps are microseconds (the
/// simulator maps its abstract ticks 1:1 onto µs).
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Json>,
}

fn base_event(ph: &str, pid: u64, tid: u64) -> Vec<(String, Json)> {
    vec![
        ("ph".to_string(), Json::from(ph)),
        ("pid".to_string(), Json::from(pid)),
        ("tid".to_string(), Json::from(tid)),
    ]
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name a process track.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        let mut ev = base_event("M", pid, 0);
        ev.insert(0, ("name".to_string(), Json::from("process_name")));
        ev.push((
            "args".to_string(),
            Json::obj(vec![("name", Json::from(name))]),
        ));
        self.events.push(Json::Obj(ev));
    }

    /// Name a thread track (one simulator processor = one thread).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        let mut ev = base_event("M", pid, tid);
        ev.insert(0, ("name".to_string(), Json::from("thread_name")));
        ev.push((
            "args".to_string(),
            Json::obj(vec![("name", Json::from(name))]),
        ));
        self.events.push(Json::Obj(ev));
    }

    /// Open a duration slice (`ph: "B"`).
    pub fn begin(&mut self, pid: u64, tid: u64, ts_us: u64, name: &str) {
        let mut ev = base_event("B", pid, tid);
        ev.insert(0, ("name".to_string(), Json::from(name)));
        ev.push(("ts".to_string(), Json::from(ts_us)));
        self.events.push(Json::Obj(ev));
    }

    /// Close the innermost open slice on a track (`ph: "E"`).
    pub fn end(&mut self, pid: u64, tid: u64, ts_us: u64) {
        let mut ev = base_event("E", pid, tid);
        ev.push(("ts".to_string(), Json::from(ts_us)));
        self.events.push(Json::Obj(ev));
    }

    /// A complete slice (`ph: "X"`) with an explicit duration.
    pub fn complete(&mut self, pid: u64, tid: u64, ts_us: u64, dur_us: u64, name: &str) {
        let mut ev = base_event("X", pid, tid);
        ev.insert(0, ("name".to_string(), Json::from(name)));
        ev.push(("ts".to_string(), Json::from(ts_us)));
        ev.push(("dur".to_string(), Json::from(dur_us)));
        self.events.push(Json::Obj(ev));
    }

    /// An instant event (`ph: "i"`) with thread scope — a zero-width
    /// marker pin, used for fault-injection bands.
    pub fn instant(&mut self, pid: u64, tid: u64, ts_us: u64, name: &str) {
        let mut ev = base_event("i", pid, tid);
        ev.insert(0, ("name".to_string(), Json::from(name)));
        ev.push(("ts".to_string(), Json::from(ts_us)));
        ev.push(("s".to_string(), Json::from("t")));
        self.events.push(Json::Obj(ev));
    }

    /// Start of a flow arrow (`ph: "s"`); `id` pairs it with its finish.
    pub fn flow_start(&mut self, id: u64, pid: u64, tid: u64, ts_us: u64, name: &str) {
        self.flow(id, "s", pid, tid, ts_us, name);
    }

    /// Finish of a flow arrow (`ph: "f"`, binding to the enclosing
    /// slice, `bp: "e"`).
    pub fn flow_finish(&mut self, id: u64, pid: u64, tid: u64, ts_us: u64, name: &str) {
        self.flow(id, "f", pid, tid, ts_us, name);
    }

    fn flow(&mut self, id: u64, ph: &str, pid: u64, tid: u64, ts_us: u64, name: &str) {
        let mut ev = base_event(ph, pid, tid);
        ev.insert(0, ("name".to_string(), Json::from(name)));
        ev.insert(1, ("cat".to_string(), Json::from("msg")));
        ev.push(("id".to_string(), Json::from(id)));
        ev.push(("ts".to_string(), Json::from(ts_us)));
        if ph == "f" {
            ev.push(("bp".to_string(), Json::from("e")));
        }
        self.events.push(Json::Obj(ev));
    }

    /// The events as a JSON array value.
    pub fn build(self) -> Json {
        Json::Arr(self.events)
    }

    /// Render the trace as a JSON array document.
    pub fn render(self) -> String {
        self.build().render_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_metadata_and_slices() {
        let mut tb = TraceBuilder::new();
        tb.process_name(0, "loom simulator");
        tb.thread_name(0, 1, "P1");
        tb.complete(0, 1, 10, 5, "task 3");
        let v = Json::parse(&tb.render()).unwrap();
        let evs = v.as_arr().unwrap();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            evs[1].get("args").unwrap().get("name").unwrap().as_str(),
            Some("P1")
        );
        let x = &evs[2];
        assert_eq!(x.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(x.get("ts").unwrap().as_u64(), Some(10));
        assert_eq!(x.get("dur").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn begin_end_pair_on_one_track() {
        let mut tb = TraceBuilder::new();
        tb.begin(0, 2, 100, "task 7");
        tb.end(0, 2, 130);
        let v = Json::parse(&tb.render()).unwrap();
        let evs = v.as_arr().unwrap();
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("E"));
        assert_eq!(evs[0].get("tid"), evs[1].get("tid"));
        assert!(evs[0].get("ts").unwrap().as_u64() <= evs[1].get("ts").unwrap().as_u64());
    }

    #[test]
    fn flow_events_share_id_and_bind_to_enclosing() {
        let mut tb = TraceBuilder::new();
        tb.flow_start(9, 0, 0, 5, "msg");
        tb.flow_finish(9, 0, 1, 17, "msg");
        let v = tb.build();
        let evs = v.as_arr().unwrap();
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("s"));
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("f"));
        assert_eq!(evs[0].get("id"), evs[1].get("id"));
        assert_eq!(evs[1].get("bp").unwrap().as_str(), Some("e"));
        assert_eq!(evs[0].get("cat").unwrap().as_str(), Some("msg"));
    }

    #[test]
    fn instant_events_are_thread_scoped() {
        let mut tb = TraceBuilder::new();
        tb.instant(0, 4, 42, "fault: link 0->1 down");
        let v = tb.build();
        let ev = &v.as_arr().unwrap()[0];
        assert_eq!(ev.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(ev.get("ts").unwrap().as_u64(), Some(42));
        assert_eq!(ev.get("s").unwrap().as_str(), Some("t"));
        assert_eq!(
            ev.get("name").unwrap().as_str(),
            Some("fault: link 0->1 down")
        );
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        assert!(TraceBuilder::new().is_empty());
        assert_eq!(
            Json::parse(&TraceBuilder::new().render()).unwrap(),
            Json::Arr(vec![])
        );
    }
}
