//! A6 — link-contention ablation: the paper's cost model charges
//! latency only; this experiment shows when serialized links change the
//! picture (and that the Gray mapping's low congestion is what protects
//! it).

use loom_bench::{maybe_write_metrics, partition_workload};
use loom_core::obs_export::sim_json;
use loom_core::report::Table;
use loom_machine::{simulate, MachineParams, Program, SimConfig, Topology};
use loom_mapping::{baseline, map_partitioning};
use loom_obs::Json;

fn main() {
    println!("A6 — latency-only vs contention-aware interconnect\n");
    let params = MachineParams::classic_1991();
    let w = loom_workloads::sor::workload(24, 24);
    let p = partition_workload(&w);
    let flops = w.nest.flops_per_iteration();
    let cube_dim = 3usize;
    let n = 1usize << cube_dim;

    let gray = map_partitioning(&p, cube_dim).expect("fits");
    let candidates: Vec<(&str, Vec<usize>)> = vec![
        ("gray", gray.assignment().to_vec()),
        ("random", baseline::random(p.num_blocks(), n, 1991)),
    ];
    let mut t = Table::new(["mapping", "contention", "makespan", "slowdown"]);
    let mut metrics_doc: Vec<(String, Json)> = Vec::new();
    for (name, assignment) in candidates {
        let prog = Program::from_partitioning(&p, &assignment, n, flops);
        let mut base = SimConfig {
            params,
            topology: Topology::Hypercube(cube_dim),
            words_per_arc: 1,
            batch_messages: false,
            link_contention: false,
            record_trace: false,
            collect_metrics: true,
        };
        let free_sim = simulate(&prog, &base).expect("sim");
        let free = free_sim.makespan;
        base.link_contention = true;
        let contended_sim = simulate(&prog, &base).expect("sim");
        let contended = contended_sim.makespan;
        assert!(contended >= free, "contention can only delay");
        metrics_doc.push((format!("{name}_free"), sim_json(&free_sim)));
        metrics_doc.push((format!("{name}_contended"), sim_json(&contended_sim)));
        t.row([
            name.to_string(),
            "off".to_string(),
            format!("{free}"),
            "1.00".to_string(),
        ]);
        t.row([
            name.to_string(),
            "on".to_string(),
            format!("{contended}"),
            format!("{:.2}", contended as f64 / free as f64),
        ]);
    }
    println!("{t}");
    maybe_write_metrics(
        "a6_contention",
        &Json::Obj(metrics_doc.into_iter().collect()),
    );
    println!(
        "expected shape: the gray mapping keeps per-link load near the chain minimum,\n\
         so contention barely moves it; scattered mappings concentrate traffic on few\n\
         links and pay more when links serialize."
    );
}
