//! Rule `LC002` — Lemma 1: no two iterations merged into one block may
//! share a time step.
//!
//! A block executes on one processor; if two of its iterations fall on
//! the same hyperplane, the block serializes work the schedule counted
//! as parallel and the makespan analysis of Theorem 1 collapses. Times
//! are compared with exact rational arithmetic (`Π` as a `QVec` dotted
//! with each point), not by sampling or floating point, so a violation
//! can neither be missed nor fabricated by rounding.

use crate::diag::{Diagnostic, RuleId, Span};
use loom_hyperplane::TimeFn;
use loom_loopir::Point;
use loom_rational::{QVec, Ratio};
use std::collections::BTreeMap;

/// Check that every block's iterations occupy pairwise-distinct steps.
///
/// `blocks` holds iteration-point ids (indices into `points`) per
/// block, in the shape [`loom_partition::Partitioning::blocks`]
/// produces — taking the raw slices lets tests hand in deliberately
/// merged blocks without rebuilding a `Partitioning`.
pub fn check_lemma1(pi: &TimeFn, points: &[Point], blocks: &[Vec<usize>]) -> Vec<Diagnostic> {
    let piq = pi.as_qvec();
    let mut out = Vec::new();
    for (b, block) in blocks.iter().enumerate() {
        let mut first_at: BTreeMap<Ratio, usize> = BTreeMap::new();
        for &id in block {
            let point = &points[id];
            if point.len() != pi.dim() {
                // LC001 reports dimension mismatches; a time is
                // undefined here, so skip rather than double-report.
                continue;
            }
            let t = QVec::from_ints(point).dot(&piq);
            match first_at.get(&t) {
                Some(&first) => out.push(Diagnostic::error(
                    RuleId::BlockSharedStep,
                    Span::PointPair {
                        a: points[first].clone(),
                        b: point.clone(),
                    },
                    format!(
                        "both iterations of block B{b} execute at step {t}; \
                         Lemma 1 requires distinct steps within a block"
                    ),
                )),
                None => {
                    first_at.insert(t, id);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                pts.push(vec![i, j]);
            }
        }
        pts
    }

    #[test]
    fn diagonal_block_is_clean() {
        // Points along i−j = 0 all have distinct i+j.
        let pts = grid4();
        let block: Vec<usize> = (0..4).map(|k| k * 4 + k).collect();
        assert!(check_lemma1(&TimeFn::new(vec![1, 1]), &pts, &[block]).is_empty());
    }

    #[test]
    fn antidiagonal_block_violates() {
        // Points along i+j = 3 all share step 3 under Π = (1,1).
        let pts = grid4();
        let block: Vec<usize> = (0..4).map(|k| k * 4 + (3 - k)).collect();
        let ds = check_lemma1(&TimeFn::new(vec![1, 1]), &pts, &[block]);
        // 4 points on one hyperplane → 3 duplicates of the first.
        assert_eq!(ds.len(), 3);
        assert!(ds.iter().all(|d| d.rule == RuleId::BlockSharedStep));
    }

    #[test]
    fn merged_legit_blocks_detected() {
        // The i−j = 0 diagonal occupies even steps 0,2,4,6; merging in
        // the i−j = −2 diagonal (steps 2,4) collides at steps 2 and 4.
        let pts = grid4();
        let mut block: Vec<usize> = (0..4).map(|k| k * 4 + k).collect();
        block.extend((0..2).map(|k| k * 4 + k + 2));
        let ds = check_lemma1(&TimeFn::new(vec![1, 1]), &pts, &[block]);
        assert_eq!(ds.len(), 2);
    }
}
