//! The CLI's typed error: every user-reachable failure funnels through
//! [`CliError`] instead of scattered `unwrap_or_else(... exit)` sites,
//! so exit codes are stable and the untrusted-input paths are
//! panic-free by construction.
//!
//! Exit-code contract (documented in `docs/FRONTEND.md`):
//!
//! | exit | variant | meaning |
//! |---|---|---|
//! | 0 | — | success |
//! | 1 | [`CliError::Failed`], [`CliError::Diagnostics`] | the artifact is wrong: diagnostics remain or a pipeline stage failed |
//! | 2 | [`CliError::Usage`] | bad flags, unreadable files, malformed numeric arguments |

/// A fatal CLI error, carried up to `main` for rendering and exit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// The invocation is wrong: unknown flag values, malformed numeric
    /// arguments, unreadable input files. Exit 2.
    Usage(String),
    /// The invocation is fine but the work failed: an illegal Π, a
    /// pipeline stage error, an unwritable output file. Exit 1.
    Failed(String),
    /// Error-severity diagnostics were already rendered through a
    /// `loom_check::Report` (human/JSON/SARIF on stdout); nothing more
    /// to print. Exit 1.
    Diagnostics,
}

impl CliError {
    /// Shorthand for a [`CliError::Usage`].
    pub fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }

    /// Shorthand for a [`CliError::Failed`].
    pub fn failed(msg: impl Into<String>) -> CliError {
        CliError::Failed(msg.into())
    }

    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Failed(_) | CliError::Diagnostics => 1,
        }
    }

    /// Print the error to stderr (no-op for already-rendered
    /// diagnostics).
    pub fn render(&self) {
        match self {
            CliError::Usage(msg) | CliError::Failed(msg) => eprintln!("{msg}"),
            CliError::Diagnostics => {}
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Failed(msg) => write!(f, "{msg}"),
            CliError::Diagnostics => write!(f, "diagnostics reported"),
        }
    }
}

impl std::error::Error for CliError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(CliError::usage("bad flag").exit_code(), 2);
        assert_eq!(CliError::failed("stage died").exit_code(), 1);
        assert_eq!(CliError::Diagnostics.exit_code(), 1);
    }

    #[test]
    fn display_renders_message() {
        assert_eq!(
            CliError::usage("--size expects an integer").to_string(),
            "usage error: --size expects an integer"
        );
        assert_eq!(CliError::failed("boom").to_string(), "boom");
    }
}
