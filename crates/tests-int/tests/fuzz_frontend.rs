//! Deterministic fuzz harness for the resilient `.loom` front end —
//! zero external dependencies, seeded by [`loom_obs::SplitMix64`], so
//! every failure reproduces from the printed seed.
//!
//! Two generators share one property check:
//!
//! * **mutational** — corpus entries (`samples/*.loom` and
//!   `samples/corrupt/*.loom`) damaged by byte flips, insertions,
//!   deletions, cross-file splices, truncations, and line shuffles
//!   (mutations work on raw bytes; lossy UTF-8 decoding then exercises
//!   the lexer's multi-byte handling);
//! * **grammar-random** — nests assembled from grammar fragments with
//!   deliberate mistakes mixed in (bad keywords, unbalanced brackets,
//!   unknown indices, huge integers).
//!
//! For every input the parser must return normally (no panic), keep
//! the diagnostic list bounded by `max_diags + 1`, uphold the
//! "no diagnostics implies IR" invariant, stay deterministic, and —
//! when the input was valid — produce IR whose rendered source
//! re-parses to the identical nest.
//!
//! `LOOM_FUZZ_ITERS` overrides the total input count (default
//! 100 000); CI pins it explicitly so the smoke step is time-boxed.

use loom_loopir::parse::to_source;
use loom_loopir::{parse_nest_recovering, parse_nest_with_limits, FrontLimits, ParseOutcome};
use loom_obs::SplitMix64;

fn corpus() -> Vec<Vec<u8>> {
    let root = format!("{}/../../samples", env!("CARGO_MANIFEST_DIR"));
    let mut out = Vec::new();
    for dir in [root.clone(), format!("{root}/corrupt")] {
        let mut paths: Vec<_> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("{dir}: {e}"))
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "loom"))
            .collect();
        paths.sort(); // read_dir order is not deterministic; the fuzzer must be
        for p in paths {
            out.push(std::fs::read(&p).unwrap());
        }
    }
    assert!(out.len() >= 10, "corpus unexpectedly small: {}", out.len());
    out
}

fn total_iters() -> usize {
    std::env::var("LOOM_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

/// One mutation step over raw bytes.
fn mutate(rng: &mut SplitMix64, bytes: &mut Vec<u8>, corpus: &[Vec<u8>]) {
    match rng.below(6) {
        // flip one byte
        0 if !bytes.is_empty() => {
            let i = rng.below(bytes.len() as u64) as usize;
            bytes[i] ^= rng.below(255) as u8 + 1;
        }
        // insert a random byte (biased toward grammar characters)
        1 => {
            let i = rng.below(bytes.len() as u64 + 1) as usize;
            let grammar = b"[],;=+-*() \nfortostep0123456789";
            let b = if rng.below(2) == 0 {
                grammar[rng.below(grammar.len() as u64) as usize]
            } else {
                rng.below(256) as u8
            };
            bytes.insert(i, b);
        }
        // delete a short range
        2 if !bytes.is_empty() => {
            let start = rng.below(bytes.len() as u64) as usize;
            let len = (rng.below(8) as usize + 1).min(bytes.len() - start);
            bytes.drain(start..start + len);
        }
        // splice a window from another corpus entry
        3 => {
            let donor = &corpus[rng.below(corpus.len() as u64) as usize];
            if !donor.is_empty() {
                let ds = rng.below(donor.len() as u64) as usize;
                let dl = (rng.below(32) as usize + 1).min(donor.len() - ds);
                let at = rng.below(bytes.len() as u64 + 1) as usize;
                let window: Vec<u8> = donor[ds..ds + dl].to_vec();
                bytes.splice(at..at, window);
            }
        }
        // truncate
        4 if !bytes.is_empty() => {
            bytes.truncate(rng.below(bytes.len() as u64) as usize);
        }
        // duplicate a line
        _ => {
            let lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
            if !lines.is_empty() {
                let line = lines[rng.below(lines.len() as u64) as usize].to_vec();
                bytes.push(b'\n');
                bytes.extend_from_slice(&line);
            }
        }
    }
}

/// A random (often-invalid) nest straight from grammar fragments.
fn grammar_random(rng: &mut SplitMix64) -> String {
    let idents = ["i", "j", "k", "n", "q", "zz"];
    let mut s = String::new();
    let dims = rng.below(4) as usize + 1;
    for d in 0..dims {
        let id = idents[(d + rng.below(2) as usize) % idents.len()];
        match rng.below(8) {
            0 => s.push_str(&format!("for {id} = {} 7\n", rng.range_i64(-3, 3))),
            1 => s.push_str(&format!("for {id} = 0 to\n")),
            2 => s.push_str(&format!(
                "for {id} = 0 to 99999999999999999999 step {}\n",
                rng.range_i64(-1, 2)
            )),
            _ => s.push_str(&format!(
                "for {id} = {} to {}{}\n",
                rng.range_i64(-4, 4),
                rng.range_i64(0, 9),
                if rng.below(4) == 0 {
                    format!(" step {}", rng.range_i64(0, 3))
                } else {
                    String::new()
                }
            )),
        }
    }
    let stmts = rng.below(3) as usize + 1;
    for _ in 0..stmts {
        let arr = ["A", "B", "C"][rng.below(3) as usize];
        let sub = idents[rng.below(idents.len() as u64) as usize];
        let open = if rng.below(10) == 0 { "" } else { "[" };
        let close = if rng.below(10) == 0 { "" } else { "]" };
        let semi = if rng.below(8) == 0 { "" } else { ";" };
        let rhs = match rng.below(4) {
            0 => format!("{arr}[{sub}] + 1"),
            1 => format!("{arr}[{sub} * {sub}] * 2"),
            2 => format!("({arr}[{sub} - 1] + {arr}[{sub} + 1]) * 3"),
            _ => format!("{arr}[{sub}]"),
        };
        s.push_str(&format!("  {arr}{open}{sub}{close} = {rhs}{semi}\n"));
    }
    s
}

/// The property every fuzz input must satisfy. Returning at all is the
/// no-panic half; the rest checks the front end's documented contract.
fn check_outcome(input: &str, out: &ParseOutcome, limits: &FrontLimits) {
    assert!(
        out.diags.len() <= limits.max_diags + 1,
        "diagnostic flood ({}) on input:\n{input}",
        out.diags.len()
    );
    if out.diags.is_empty() {
        assert!(out.nest.is_some(), "no diags but no IR on input:\n{input}");
    }
    for d in &out.diags {
        assert!(d.start <= d.end && d.end <= input.len(), "bad span {d}");
    }
}

/// Valid inputs additionally round-trip: render the IR back to source
/// and re-parse; the nests must be identical.
fn check_roundtrip(input: &str, out: &ParseOutcome) {
    if !out.diags.is_empty() {
        return;
    }
    let nest = out.nest.as_ref().unwrap();
    let Some(src) = to_source(nest) else { return };
    let again = parse_nest_recovering(nest.name(), &src);
    assert_eq!(
        again.diags,
        vec![],
        "rendered source re-parse failed:\n{src}"
    );
    assert_eq!(
        format!("{:#?}", again.nest.unwrap()),
        format!("{nest:#?}"),
        "round-trip drifted for input:\n{input}"
    );
}

#[test]
fn fuzz_mutational_and_grammar_random() {
    let corpus = corpus();
    let total = total_iters();
    let mutational = total * 3 / 5;
    let mut rng = SplitMix64::new(0x100D_5EED);
    let limits = FrontLimits::default();
    for iter in 0..total {
        let input = if iter < mutational {
            let mut bytes = corpus[rng.below(corpus.len() as u64) as usize].clone();
            for _ in 0..rng.below(4) + 1 {
                mutate(&mut rng, &mut bytes, &corpus);
            }
            bytes.truncate(4096); // keep the per-input cost bounded
            String::from_utf8_lossy(&bytes).into_owned()
        } else {
            grammar_random(&mut rng)
        };
        let out = parse_nest_recovering("fuzz", &input);
        check_outcome(&input, &out, &limits);
        if iter % 512 == 0 {
            // determinism spot check: same bytes, same outcome
            let again = parse_nest_recovering("fuzz", &input);
            assert_eq!(out.diags, again.diags, "nondeterministic on:\n{input}");
        }
        if iter % 64 == 0 {
            check_roundtrip(&input, &out);
        }
    }
}

/// The same harness under deliberately tiny limits: every cap must be
/// reported as LP008, never tripped as a crash or a hang.
#[test]
fn fuzz_with_tight_resource_limits() {
    let corpus = corpus();
    let total = (total_iters() / 20).max(500);
    let mut rng = SplitMix64::new(0xCAB5_1234);
    let limits = FrontLimits {
        max_input_bytes: 256,
        max_tokens: 64,
        max_depth: 4,
        max_dims: 2,
        max_diags: 5,
    };
    for _ in 0..total {
        let mut bytes = corpus[rng.below(corpus.len() as u64) as usize].clone();
        for _ in 0..rng.below(4) + 1 {
            mutate(&mut rng, &mut bytes, &corpus);
        }
        let input = String::from_utf8_lossy(&bytes).into_owned();
        let out = parse_nest_with_limits("tight", &input, &limits);
        check_outcome(&input, &out, &limits);
    }
}
