//! Interconnection topologies for the simulated machine.

/// The machine's interconnect. Routing distance feeds the
/// store-and-forward message-cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Binary n-cube with `2ⁿ` nodes.
    Hypercube(usize),
    /// 2-D mesh, nodes numbered row-major.
    Mesh {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Bidirectional ring of `n` nodes.
    Ring(usize),
    /// Fully connected: every pair one hop apart.
    Complete(usize),
}

impl Topology {
    /// Number of processors.
    pub fn len(&self) -> usize {
        match *self {
            Topology::Hypercube(d) => 1 << d,
            Topology::Mesh { rows, cols } => rows * cols,
            Topology::Ring(n) | Topology::Complete(n) => n,
        }
    }

    /// `true` iff the machine has no processors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Routing distance in hops between two processors.
    ///
    /// Panics if either node is out of range.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let n = self.len();
        assert!(a < n && b < n, "node out of range");
        match *self {
            Topology::Hypercube(_) => (a ^ b).count_ones() as usize,
            Topology::Mesh { cols, .. } => {
                let (ar, ac) = (a / cols, a % cols);
                let (br, bc) = (b / cols, b % cols);
                ar.abs_diff(br) + ac.abs_diff(bc)
            }
            Topology::Ring(len) => {
                let d = a.abs_diff(b);
                d.min(len - d)
            }
            Topology::Complete(_) => usize::from(a != b),
        }
    }

    /// The deterministic shortest route from `a` to `b`, including both
    /// endpoints: e-cube for hypercubes, X-then-Y for meshes, the
    /// shorter arc (ties toward increasing node numbers) for rings, and
    /// the direct link for complete graphs.
    pub fn route(&self, a: usize, b: usize) -> Vec<usize> {
        let n = self.len();
        assert!(a < n && b < n, "node out of range");
        let mut path = vec![a];
        match *self {
            Topology::Hypercube(d) => {
                let mut cur = a;
                for k in 0..d {
                    let bit = 1 << k;
                    if (cur ^ b) & bit != 0 {
                        cur ^= bit;
                        path.push(cur);
                    }
                }
            }
            Topology::Mesh { cols, .. } => {
                let (mut r, mut c) = (a / cols, a % cols);
                let (br, bc) = (b / cols, b % cols);
                while c != bc {
                    c = if c < bc { c + 1 } else { c - 1 };
                    path.push(r * cols + c);
                }
                while r != br {
                    r = if r < br { r + 1 } else { r - 1 };
                    path.push(r * cols + c);
                }
            }
            Topology::Ring(len) => {
                let fwd = (b + len - a) % len;
                let step = if fwd <= len - fwd { 1 } else { len - 1 };
                let mut cur = a;
                while cur != b {
                    cur = (cur + step) % len;
                    path.push(cur);
                }
            }
            Topology::Complete(_) => {
                if a != b {
                    path.push(b);
                }
            }
        }
        path
    }

    /// The directed links of [`Topology::route`].
    pub fn route_links(&self, a: usize, b: usize) -> Vec<(usize, usize)> {
        let path = self.route(a, b);
        path.windows(2).map(|w| (w[0], w[1])).collect()
    }

    /// The shortest route from `a` to `b` that avoids every directed
    /// link for which `down` returns `true`, as the directed links of
    /// the path. Breadth-first over the live interconnect, expanding
    /// neighbors in [`Topology::neighbors`] order so the result is
    /// deterministic. Returns `None` when the live links no longer
    /// connect `a` to `b` (the fault layer turns that into
    /// [`SimError::Unroutable`](crate::sim::SimError::Unroutable)), and
    /// `Some(vec![])` when `a == b`.
    pub fn route_links_avoiding<F>(
        &self,
        a: usize,
        b: usize,
        down: F,
    ) -> Option<Vec<(usize, usize)>>
    where
        F: Fn(usize, usize) -> bool,
    {
        let n = self.len();
        assert!(a < n && b < n, "node out of range");
        if a == b {
            return Some(Vec::new());
        }
        // BFS from `a`; parent pointers reconstruct the path.
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[a] = true;
        let mut frontier = std::collections::VecDeque::from([a]);
        while let Some(cur) = frontier.pop_front() {
            for next in self.neighbors(cur) {
                if seen[next] || down(cur, next) {
                    continue;
                }
                seen[next] = true;
                parent[next] = Some(cur);
                if next == b {
                    let mut path = vec![b];
                    let mut node = b;
                    while let Some(p) = parent[node] {
                        path.push(p);
                        node = p;
                    }
                    path.reverse();
                    return Some(path.windows(2).map(|w| (w[0], w[1])).collect());
                }
                frontier.push_back(next);
            }
        }
        None
    }

    /// Neighbors of a node (the nodes one hop away).
    pub fn neighbors(&self, p: usize) -> Vec<usize> {
        let n = self.len();
        assert!(p < n, "node out of range");
        match *self {
            Topology::Hypercube(d) => (0..d).map(|k| p ^ (1 << k)).collect(),
            Topology::Mesh { rows, cols } => {
                let (r, c) = (p / cols, p % cols);
                let mut out = Vec::new();
                if c > 0 {
                    out.push(p - 1);
                }
                if c + 1 < cols {
                    out.push(p + 1);
                }
                if r > 0 {
                    out.push(p - cols);
                }
                if r + 1 < rows {
                    out.push(p + cols);
                }
                out
            }
            Topology::Ring(len) => {
                if len <= 1 {
                    Vec::new()
                } else if len == 2 {
                    vec![1 - p]
                } else {
                    vec![(p + len - 1) % len, (p + 1) % len]
                }
            }
            Topology::Complete(len) => (0..len).filter(|&q| q != p).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_distances() {
        let t = Topology::Hypercube(3);
        assert_eq!(t.len(), 8);
        assert_eq!(t.distance(0b000, 0b111), 3);
        assert_eq!(t.distance(0b101, 0b101), 0);
    }

    #[test]
    fn mesh_distances() {
        let t = Topology::Mesh { rows: 3, cols: 4 };
        assert_eq!(t.len(), 12);
        assert_eq!(t.distance(0, 11), 2 + 3);
        assert_eq!(t.distance(5, 6), 1);
    }

    #[test]
    fn ring_wraps() {
        let t = Topology::Ring(8);
        assert_eq!(t.distance(0, 7), 1);
        assert_eq!(t.distance(0, 4), 4);
        assert_eq!(t.distance(2, 6), 4);
    }

    #[test]
    fn complete_is_one_hop() {
        let t = Topology::Complete(5);
        assert_eq!(t.distance(0, 4), 1);
        assert_eq!(t.distance(3, 3), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Topology::Ring(4).distance(0, 4);
    }

    #[test]
    fn routes_are_shortest_and_step_by_neighbors() {
        let topos = [
            Topology::Hypercube(3),
            Topology::Mesh { rows: 3, cols: 4 },
            Topology::Ring(7),
            Topology::Complete(5),
        ];
        for t in topos {
            for a in 0..t.len() {
                for b in 0..t.len() {
                    let path = t.route(a, b);
                    assert_eq!(path.len() - 1, t.distance(a, b), "{t:?} {a}->{b}");
                    assert_eq!(path[0], a);
                    assert_eq!(*path.last().unwrap(), b);
                    for w in path.windows(2) {
                        assert!(
                            t.neighbors(w[0]).contains(&w[1]),
                            "{t:?}: {} not adjacent to {}",
                            w[0],
                            w[1]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ring_route_picks_short_arc() {
        let t = Topology::Ring(8);
        assert_eq!(t.route(0, 6), vec![0, 7, 6]);
        assert_eq!(t.route(6, 0), vec![6, 7, 0]);
    }

    #[test]
    fn mesh_route_is_x_then_y() {
        let t = Topology::Mesh { rows: 3, cols: 3 };
        // 0=(0,0) → 8=(2,2): X first then Y.
        assert_eq!(t.route(0, 8), vec![0, 1, 2, 5, 8]);
    }

    #[test]
    fn route_avoiding_matches_distance_when_all_links_live() {
        let topos = [
            Topology::Hypercube(3),
            Topology::Mesh { rows: 3, cols: 4 },
            Topology::Ring(7),
            Topology::Complete(5),
        ];
        for t in topos {
            for a in 0..t.len() {
                for b in 0..t.len() {
                    let links = t.route_links_avoiding(a, b, |_, _| false).unwrap();
                    assert_eq!(links.len(), t.distance(a, b), "{t:?} {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn route_avoiding_detours_around_dead_links() {
        let t = Topology::Hypercube(2);
        // Kill 0→1 in both directions: 0→1 must detour via 2 (or 3).
        let dead = |x: usize, y: usize| (x, y) == (0, 1) || (x, y) == (1, 0);
        let links = t.route_links_avoiding(0, 1, dead).unwrap();
        assert_eq!(links.len(), 3, "detour is three hops: {links:?}");
        assert!(links.iter().all(|&(x, y)| !dead(x, y)));
        assert_eq!(links.first().unwrap().0, 0);
        assert_eq!(links.last().unwrap().1, 1);
    }

    #[test]
    fn route_avoiding_reports_disconnection() {
        let t = Topology::Ring(4);
        // Cutting both links incident to node 1 isolates it.
        let dead = |x: usize, y: usize| x == 1 || y == 1;
        assert_eq!(t.route_links_avoiding(0, 1, dead), None);
        // Self-routes are trivially empty even on a cut machine.
        assert_eq!(t.route_links_avoiding(2, 2, dead), Some(vec![]));
        // The rest of the ring is still connected.
        assert!(t.route_links_avoiding(0, 2, dead).is_some());
    }

    #[test]
    fn neighbor_counts() {
        assert_eq!(Topology::Mesh { rows: 3, cols: 3 }.neighbors(4).len(), 4);
        assert_eq!(Topology::Mesh { rows: 3, cols: 3 }.neighbors(0).len(), 2);
        assert_eq!(Topology::Ring(2).neighbors(0), vec![1]);
        assert_eq!(Topology::Ring(1).neighbors(0), Vec::<usize>::new());
        assert_eq!(Topology::Complete(4).neighbors(2), vec![0, 1, 3]);
    }
}
