//! Graphviz DOT export.

use loom_partition::comm::group_dependence_graph;
use loom_partition::{Partitioning, Tig};

/// DOT for a TIG. If `assignment` is given, vertices are clustered by
/// processor (subgraphs) so `dot -Tsvg` shows the placement.
pub fn tig_dot(tig: &Tig, assignment: Option<&[usize]>) -> String {
    let mut out = String::from("graph tig {\n  node [shape=circle];\n");
    match assignment {
        Some(procs) => {
            assert_eq!(procs.len(), tig.len(), "assignment/TIG size mismatch");
            let n_procs = procs.iter().copied().max().map_or(0, |m| m + 1);
            for p in 0..n_procs {
                out.push_str(&format!(
                    "  subgraph cluster_p{p} {{\n    label=\"P{p}\";\n"
                ));
                for (v, &proc) in procs.iter().enumerate() {
                    if proc == p {
                        out.push_str(&format!("    b{v} [label=\"B{v} ({})\"];\n", tig.weight(v)));
                    }
                }
                out.push_str("  }\n");
            }
        }
        None => {
            for v in 0..tig.len() {
                out.push_str(&format!("  b{v} [label=\"B{v} ({})\"];\n", tig.weight(v)));
            }
        }
    }
    for ((a, b), w) in tig.edges() {
        out.push_str(&format!("  b{a} -- b{b} [label=\"{w}\"];\n"));
    }
    out.push_str("}\n");
    out
}

/// DOT for the group-communication digraph (the paper's Fig. 7).
pub fn group_graph_dot(p: &Partitioning) -> String {
    let graph = group_dependence_graph(p);
    let mut out = String::from("digraph groups {\n  node [shape=box];\n");
    for (g, group) in p.grouping().groups.iter().enumerate() {
        out.push_str(&format!(
            "  g{g} [label=\"G{g}\\n{} pts\"];\n",
            group.members.len()
        ));
    }
    for (g, targets) in graph.iter().enumerate() {
        for t in targets {
            out.push_str(&format!("  g{g} -> g{t};\n"));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_hyperplane::TimeFn;
    use loom_partition::{partition, PartitionConfig};

    #[test]
    fn tig_dot_structure() {
        let tig = Tig::mesh(2, 2);
        let dot = tig_dot(&tig, None);
        assert!(dot.starts_with("graph tig {"));
        assert!(dot.contains("b0 -- b1"));
        assert!(dot.contains("b0 [label=\"B0 (1)\"]"));
        assert_eq!(dot.matches(" -- ").count(), 4);
    }

    #[test]
    fn tig_dot_with_clusters() {
        let tig = Tig::mesh(2, 2);
        let dot = tig_dot(&tig, Some(&[0, 0, 1, 1]));
        assert!(dot.contains("subgraph cluster_p0"));
        assert!(dot.contains("subgraph cluster_p1"));
        assert!(dot.contains("label=\"P1\""));
    }

    #[test]
    fn group_graph_dot_matmul() {
        let w = loom_workloads::matmul::workload(4);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let dot = group_graph_dot(&p);
        assert!(dot.starts_with("digraph groups {"));
        assert_eq!(dot.matches("\\n").count(), p.num_blocks());
        assert!(dot.contains(" -> "));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn tig_dot_bad_assignment_panics() {
        tig_dot(&Tig::mesh(2, 2), Some(&[0]));
    }
}
