//! Numerical verification: prove the partitioned + mapped + simulated
//! execution computes exactly what the sequential loop computes.
//!
//! ```text
//! cargo run --example verify_numerics
//! ```

use loom_core::pipeline::MachineOptions;
use loom_core::report::Table;
use loom_core::{Pipeline, PipelineConfig};
use loom_exec::memory::address_hash_init;
use loom_exec::{equivalent, execute_in_order, sequential, trace_order};
use loom_loopir::Point;

fn main() {
    println!("For each workload: run the full pipeline with an execution trace,");
    println!("replay the trace order numerically, and compare against the");
    println!("sequential oracle element by element (exact f64 equality).\n");

    let mut t = Table::new(["workload", "points", "procs", "elements written", "verdict"]);
    for w in loom_workloads::all_default() {
        let out = Pipeline::new(w.nest.clone())
            .run(&PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim: 1,
                machine: Some(MachineOptions {
                    record_trace: true,
                    ..Default::default()
                }),
                ..Default::default()
            })
            .expect("pipeline runs");
        let trace = out.sim.unwrap().trace.unwrap();
        let points: Vec<Point> = w.nest.space().points().collect();
        let parallel = execute_in_order(
            &w.nest,
            &points,
            &trace_order(&trace),
            &out.deps,
            &address_hash_init,
        )
        .expect("trace order respects dependences");
        let serial = sequential(&w.nest, &address_hash_init);
        let verdict = match equivalent(&parallel, &serial) {
            Ok(()) => "bit-identical".to_string(),
            Err(d) => format!("DIVERGED: {d:?}"),
        };
        t.row([
            w.nest.name().to_string(),
            format!("{}", points.len()),
            "2".to_string(),
            format!("{}", serial.len()),
            verdict,
        ]);
    }
    println!("{t}");
}
