//! A5 — grain-size sweep and crossover: §IV's closing claim that "the
//! ratio of communication time to computation time declines rapidly as
//! the grain size grows; our method is suitable for medium- to
//! coarse-grain computation."

use loom_core::analytic::{
    matvec_crossover_m, matvec_efficiency, matvec_exec_terms, matvec_speedup,
};
use loom_core::report::Table;
use loom_machine::MachineParams;

fn main() {
    println!("A5 — grain size vs speedup (analytic model, N = 16)\n");
    let machines = [
        ("low-latency", MachineParams::low_latency()),
        ("classic-1991", MachineParams::classic_1991()),
        ("high-latency", MachineParams::high_latency()),
    ];

    let mut t = Table::new(["machine", "M", "comm/comp ratio", "speedup", "efficiency"]);
    for (name, p) in &machines {
        for m in [16u64, 64, 256, 1024, 4096] {
            let terms = matvec_exec_terms(m, 16);
            let comp = (terms.calc_coeff * p.t_calc) as f64;
            let comm = (terms.comm_coeff * (p.t_start + p.t_comm)) as f64;
            t.row([
                name.to_string(),
                format!("{m}"),
                format!("{:.3}", comm / comp),
                format!("{:.2}", matvec_speedup(m, 16, p)),
                format!("{:.2}", matvec_efficiency(m, 16, p)),
            ]);
        }
    }
    println!("{t}");

    println!("crossover problem size M* (parallel first beats serial):\n");
    let mut t = Table::new(["machine", "N=2", "N=4", "N=16", "N=64"]);
    for (name, p) in &machines {
        let row: Vec<String> = [2u64, 4, 16, 64]
            .iter()
            .map(|&n| {
                matvec_crossover_m(n, p, 1 << 22)
                    .map(|m| m.to_string())
                    .unwrap_or_else(|| ">2^22".to_string())
            })
            .collect();
        t.row([
            name.to_string(),
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
            row[3].clone(),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: the comm/comp ratio falls ~1/M; speedup approaches N as M\n\
         grows; the crossover M* grows with message latency."
    );
    // Sanity: ratio strictly decreasing in M on the classic machine.
    let p = MachineParams::classic_1991();
    let ratio = |m: u64| {
        let t = matvec_exec_terms(m, 16);
        (t.comm_coeff * (p.t_start + p.t_comm)) as f64 / (t.calc_coeff * p.t_calc) as f64
    };
    assert!(ratio(64) > ratio(256) && ratio(256) > ratio(1024));
}
