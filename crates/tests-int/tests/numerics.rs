//! Numerical end-to-end verification: the partitioned, mapped, and
//! simulated execution order must compute bit-identical results to the
//! sequential source loop — for every workload, machine size, and
//! mapping strategy.

use loom_core::pipeline::MachineOptions;
use loom_core::{Pipeline, PipelineConfig};
use loom_exec::memory::address_hash_init;
use loom_exec::{equivalent, execute_in_order, schedule_order, sequential, trace_order};
use loom_hyperplane::{Schedule, TimeFn};
use loom_loopir::Point;
use loom_machine::MachineParams;

#[test]
fn simulated_trace_order_reproduces_sequential_results_all_workloads() {
    for w in loom_workloads::all_default() {
        let out = Pipeline::new(w.nest.clone())
            .run(&PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim: 1,
                machine: Some(MachineOptions {
                    params: MachineParams::classic_1991(),
                    record_trace: true,
                    ..Default::default()
                }),
                ..Default::default()
            })
            .expect("pipeline runs");
        let trace = out.sim.unwrap().trace.unwrap();
        let order = trace_order(&trace);
        let points: Vec<Point> = w.nest.space().points().collect();
        let parallel = execute_in_order(&w.nest, &points, &order, &out.deps, &address_hash_init)
            .unwrap_or_else(|e| panic!("{}: bad order {e:?}", w.nest.name()));
        let serial = sequential(&w.nest, &address_hash_init);
        assert_eq!(
            equivalent(&parallel, &serial),
            Ok(()),
            "{} diverged",
            w.nest.name()
        );
    }
}

#[test]
fn hyperplane_schedule_order_reproduces_sequential_results() {
    for w in loom_workloads::all_default() {
        let sched = Schedule::build(TimeFn::new(w.pi.clone()), w.nest.space());
        let points: Vec<Point> = w.nest.space().points().collect();
        let order = schedule_order(&points, &sched);
        let deps = w.verified_deps();
        let parallel = execute_in_order(&w.nest, &points, &order, &deps, &address_hash_init)
            .unwrap_or_else(|e| panic!("{}: bad order {e:?}", w.nest.name()));
        let serial = sequential(&w.nest, &address_hash_init);
        assert_eq!(equivalent(&parallel, &serial), Ok(()), "{}", w.nest.name());
    }
}

#[test]
fn matvec_values_are_the_real_product() {
    // Beyond self-consistency: the simulated matvec computes the actual
    // matrix-vector product of the init data.
    let m = 8i64;
    let w = loom_workloads::matvec::workload(m);
    let init = |a: &str, e: &[i64]| match a {
        "y" => 0.0,
        _ => address_hash_init(a, e),
    };
    let out = Pipeline::new(w.nest.clone())
        .run(&PipelineConfig {
            time_fn: Some(w.pi.clone()),
            cube_dim: 2,
            machine: Some(MachineOptions {
                record_trace: true,
                ..Default::default()
            }),
            ..Default::default()
        })
        .unwrap();
    let trace = out.sim.unwrap().trace.unwrap();
    let points: Vec<Point> = w.nest.space().points().collect();
    let mem = execute_in_order(&w.nest, &points, &trace_order(&trace), &out.deps, &init).unwrap();
    for i in 0..m {
        let expected: f64 = (0..m)
            .map(|j| address_hash_init("A", &[i, j]) * address_hash_init("x", &[j]))
            .sum();
        assert_eq!(mem.get("y", &[i]), Some(expected), "y[{i}]");
    }
}

#[test]
fn every_mapping_strategy_is_numerically_safe() {
    // Even a terrible mapping only changes *when* tasks run, never what
    // they compute — as long as the simulator honors dependences.
    use loom_machine::{simulate, Program, SimConfig};
    use loom_mapping::baseline;

    let w = loom_workloads::sor::workload(8, 8);
    let out = Pipeline::new(w.nest.clone())
        .run(&PipelineConfig {
            time_fn: Some(w.pi.clone()),
            cube_dim: 2,
            machine: None,
            ..Default::default()
        })
        .unwrap();
    let p = &out.partitioning;
    let serial = sequential(&w.nest, &address_hash_init);
    let points: Vec<Point> = w.nest.space().points().collect();
    for seed in 0..4u64 {
        let assignment = baseline::random(p.num_blocks(), 4, seed);
        let prog = Program::from_partitioning(p, &assignment, 4, 4);
        let mut cfg = SimConfig::paper_hypercube(2, MachineParams::classic_1991());
        cfg.record_trace = true;
        let sim = simulate(&prog, &cfg).unwrap();
        let order = trace_order(&sim.trace.unwrap());
        let mem =
            execute_in_order(&w.nest, &points, &order, &out.deps, &address_hash_init).unwrap();
        assert_eq!(equivalent(&mem, &serial), Ok(()), "seed {seed}");
    }
}
