//! Degenerate reference partitions: everything-in-one-block and
//! one-point-per-block.

use crate::BaselineResult;
use loom_partition::ComputationalStructure;

/// The whole iteration space as a single block: zero communication,
/// zero parallelism. The lower bound every method must beat.
pub fn one_block(cs: &ComputationalStructure) -> BaselineResult {
    BaselineResult {
        method: "one-block",
        blocks: vec![(0..cs.len()).collect()],
        block_of: vec![0; cs.len()],
    }
}

/// Every iteration its own block: maximal parallelism, every dependence
/// arc becomes communication. The upper bound on traffic.
pub fn per_point(cs: &ComputationalStructure) -> BaselineResult {
    BaselineResult {
        method: "per-point",
        blocks: (0..cs.len()).map(|i| vec![i]).collect(),
        block_of: (0..cs.len()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_loopir::IterSpace;

    fn cs() -> ComputationalStructure {
        ComputationalStructure::new(
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![vec![0, 1], vec![1, 1], vec![1, 0]],
        )
        .unwrap()
    }

    #[test]
    fn one_block_has_no_communication() {
        let s = cs();
        let r = one_block(&s);
        assert!(r.is_sequential());
        assert_eq!(r.interblock_arcs(&s), 0);
    }

    #[test]
    fn per_point_pays_every_arc() {
        let s = cs();
        let r = per_point(&s);
        assert_eq!(r.num_blocks(), 16);
        // All 33 arcs of L1 cross blocks.
        assert_eq!(r.interblock_arcs(&s), 33);
    }
}
