//! Bench: discrete-event simulator throughput, and the message-batching
//! ablation.

use loom_hyperplane::TimeFn;
use loom_machine::{simulate, MachineParams, Program, SimConfig};
use loom_mapping::map_partitioning;
use loom_obs::bench::Bench;
use loom_partition::{partition, PartitionConfig};

fn matvec_program(m: i64, cube_dim: usize) -> Program {
    let w = loom_workloads::matvec::workload(m);
    let p = partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .unwrap();
    let mapping = map_partitioning(&p, cube_dim).unwrap();
    Program::from_partitioning(&p, mapping.assignment(), mapping.cube().len(), 2)
}

fn main() {
    let mut bench = Bench::from_env();
    for m in [32i64, 64] {
        let prog = matvec_program(m, 2);
        bench.run(&format!("simulator/matvec_tasks/{m}"), || {
            simulate(
                &prog,
                &SimConfig::paper_hypercube(2, MachineParams::classic_1991()),
            )
            .unwrap()
            .makespan
        });
    }
    let prog = matvec_program(48, 3);
    for batch in [false, true] {
        let mut cfg = SimConfig::paper_hypercube(3, MachineParams::classic_1991());
        cfg.batch_messages = batch;
        let name = if batch { "batched" } else { "unbatched" };
        bench.run(&format!("message_batching/{name}"), || {
            simulate(&prog, &cfg).unwrap().makespan
        });
    }
    print!("{}", bench.report());
}
