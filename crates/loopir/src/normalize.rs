//! Loop normalization: rewrite nests with arbitrary constant bounds and
//! non-unit strides into the form the paper (and the rest of this
//! library) assumes — every loop running `0, 1, 2, …`.
//!
//! The paper states its model "without loss of generality" assumes
//! `l_j ≤ u_j` and `k_j = 1`; this pass is the generality. A raw level
//! `for I = lo to hi step s` becomes `for I' = 0 to ⌊(hi−lo)/s⌋` with
//! `I = lo + s·I'`, and every affine subscript/bound is rewritten under
//! that substitution.

use crate::aff::Aff;
use crate::nest::{LoopNest, Stmt};
use crate::space::IterSpace;
use crate::Error;

/// One raw loop level `for I = lo to hi step step` with constant bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawLevel {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
    /// Stride (must be positive; decreasing loops should be reversed by
    /// the caller first).
    pub step: i64,
}

impl RawLevel {
    /// Number of iterations of this level (0 when empty).
    pub fn count(&self) -> i64 {
        if self.hi < self.lo {
            0
        } else {
            (self.hi - self.lo) / self.step + 1
        }
    }
}

/// Substitute `I_k = lo_k + step_k · I'_k` into an affine expression.
fn substitute(e: &Aff, levels: &[RawLevel]) -> Aff {
    let mut constant = e.constant_term();
    let mut coeffs = Vec::with_capacity(e.dim());
    for (k, lvl) in levels.iter().enumerate() {
        let c = e.coeff(k);
        constant += c * lvl.lo;
        coeffs.push(c * lvl.step);
    }
    Aff::new(coeffs, constant)
}

/// Normalize a rectangular strided nest: returns an equivalent nest over
/// the index set `0 ≤ I'_k < count_k` with all accesses rewritten.
///
/// Errors: [`Error::Empty`] for a zero-level nest or empty body, and
/// [`Error::ForwardBound`] is impossible here (bounds are constant);
/// a non-positive stride is a caller bug and panics.
pub fn normalize_rect(
    name: impl Into<String>,
    levels: &[RawLevel],
    stmts: Vec<Stmt>,
) -> Result<LoopNest, Error> {
    if levels.is_empty() {
        return Err(Error::Empty);
    }
    for lvl in levels {
        assert!(lvl.step > 0, "normalize_rect requires positive strides");
    }
    let sizes: Vec<i64> = levels.iter().map(RawLevel::count).collect();
    let space = IterSpace::rect(&sizes.iter().map(|&s| s.max(0)).collect::<Vec<_>>())?;
    let new_stmts: Vec<Stmt> = stmts
        .iter()
        .map(|st| {
            let rewrite = |acc: &crate::access::Access| {
                crate::access::Access::new(
                    acc.array(),
                    acc.subscripts()
                        .iter()
                        .map(|s| substitute(s, levels))
                        .collect(),
                )
            };
            let mut out = Stmt::assign(
                rewrite(st.write()),
                st.reads().iter().map(rewrite).collect(),
            )
            .with_flops(st.flops);
            out = out.with_expr(st.semantics());
            out
        })
        .collect();
    LoopNest::new(name, space, new_stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;

    #[test]
    fn raw_level_counts() {
        assert_eq!(
            RawLevel {
                lo: 0,
                hi: 9,
                step: 1
            }
            .count(),
            10
        );
        assert_eq!(
            RawLevel {
                lo: 1,
                hi: 9,
                step: 2
            }
            .count(),
            5
        );
        assert_eq!(
            RawLevel {
                lo: 5,
                hi: 4,
                step: 1
            }
            .count(),
            0
        );
        assert_eq!(
            RawLevel {
                lo: -3,
                hi: 3,
                step: 3
            }
            .count(),
            3
        );
    }

    #[test]
    fn unit_stride_offset_bounds() {
        // for i = 1 to M: y[i] = y[i-1] + x[i]  →  normalized deps (1).
        let levels = [RawLevel {
            lo: 1,
            hi: 8,
            step: 1,
        }];
        let nest = normalize_rect(
            "offset",
            &levels,
            vec![Stmt::assign(
                Access::simple("y", 1, &[(0, 0)]),
                vec![
                    Access::simple("y", 1, &[(0, -1)]),
                    Access::simple("x", 1, &[(0, 0)]),
                ],
            )],
        )
        .unwrap();
        assert_eq!(nest.space().count(), 8);
        // y[I] with I = 1 + I' → subscript I' + 1.
        assert_eq!(
            nest.stmts()[0].write().subscripts()[0],
            Aff::new(vec![1], 1)
        );
        assert_eq!(
            nest.stmts()[0].reads()[0].subscripts()[0],
            Aff::new(vec![1], 0)
        );
        let d = crate::deps::dependence_vectors(&nest, crate::DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![1]]);
    }

    #[test]
    fn stride_two_scales_dependences() {
        // for i = 0 to 14 step 2: A[i+2] = A[i] — raw distance 2 becomes
        // normalized distance 1.
        let levels = [RawLevel {
            lo: 0,
            hi: 14,
            step: 2,
        }];
        let nest = normalize_rect(
            "strided",
            &levels,
            vec![Stmt::assign(
                Access::simple("A", 1, &[(0, 2)]),
                vec![Access::simple("A", 1, &[(0, 0)])],
            )],
        )
        .unwrap();
        assert_eq!(nest.space().count(), 8);
        let d = crate::deps::dependence_vectors(&nest, crate::DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![1]]);
    }

    #[test]
    fn two_level_mixed() {
        // for i = 2 to 10 step 2, for j = 1 to 4:
        //   B[i, j] = B[i-2, j] + B[i, j-1]
        let levels = [
            RawLevel {
                lo: 2,
                hi: 10,
                step: 2,
            },
            RawLevel {
                lo: 1,
                hi: 4,
                step: 1,
            },
        ];
        let nest = normalize_rect(
            "mixed",
            &levels,
            vec![Stmt::assign(
                Access::simple("B", 2, &[(0, 0), (1, 0)]),
                vec![
                    Access::simple("B", 2, &[(0, -2), (1, 0)]),
                    Access::simple("B", 2, &[(0, 0), (1, -1)]),
                ],
            )],
        )
        .unwrap();
        assert_eq!(nest.space().count(), 5 * 4);
        let d = crate::deps::dependence_vectors(&nest, crate::DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![0, 1], vec![1, 0]]);
    }

    #[test]
    fn semantics_survive_normalization() {
        use crate::sem::Expr;
        let levels = [RawLevel {
            lo: 1,
            hi: 4,
            step: 1,
        }];
        let nest = normalize_rect(
            "sem",
            &levels,
            vec![Stmt::assign(
                Access::simple("A", 1, &[(0, 0)]),
                vec![Access::simple("A", 1, &[(0, -1)])],
            )
            .with_flops(7)
            .with_expr(Expr::add(Expr::Read(0), Expr::Const(3.0)))],
        )
        .unwrap();
        assert_eq!(nest.stmts()[0].flops, 7);
        assert_eq!(
            nest.stmts()[0].semantics(),
            Expr::add(Expr::Read(0), Expr::Const(3.0))
        );
    }

    #[test]
    fn empty_levels_rejected() {
        assert_eq!(normalize_rect("x", &[], vec![]).unwrap_err(), Error::Empty);
    }

    #[test]
    #[should_panic(expected = "positive strides")]
    fn bad_stride_panics() {
        let _ = normalize_rect(
            "x",
            &[RawLevel {
                lo: 0,
                hi: 4,
                step: 0,
            }],
            vec![Stmt::assign(Access::simple("A", 1, &[(0, 0)]), vec![])],
        );
    }
}
