//! The paper's Example 2: partitioning 4×4×4 matrix multiplication.
//!
//! Reproduces the walkthrough of §III: 37 projected points, group size
//! r = 3, rank β = 2, 17 groups with the paper's seed, and the group
//! communication graph of Fig. 7 (G₁₀ sends to 2m − β = 4 groups).
//!
//! ```text
//! cargo run --example matmul_partition
//! ```

use loom_core::report::Table;
use loom_hyperplane::TimeFn;
use loom_partition::comm::{comm_stats, group_dependence_graph};
use loom_partition::laws;
use loom_partition::{partition, PartitionConfig};
use loom_rational::QVec;

fn main() {
    let w = loom_workloads::matmul::workload(4);
    println!("{}", w.nest);
    println!("dependence matrix columns d_A, d_B, d_C: {:?}\n", w.deps);

    let p = partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig {
            // The paper chooses d_A as grouping vector and the seed
            // group G₁ based at (−1,−1,2).
            grouping_choice: Some(1), // deps sorted: (0,0,1)=d_C, (0,1,0)=d_A, (1,0,0)=d_B
            seed: Some(QVec::from_ints(&[-1, -1, 2])),
        },
    )
    .expect("matmul partitions");

    let qp = p.projected();
    println!("projection phase: {} projected points on Π·x = 0", qp.len());
    println!("projected dependence vectors:");
    for (i, d) in qp.deps().iter().enumerate() {
        println!("  D[{i}] = {:?} -> {d}", p.structure().deps()[i]);
    }
    let gv = p.vectors();
    println!(
        "\ngrouping phase: r = {}, beta = {}, grouping = D[{}], auxiliary = {:?}",
        gv.r,
        gv.beta,
        gv.grouping.unwrap(),
        gv.auxiliary
    );
    println!("-> {} groups (the paper's 17)\n", p.num_blocks());

    let mut t = Table::new(["group", "size", "base vertex", "sends to"]);
    let graph = group_dependence_graph(&p);
    for (g, group) in p.grouping().groups.iter().enumerate() {
        let sends: Vec<String> = graph[g].iter().map(|x| format!("G{x}")).collect();
        t.row([
            format!("G{g}"),
            format!("{}", group.members.len()),
            format!("{}", group.base),
            sends.join(" "),
        ]);
    }
    println!("{t}");

    let m = p.structure().deps().len();
    let max_out = graph.iter().map(|s| s.len()).max().unwrap();
    println!(
        "Theorem 2: max out-degree {} <= 2m - beta = {}",
        max_out,
        2 * m - gv.beta
    );
    let stats = comm_stats(&p);
    println!(
        "iteration-level arcs: {} total, {} interblock",
        stats.total_arcs, stats.interblock_arcs
    );
    let violations = laws::check_all(&p);
    println!(
        "law validators (Lemmas 1-3, Theorems 1-2): {}",
        if violations.is_empty() {
            "all hold".to_string()
        } else {
            format!("{violations:?}")
        }
    );
}
