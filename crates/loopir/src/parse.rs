//! A small text front-end: parse loop nests from source form.
//!
//! Grammar (whitespace-insensitive; `#` starts a line comment):
//!
//! ```text
//! nest  := loop+ stmt+
//! loop  := "for" ident "=" aff "to" aff [ "step" int ]
//! stmt  := ident "[" aff ("," aff)* "]" "=" expr ";"
//! expr  := term (("+"|"-") term)*
//! term  := factor ("*" factor)*
//! factor:= int | ident "[" aff ("," aff)* "]" | "(" expr ")"
//!        | "-" factor | ("max"|"min") "(" expr "," expr ")"
//! aff   := affine arithmetic over loop identifiers and integers
//! ```
//!
//! Example — the paper's loop (L1):
//!
//! ```text
//! for i = 0 to 3
//! for j = 0 to 3
//!   A[i+1, j+1] = A[i+1, j] + B[i, j];
//!   B[i+1, j]   = 2 * A[i, j] + 1;
//! ```
//!
//! Non-unit steps are supported for constant-bound loops and are
//! normalized away (see [`crate::normalize`]).

use crate::access::Access;
use crate::aff::Aff;
use crate::nest::{LoopNest, Stmt};
use crate::normalize::{normalize_rect, RawLevel};
use crate::sem::Expr;
use crate::space::IterSpace;

/// A parse failure with its byte offset in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(char),
}

struct Lexer {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            toks.push((start, Tok::Ident(src[start..i].to_string())));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: i64 = src[start..i].parse().map_err(|_| ParseError {
                at: start,
                message: "integer too large".into(),
            })?;
            toks.push((start, Tok::Int(n)));
        } else if "[](),;=+-*".contains(c) {
            toks.push((i, Tok::Sym(c)));
            i += 1;
        } else {
            return Err(ParseError {
                at: i,
                message: format!("unexpected character `{c}`"),
            });
        }
    }
    Ok(toks)
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|&(o, _)| o)
            .unwrap_or(usize::MAX)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ParseError> {
        let at = self.at();
        match self.next() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => Err(ParseError {
                at,
                message: format!("expected `{c}`, found {other:?}"),
            }),
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if self.peek() == Some(&Tok::Ident(word.to_string())) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

/// A linear combination being built: coefficients per loop ident + const.
#[derive(Clone, Debug)]
struct Lin {
    coeffs: Vec<i64>,
    constant: i64,
}

impl Lin {
    fn constant(n: usize, c: i64) -> Lin {
        Lin {
            coeffs: vec![0; n],
            constant: c,
        }
    }

    fn var(n: usize, k: usize) -> Lin {
        let mut coeffs = vec![0; n];
        coeffs[k] = 1;
        Lin {
            coeffs,
            constant: 0,
        }
    }

    fn add(mut self, o: &Lin, sign: i64) -> Lin {
        for (a, b) in self.coeffs.iter_mut().zip(&o.coeffs) {
            *a += sign * b;
        }
        self.constant += sign * o.constant;
        self
    }

    fn scale(mut self, k: i64) -> Lin {
        for a in &mut self.coeffs {
            *a *= k;
        }
        self.constant *= k;
        self
    }

    fn is_const(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    fn to_aff(&self) -> Aff {
        Aff::new(self.coeffs.clone(), self.constant)
    }
}

struct Parser {
    lx: Lexer,
    idents: Vec<String>,
    n: usize,
}

impl Parser {
    fn ident_index(&self, name: &str) -> Option<usize> {
        self.idents.iter().position(|i| i == name)
    }

    /// aff := affterm (('+'|'-') affterm)*
    fn parse_aff(&mut self) -> Result<Lin, ParseError> {
        let mut acc = self.parse_aff_term()?;
        loop {
            match self.lx.peek() {
                Some(Tok::Sym('+')) => {
                    self.lx.next();
                    let t = self.parse_aff_term()?;
                    acc = acc.add(&t, 1);
                }
                Some(Tok::Sym('-')) => {
                    self.lx.next();
                    let t = self.parse_aff_term()?;
                    acc = acc.add(&t, -1);
                }
                _ => return Ok(acc),
            }
        }
    }

    /// affterm := afffactor ('*' afffactor)* with at most one variable part
    fn parse_aff_term(&mut self) -> Result<Lin, ParseError> {
        let mut acc = self.parse_aff_factor()?;
        while self.lx.peek() == Some(&Tok::Sym('*')) {
            let at = self.lx.at();
            self.lx.next();
            let f = self.parse_aff_factor()?;
            acc = if acc.is_const() {
                f.scale(acc.constant)
            } else if f.is_const() {
                acc.scale(f.constant)
            } else {
                return Err(ParseError {
                    at,
                    message: "non-affine subscript: variable * variable".into(),
                });
            };
        }
        Ok(acc)
    }

    fn parse_aff_factor(&mut self) -> Result<Lin, ParseError> {
        let at = self.lx.at();
        match self.lx.next() {
            Some(Tok::Int(v)) => Ok(Lin::constant(self.n, v)),
            Some(Tok::Ident(name)) => match self.ident_index(&name) {
                Some(k) => Ok(Lin::var(self.n, k)),
                None => Err(ParseError {
                    at,
                    message: format!("unknown loop index `{name}`"),
                }),
            },
            Some(Tok::Sym('-')) => Ok(self.parse_aff_factor()?.scale(-1)),
            Some(Tok::Sym('(')) => {
                let inner = self.parse_aff()?;
                self.lx.expect_sym(')')?;
                Ok(inner)
            }
            other => Err(ParseError {
                at,
                message: format!("expected subscript expression, found {other:?}"),
            }),
        }
    }

    /// access := ident '[' aff (',' aff)* ']'
    fn parse_access(&mut self, array: String) -> Result<Access, ParseError> {
        self.lx.expect_sym('[')?;
        let mut subs = vec![self.parse_aff()?.to_aff()];
        while self.lx.peek() == Some(&Tok::Sym(',')) {
            self.lx.next();
            subs.push(self.parse_aff()?.to_aff());
        }
        self.lx.expect_sym(']')?;
        Ok(Access::new(array, subs))
    }

    /// expr := term (('+'|'-') term)*
    fn parse_expr(&mut self, reads: &mut Vec<Access>) -> Result<Expr, ParseError> {
        let mut acc = self.parse_term(reads)?;
        loop {
            match self.lx.peek() {
                Some(Tok::Sym('+')) => {
                    self.lx.next();
                    let t = self.parse_term(reads)?;
                    acc = Expr::add(acc, t);
                }
                Some(Tok::Sym('-')) => {
                    self.lx.next();
                    let t = self.parse_term(reads)?;
                    acc = Expr::sub(acc, t);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_term(&mut self, reads: &mut Vec<Access>) -> Result<Expr, ParseError> {
        let mut acc = self.parse_factor(reads)?;
        while self.lx.peek() == Some(&Tok::Sym('*')) {
            self.lx.next();
            let f = self.parse_factor(reads)?;
            acc = Expr::mul(acc, f);
        }
        Ok(acc)
    }

    fn parse_factor(&mut self, reads: &mut Vec<Access>) -> Result<Expr, ParseError> {
        let at = self.lx.at();
        match self.lx.next() {
            Some(Tok::Int(v)) => Ok(Expr::Const(v as f64)),
            Some(Tok::Sym('-')) => {
                let f = self.parse_factor(reads)?;
                Ok(Expr::sub(Expr::Const(0.0), f))
            }
            Some(Tok::Sym('(')) => {
                let inner = self.parse_expr(reads)?;
                self.lx.expect_sym(')')?;
                Ok(inner)
            }
            Some(Tok::Ident(name)) if name == "max" || name == "min" => {
                self.lx.expect_sym('(')?;
                let a = self.parse_expr(reads)?;
                self.lx.expect_sym(',')?;
                let b = self.parse_expr(reads)?;
                self.lx.expect_sym(')')?;
                Ok(if name == "max" {
                    Expr::max(a, b)
                } else {
                    Expr::min(a, b)
                })
            }
            Some(Tok::Ident(array)) => {
                if self.lx.peek() != Some(&Tok::Sym('[')) {
                    return Err(ParseError {
                        at,
                        message: format!("`{array}` must be subscripted (scalars not supported)"),
                    });
                }
                let acc = self.parse_access(array)?;
                let idx = reads.len();
                reads.push(acc);
                Ok(Expr::Read(idx))
            }
            other => Err(ParseError {
                at,
                message: format!("expected expression, found {other:?}"),
            }),
        }
    }

    /// stmt := access '=' expr ';'
    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let at = self.lx.at();
        let Some(Tok::Ident(array)) = self.lx.next() else {
            return Err(ParseError {
                at,
                message: "expected statement (array assignment)".into(),
            });
        };
        let write = self.parse_access(array)?;
        self.lx.expect_sym('=')?;
        let mut reads = Vec::new();
        let expr = self.parse_expr(&mut reads)?;
        self.lx.expect_sym(';')?;
        // flops ≈ number of arithmetic nodes in the expression.
        fn count_ops(e: &Expr) -> u64 {
            match e {
                Expr::Read(_) | Expr::Const(_) => 0,
                Expr::Add(a, b)
                | Expr::Sub(a, b)
                | Expr::Mul(a, b)
                | Expr::Max(a, b)
                | Expr::Min(a, b) => 1 + count_ops(a) + count_ops(b),
            }
        }
        let flops = count_ops(&expr).max(1);
        Ok(Stmt::assign(write, reads).with_flops(flops).with_expr(expr))
    }
}

/// Parse a nest from source text.
pub fn parse_nest(name: &str, src: &str) -> Result<LoopNest, ParseError> {
    let toks = lex(src)?;
    // Pre-scan: loop identifiers in order.
    let mut idents = Vec::new();
    for w in toks.windows(2) {
        if let (Tok::Ident(kw), Tok::Ident(id)) = (&w[0].1, &w[1].1) {
            if kw == "for" {
                idents.push(id.clone());
            }
        }
    }
    if idents.is_empty() {
        return Err(ParseError {
            at: 0,
            message: "no loops found".into(),
        });
    }
    let n = idents.len();
    let mut p = Parser {
        lx: Lexer { toks, pos: 0 },
        idents,
        n,
    };

    // Loop headers.
    struct Header {
        lo: Lin,
        hi: Lin,
        step: i64,
    }
    let mut headers: Vec<Header> = Vec::new();
    for level in 0..n {
        let at = p.lx.at();
        if !p.lx.eat_ident("for") {
            return Err(ParseError {
                at,
                message: "expected `for`".into(),
            });
        }
        let Some(Tok::Ident(id)) = p.lx.next() else {
            return Err(ParseError {
                at,
                message: "expected loop identifier".into(),
            });
        };
        debug_assert_eq!(id, p.idents[level]);
        p.lx.expect_sym('=')?;
        let lo = p.parse_aff()?;
        let at2 = p.lx.at();
        if !p.lx.eat_ident("to") {
            return Err(ParseError {
                at: at2,
                message: "expected `to`".into(),
            });
        }
        let hi = p.parse_aff()?;
        let step = if p.lx.eat_ident("step") {
            let at3 = p.lx.at();
            match p.lx.next() {
                Some(Tok::Int(s)) if s > 0 => s,
                _ => {
                    return Err(ParseError {
                        at: at3,
                        message: "step must be a positive integer".into(),
                    })
                }
            }
        } else {
            1
        };
        headers.push(Header { lo, hi, step });
    }

    // Statements.
    let mut stmts = Vec::new();
    while p.lx.peek().is_some() {
        stmts.push(p.parse_stmt()?);
    }
    if stmts.is_empty() {
        return Err(ParseError {
            at: usize::MAX,
            message: "no statements found".into(),
        });
    }

    // Materialize: unit strides with (possibly affine) bounds go straight
    // to an IterSpace; any non-unit stride requires constant bounds and
    // routes through normalization.
    if headers.iter().all(|h| h.step == 1) {
        let lo: Vec<Aff> = headers.iter().map(|h| h.lo.to_aff()).collect();
        let hi: Vec<Aff> = headers.iter().map(|h| h.hi.to_aff()).collect();
        let space = IterSpace::new(lo, hi).map_err(|e| ParseError {
            at: 0,
            message: format!("invalid bounds: {e}"),
        })?;
        LoopNest::new(name, space, stmts).map_err(|e| ParseError {
            at: 0,
            message: format!("invalid nest: {e}"),
        })
    } else {
        let levels: Result<Vec<RawLevel>, ParseError> = headers
            .iter()
            .map(|h| {
                if h.lo.is_const() && h.hi.is_const() {
                    Ok(RawLevel {
                        lo: h.lo.constant,
                        hi: h.hi.constant,
                        step: h.step,
                    })
                } else {
                    Err(ParseError {
                        at: 0,
                        message: "non-unit step requires constant bounds".into(),
                    })
                }
            })
            .collect();
        normalize_rect(name, &levels?, stmts).map_err(|e| ParseError {
            at: 0,
            message: format!("invalid nest: {e}"),
        })
    }
}

/// Render an affine expression in parser-compatible form (explicit `*`
/// between coefficients and identifiers).
fn aff_to_source(a: &Aff, names: &[&str]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (k, &c) in a.coeffs().iter().enumerate() {
        match c {
            0 => {}
            1 => parts.push(names[k].to_string()),
            -1 => parts.push(format!("-{}", names[k])),
            _ => parts.push(format!("{c}*{}", names[k])),
        }
    }
    let ct = a.constant_term();
    if ct != 0 || parts.is_empty() {
        parts.push(ct.to_string());
    }
    parts.join(" + ")
}

fn access_to_source(acc: &Access, names: &[&str]) -> String {
    let subs: Vec<String> = acc
        .subscripts()
        .iter()
        .map(|s| aff_to_source(s, names))
        .collect();
    format!("{}[{}]", acc.array(), subs.join(", "))
}

fn expr_to_source(e: &Expr, reads: &[String]) -> Option<String> {
    Some(match e {
        Expr::Read(k) => reads.get(*k)?.clone(),
        Expr::Const(c) => {
            if c.fract() != 0.0 || c.abs() > 1e15 {
                return None; // the grammar only has integer literals
            }
            format!("{}", *c as i64)
        }
        Expr::Add(a, b) => format!(
            "({} + {})",
            expr_to_source(a, reads)?,
            expr_to_source(b, reads)?
        ),
        Expr::Sub(a, b) => format!(
            "({} - {})",
            expr_to_source(a, reads)?,
            expr_to_source(b, reads)?
        ),
        Expr::Mul(a, b) => format!(
            "({} * {})",
            expr_to_source(a, reads)?,
            expr_to_source(b, reads)?
        ),
        Expr::Max(a, b) => format!(
            "max({}, {})",
            expr_to_source(a, reads)?,
            expr_to_source(b, reads)?
        ),
        Expr::Min(a, b) => format!(
            "min({}, {})",
            expr_to_source(a, reads)?,
            expr_to_source(b, reads)?
        ),
    })
}

/// Render a nest back to parseable source, when the grammar can express
/// it: at most 6 loop levels (named `i…n`) and only integer constants
/// in statement expressions. `parse_nest(to_source(x)?)` reproduces the
/// nest's space, dependences, and semantics — asserted by the
/// round-trip tests.
pub fn to_source(nest: &LoopNest) -> Option<String> {
    const NAMES: [&str; 6] = ["i", "j", "k", "l", "m", "n"];
    let n = nest.dim();
    if n > NAMES.len() {
        return None;
    }
    let names = &NAMES[..n];
    let mut out = String::new();
    for level in 0..n {
        out.push_str(&format!(
            "for {} = {} to {}\n",
            names[level],
            aff_to_source(nest.space().lower(level), names),
            aff_to_source(nest.space().upper(level), names),
        ));
    }
    for stmt in nest.stmts() {
        let reads: Vec<String> = stmt
            .reads()
            .iter()
            .map(|r| access_to_source(r, names))
            .collect();
        let rhs = expr_to_source(&stmt.semantics(), &reads)?;
        out.push_str(&format!(
            "  {} = {};\n",
            access_to_source(stmt.write(), names),
            rhs
        ));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::{dependence_vectors, DepOptions};

    const L1_SRC: &str = "
        # the paper's running example
        for i = 0 to 3
        for j = 0 to 3
          A[i+1, j+1] = A[i+1, j] + B[i, j];
          B[i+1, j]   = 2 * A[i, j] + 1;
    ";

    #[test]
    fn parses_l1_and_matches_paper() {
        let nest = parse_nest("L1", L1_SRC).unwrap();
        assert_eq!(nest.dim(), 2);
        assert_eq!(nest.space().count(), 16);
        let d = dependence_vectors(&nest, DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn parses_matmul() {
        let src = "
            for i = 0 to 3
            for j = 0 to 3
            for k = 0 to 3
              C[i, j] = C[i, j] + A[i, k] * B[k, j];
        ";
        let nest = parse_nest("matmul", src).unwrap();
        let d = dependence_vectors(&nest, DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]]);
        assert_eq!(nest.stmts()[0].flops, 2);
    }

    #[test]
    fn parses_triangular_bounds() {
        let src = "
            for i = 0 to 5
            for j = 0 to i
              T[i, j] = T[i, j - 1] + 1;
        ";
        let nest = parse_nest("tri", src).unwrap();
        assert_eq!(nest.space().count(), 21);
    }

    #[test]
    fn parses_strided_and_normalizes() {
        let src = "
            for i = 0 to 14 step 2
              A[i + 2] = A[i] + 1;
        ";
        let nest = parse_nest("strided", src).unwrap();
        assert_eq!(nest.space().count(), 8);
        let d = dependence_vectors(&nest, DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![1]]);
    }

    #[test]
    fn semantics_evaluate() {
        let src = "
            for i = 0 to 3
              S[i] = max(S[i - 1], 2) * 3 - 1;
        ";
        let nest = parse_nest("s", src).unwrap();
        let e = nest.stmts()[0].semantics();
        // reads[0] = S[i-1]; with value 5: max(5,2)*3-1 = 14.
        assert_eq!(e.eval(&[5.0]), 14.0);
        // with value 0: max(0,2)*3-1 = 5.
        assert_eq!(e.eval(&[0.0]), 5.0);
    }

    #[test]
    fn error_positions_and_messages() {
        assert!(parse_nest("x", "for i = 0 to 3").is_err()); // no stmts
        assert!(parse_nest("x", "A[i] = 1;").is_err()); // no loops
        let e = parse_nest("x", "for i = 0 to 3\n A[q] = 1;").unwrap_err();
        assert!(e.message.contains("unknown loop index"));
        let e = parse_nest("x", "for i = 0 to 3\n A[i*i] = 1;").unwrap_err();
        assert!(e.message.contains("non-affine"));
        let e = parse_nest("x", "for i = 0 to i\n A[i] = 1;").unwrap_err();
        assert!(e.message.contains("invalid bounds"));
        let e = parse_nest("x", "for i = 0 to j step 2\nfor j = 0 to 3\n A[i,j] = 1;");
        assert!(e.is_err());
    }

    #[test]
    fn negative_and_parenthesized_subscripts() {
        let src = "
            for i = 0 to 7
            for k = 0 to 3
              y[i] = y[i] + h[k] * x[i - k];
        ";
        let nest = parse_nest("conv", src).unwrap();
        let d = dependence_vectors(&nest, DepOptions::default()).unwrap();
        assert_eq!(d, vec![vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn round_trip_preserves_space_and_deps() {
        // A triangular nest with mixed subscripts.
        let src = "
            for i = 0 to 5
            for j = 0 to i
              T[i + 1, j] = T[i, j] * 2 + T[i, j - 1];
        ";
        let nest = parse_nest("t", src).unwrap();
        let rendered = to_source(&nest).unwrap();
        let reparsed = parse_nest("t", &rendered).unwrap();
        assert_eq!(reparsed.space().count(), nest.space().count());
        assert_eq!(
            dependence_vectors(&reparsed, DepOptions::default()).unwrap(),
            dependence_vectors(&nest, DepOptions::default()).unwrap()
        );
        // Semantics identical on a shared iteration.
        assert_eq!(
            nest.stmts()[0].semantics().eval(&[3.0, 4.0]),
            reparsed.stmts()[0].semantics().eval(&[3.0, 4.0])
        );
    }

    #[test]
    fn to_source_rejects_fractional_constants() {
        use crate::sem::Expr;
        let nest = crate::LoopNest::new(
            "frac",
            crate::IterSpace::rect(&[2]).unwrap(),
            vec![
                crate::Stmt::assign(crate::Access::simple("A", 1, &[(0, 0)]), vec![])
                    .with_expr(Expr::Const(0.5)),
            ],
        )
        .unwrap();
        assert_eq!(to_source(&nest), None);
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let src = "# header\nfor i = 0 to 1 # trailing\n  A[i+1]=A[i];# end\n";
        assert!(parse_nest("c", src).is_ok());
    }
}
