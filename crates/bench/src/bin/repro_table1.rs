//! E6 — Table I: `T_exec(N)` for matrix–vector multiplication with
//! M = 1024, plus numeric evaluation and a simulated cross-check.

use loom_core::analytic::{matvec_exec_terms, table1_rows};
use loom_core::pipeline::MachineOptions;
use loom_core::report::Table;
use loom_core::{Pipeline, PipelineConfig};
use loom_machine::MachineParams;

fn main() {
    let params = MachineParams::classic_1991();

    println!("Table I — maximum execution time, M = 1024 (symbolic and numeric)\n");
    let mut t = Table::new([
        "N",
        "T_exec(N) (paper form)",
        "ticks (t_calc=1, t_start=50, t_comm=5)",
    ]);
    for (n, terms) in table1_rows(1024) {
        t.row([
            format!("{n}"),
            terms.render(),
            format!("{}", terms.evaluate(&params)),
        ]);
    }
    println!("{t}");

    // Paper's printed coefficients, asserted.
    let expect = [
        (1u64, 2_097_152u64, 0u64),
        (4, 786_944, 2046),
        (16, 245_888, 2046),
        (64, 64_544, 2046),
        (256, 16_328, 2046),
        (1024, 4094, 2046),
    ];
    for &(n, calc, comm) in &expect {
        let terms = matvec_exec_terms(1024, n);
        assert_eq!(
            (terms.calc_coeff, terms.comm_coeff),
            (calc, comm),
            "N = {n}"
        );
    }
    println!("all six rows match the paper's coefficients exactly.\n");

    // Simulated cross-check (same machine model, real message scheduling
    // instead of the closed-form worst case). Default M = 96 keeps debug
    // builds fast; pass the paper's full scale explicitly:
    //   cargo run --release -p loom-bench --bin repro_table1 -- 1024
    let m: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);
    println!("simulated cross-check, M = {m}:\n");
    let w = loom_workloads::matvec::workload(m);
    let max_dim = (m as usize).ilog2() as usize;
    let dims: Vec<usize> = (0..=max_dim).step_by(2).collect();
    let mut t = Table::new([
        "N",
        "analytic ticks",
        "simulated makespan",
        "busiest proc",
        "messages",
    ]);
    for cube_dim in dims {
        let out = Pipeline::new(w.nest.clone())
            .run(&PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim,
                machine: Some(MachineOptions {
                    params,
                    ..Default::default()
                }),
                ..Default::default()
            })
            .expect("matvec pipeline");
        let sim = out.sim.unwrap();
        let n = 1u64 << cube_dim;
        t.row([
            format!("{n}"),
            format!("{}", matvec_exec_terms(m as u64, n).evaluate(&params)),
            format!("{}", sim.makespan),
            format!("{}", sim.max_proc_occupancy()),
            format!("{}", sim.messages),
        ]);
    }
    println!("{t}");
    println!(
        "shape check: the communication term is constant in N (the main diagonal's\n\
         2(M-1) boundary words dominate regardless of machine size), while the\n\
         computation term shrinks as the machine grows — exactly Table I's shape."
    );
}
