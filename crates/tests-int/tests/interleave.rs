//! Property harness for the interleaving model checker (LC013/LC014).
//!
//! Three engines see every program: the DPOR explorer, the naive
//! enumerator (ground truth, budget-capped), and the vector-clock scan
//! (`check_races`, rules LC005/LC007). On pristine pipelines all three
//! must be silent and the DPOR reduction must be *strict* wherever the
//! naive count exceeds one. Under seeded mutations the verdicts must
//! move together: a dropped send is a deadlock for the explorer
//! (LC013), a deadlock for the enumerator, and an unmatched message
//! for the scan (LC007); a stale-payload swap is a determinacy
//! violation (LC014) against the sequential oracle.

use loom_check::{
    check_interleavings, check_races, enumerate_naive, explore_dpor, mutate_program,
    InterleaveOptions, InterleaveStats, Mutation, RuleId, Severity,
};
use loom_codegen::{generate, run_schedule};
use loom_exec::memory::address_hash_init;
use loom_exec::{equivalent, sequential};
use loom_hyperplane::TimeFn;
use loom_loopir::LoopNest;
use loom_mapping::map_partitioning;
use loom_obs::SplitMix64;
use loom_partition::{partition, PartitionConfig};

/// Build the SPMD program for a workload on a 2-cube (four processors:
/// enough concurrency that the naive enumeration genuinely branches).
fn program_for(w: &loom_workloads::Workload) -> (LoopNest, loom_codegen::gen::Codegen) {
    let p = partition(
        w.nest.space().clone(),
        w.deps.clone(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .unwrap();
    let m = map_partitioning(&p, 2).unwrap();
    let cg = generate(&w.nest, &p, m.assignment(), 4).unwrap();
    (w.nest.clone(), cg)
}

fn workloads() -> Vec<loom_workloads::Workload> {
    vec![
        loom_workloads::l1::workload(6),
        loom_workloads::matvec::workload(8),
        loom_workloads::sor::workload(6, 6),
    ]
}

#[test]
fn clean_pipelines_are_schedule_independent_and_dpor_is_strict() {
    let mut saw_strict_reduction = false;
    for w in workloads() {
        let (nest, cg) = program_for(&w);
        let mut stats = InterleaveStats::default();
        let diags = check_interleavings(&nest, &cg, &InterleaveOptions::default(), &mut stats);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{}: clean pipeline must verify: {diags:?}",
            w.nest.name()
        );
        assert_eq!(stats.deadlocks, 0, "{}", w.nest.name());
        assert!(!stats.truncated, "{}", w.nest.name());
        // The generated protocol has unique tags, so the batched DPOR
        // collapses the whole program to one Kahn equivalence class.
        assert_eq!(
            stats.explored,
            1,
            "{}: unique-tag program must be a single class",
            w.nest.name()
        );
        assert!(stats.naive >= stats.explored, "{}", w.nest.name());
        if stats.naive > 1 {
            assert!(
                stats.explored < stats.naive,
                "{}: DPOR must beat naive enumeration ({} vs {})",
                w.nest.name(),
                stats.explored,
                stats.naive
            );
            saw_strict_reduction = true;
        }
        assert!(stats.replays > 0, "{}", w.nest.name());
    }
    assert!(
        saw_strict_reduction,
        "at least one workload must exhibit real concurrency"
    );
}

#[test]
fn dpor_schedules_replay_to_the_sequential_oracle() {
    for w in workloads() {
        let (nest, cg) = program_for(&w);
        let mut stats = InterleaveStats::default();
        let expl = explore_dpor(&cg.program, &InterleaveOptions::default(), &mut stats);
        assert!(expl.deadlock.is_none(), "{}", w.nest.name());
        assert!(!expl.schedules.is_empty(), "{}", w.nest.name());
        let oracle = sequential(&nest, &address_hash_init);
        for sched in &expl.schedules {
            let run = run_schedule(&nest, &cg, sched, &address_hash_init)
                .unwrap_or_else(|e| panic!("{}: replay failed: {e}", w.nest.name()));
            assert!(
                equivalent(&run.gathered, &oracle).is_ok(),
                "{}: explored schedule diverges from the sequential nest",
                w.nest.name()
            );
        }
    }
}

/// Seeded mutations, swept over workloads and seeds: the three engines
/// must agree on the *direction* of every verdict.
#[test]
fn seeded_mutations_cross_validate_the_three_engines() {
    let mut rng = SplitMix64::new(0x1c01_3014);
    let mut lc013 = 0usize;
    let mut lc014 = 0usize;
    let mut granular = 0usize;
    for w in workloads() {
        let (nest, cg) = program_for(&w);
        for mutation in Mutation::all() {
            for _ in 0..2 {
                let seed = rng.next_u64();
                let Some(mutated) = mutate_program(&cg.program, mutation, seed) else {
                    continue;
                };
                let mut bad = cg.clone();
                bad.program = mutated;
                let mut stats = InterleaveStats::default();
                let diags =
                    check_interleavings(&nest, &bad, &InterleaveOptions::default(), &mut stats);
                // The checker must never disagree with its own ground
                // truth (that diagnostic is reserved for checker bugs).
                assert!(
                    diags.iter().all(|d| !d.message.contains("internal:")),
                    "{}/{mutation:?}/{seed:#x}: {diags:?}",
                    w.nest.name()
                );
                let deadlocked = diags.iter().any(|d| {
                    d.rule == RuleId::InterleavingDeadlock && d.severity == Severity::Error
                });
                let diverged = diags.iter().any(|d| {
                    d.rule == RuleId::InterleavingDeterminacy && d.severity == Severity::Error
                });

                // Cross-check 1: the naive enumerator is ground truth
                // for deadlock reachability.
                let naive = enumerate_naive(&bad.program, 4096, 0);
                if !naive.truncated && !stats.truncated {
                    assert_eq!(
                        deadlocked,
                        naive.deadlock,
                        "{}/{mutation:?}/{seed:#x}: DPOR and naive enumeration disagree",
                        w.nest.name()
                    );
                }

                // Cross-check 2: the static vector-clock scan.
                let scan = check_races(&nest, &bad.program);
                match mutation {
                    Mutation::DropSend => {
                        // A send that never happens blocks its receive
                        // in *every* interleaving: LC013 for the model
                        // checker, LC007 for the scan.
                        assert!(
                            deadlocked,
                            "{}/{seed:#x}: dropped send must deadlock",
                            w.nest.name()
                        );
                        assert!(
                            scan.iter().any(|d| d.rule == RuleId::UnmatchedMessage),
                            "{}/{seed:#x}: scan must see the orphaned receive",
                            w.nest.name()
                        );
                        lc013 += 1;
                    }
                    Mutation::DupSend => {
                        // Duplicate tags break the unique-tag batching:
                        // the explorer falls back to granular mode and
                        // must visit more than one class. The payload
                        // is bitwise-identical, so determinacy holds.
                        assert!(!deadlocked, "{}/{seed:#x}", w.nest.name());
                        if !stats.truncated {
                            assert!(
                                stats.explored > 1,
                                "{}/{seed:#x}: duplicate keys must force exploration",
                                w.nest.name()
                            );
                            granular += 1;
                        }
                    }
                    Mutation::DropRecv | Mutation::SwapSendEarlier => {
                        // Stale data: the replay diverges from the
                        // oracle (LC014) or the scan flags the broken
                        // protocol. Individual instances can be benign
                        // (the payload may be redundantly delivered
                        // under another tag), so the requirement that
                        // the engines do catch these is aggregated
                        // over the sweep below.
                        let scan_caught = scan.iter().any(|d| d.severity == Severity::Error);
                        if diverged || deadlocked || scan_caught {
                            lc014 += 1;
                        }
                    }
                }
            }
        }
    }
    // The sweep must actually exercise every verdict direction.
    assert!(lc013 >= 3, "too few LC013 verdicts ({lc013})");
    assert!(lc014 >= 2, "too few stale-data catches ({lc014})");
    assert!(granular >= 3, "too few granular explorations ({granular})");
}
