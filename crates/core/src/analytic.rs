//! The paper's closed-form performance model for matrix–vector
//! multiplication on a hypercube (§IV and Table I), plus a general
//! makespan lower bound ([`makespan_lower_bound`]) used by
//! exploration's branch-and-bound pruning.

use loom_machine::{MachineParams, Program};

/// The two symbolic terms of `T_exec(N)`:
/// `calc_coeff · t_calc + comm_coeff · (t_start + t_comm)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecTerms {
    /// Coefficient of `t_calc` (the `2W` term).
    pub calc_coeff: u64,
    /// Coefficient of `t_start + t_comm` (the `2M − 2` term; 0 for N=1).
    pub comm_coeff: u64,
}

impl ExecTerms {
    /// Evaluate numerically with concrete machine parameters.
    pub fn evaluate(&self, params: &MachineParams) -> u64 {
        self.calc_coeff * params.t_calc + self.comm_coeff * (params.t_start + params.t_comm)
    }

    /// Render in the paper's Table I notation, e.g.
    /// `786944·t_calc + 2046·(t_comm+t_start)`.
    pub fn render(&self) -> String {
        if self.comm_coeff == 0 {
            format!("{}·t_calc", self.calc_coeff)
        } else {
            format!(
                "{}·t_calc + {}·(t_comm+t_start)",
                self.calc_coeff, self.comm_coeff
            )
        }
    }
}

/// The maximum number of index points `W` assigned to one processor when
/// the `M` matvec blocks are dealt onto `N` processors (§IV): the busiest
/// processor holds the blocks containing the main diagonal,
/// `W = Σ_{i=l}^{M} i` with `l = ⌊(N−2)/N · M⌋ + 1`. For `N = 1` the
/// whole `M²` space is one processor's load.
pub fn matvec_max_points(m: u64, n: u64) -> u64 {
    assert!(n >= 1 && m >= 1);
    if n == 1 {
        return m * m;
    }
    // l = ⌊(N−2)/N · M⌋ + 1, computed exactly in integers.
    let l = (n - 2) * m / n + 1;
    // Σ_{i=l}^{M} i.
    (l + m) * (m - l + 1) / 2
}

/// The symbolic `T_exec(N)` of the paper:
/// `2W·t_calc + (2M−2)·(t_start + t_comm)` for `N > 1`, and `2M²·t_calc`
/// for the sequential machine.
pub fn matvec_exec_terms(m: u64, n: u64) -> ExecTerms {
    let calc_coeff = 2 * matvec_max_points(m, n);
    let comm_coeff = if n == 1 { 0 } else { 2 * m - 2 };
    ExecTerms {
        calc_coeff,
        comm_coeff,
    }
}

/// The rows of the paper's Table I for a given `M`: `(N, terms)` for
/// `N = 1, 4, 16, …, M` (powers of 4, as the paper tabulates).
pub fn table1_rows(m: u64) -> Vec<(u64, ExecTerms)> {
    let mut rows = Vec::new();
    let mut n = 1;
    while n <= m {
        rows.push((n, matvec_exec_terms(m, n)));
        n *= 4;
    }
    rows
}

/// Analytic speedup `T_exec(1) / T_exec(N)` under concrete parameters.
pub fn matvec_speedup(m: u64, n: u64, params: &MachineParams) -> f64 {
    let t1 = matvec_exec_terms(m, 1).evaluate(params) as f64;
    let tn = matvec_exec_terms(m, n).evaluate(params) as f64;
    t1 / tn
}

/// Analytic efficiency `speedup / N`.
pub fn matvec_efficiency(m: u64, n: u64, params: &MachineParams) -> f64 {
    matvec_speedup(m, n, params) / n as f64
}

/// The smallest problem size `M` at which the `N`-processor execution
/// beats the sequential one (`T_exec(N) < T_exec(1)`) — the grain-size
/// crossover the paper's §IV discussion is about ("our method is
/// suitable for medium- to coarse-grain computation"). Returns `None` if
/// no crossover exists below the search cap.
pub fn matvec_crossover_m(n: u64, params: &MachineParams, cap: u64) -> Option<u64> {
    assert!(n >= 2, "crossover needs a parallel machine");
    (n..=cap).find(|&m| {
        matvec_exec_terms(m, n).evaluate(params) < matvec_exec_terms(m, 1).evaluate(params)
    })
}

/// A cheap lower bound on the simulated makespan of `program` under
/// `params` — the gate of exploration's branch-and-bound pruning: a
/// candidate whose bound already exceeds the current k-th best makespan
/// cannot enter the top-k and need not be simulated.
///
/// The bound is the maximum of two relaxations, both provably ≤ the
/// discrete-event makespan on a fault-free machine:
///
/// * **occupancy bound** — compute, sends, and receive processing all
///   occupy a processor's serial timeline, so the makespan is at least
///   the busiest processor's `Σ flops · t_calc` plus one
///   store-and-forward send (`t_start + words·t_comm`) per outgoing
///   message plus `t_recv` per incoming message. With
///   `batch_messages`, arcs from one task to one destination processor
///   share a single message, exactly as the engine merges them;
/// * **critical-path bound** — along every dependence chain, a task
///   finishes no earlier than its slowest predecessor's finish plus the
///   cheapest possible delivery of the arc: free on the same processor,
///   otherwise one hop of store-and-forward occupancy plus the
///   receiver's `t_recv` processing. Batching only grows the message
///   carrying an arc, so the per-arc delay never overshoots.
///
/// Contention and multi-hop routes only add delay on top of either
/// relaxation, and senders can at best emit the instant the producing
/// task retires, so the bound never exceeds the simulated makespan.
///
/// The critical path is evaluated in `(step, id)` order, which is
/// topological because a legal Π advances every dependence by at least
/// one step; if a program violates that (hand-built arcs within a
/// step), the path term is skipped and the occupancy bound alone is
/// returned. Under fault injection the bound is *not* sound — crash
/// remap can co-locate tasks and beat the fault-free schedule — so
/// exploration disables pruning whenever faults are configured.
pub fn makespan_lower_bound(
    program: &Program,
    params: &MachineParams,
    words_per_arc: u64,
    batch_messages: bool,
) -> u64 {
    makespan_lower_bound_with(program, params, words_per_arc, batch_messages, None)
}

/// [`makespan_lower_bound`] tightened with a third relaxation when the
/// simulated machine serializes links (`link_contention`):
///
/// * **link-occupancy bound** — under contention every message holds
///   each directed link of its static route for its full
///   store-and-forward occupancy (`t_start + words·t_comm`), one
///   message per link at a time. All of a link's traffic therefore fits
///   inside the makespan, so the makespan is at least the busiest
///   link's `Σ send_occupancy(words)` over the messages routed across
///   it (counted per arc, or per `(source task, destination processor)`
///   message under batching — the same symbolic per-link message counts
///   the cost engine fits closed forms over).
///
/// Pass `contended: Some(topology)` **only** when the simulation models
/// link contention: without it, links carry any number of messages
/// concurrently and the term is not a lower bound. `None` reproduces
/// [`makespan_lower_bound`] exactly.
pub fn makespan_lower_bound_with(
    program: &Program,
    params: &MachineParams,
    words_per_arc: u64,
    batch_messages: bool,
    contended: Option<&loom_machine::Topology>,
) -> u64 {
    let n = program.task_flops.len();
    if n == 0 {
        return 0;
    }
    // Link-occupancy term: the busiest directed link's serial traffic.
    let link_floor = contended.map_or(0, |topology| {
        let mut per_link: std::collections::HashMap<(usize, usize), u64> =
            std::collections::HashMap::new();
        let mut occupy = |pu: usize, pv: usize, words: u64| {
            let occ = params.send_occupancy(words);
            for link in topology.route_links(pu, pv) {
                *per_link.entry(link).or_insert(0) += occ;
            }
        };
        if batch_messages {
            let mut msg_words: std::collections::HashMap<(u32, u32), u64> =
                std::collections::HashMap::new();
            for (i, &(u, v)) in program.arcs.iter().enumerate() {
                let (pu, pv) = (program.proc_of[u as usize], program.proc_of[v as usize]);
                if pu != pv {
                    *msg_words.entry((u, pv)).or_insert(0) += program.arc_words[i] * words_per_arc;
                }
            }
            for (&(u, pv), &words) in &msg_words {
                occupy(program.proc_of[u as usize] as usize, pv as usize, words);
            }
        } else {
            for (i, &(u, v)) in program.arcs.iter().enumerate() {
                let (pu, pv) = (program.proc_of[u as usize], program.proc_of[v as usize]);
                if pu != pv {
                    occupy(
                        pu as usize,
                        pv as usize,
                        program.arc_words[i] * words_per_arc,
                    );
                }
            }
        }
        per_link.into_values().max().unwrap_or(0)
    });
    let mut per_proc = vec![0u64; program.num_procs];
    for (t, &flops) in program.task_flops.iter().enumerate() {
        per_proc[program.proc_of[t] as usize] += flops * params.t_calc;
    }
    // Communication occupancy: one message per remote arc, or per
    // (source task, destination processor) pair under batching.
    if batch_messages {
        let mut msg_words: std::collections::HashMap<(u32, u32), u64> =
            std::collections::HashMap::new();
        for (i, &(u, v)) in program.arcs.iter().enumerate() {
            let (pu, pv) = (program.proc_of[u as usize], program.proc_of[v as usize]);
            if pu != pv {
                *msg_words.entry((u, pv)).or_insert(0) += program.arc_words[i] * words_per_arc;
            }
        }
        for (&(u, pv), &words) in &msg_words {
            per_proc[program.proc_of[u as usize] as usize] += params.send_occupancy(words);
            per_proc[pv as usize] += params.t_recv;
        }
    } else {
        for (i, &(u, v)) in program.arcs.iter().enumerate() {
            let (pu, pv) = (program.proc_of[u as usize], program.proc_of[v as usize]);
            if pu != pv {
                let words = program.arc_words[i] * words_per_arc;
                per_proc[pu as usize] += params.send_occupancy(words);
                per_proc[pv as usize] += params.t_recv;
            }
        }
    }
    let work = per_proc.into_iter().max().unwrap_or(0).max(link_floor);

    let steps_advance = program
        .arcs
        .iter()
        .all(|&(u, v)| program.step_of[u as usize] < program.step_of[v as usize]);
    if !steps_advance {
        return work;
    }
    let mut incoming: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
    for (i, &(u, v)) in program.arcs.iter().enumerate() {
        let delay = if program.proc_of[u as usize] == program.proc_of[v as usize] {
            0
        } else {
            let words = program.arc_words[i] * words_per_arc;
            params.send_occupancy(words) + params.t_recv
        };
        incoming[v as usize].push((u, delay));
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&t| (program.step_of[t as usize], t));
    let mut finish = vec![0u64; n];
    let mut path = 0u64;
    for &t in &order {
        let ready = incoming[t as usize]
            .iter()
            .map(|&(u, delay)| finish[u as usize] + delay)
            .max()
            .unwrap_or(0);
        finish[t as usize] = ready + program.task_flops[t as usize] * params.t_calc;
        path = path.max(finish[t as usize]);
    }
    work.max(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        // Table I, M = 1024.
        let expect = [
            (1u64, 2_097_152u64, 0u64),
            (4, 786_944, 2046),
            (16, 245_888, 2046),
            (64, 64_544, 2046),
            (256, 16_328, 2046),
            (1024, 4094, 2046),
        ];
        for &(n, calc, comm) in &expect {
            let t = matvec_exec_terms(1024, n);
            assert_eq!(t.calc_coeff, calc, "calc coefficient for N={n}");
            assert_eq!(t.comm_coeff, comm, "comm coefficient for N={n}");
        }
        let rows = table1_rows(1024);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[1].1.calc_coeff, 786_944);
    }

    #[test]
    fn evaluation_and_rendering() {
        let t = matvec_exec_terms(1024, 4);
        let p = MachineParams {
            t_calc: 1,
            t_start: 50,
            t_comm: 5,
            t_recv: 0,
        };
        assert_eq!(t.evaluate(&p), 786_944 + 2046 * 55);
        assert_eq!(t.render(), "786944·t_calc + 2046·(t_comm+t_start)");
        assert_eq!(matvec_exec_terms(1024, 1).render(), "2097152·t_calc");
    }

    #[test]
    fn w_is_monotone_in_n() {
        let mut prev = matvec_max_points(1024, 1);
        for n in [4, 16, 64, 256, 1024] {
            let w = matvec_max_points(1024, n);
            assert!(w < prev, "W must shrink as the machine grows");
            prev = w;
        }
    }

    #[test]
    fn n_equals_m_leaves_one_block_pair() {
        // N = M: each processor holds one block; the diagonal processor
        // has the two longest lines: M + (M−1).
        assert_eq!(matvec_max_points(1024, 1024), 2047);
        assert_eq!(matvec_max_points(8, 8), 15);
    }

    #[test]
    fn speedup_and_efficiency_behave() {
        let p = MachineParams::classic_1991();
        // Large grain: near-linear at small N, efficiency decays with N.
        let s4 = matvec_speedup(1024, 4, &p);
        assert!(s4 > 2.0 && s4 < 4.0, "speedup(4) = {s4}");
        assert!(matvec_efficiency(1024, 4, &p) > matvec_efficiency(1024, 64, &p));
        // Fine grain: parallel loses (speedup < 1).
        assert!(matvec_speedup(16, 4, &p) < 1.0);
    }

    #[test]
    fn crossover_exists_and_moves_with_latency() {
        let classic = MachineParams::classic_1991();
        let cheap = MachineParams::low_latency();
        let m_classic = matvec_crossover_m(4, &classic, 1 << 20).unwrap();
        let m_cheap = matvec_crossover_m(4, &cheap, 1 << 20).unwrap();
        assert!(
            m_cheap <= m_classic,
            "cheaper communication must cross over no later: {m_cheap} vs {m_classic}"
        );
        // Beyond the crossover, parallel keeps winning.
        assert!(matvec_speedup(m_classic * 4, 4, &classic) > 1.0);
        // Below it, it loses.
        if m_classic > 4 {
            assert!(matvec_speedup(m_classic - 1, 4, &classic) <= 1.0);
        }
    }

    #[test]
    fn small_machine_edge_cases() {
        assert_eq!(matvec_max_points(8, 1), 64);
        // N = 2: l = 1 → W = Σ_{1}^{8} = 36 — more than half of 64
        // because the diagonal blocks are the heavy ones.
        assert_eq!(matvec_max_points(8, 2), 36);
    }

    #[test]
    fn lower_bound_exact_on_two_task_chain() {
        // task0 (proc0) → task1 (proc1): compute 1, one hop of
        // t_start + t_comm = 55, compute 1 — the bound is tight here.
        let prog = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 1], 1, 2);
        let p = MachineParams::classic_1991();
        assert_eq!(makespan_lower_bound(&prog, &p, 1, false), 57);
        // Same processor: the message is free, only serial compute remains.
        let local = Program::from_parts(vec![0, 1], vec![(0, 1)], vec![0, 0], 1, 1);
        assert_eq!(makespan_lower_bound(&local, &p, 1, false), 2);
    }

    #[test]
    fn work_bound_covers_independent_tasks() {
        // Two independent tasks on one processor: the critical path is a
        // single task, but the work bound sees the serial execution.
        let prog = Program::from_parts(vec![0, 0], vec![], vec![0, 0], 3, 1);
        let p = MachineParams::classic_1991();
        assert_eq!(makespan_lower_bound(&prog, &p, 1, false), 6);
        let empty = Program::from_parts(vec![], vec![], vec![], 1, 1);
        assert_eq!(makespan_lower_bound(&empty, &p, 1, false), 0);
    }

    #[test]
    fn batching_shrinks_the_send_occupancy_term() {
        // task0 fans out to two tasks on proc1: unbatched it pays
        // t_start twice, batched the arcs share one message.
        let prog = Program::from_parts(vec![0, 1, 1], vec![(0, 1), (0, 2)], vec![0, 1, 1], 1, 2);
        let p = MachineParams::classic_1991();
        let unbatched = makespan_lower_bound(&prog, &p, 1, false);
        let batched = makespan_lower_bound(&prog, &p, 1, true);
        // Sender occupancy: 1 + 2·(50+5) = 111 vs 1 + 50+2·5 = 61.
        assert_eq!(unbatched, 111);
        assert_eq!(batched, 61);
    }

    #[test]
    fn lower_bound_never_exceeds_simulated_makespan() {
        use crate::pipeline::{Pipeline, PipelineConfig};
        use loom_machine::{simulate, SimConfig};
        let w = loom_workloads::matvec::workload(12);
        let rec = loom_obs::Recorder::disabled();
        for cube_dim in [0usize, 1, 2] {
            let cfg = PipelineConfig {
                time_fn: Some(w.pi.clone()),
                cube_dim,
                machine: None,
                ..Default::default()
            };
            let pipeline = Pipeline::new(w.nest.clone());
            let stage = pipeline.stage_partition(&cfg, &rec).unwrap();
            let (_mapping, placement, target) = stage.map_with(&cfg, &rec).unwrap();
            let program = stage.program(&placement);
            for params in [MachineParams::classic_1991(), MachineParams::low_latency()] {
                for batch in [false, true] {
                    for contention in [false, true] {
                        let mut sim_cfg = SimConfig::paper_hypercube(cube_dim, params);
                        sim_cfg.topology = target.topology();
                        sim_cfg.batch_messages = batch;
                        sim_cfg.link_contention = contention;
                        let report = simulate(&program, &sim_cfg).unwrap();
                        let topology = contention.then(|| target.topology());
                        let bound = makespan_lower_bound_with(
                            &program,
                            &params,
                            1,
                            batch,
                            topology.as_ref(),
                        );
                        assert!(
                            bound <= report.makespan,
                            "unsound bound {bound} > makespan {} at cube_dim={cube_dim} \
                             batch={batch} contention={contention}",
                            report.makespan
                        );
                        assert!(bound > 0);
                    }
                }
            }
        }
    }

    #[test]
    fn contended_link_floor_tightens_the_bound() {
        use loom_machine::{simulate, SimConfig, Topology};
        // Senders on procs 3 and 2 both deliver to proc 0: e-cube
        // routes 3→2→0 and 2→0 serialize on the directed link (2, 0).
        let prog = Program::from_parts(
            vec![0, 0, 1, 1],
            vec![(0, 2), (1, 3)],
            vec![3, 2, 0, 0],
            1,
            4,
        );
        let p = MachineParams::classic_1991();
        let topo = Topology::Hypercube(2);
        let plain = makespan_lower_bound(&prog, &p, 1, false);
        let tight = makespan_lower_bound_with(&prog, &p, 1, false, Some(&topo));
        // Critical path: 1 + (50+5) + 1.
        assert_eq!(plain, 57);
        // Two 55-tick occupancies queue on (2, 0).
        assert_eq!(tight, 110);
        // …and the contended simulation really is at least that slow.
        let mut cfg = SimConfig::paper_hypercube(2, p);
        cfg.link_contention = true;
        let r = simulate(&prog, &cfg).unwrap();
        assert!(tight <= r.makespan, "{tight} > {}", r.makespan);
        // `None` reproduces the untightened bound exactly.
        assert_eq!(makespan_lower_bound_with(&prog, &p, 1, false, None), plain);
    }
}
