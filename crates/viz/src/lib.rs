//! Text renderings of the pipeline's artifacts: ASCII grids for 2-D
//! iteration spaces (the shape of the paper's Figs. 1 and 3(b)) and
//! Graphviz DOT for the group-communication graph (Fig. 7) and TIGs.

#![deny(missing_docs)]

pub mod ascii;
pub mod dot;

pub use ascii::{block_grid, utilization_chart, wavefront_grid};
pub use dot::{group_graph_dot, tig_dot};
