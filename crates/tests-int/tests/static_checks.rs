//! Integration tests for the `loom-check` static verifier.
//!
//! Two angles: a deterministic property harness cross-validating the
//! LC001 legality rule against the execution oracle (a schedule the
//! checker accepts must replay to the sequential result; a schedule it
//! rejects for a strictly negative `Π·d` must trip the oracle's order
//! validation), and the seeded-mutation suite — every mutated pipeline
//! artifact must produce exactly the expected rule id, in both the
//! human and the JSON rendering.

use loom_check::{
    check_gray, check_legality, check_lemma1, check_pipeline, check_races, PipelineCheck, Report,
    Severity,
};
use loom_codegen::{generate, Op};
use loom_exec::memory::address_hash_init;
use loom_exec::{equivalent, execute_in_order, sequential, Divergence};
use loom_hyperplane::TimeFn;
use loom_mapping::map_partitioning;
use loom_obs::SplitMix64;
use loom_partition::{partition, PartitionConfig, Partitioning, Tig};
use loom_workloads::Workload;

fn pipeline_artifacts(w: &Workload, cube_dim: usize) -> (Partitioning, Tig, Vec<usize>) {
    let p = partition(
        w.nest.space().clone(),
        w.deps.clone(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .unwrap();
    let tig = Tig::from_partitioning(&p);
    let m = map_partitioning(&p, cube_dim).unwrap();
    let assignment = m.assignment().to_vec();
    (p, tig, assignment)
}

// ---------------------------------------------------------------------
// Property harness: LC001 vs. the execution oracle.
// ---------------------------------------------------------------------

/// Random Π candidates over small workloads. The ground truth for
/// legality is the definition itself (`Π·d ≥ 1` for every `d`); the
/// cross-check is behavioral: executing the nest front-by-front under
/// an accepted Π must reproduce the sequential store, and executing it
/// under a Π with a strictly negative `Π·d` must be caught as an order
/// violation by the oracle's dependence validation.
#[test]
fn random_pi_legality_matches_exec_oracle() {
    let workloads = [
        loom_workloads::l1::workload(4),
        loom_workloads::matvec::workload(5),
        loom_workloads::sor::workload(4, 4),
    ];
    let mut rng = SplitMix64::new(0x10c4);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for _ in 0..96 {
        let w = &workloads[rng.below(workloads.len() as u64) as usize];
        let n = w.nest.dim();
        let coeffs: Vec<i64> = (0..n).map(|_| rng.range_i64(-2, 3)).collect();
        let pi = TimeFn::new(coeffs);
        let diags = check_legality(&pi, &w.deps);
        let legal = w
            .deps
            .iter()
            .all(|d| d.iter().zip(pi.coeffs()).map(|(&a, &b)| a * b).sum::<i64>() >= 1);
        assert_eq!(
            diags.is_empty(),
            legal,
            "LC001 disagrees with the definition for Π = {:?} on {}",
            pi.coeffs(),
            w.nest.name()
        );

        let points: Vec<Vec<i64>> = w.nest.space().points().collect();
        let mut order: Vec<usize> = (0..points.len()).collect();
        order.sort_by_key(|&i| (pi.time_of(&points[i]), points[i].clone()));
        let result = execute_in_order(&w.nest, &points, &order, &w.deps, &address_hash_init);
        if legal {
            accepted += 1;
            let mem = result.expect("legal Π must replay cleanly");
            equivalent(&mem, &sequential(&w.nest, &address_hash_init))
                .expect("legal Π must match the sequential store");
        } else {
            rejected += 1;
            // Only a strictly negative Π·d forces a front ordered after
            // its predecessor's; a Π·d = 0 tie may still happen to be
            // replayed in a valid order by the lexicographic tiebreak.
            let strictly_negative = w
                .deps
                .iter()
                .any(|d| d.iter().zip(pi.coeffs()).map(|(&a, &b)| a * b).sum::<i64>() < 0);
            if strictly_negative {
                assert!(
                    matches!(result, Err(Divergence::OrderViolation { .. })),
                    "Π = {:?} on {} has Π·d < 0 but the oracle replayed it",
                    pi.coeffs(),
                    w.nest.name()
                );
            }
        }
    }
    // The harness must exercise both branches, or it proves nothing.
    assert!(accepted >= 10, "only {accepted} legal Π sampled");
    assert!(rejected >= 10, "only {rejected} illegal Π sampled");
}

// ---------------------------------------------------------------------
// Clean pipelines: zero error diagnostics on every built-in workload.
// ---------------------------------------------------------------------

#[test]
fn all_builtin_workloads_check_clean() {
    for w in loom_workloads::all_default() {
        let (p, tig, assignment) = pipeline_artifacts(&w, 1);
        let report = check_pipeline(&PipelineCheck {
            nest: &w.nest,
            deps: &w.deps,
            pi: &TimeFn::new(w.pi.clone()),
            partitioning: &p,
            tig: &tig,
            assignment: &assignment,
            cube_dim: 1,
        });
        assert!(
            !report.has_errors(),
            "{}:\n{}",
            w.nest.name(),
            report.render_human()
        );
    }
}

// ---------------------------------------------------------------------
// Seeded mutations: each must produce exactly the expected rule id.
// ---------------------------------------------------------------------

fn assert_only_rule(report: &Report, code: &str) {
    let counts = report.rule_counts();
    assert!(
        counts.contains_key(code),
        "expected {code}:\n{}",
        report.render_human()
    );
    assert_eq!(
        counts.len(),
        1,
        "expected only {code}:\n{}",
        report.render_human()
    );
    // Both renderings name the rule.
    assert!(report.render_human().contains(&format!("[{code}]")));
    let json = report.to_json().render_pretty();
    assert!(json.contains(&format!("\"rule\": \"{code}\"")), "{json}");
}

#[test]
fn mutation_illegal_pi_yields_lc001() {
    let w = loom_workloads::l1::workload(4);
    let report = Report::from_diagnostics(check_legality(&TimeFn::new(vec![1, -1]), &w.deps));
    assert!(report.has_errors());
    assert_only_rule(&report, "LC001");
}

#[test]
fn mutation_merged_blocks_yield_lc002() {
    let w = loom_workloads::l1::workload(4);
    let (p, _, _) = pipeline_artifacts(&w, 1);
    let pi = TimeFn::new(w.pi.clone());
    // The untouched partition satisfies Lemma 1 …
    let blocks = p.blocks().to_vec();
    assert!(check_lemma1(&pi, p.structure().points(), &blocks).is_empty());
    // … and merging two blocks that share a hyperplane step breaks it.
    let mut merged = blocks.clone();
    let moved = merged.pop().unwrap();
    merged[0].extend(moved);
    let report = Report::from_diagnostics(check_lemma1(&pi, p.structure().points(), &merged));
    assert!(report.has_errors());
    assert_only_rule(&report, "LC002");
}

#[test]
fn mutation_scrambled_gray_yields_lc004() {
    // matvec on a 16×16 space partitions into 16 blocks — a full
    // 4-cube, where the 1-hop guarantee is exact. Allocating blocks by
    // their binary index instead of a Gray walk breaks adjacency.
    let w = loom_workloads::matvec::workload(16);
    let (p, tig, gray) = pipeline_artifacts(&w, 4);
    assert!(p.num_blocks() >= 3 && p.num_blocks() <= 16);
    let cube_dim = 4;
    assert!(check_gray(&p, &tig, &gray, cube_dim)
        .iter()
        .all(|d| d.severity != Severity::Error));
    let binary: Vec<usize> = (0..p.num_blocks()).collect();
    let report = Report::from_diagnostics(check_gray(&p, &tig, &binary, cube_dim));
    assert!(report.has_errors());
    assert_only_rule(&report, "LC004");
}

#[test]
fn mutation_injected_write_yields_lc005() {
    let w = loom_workloads::l1::workload(4);
    let (p, _, _) = pipeline_artifacts(&w, 1);
    let m = map_partitioning(&p, 1).unwrap();
    let cg = generate(&w.nest, &p, m.assignment(), 2).unwrap();
    assert!(check_races(&w.nest, &cg.program).is_empty());
    // Recompute a proc-0 iteration on proc 1 with no synchronization:
    // two processors now write the same elements concurrently.
    let mut program = cg.program;
    let point = program.per_proc[0]
        .iter()
        .find_map(|op| match op {
            Op::Compute { point } => Some(*point),
            _ => None,
        })
        .unwrap();
    program.per_proc[1].insert(0, Op::Compute { point });
    let report = Report::from_diagnostics(check_races(&w.nest, &program));
    assert!(report.has_errors());
    assert_only_rule(&report, "LC005");
}

#[test]
fn pipeline_gate_rejects_mutants_and_passes_clean() {
    use loom_core::pipeline::MachineOptions;
    use loom_core::{Pipeline, PipelineConfig};
    let w = loom_workloads::sor::workload(6, 6);
    let config = PipelineConfig {
        time_fn: Some(w.pi.clone()),
        cube_dim: 1,
        machine: Some(MachineOptions {
            static_check: true,
            ..Default::default()
        }),
        ..Default::default()
    };
    let out = Pipeline::new(w.nest.clone()).run(&config);
    assert!(out.is_ok(), "{:?}", out.err().map(|e| e.to_string()));
}
