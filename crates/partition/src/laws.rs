//! Executable validators for the paper's Lemmas 1–3 and Theorems 1–2.
//!
//! These are *checks*, not proofs: given a concrete partitioning they
//! verify the properties the paper establishes analytically, and report
//! every violation found. The test suites and benches run them on each
//! partitioning they produce; a violation indicates an implementation
//! bug (or a boundary configuration outside a lemma's hypotheses —
//! Lemma 2's "only one group" claim assumes interior groups, so the
//! checker treats clipped boundary groups separately).

use crate::blocks::Partitioning;
use crate::comm::group_dependence_graph;
use std::collections::BTreeSet;
use std::fmt;

/// A violated law, with enough context to debug it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LawViolation {
    /// Theorem 1 / Lemma 1: two iterations in one block share a step.
    SharedStep {
        /// The block.
        block: usize,
        /// The execution step both points occupy.
        step: i64,
    },
    /// Theorem 2: a group sends data to more than `2m − β` groups.
    OutDegree {
        /// The group.
        group: usize,
        /// Its out-degree.
        degree: usize,
        /// The bound `2m − β`.
        bound: usize,
    },
    /// Lemma 2: a group depends on more than one group along a grouping
    /// or auxiliary direction.
    MultiTargetAlongOmega {
        /// The source group.
        group: usize,
        /// The dependence index (into `D`).
        dep: usize,
        /// The distinct target groups observed.
        targets: Vec<usize>,
    },
    /// Lemma 3: a group sends to more than two groups along a
    /// non-grouping direction.
    TooManyTargetsOffOmega {
        /// The source group.
        group: usize,
        /// The dependence index (into `D`).
        dep: usize,
        /// The distinct target groups observed.
        targets: Vec<usize>,
    },
}

impl fmt::Display for LawViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LawViolation::SharedStep { block, step } => {
                write!(f, "block {block}: two iterations share step {step}")
            }
            LawViolation::OutDegree {
                group,
                degree,
                bound,
            } => write!(
                f,
                "group {group}: out-degree {degree} exceeds 2m−β = {bound}"
            ),
            LawViolation::MultiTargetAlongOmega {
                group,
                dep,
                targets,
            } => write!(
                f,
                "group {group}: depends on {targets:?} along grouping/auxiliary dep {dep}"
            ),
            LawViolation::TooManyTargetsOffOmega {
                group,
                dep,
                targets,
            } => write!(
                f,
                "group {group}: sends to {targets:?} (>2) along non-grouping dep {dep}"
            ),
        }
    }
}

/// Theorem 1 (via Lemma 1): within every block, all iterations execute at
/// pairwise-distinct steps, so assigning a block to one processor never
/// perturbs the hyperplane schedule.
pub fn check_theorem1(p: &Partitioning) -> Vec<LawViolation> {
    let mut violations = Vec::new();
    let pi = p.time_fn().clone();
    for (b, block) in p.blocks().iter().enumerate() {
        let mut seen = BTreeSet::new();
        for &id in block {
            let t = pi.time_of(&p.structure().points()[id]);
            if !seen.insert(t) {
                violations.push(LawViolation::SharedStep { block: b, step: t });
            }
        }
    }
    violations
}

/// Theorem 2: every group sends data to at most `2m − β` other groups.
pub fn check_theorem2(p: &Partitioning) -> Vec<LawViolation> {
    let m = p.structure().deps().len();
    let beta = p.vectors().beta;
    let bound = 2 * m - beta;
    group_dependence_graph(p)
        .iter()
        .enumerate()
        .filter(|(_, out)| out.len() > bound)
        .map(|(g, out)| LawViolation::OutDegree {
            group: g,
            degree: out.len(),
            bound,
        })
        .collect()
}

/// Per-direction group targets: for each group and each nonzero projected
/// dependence, the set of *other* groups reached by stepping members by
/// that dependence.
fn targets_per_direction(p: &Partitioning) -> Vec<Vec<BTreeSet<usize>>> {
    let qp = p.projected();
    let g = p.grouping();
    let ndeps = qp.deps().len();
    let mut targets = vec![vec![BTreeSet::new(); ndeps]; g.len()];
    for pid in 0..qp.len() {
        let from = g.group_of[pid];
        for (k, d) in qp.deps().iter().enumerate() {
            if d.is_zero() {
                continue;
            }
            let q = &qp.points()[pid] + d;
            if let Some(qid) = qp.id_of(&q) {
                let to = g.group_of[qid];
                if to != from {
                    targets[from][k].insert(to);
                }
            }
        }
    }
    targets
}

/// Lemma 2: along the grouping vector and each auxiliary vector, a group
/// depends on (at most) one other group. Boundary-clipped groups can see
/// zero targets; more than one is a violation.
pub fn check_lemma2(p: &Partitioning) -> Vec<LawViolation> {
    let omega: BTreeSet<usize> = p.vectors().omega().into_iter().collect();
    let mut violations = Vec::new();
    for (gid, per_dep) in targets_per_direction(p).iter().enumerate() {
        for (dep, targets) in omega.iter().map(|&d| (d, &per_dep[d])) {
            if targets.len() > 1 {
                violations.push(LawViolation::MultiTargetAlongOmega {
                    group: gid,
                    dep,
                    targets: targets.iter().copied().collect(),
                });
            }
        }
    }
    violations
}

/// Lemma 3: along every remaining (non-grouping, non-auxiliary, nonzero)
/// projected dependence, a group sends data to at most two groups.
pub fn check_lemma3(p: &Partitioning) -> Vec<LawViolation> {
    let omega: BTreeSet<usize> = p.vectors().omega().into_iter().collect();
    let nonzero: BTreeSet<usize> = p.projected().nonzero_dep_indices().into_iter().collect();
    let mut violations = Vec::new();
    for (gid, per_dep) in targets_per_direction(p).iter().enumerate() {
        for &dep in nonzero.difference(&omega) {
            let targets = &per_dep[dep];
            if targets.len() > 2 {
                violations.push(LawViolation::TooManyTargetsOffOmega {
                    group: gid,
                    dep,
                    targets: targets.iter().copied().collect(),
                });
            }
        }
    }
    violations
}

/// Run every validator; empty result means the partitioning satisfies
/// all the paper's structural laws.
pub fn check_all(p: &Partitioning) -> Vec<LawViolation> {
    let mut v = check_theorem1(p);
    v.extend(check_theorem2(p));
    v.extend(check_lemma2(p));
    v.extend(check_lemma3(p));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{partition, PartitionConfig};
    use loom_hyperplane::TimeFn;
    use loom_loopir::IterSpace;
    use loom_rational::QVec;

    #[test]
    fn l1_satisfies_all_laws() {
        let p = partition(
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![vec![0, 1], vec![1, 1], vec![1, 0]],
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap();
        assert_eq!(check_all(&p), vec![]);
    }

    #[test]
    fn matmul_satisfies_all_laws() {
        let p = partition(
            IterSpace::rect(&[4, 4, 4]).unwrap(),
            vec![vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 1]],
            TimeFn::wavefront(3),
            &PartitionConfig {
                grouping_choice: Some(0),
                seed: Some(QVec::from_ints(&[-1, -1, 2])),
            },
        )
        .unwrap();
        assert_eq!(check_all(&p), vec![]);
    }

    #[test]
    fn matmul_all_grouping_choices_satisfy_laws() {
        for choice in 0..3 {
            let p = partition(
                IterSpace::rect(&[4, 4, 4]).unwrap(),
                vec![vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 1]],
                TimeFn::wavefront(3),
                &PartitionConfig {
                    grouping_choice: Some(choice),
                    seed: None,
                },
            )
            .unwrap();
            assert_eq!(check_all(&p), vec![], "violation with choice {choice}");
        }
    }

    #[test]
    fn matvec_satisfies_all_laws() {
        let p = partition(
            IterSpace::rect(&[12, 12]).unwrap(),
            vec![vec![1, 0], vec![0, 1]],
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap();
        assert_eq!(check_all(&p), vec![]);
    }

    #[test]
    fn five_point_stencil_satisfies_laws() {
        // D = {(0,1), (1,0), (1,1)} with larger extent and Π = (1,2):
        // exercises unequal Π coefficients.
        let deps = vec![vec![0, 1], vec![1, 0], vec![1, 1]];
        let pi = TimeFn::new(vec![1, 2]);
        assert!(pi.is_legal_for(&deps));
        let p = partition(
            IterSpace::rect(&[6, 6]).unwrap(),
            deps,
            pi,
            &PartitionConfig::default(),
        )
        .unwrap();
        assert_eq!(check_theorem1(&p), vec![]);
        assert_eq!(check_theorem2(&p), vec![]);
    }
}
