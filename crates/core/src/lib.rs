//! `loom-core` — the public façade of the Sheu–Tai (1991) reproduction.
//!
//! One call takes a nested loop from source form to a simulated parallel
//! execution on a hypercube:
//!
//! ```
//! use loom_core::{Pipeline, PipelineConfig};
//! let w = loom_workloads::matvec::workload(16);
//! let out = Pipeline::new(w.nest.clone())
//!     .run(&PipelineConfig { cube_dim: 2, ..Default::default() })
//!     .unwrap();
//! assert_eq!(out.pi.coeffs(), &[1, 1]);            // hyperplane method
//! assert_eq!(out.partitioning.num_blocks(), 16);   // Algorithm 1
//! assert!(out.sim.is_some());                      // simulated machine
//! ```
//!
//! The stages (each usable on its own through the substrate crates):
//!
//! 1. dependence extraction ([`loom_loopir::deps`]),
//! 2. time transformation by the hyperplane method ([`loom_hyperplane`]),
//! 3. partitioning into blocks — Algorithm 1 ([`loom_partition`]),
//! 4. hypercube mapping — Algorithm 2 ([`loom_mapping`]),
//! 5. discrete-event execution on the machine model ([`loom_machine`]).
//!
//! [`analytic`] implements the paper's closed-form `T_exec` model
//! (Table I), and [`report`] renders the aligned text tables the repro
//! binaries print.

#![deny(missing_docs)]

pub mod analytic;
pub mod explore;
pub mod obs_export;
pub mod pipeline;
pub mod report;
pub mod symbolic_cost;

pub use pipeline::{
    MachineOptions, PartitionedStage, Pipeline, PipelineConfig, PipelineError, PipelineOutput,
    Placement, Target,
};
