//! Stage one of the resilient front end: a spanned, error-recovering
//! lexer.
//!
//! Unlike the seed lexer (which aborted on the first bad character),
//! this one never fails: characters outside the alphabet become one
//! [`LpCode::InvalidChar`] diagnostic per run and are skipped,
//! overflowing integer literals become [`LpCode::IntOverflow`] with a
//! `0` poison token, and the token stream is capped at
//! [`FrontLimits::max_tokens`] so adversarial input cannot make the
//! parser allocate without bound. Every token carries its byte span so
//! downstream diagnostics can point at real source positions.

use crate::front::{line_col, FrontDiag, FrontLimits, LpCode};

/// A half-open byte range into the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SrcSpan {
    /// First byte of the token.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`for`, `to`, `step`, `max`, `min`).
    Ident(String),
    /// An integer literal (overflows are poisoned to `0` + `LP002`).
    Int(i64),
    /// One of `[ ] ( ) , ; = + - *`.
    Sym(char),
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The classified content.
    pub kind: TokKind,
    /// Where it sits in the source.
    pub span: SrcSpan,
}

/// The lexer's output: the (possibly truncated) token stream plus any
/// diagnostics. Lexing never aborts; `truncated` records that the
/// token cap cut the stream short.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LexOutput {
    /// The tokens, in source order.
    pub tokens: Vec<Token>,
    /// Lexer diagnostics (`LP001`, `LP002`, `LP008`), in source order.
    pub diags: Vec<FrontDiag>,
    /// `true` iff `max_tokens` stopped the scan before end of input.
    pub truncated: bool,
}

/// Make a diagnostic with its line/column resolved against `src`.
pub(crate) fn diag(
    src: &str,
    code: LpCode,
    start: usize,
    end: usize,
    message: String,
) -> FrontDiag {
    let (line, col) = line_col(src, start);
    FrontDiag {
        code,
        start,
        end,
        line,
        col,
        message,
    }
}

/// Tokenize `src` under `limits`. The caller is responsible for the
/// input-size cap (the parser checks it before calling, so the error
/// is reported exactly once).
pub fn lex(src: &str, limits: &FrontLimits) -> LexOutput {
    let bytes = src.as_bytes();
    let mut out = LexOutput::default();
    let mut i = 0;
    while i < bytes.len() {
        if out.tokens.len() >= limits.max_tokens {
            out.diags.push(diag(
                src,
                LpCode::LimitExceeded,
                i,
                i,
                format!(
                    "token limit exceeded: more than {} tokens; rest of input ignored",
                    limits.max_tokens
                ),
            ));
            out.truncated = true;
            break;
        }
        let c = bytes[i] as char;
        if c == '#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident(src[start..i].to_string()),
                span: SrcSpan { start, end: i },
            });
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: i64 = src[start..i].parse().unwrap_or_else(|_| {
                out.diags.push(diag(
                    src,
                    LpCode::IntOverflow,
                    start,
                    i,
                    "integer too large".into(),
                ));
                0
            });
            out.tokens.push(Token {
                kind: TokKind::Int(n),
                span: SrcSpan { start, end: i },
            });
        } else if "[](),;=+-*".contains(c) {
            out.tokens.push(Token {
                kind: TokKind::Sym(c),
                span: SrcSpan {
                    start: i,
                    end: i + 1,
                },
            });
            i += 1;
        } else {
            // One diagnostic per run of invalid bytes: a megabyte of
            // garbage yields one LP001, not a diagnostic flood.
            let start = i;
            while i < bytes.len() {
                let c = bytes[i] as char;
                let valid = c == '#'
                    || c.is_whitespace()
                    || c.is_ascii_alphanumeric()
                    || c == '_'
                    || "[](),;=+-*".contains(c);
                if valid {
                    break;
                }
                // Step over whole UTF-8 sequences, never mid-codepoint.
                i += src[i..].chars().next().map_or(1, char::len_utf8);
            }
            let shown: String = src[start..i].chars().take(8).collect();
            out.diags.push(diag(
                src,
                LpCode::InvalidChar,
                start,
                i,
                format!("unexpected character(s) `{shown}`"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src, &FrontLimits::default())
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokens_carry_spans() {
        let out = lex("for i = 10", &FrontLimits::default());
        assert!(out.diags.is_empty());
        assert_eq!(out.tokens.len(), 4);
        assert_eq!(out.tokens[0].span, SrcSpan { start: 0, end: 3 });
        assert_eq!(out.tokens[3].span, SrcSpan { start: 8, end: 10 });
        assert_eq!(out.tokens[3].kind, TokKind::Int(10));
    }

    #[test]
    fn comments_and_whitespace_skipped() {
        assert_eq!(
            kinds("# all comment\n  a = 1 ; # trailing"),
            vec![
                TokKind::Ident("a".into()),
                TokKind::Sym('='),
                TokKind::Int(1),
                TokKind::Sym(';'),
            ]
        );
    }

    #[test]
    fn invalid_runs_become_one_diag_and_lexing_continues() {
        let out = lex("a @@@ b ! c", &FrontLimits::default());
        assert_eq!(out.diags.len(), 2);
        assert_eq!(out.diags[0].code, LpCode::InvalidChar);
        assert_eq!(out.diags[0].start, 2);
        assert_eq!(out.diags[0].end, 5);
        assert_eq!(
            out.tokens.iter().map(|t| &t.kind).collect::<Vec<_>>(),
            vec![
                &TokKind::Ident("a".into()),
                &TokKind::Ident("b".into()),
                &TokKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn multibyte_garbage_does_not_split_codepoints() {
        let out = lex("α β\nfor", &FrontLimits::default());
        assert_eq!(out.diags.len(), 2); // two runs, split by valid whitespace
        assert_eq!(kinds("α β\nfor"), vec![TokKind::Ident("for".into())]);
    }

    #[test]
    fn int_overflow_poisons_to_zero() {
        let out = lex("99999999999999999999", &FrontLimits::default());
        assert_eq!(out.diags.len(), 1);
        assert_eq!(out.diags[0].code, LpCode::IntOverflow);
        assert_eq!(out.tokens[0].kind, TokKind::Int(0));
    }

    #[test]
    fn token_cap_truncates_with_diag() {
        let limits = FrontLimits {
            max_tokens: 4,
            ..FrontLimits::default()
        };
        let out = lex("a b c d e f", &limits);
        assert!(out.truncated);
        assert_eq!(out.tokens.len(), 4);
        assert_eq!(out.diags.len(), 1);
        assert_eq!(out.diags[0].code, LpCode::LimitExceeded);
    }

    #[test]
    fn diags_carry_line_and_column() {
        let out = lex("ok\n  @bad", &FrontLimits::default());
        assert_eq!(out.diags.len(), 1);
        assert_eq!((out.diags[0].line, out.diags[0].col), (2, 3));
    }
}
