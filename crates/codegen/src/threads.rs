//! Real parallel execution: run a generated SPMD program on OS threads
//! with message channels — the closest a host machine gets to the
//! paper's multicomputer.
//!
//! One thread per simulated processor, each owning a private
//! [`Memory`]; sends go through `std::sync::mpsc` channels; receives
//! block on the channel and buffer out-of-order tags. Because the
//! generated programs are deadlock-free (receives always wait on
//! strictly earlier hyperplane steps), the threads always terminate,
//! and because each processor's value computation is fully determined
//! by its program, the gathered result is *bit-identical* across runs
//! and to the sequential oracle — asserted by the tests.

use crate::gen::Codegen;
use crate::ops::{Op, Tag};
use loom_exec::memory::{Element, Memory};
use loom_loopir::LoopNest;
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Duration;

/// How long a worker waits on one receive before declaring the program
/// inconsistent. Generous: correct generated programs deliver within
/// microseconds; a corrupted program (missing send) can deadlock
/// *cyclically*, which channel closure alone cannot detect.
const RECV_TIMEOUT: Duration = Duration::from_secs(2);

/// A threaded-run failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThreadError {
    /// A receive's channel closed — or timed out — before its tag
    /// arrived: the program was inconsistent (a matching send never
    /// executed, possibly in a deadlocked cycle).
    MissingMessage {
        /// The processor that was waiting.
        proc: u32,
        /// The tag it waited for.
        tag: Tag,
    },
    /// A worker thread panicked.
    WorkerPanicked {
        /// The processor whose thread died.
        proc: u32,
    },
}

impl std::fmt::Display for ThreadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadError::MissingMessage { proc, tag } => {
                write!(f, "P{proc} waited forever for {tag:?}")
            }
            ThreadError::WorkerPanicked { proc } => write!(f, "worker P{proc} panicked"),
        }
    }
}

impl std::error::Error for ThreadError {}

use crate::interp::{install, payload, record_local_writes, PayloadItem};

type Msg = (Tag, Vec<PayloadItem>);

/// Execute the SPMD program on real threads; returns per-processor
/// memories in processor order.
pub fn run_threaded(
    nest: &LoopNest,
    cg: &Codegen,
    init: &(dyn Fn(&str, &[i64]) -> f64 + Sync),
) -> Result<Vec<Memory>, ThreadError> {
    let n_procs = cg.program.num_procs();
    let mut senders: Vec<mpsc::Sender<Msg>> = Vec::with_capacity(n_procs);
    let mut receivers: Vec<Option<mpsc::Receiver<Msg>>> = Vec::with_capacity(n_procs);
    for _ in 0..n_procs {
        let (tx, rx) = mpsc::channel();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let results: Vec<Result<Memory, ThreadError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_procs);
        #[allow(clippy::needless_range_loop)]
        for p in 0..n_procs {
            let rx = receivers[p].take().expect("receiver taken once");
            // Each worker gets senders to every *other* processor; the
            // slot for itself stays empty. Generated programs never send
            // to self, and holding a sender to one's own channel would
            // keep it open forever — a blocked receive could then never
            // observe closure when a matching send is missing.
            let senders: Vec<Option<mpsc::Sender<Msg>>> = senders
                .iter()
                .enumerate()
                .map(|(q, tx)| (q != p).then(|| tx.clone()))
                .collect();
            let program = &cg.program;
            let specs = &cg.payload_specs;
            handles.push(scope.spawn(move || -> Result<Memory, ThreadError> {
                let mut mem = Memory::new();
                let mut versions: HashMap<Element, u32> = HashMap::new();
                let mut stash: HashMap<Tag, Vec<PayloadItem>> = HashMap::new();
                for op in &program.per_proc[p] {
                    match op {
                        Op::Recv { from: _, tag } => {
                            let items = loop {
                                if let Some(items) = stash.remove(tag) {
                                    break items;
                                }
                                match rx.recv_timeout(RECV_TIMEOUT) {
                                    Ok((t, items)) if t == *tag => break items,
                                    Ok((t, items)) => {
                                        stash.insert(t, items);
                                    }
                                    Err(_) => {
                                        // Disconnected or timed out: either
                                        // way the matching send is missing.
                                        return Err(ThreadError::MissingMessage {
                                            proc: p as u32,
                                            tag: *tag,
                                        });
                                    }
                                }
                            };
                            install(&mut mem, &mut versions, items);
                        }
                        Op::Compute { point } => {
                            let pt = &program.points[*point as usize];
                            for stmt in nest.stmts() {
                                let reads: Vec<f64> = stmt
                                    .reads()
                                    .iter()
                                    .map(|r| mem.read(r.array(), &r.element_at(pt), &init))
                                    .collect();
                                let value = stmt.semantics().eval(&reads);
                                mem.write(stmt.write().array(), stmt.write().element_at(pt), value);
                            }
                            record_local_writes(nest, pt, *point, &mut versions);
                        }
                        Op::Send { to, tag } => {
                            let pt = &program.points[tag.src_point as usize];
                            let items = payload(
                                nest,
                                &specs[tag.dep as usize],
                                pt,
                                tag.src_point,
                                &mem,
                                init,
                            );
                            // A closed receiver means that processor
                            // failed; surfaced at join time.
                            let tx = senders[*to as usize]
                                .as_ref()
                                .expect("generated programs never send to self");
                            let _ = tx.send((*tag, items));
                        }
                    }
                }
                Ok(mem)
            }));
        }
        drop(senders);
        handles
            .into_iter()
            .enumerate()
            .map(|(p, h)| {
                h.join()
                    .unwrap_or(Err(ThreadError::WorkerPanicked { proc: p as u32 }))
            })
            .collect()
    });

    results.into_iter().collect()
}

/// Run threaded and gather to a single global memory (same rule as the
/// deterministic interpreter: each element from its last writer).
pub fn run_threaded_gathered(
    nest: &LoopNest,
    cg: &Codegen,
    init: &(dyn Fn(&str, &[i64]) -> f64 + Sync),
) -> Result<Memory, ThreadError> {
    let memories = run_threaded(nest, cg, init)?;
    let prog = &cg.program;
    let mut proc_of_point = vec![0u32; prog.points.len()];
    for (p, ops) in prog.per_proc.iter().enumerate() {
        for op in ops {
            if let Op::Compute { point } = op {
                proc_of_point[*point as usize] = p as u32;
            }
        }
    }
    let mut last_writer: HashMap<Element, u32> = HashMap::new();
    for (id, pt) in prog.points.iter().enumerate() {
        for stmt in nest.stmts() {
            let e = (
                stmt.write().array().to_string(),
                stmt.write().element_at(pt),
            );
            last_writer.insert(e, proc_of_point[id]);
        }
    }
    let mut gathered = Memory::new();
    for ((array, element), owner) in last_writer {
        if let Some(v) = memories[owner as usize].get(&array, &element) {
            gathered.write(&array, element, v);
        }
    }
    Ok(gathered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use loom_exec::memory::address_hash_init;
    use loom_exec::{equivalent, sequential};
    use loom_hyperplane::TimeFn;
    use loom_partition::{partition, PartitionConfig};

    fn check(w: &loom_workloads::Workload, procs: usize) {
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let assignment: Vec<usize> = (0..p.num_blocks()).map(|b| b % procs).collect();
        let cg = match generate(&w.nest, &p, &assignment, procs) {
            Ok(cg) => cg,
            Err(e) => {
                // conv2d accumulates y over a 2-D tap lattice: value
                // routing is (correctly) refused rather than mis-computed.
                assert_eq!(w.nest.name(), "conv2d", "{}: unexpected {e}", w.nest.name());
                return;
            }
        };
        let gathered = run_threaded_gathered(&w.nest, &cg, &address_hash_init)
            .unwrap_or_else(|e| panic!("{}: {e}", w.nest.name()));
        let serial = sequential(&w.nest, &address_hash_init);
        assert_eq!(
            equivalent(&gathered, &serial),
            Ok(()),
            "{} diverged under real threads",
            w.nest.name()
        );
    }

    #[test]
    fn threads_match_oracle_on_all_workloads() {
        for w in loom_workloads::all_default() {
            check(&w, 4);
        }
    }

    #[test]
    fn multidimensional_accumulation_rejected() {
        let w = loom_workloads::conv2d::workload(3, 2);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let n = p.num_blocks();
        let err = generate(&w.nest, &p, &vec![0; n], 1).unwrap_err();
        assert!(matches!(
            err,
            crate::gen::CodegenError::MultiDimensionalAccumulation { rank: 2, .. }
        ));
    }

    #[test]
    fn threads_deterministic_across_runs() {
        let w = loom_workloads::sor::workload(10, 10);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let assignment: Vec<usize> = (0..p.num_blocks()).map(|b| b % 3).collect();
        let cg = generate(&w.nest, &p, &assignment, 3).unwrap();
        let a = run_threaded_gathered(&w.nest, &cg, &address_hash_init).unwrap();
        let b = run_threaded_gathered(&w.nest, &cg, &address_hash_init).unwrap();
        assert_eq!(equivalent(&a, &b), Ok(()));
    }

    #[test]
    fn missing_message_detected() {
        let w = loom_workloads::l1::workload(4);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let mut cg = generate(&w.nest, &p, &[0, 1, 1, 0], 2).unwrap();
        for ops in &mut cg.program.per_proc {
            if let Some(pos) = ops.iter().position(|o| matches!(o, Op::Send { .. })) {
                ops.remove(pos);
                break;
            }
        }
        let err = run_threaded(&w.nest, &cg, &|_, _| 0.0).unwrap_err();
        assert!(matches!(err, ThreadError::MissingMessage { .. }));
    }
}
