//! Rich telemetry collected by the simulator when
//! [`SimConfig::collect_metrics`](crate::SimConfig::collect_metrics) is
//! on: per-processor tick breakdowns, per-link traffic, message hop
//! histograms, and a full cross-processor message log.
//!
//! Collection is strictly additive — it never changes event timing — so
//! a metered run and an unmetered run of the same program produce the
//! same makespan.

use loom_obs::{Histogram, Json};
use std::collections::BTreeMap;

/// Tick and event breakdown for one processor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcMetrics {
    /// Ticks spent executing tasks.
    pub compute_ticks: u64,
    /// Ticks the processor was occupied issuing sends (including any
    /// wait for a contended outgoing link).
    pub send_ticks: u64,
    /// Ticks spent in software receive processing (`t_recv`).
    pub recv_ticks: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
}

/// Traffic over one directed link `(from, to)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkMetrics {
    /// Messages that traversed the link.
    pub messages: u64,
    /// Words carried.
    pub words: u64,
    /// Ticks the link was transmitting.
    pub busy_ticks: u64,
    /// Ticks messages queued waiting for the link (only nonzero when
    /// `link_contention` is modeled).
    pub wait_ticks: u64,
}

/// One cross-processor message, from send issue to arrival.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsgRecord {
    /// Sending processor.
    pub src_proc: u32,
    /// Receiving processor.
    pub dst_proc: u32,
    /// The completed task whose results the message carries.
    pub src_task: u32,
    /// Destination tasks unblocked by the message.
    pub dst_tasks: Vec<u32>,
    /// Words carried.
    pub words: u64,
    /// Tick the sender started issuing the message.
    pub send_start: u64,
    /// Tick the sender became free again.
    pub send_end: u64,
    /// Tick the message arrived at the destination.
    pub arrival: u64,
    /// Route length in links.
    pub hops: u32,
    /// Extra in-flight ticks injected by fault noise (0 on fault-free
    /// runs) — lets the profiler attribute delay to fault recovery
    /// instead of the network.
    pub fault_delay: u64,
}

/// One software receive interval (`t_recv` ticks charged on the
/// destination processor before the unblocked tasks may run). Only
/// recorded when the machine's `t_recv` is nonzero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecvRecord {
    /// Receiving processor.
    pub proc: u32,
    /// Tick receive processing started.
    pub start: u64,
    /// Tick receive processing finished (`start + t_recv`).
    pub end: u64,
    /// Destination tasks the received message unblocks.
    pub tasks: Vec<u32>,
}

/// Everything the simulator measures beyond the basic [`SimReport`]
/// fields.
///
/// [`SimReport`]: crate::SimReport
#[derive(Clone, Debug, Default)]
pub struct SimMetrics {
    /// Per-processor breakdowns, indexed by processor id.
    pub procs: Vec<ProcMetrics>,
    /// Per-directed-link traffic, keyed `(from, to)`.
    pub links: BTreeMap<(usize, usize), LinkMetrics>,
    /// Distribution of message route lengths (in links).
    pub hops: Histogram,
    /// Every cross-processor message, in send order.
    pub messages: Vec<MsgRecord>,
    /// Every software receive interval, in dispatch order (empty unless
    /// the machine charges `t_recv`).
    pub recvs: Vec<RecvRecord>,
}

impl SimMetrics {
    /// A fresh metrics block for `n_procs` processors.
    pub fn new(n_procs: usize) -> SimMetrics {
        SimMetrics {
            procs: vec![ProcMetrics::default(); n_procs],
            ..SimMetrics::default()
        }
    }

    /// Total ticks messages spent queued at busy links.
    pub fn total_link_wait(&self) -> u64 {
        self.links.values().map(|l| l.wait_ticks).sum()
    }

    /// The busiest directed link and its metrics, if any traffic flowed.
    pub fn hottest_link(&self) -> Option<((usize, usize), &LinkMetrics)> {
        self.links
            .iter()
            .max_by_key(|(_, l)| (l.busy_ticks, l.messages))
            .map(|(&k, l)| (k, l))
    }

    /// Flatten to a JSON object (the shape `--metrics-out` writes).
    pub fn to_json(&self) -> Json {
        let procs = Json::Arr(
            self.procs
                .iter()
                .enumerate()
                .map(|(p, m)| {
                    Json::obj(vec![
                        ("proc", Json::from(p)),
                        ("compute_ticks", Json::from(m.compute_ticks)),
                        ("send_ticks", Json::from(m.send_ticks)),
                        ("recv_ticks", Json::from(m.recv_ticks)),
                        ("tasks", Json::from(m.tasks)),
                        ("msgs_sent", Json::from(m.msgs_sent)),
                        ("msgs_received", Json::from(m.msgs_received)),
                    ])
                })
                .collect(),
        );
        let links = Json::Arr(
            self.links
                .iter()
                .map(|(&(from, to), l)| {
                    Json::obj(vec![
                        ("from", Json::from(from)),
                        ("to", Json::from(to)),
                        ("messages", Json::from(l.messages)),
                        ("words", Json::from(l.words)),
                        ("busy_ticks", Json::from(l.busy_ticks)),
                        ("wait_ticks", Json::from(l.wait_ticks)),
                    ])
                })
                .collect(),
        );
        let hops = Json::Arr(
            self.hops
                .nonzero_buckets()
                .into_iter()
                .map(|(lo, hi, n)| {
                    Json::obj(vec![
                        ("lo", Json::from(lo)),
                        ("hi", Json::from(hi)),
                        ("count", Json::from(n)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("procs", procs),
            ("links", links),
            ("hop_histogram", hops),
            ("messages_logged", Json::from(self.messages.len())),
            ("recvs_logged", Json::from(self.recvs.len())),
            ("total_link_wait", Json::from(self.total_link_wait())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sizes_procs() {
        let m = SimMetrics::new(4);
        assert_eq!(m.procs.len(), 4);
        assert!(m.links.is_empty());
        assert_eq!(m.hops.count(), 0);
    }

    #[test]
    fn hottest_link_picks_busiest() {
        let mut m = SimMetrics::new(2);
        m.links.insert(
            (0, 1),
            LinkMetrics {
                messages: 1,
                words: 1,
                busy_ticks: 5,
                wait_ticks: 0,
            },
        );
        m.links.insert(
            (1, 0),
            LinkMetrics {
                messages: 3,
                words: 3,
                busy_ticks: 15,
                wait_ticks: 2,
            },
        );
        let ((from, to), l) = m.hottest_link().unwrap();
        assert_eq!((from, to), (1, 0));
        assert_eq!(l.busy_ticks, 15);
        assert_eq!(m.total_link_wait(), 2);
        assert!(SimMetrics::new(1).hottest_link().is_none());
    }

    #[test]
    fn json_shape() {
        let mut m = SimMetrics::new(1);
        m.procs[0].compute_ticks = 7;
        m.hops.record(1);
        let j = m.to_json();
        assert_eq!(
            j.get("procs")
                .unwrap()
                .idx(0)
                .unwrap()
                .get("compute_ticks")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        assert_eq!(j.get("hop_histogram").unwrap().as_arr().unwrap().len(), 1);
        // Round-trips through the parser.
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }
}
