//! Criterion bench: the numerical executors — sequential oracle
//! throughput, trace-order replay, and the SPMD interpreter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loom_codegen::generate;
use loom_exec::memory::address_hash_init;
use loom_exec::{execute_in_order, schedule_order, sequential};
use loom_hyperplane::{Schedule, TimeFn};
use loom_loopir::Point;
use loom_partition::{partition, PartitionConfig};
use std::hint::black_box;

fn bench_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_interpreter");
    for m in [16i64, 32, 64] {
        let w = loom_workloads::matvec::workload(m);
        group.throughput(Throughput::Elements((m * m) as u64));
        group.bench_with_input(BenchmarkId::new("matvec", m), &m, |b, _| {
            b.iter(|| black_box(sequential(&w.nest, &address_hash_init).len()))
        });
    }
    group.finish();
}

fn bench_ordered_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordered_execution");
    let w = loom_workloads::sor::workload(24, 24);
    let deps = w.verified_deps();
    let points: Vec<Point> = w.nest.space().points().collect();
    let sched = Schedule::build(TimeFn::new(w.pi.clone()), w.nest.space());
    let order = schedule_order(&points, &sched);
    group.throughput(Throughput::Elements(points.len() as u64));
    group.bench_function("sor24_front_order", |b| {
        b.iter(|| {
            black_box(
                execute_in_order(&w.nest, &points, &order, &deps, &address_hash_init)
                    .unwrap()
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_spmd_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmd_interpreter");
    for m in [16i64, 32] {
        let w = loom_workloads::matvec::workload(m);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let assignment: Vec<usize> = (0..p.num_blocks()).map(|b| b % 4).collect();
        let cg = generate(&w.nest, &p, &assignment, 4).unwrap();
        group.throughput(Throughput::Elements((m * m) as u64));
        group.bench_with_input(BenchmarkId::new("matvec_4proc", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    loom_codegen::run(&w.nest, &cg, &address_hash_init)
                        .unwrap()
                        .messages,
                )
            })
        });
    }
    group.finish();
}

fn bench_codegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmd_codegen");
    let w = loom_workloads::sor::workload(24, 24);
    let p = partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .unwrap();
    let assignment: Vec<usize> = (0..p.num_blocks()).map(|b| b % 8).collect();
    group.bench_function("sor24_8proc", |b| {
        b.iter(|| black_box(generate(&w.nest, &p, &assignment, 8).unwrap().program.num_messages()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_oracle,
    bench_ordered_execution,
    bench_spmd_interpreter,
    bench_codegen
);
criterion_main!(benches);
