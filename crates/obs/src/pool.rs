//! `loom-pool` — a small deterministic work pool on scoped OS threads.
//!
//! The explore path of `loom-core` fans thousands of independent
//! pipeline runs out over a handful of workers; this module is the
//! zero-external-deps pool behind it. Determinism is the design
//! constraint: [`Pool::map_indexed`] always returns results **in input
//! order**, whatever order the workers actually ran, and a pool with
//! `threads = 1` takes the exact serial path (no threads spawned, no
//! queue, items processed front to back), so `threads ∈ {1, n}` can be
//! compared bit for bit.
//!
//! Workers pull items from a shared atomic cursor (a work *queue*, not
//! a pre-split range, so an expensive item late in the list cannot
//! strand one worker with all the slow work). When the pool carries an
//! enabled [`Recorder`], each call records:
//!
//! * `pool.tasks` — items processed,
//! * `pool.workers` — workers actually spawned,
//! * `pool.queue_depth` — items enqueued per call (the depth each
//!   dispatch started from),
//! * one `pool.worker.<k>` span per worker covering its busy interval.

use crate::recorder::Recorder;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many threads a pool should use: an explicit request, the
/// `LOOM_THREADS` environment variable, or the machine's parallelism.
///
/// `requested = 0` means "auto": `LOOM_THREADS` if set and parseable,
/// otherwise [`std::thread::available_parallelism`]. The result is
/// always at least 1.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("LOOM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A deterministic map-over-items work pool (see the module docs).
#[derive(Clone, Debug)]
pub struct Pool {
    threads: usize,
    recorder: Recorder,
}

impl Pool {
    /// A pool with the given worker count (`0` = auto via
    /// [`resolve_threads`]) and no instrumentation.
    pub fn new(threads: usize) -> Pool {
        Pool::with_recorder(threads, Recorder::disabled())
    }

    /// A pool that records `pool.*` counters and per-worker busy spans
    /// into `recorder`.
    pub fn with_recorder(threads: usize, recorder: Recorder) -> Pool {
        Pool {
            threads: resolve_threads(threads),
            recorder,
        }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item, returning results in input order.
    pub fn map_indexed<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.map_indexed_with(items, || (), |(), i, item| f(i, item))
    }

    /// [`map_indexed`](Pool::map_indexed) with worker-local state: each
    /// worker calls `init` once and threads the resulting scratch value
    /// through every item it processes (the serial path uses a single
    /// scratch for all items). This is how explore reuses one
    /// `SimScratch` per worker across thousands of simulations.
    pub fn map_indexed_with<S, I, T, F, N>(&self, items: &[I], init: N, f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        N: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &I) -> T + Sync,
    {
        let n = items.len();
        self.recorder.add("pool.tasks", n as u64);
        self.recorder.add("pool.queue_depth", n as u64);
        let workers = self.threads.min(n);
        self.recorder.flight().emit(
            "pool.map",
            &[
                ("tasks", crate::json::Json::from(n)),
                ("workers", crate::json::Json::from(workers)),
            ],
        );
        if workers <= 1 {
            // The exact serial path: no threads, no cursor, input order.
            self.recorder.add("pool.workers", 1.min(n as u64));
            let _busy = (n > 0).then(|| self.recorder.span("pool.worker.0"));
            let mut scratch = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(&mut scratch, i, item))
                .collect();
        }
        self.recorder.add("pool.workers", workers as u64);
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|k| {
                    let cursor = &cursor;
                    let f = &f;
                    let init = &init;
                    let recorder = self.recorder.clone();
                    scope.spawn(move || {
                        let span_name = format!("pool.worker.{k}");
                        let _busy = recorder.span(&span_name);
                        let mut scratch = init();
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(&mut scratch, i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (i, value) in h.join().expect("pool worker panicked") {
                    debug_assert!(slots[i].is_none(), "item {i} produced twice");
                    slots[i] = Some(value);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every item processed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_arrive_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let out = pool.map_indexed(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..100).collect();
        let serial = Pool::new(1).map_indexed(&items, |_, &x| x.wrapping_mul(0x9E37_79B9));
        let parallel = Pool::new(4).map_indexed(&items, |_, &x| x.wrapping_mul(0x9E37_79B9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_local_state_is_reused() {
        // Each worker's scratch counts the items it saw; the totals must
        // cover every item exactly once.
        let items: Vec<u64> = (0..64).collect();
        let seen = AtomicU64::new(0);
        let pool = Pool::new(4);
        let out = pool.map_indexed_with(
            &items,
            || 0u64,
            |count, _, &x| {
                *count += 1;
                seen.fetch_add(1, Ordering::Relaxed);
                (x, *count)
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 64);
        // Per-worker counts are contiguous 1..=k sequences; per item the
        // value is at least 1 and at most the item count.
        assert!(out.iter().all(|&(_, c)| (1..=64).contains(&c)));
        assert_eq!(out.iter().map(|&(x, _)| x).collect::<Vec<_>>(), items);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u64> = Vec::new();
        assert!(Pool::new(4).map_indexed(&items, |_, &x| x).is_empty());
        assert!(Pool::new(1).map_indexed(&items, |_, &x| x).is_empty());
    }

    #[test]
    fn counters_and_spans_recorded() {
        let rec = Recorder::enabled();
        let pool = Pool::with_recorder(3, rec.clone());
        let items: Vec<u64> = (0..10).collect();
        pool.map_indexed(&items, |_, &x| x);
        let counters = rec.counters();
        assert_eq!(counters.get("pool.tasks"), Some(&10));
        assert_eq!(counters.get("pool.workers"), Some(&3));
        assert_eq!(counters.get("pool.queue_depth"), Some(&10));
        let spans = rec.spans();
        let busy = spans
            .iter()
            .filter(|s| s.name.starts_with("pool.worker."))
            .count();
        assert_eq!(busy, 3, "one busy span per worker: {spans:?}");
    }

    #[test]
    fn thread_resolution_prefers_explicit() {
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn more_workers_than_items_degrades_gracefully() {
        let items: Vec<u64> = vec![1, 2];
        let out = Pool::new(16).map_indexed(&items, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }
}
