//! A4 — beyond the paper: the same partitioned blocks mapped onto
//! hypercube, mesh, and ring machines of equal size (the "various
//! machines" the paper's conclusion defers to future techniques).

use loom_bench::{maybe_write_metrics, partition_workload};
use loom_core::obs_export::sim_json;
use loom_core::report::Table;
use loom_machine::{simulate, MachineParams, Program, SimConfig, Topology};
use loom_mapping::other_targets::{map_partitioning_mesh, map_partitioning_ring};
use loom_mapping::{map_partitioning, metrics};
use loom_obs::Json;
use loom_partition::Tig;

fn main() {
    println!("A4 — one partitioning, three machines of 8 processors\n");
    let params = MachineParams::classic_1991();
    let workloads = [
        loom_workloads::matvec::workload(32),
        loom_workloads::sor::workload(16, 16),
    ];
    let mut t = Table::new([
        "workload",
        "machine",
        "remote",
        "dilation",
        "congestion",
        "makespan",
    ]);
    let mut metrics_doc: Vec<(String, Json)> = Vec::new();
    for w in &workloads {
        let p = partition_workload(w);
        let tig = Tig::from_partitioning(&p);
        let flops = w.nest.flops_per_iteration();

        let cube = map_partitioning(&p, 3).expect("fits");
        let mesh = map_partitioning_mesh(&p, 2, 4).expect("fits");
        let ring = map_partitioning_ring(&p, 8).expect("fits");
        let cases: Vec<(&str, Topology, Vec<usize>)> = vec![
            (
                "hypercube(3)",
                Topology::Hypercube(3),
                cube.assignment().to_vec(),
            ),
            (
                "mesh 2x4",
                Topology::Mesh { rows: 2, cols: 4 },
                mesh.assignment().to_vec(),
            ),
            ("ring(8)", Topology::Ring(8), ring.assignment().to_vec()),
        ];
        for (name, topo, assignment) in cases {
            let q = metrics::evaluate_on(&tig, &assignment, &topo);
            let prog = Program::from_partitioning(&p, &assignment, 8, flops);
            let sim = simulate(
                &prog,
                &SimConfig {
                    params,
                    topology: topo,
                    words_per_arc: 1,
                    batch_messages: false,
                    link_contention: true,
                    record_trace: false,
                    collect_metrics: true,
                },
            )
            .expect("sim completes");
            metrics_doc.push((format!("{}_{name}", w.nest.name()), sim_json(&sim)));
            t.row([
                w.nest.name().to_string(),
                name.to_string(),
                format!("{}", q.remote_traffic),
                format!("{:.2}", q.mean_dilation()),
                format!("{}", q.max_link_congestion),
                format!("{}", sim.makespan),
            ]);
        }
    }
    println!("{t}");
    maybe_write_metrics(
        "a4_topologies",
        &Json::Obj(metrics_doc.into_iter().collect()),
    );
    println!(
        "expected shape: the blocks of these loops form a communication chain, so all\n\
         three machines carry it at dilation ~1 — the hypercube's extra links only\n\
         start to matter for higher-dimensional block graphs or under congestion."
    );
}
