//! Rule `LC001` — schedule legality: `Π·dᵢ ≥ 1` for every dependence.
//!
//! This is the hyperplane method's fundamental constraint: the time
//! transformation must strictly advance across every dependence, or the
//! transformed program consumes values before they are produced. The
//! dot product is taken in `i128`, so coefficient/vector magnitudes up
//! to `i64` can never wrap into a false verdict.

use crate::diag::{Diagnostic, RuleId, Span};
use loom_hyperplane::TimeFn;
use loom_loopir::Point;

/// Check `Π·d ≥ 1` for every dependence vector.
pub fn check_legality(pi: &TimeFn, deps: &[Point]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (index, d) in deps.iter().enumerate() {
        let span = Span::Dep {
            index,
            vector: d.clone(),
        };
        if d.len() != pi.dim() {
            out.push(Diagnostic::error(
                RuleId::ScheduleLegality,
                span,
                format!(
                    "dependence has dimension {}, but \u{3a0} has dimension {}",
                    d.len(),
                    pi.dim()
                ),
            ));
            continue;
        }
        if d.iter().all(|&x| x == 0) {
            out.push(Diagnostic::error(
                RuleId::ScheduleLegality,
                span,
                "zero dependence vector: an iteration cannot depend on itself",
            ));
            continue;
        }
        let dot: i128 = pi
            .coeffs()
            .iter()
            .zip(d)
            .map(|(&a, &b)| a as i128 * b as i128)
            .sum();
        if dot < 1 {
            out.push(Diagnostic::error(
                RuleId::ScheduleLegality,
                span,
                format!(
                    "\u{3a0}\u{b7}d = {dot} < 1; the schedule does not advance \
                     across this dependence"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn legal_pi_is_clean() {
        let pi = TimeFn::new(vec![1, 1]);
        let deps = vec![vec![0, 1], vec![1, 1], vec![1, 0]];
        assert!(check_legality(&pi, &deps).is_empty());
    }

    #[test]
    fn illegal_pi_flags_exactly_the_bad_deps() {
        let pi = TimeFn::new(vec![1, -1]);
        let deps = vec![vec![1, 0], vec![0, 1], vec![1, 1]];
        let ds = check_legality(&pi, &deps);
        // Π·(0,1) = −1 and Π·(1,1) = 0 are illegal; Π·(1,0) = 1 is fine.
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| d.severity == Severity::Error));
        assert_eq!(
            ds[0].span,
            Span::Dep {
                index: 1,
                vector: vec![0, 1]
            }
        );
        assert_eq!(
            ds[1].span,
            Span::Dep {
                index: 2,
                vector: vec![1, 1]
            }
        );
    }

    #[test]
    fn zero_and_mismatched_vectors_rejected() {
        let pi = TimeFn::new(vec![1, 1]);
        let ds = check_legality(&pi, &[vec![0, 0], vec![1]]);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn huge_coefficients_do_not_wrap() {
        // i64 arithmetic would overflow and could report a positive dot
        // product; the i128 path must still see the violation.
        let pi = TimeFn::new(vec![i64::MAX, i64::MAX]);
        let ds = check_legality(&pi, &[vec![1, -2]]);
        assert_eq!(ds.len(), 1);
    }
}
