//! Front-end diagnostics: stable `LP0NN` codes, source spans with
//! line/column positions, resource limits, and the outcome type the
//! resilient parser returns.
//!
//! The front end faces untrusted input (`loom check --file`, and
//! eventually `loom serve`), so instead of aborting on the first
//! problem it collects every diagnostic it can recover in one pass.
//! Each diagnostic carries a stable rule code — `LP001`…`LP008`, the
//! front-end counterpart of the checker's `LC0NN` catalogue — which
//! `loom-check` maps onto its `Report` machinery for human, JSON, and
//! SARIF rendering plus `--allow` suppression.

/// Stable identifiers for every front-end diagnostic. Like the
/// `LC0NN` rules, the numeric codes are part of the output contract:
/// golden tests snapshot them and CI greps them, so codes are never
/// reused or renumbered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LpCode {
    /// `LP001` — a character outside the `.loom` alphabet; the lexer
    /// skips the run and continues.
    InvalidChar,
    /// `LP002` — an integer literal that does not fit `i64`; the lexer
    /// substitutes `0` and continues.
    IntOverflow,
    /// `LP003` — a syntax error (`expected X, found Y`); the parser
    /// resynchronizes at the next statement, line, or bracket boundary.
    Expected,
    /// `LP004` — a subscript references an identifier that is not a
    /// loop index.
    UnknownIndex,
    /// `LP005` — a non-affine subscript (variable times variable).
    NonAffine,
    /// `LP006` — a malformed `step` clause (non-positive, non-constant
    /// bounds, or not an integer).
    BadStep,
    /// `LP007` — the recovered pieces do not form a valid nest (no
    /// loops, no statements, invalid bounds, dimension mismatch).
    InvalidNest,
    /// `LP008` — a resource limit was hit: input size, token count,
    /// expression depth, loop-nest depth, or the diagnostic cap.
    LimitExceeded,
}

impl LpCode {
    /// The stable code, e.g. `"LP001"`.
    pub fn code(self) -> &'static str {
        match self {
            LpCode::InvalidChar => "LP001",
            LpCode::IntOverflow => "LP002",
            LpCode::Expected => "LP003",
            LpCode::UnknownIndex => "LP004",
            LpCode::NonAffine => "LP005",
            LpCode::BadStep => "LP006",
            LpCode::InvalidNest => "LP007",
            LpCode::LimitExceeded => "LP008",
        }
    }

    /// The short kebab-case name, e.g. `"lex-invalid-char"`.
    pub fn name(self) -> &'static str {
        match self {
            LpCode::InvalidChar => "lex-invalid-char",
            LpCode::IntOverflow => "lex-int-overflow",
            LpCode::Expected => "parse-expected",
            LpCode::UnknownIndex => "parse-unknown-index",
            LpCode::NonAffine => "parse-non-affine",
            LpCode::BadStep => "parse-bad-step",
            LpCode::InvalidNest => "parse-invalid-nest",
            LpCode::LimitExceeded => "resource-limit",
        }
    }

    /// Every code, in numeric order.
    pub fn all() -> [LpCode; 8] {
        [
            LpCode::InvalidChar,
            LpCode::IntOverflow,
            LpCode::Expected,
            LpCode::UnknownIndex,
            LpCode::NonAffine,
            LpCode::BadStep,
            LpCode::InvalidNest,
            LpCode::LimitExceeded,
        ]
    }
}

impl std::fmt::Display for LpCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One recovered front-end diagnostic. All front-end diagnostics are
/// errors: the source does not conform to the grammar (`--allow` can
/// still downgrade them once they reach a `loom_check::Report`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontDiag {
    /// Which code fired.
    pub code: LpCode,
    /// Byte offset where the problem starts.
    pub start: usize,
    /// Byte offset one past where the problem ends (`start == end`
    /// marks a point, e.g. end-of-input).
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
    /// 1-based source column (in bytes) of `start`.
    pub col: u32,
    /// The human explanation.
    pub message: String,
}

impl std::fmt::Display for FrontDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "error[{}] {}:{}: {}",
            self.code, self.line, self.col, self.message
        )
    }
}

/// Resource caps the lexer and parser enforce on untrusted input.
/// Every violation is reported as an `LP008` diagnostic instead of an
/// unbounded allocation, a stack overflow, or a hang.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrontLimits {
    /// Largest accepted source, in bytes.
    pub max_input_bytes: usize,
    /// Largest accepted token count.
    pub max_tokens: usize,
    /// Deepest accepted expression/subscript nesting.
    pub max_depth: usize,
    /// Deepest accepted loop nest.
    pub max_dims: usize,
    /// Most diagnostics collected before the parser gives up.
    pub max_diags: usize,
}

impl Default for FrontLimits {
    fn default() -> FrontLimits {
        FrontLimits {
            max_input_bytes: 1 << 20,
            max_tokens: 1 << 17,
            max_depth: 64,
            max_dims: 32,
            max_diags: 64,
        }
    }
}

/// What the resilient parser returns: the nest it could build (partial
/// or complete) plus every diagnostic collected in the single pass.
///
/// Invariant: `diags.is_empty()` implies `nest.is_some()`. With
/// diagnostics present the nest may still be `Some` — the recovered
/// portion — which is what lets `--allow` accept slightly-damaged
/// input on purpose.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseOutcome {
    /// The (possibly partial) IR, when enough of the source survived.
    pub nest: Option<crate::nest::LoopNest>,
    /// Every diagnostic, in source-scan order.
    pub diags: Vec<FrontDiag>,
}

impl ParseOutcome {
    /// `true` iff any diagnostic was collected.
    pub fn has_errors(&self) -> bool {
        !self.diags.is_empty()
    }

    /// The first diagnostic in scan order, if any — what the
    /// abort-on-first-error compatibility wrapper reports.
    pub fn first_error(&self) -> Option<&FrontDiag> {
        self.diags.first()
    }
}

/// 1-based (line, column) of a byte offset. Columns count bytes, tabs
/// count as one. Offsets past the end map to the position just after
/// the last character.
pub fn line_col(src: &str, offset: usize) -> (u32, u32) {
    let offset = offset.min(src.len());
    let mut line = 1u32;
    let mut col = 1u32;
    for &b in &src.as_bytes()[..offset] {
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let codes: Vec<&str> = LpCode::all().iter().map(|c| c.code()).collect();
        assert_eq!(
            codes,
            vec!["LP001", "LP002", "LP003", "LP004", "LP005", "LP006", "LP007", "LP008"]
        );
        let mut names: Vec<&str> = LpCode::all().iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LpCode::all().len());
    }

    #[test]
    fn line_col_positions() {
        let src = "ab\ncd\n";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 4), (2, 2));
        assert_eq!(line_col(src, 6), (3, 1));
        // Past the end clamps.
        assert_eq!(line_col(src, 100), (3, 1));
        assert_eq!(line_col("", 0), (1, 1));
    }

    #[test]
    fn diag_renders_with_position() {
        let d = FrontDiag {
            code: LpCode::UnknownIndex,
            start: 5,
            end: 6,
            line: 2,
            col: 3,
            message: "unknown loop index `q`".into(),
        };
        assert_eq!(d.to_string(), "error[LP004] 2:3: unknown loop index `q`");
    }

    #[test]
    fn default_limits_are_sane() {
        let l = FrontLimits::default();
        assert!(l.max_input_bytes >= 1 << 16);
        assert!(l.max_tokens >= 1 << 12);
        assert!(l.max_depth >= 16);
        assert!(l.max_dims >= 6); // every paper workload fits
        assert!(l.max_diags >= 8);
    }
}
