//! The Task Interaction Graph (TIG) model used by the mapping phase.

use crate::blocks::Partitioning;
use crate::comm::block_traffic;
use std::collections::BTreeMap;

/// A Task Interaction Graph: one vertex per partitioned block, undirected
/// weighted edges for communication requirements (Sadayappan & Ercal's
/// model, as adopted in §IV of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tig {
    num_vertices: usize,
    /// Per-vertex computational weight (number of iterations).
    weights: Vec<u64>,
    /// Undirected edge weights keyed by `(min, max)` vertex pair.
    edges: BTreeMap<(usize, usize), u64>,
}

impl Tig {
    /// Build directly from vertex weights and edges (used for synthetic
    /// TIGs such as the paper's Fig. 8 4×4 mesh).
    pub fn from_parts(weights: Vec<u64>, edges: BTreeMap<(usize, usize), u64>) -> Tig {
        let num_vertices = weights.len();
        for &(a, b) in edges.keys() {
            assert!(a < b && b < num_vertices, "bad TIG edge ({a},{b})");
        }
        Tig {
            num_vertices,
            weights,
            edges,
        }
    }

    /// Build the TIG of a partitioning: vertex weights are block sizes,
    /// edge weights are the number of dependence arcs between the blocks
    /// (both directions folded together).
    pub fn from_partitioning(p: &Partitioning) -> Tig {
        let weights = p.blocks().iter().map(|b| b.len() as u64).collect();
        let mut edges: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        for ((a, b), w) in block_traffic(p) {
            let key = (a.min(b), a.max(b));
            *edges.entry(key).or_insert(0) += w;
        }
        Tig {
            num_vertices: p.num_blocks(),
            weights,
            edges,
        }
    }

    /// A `rows × cols` mesh TIG with unit weights (the shape of the
    /// paper's Fig. 8 example). Vertices are numbered row-major.
    pub fn mesh(rows: usize, cols: usize) -> Tig {
        let mut edges = BTreeMap::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.insert((v, v + 1), 1);
                }
                if r + 1 < rows {
                    edges.insert((v, v + cols), 1);
                }
            }
        }
        Tig {
            num_vertices: rows * cols,
            weights: vec![1; rows * cols],
            edges,
        }
    }

    /// Number of vertices (blocks).
    pub fn len(&self) -> usize {
        self.num_vertices
    }

    /// `true` iff the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.num_vertices == 0
    }

    /// Computational weight of vertex `v`.
    pub fn weight(&self, v: usize) -> u64 {
        self.weights[v]
    }

    /// All undirected edges with weights.
    pub fn edges(&self) -> impl Iterator<Item = ((usize, usize), u64)> + '_ {
        self.edges.iter().map(|(&k, &w)| (k, w))
    }

    /// Weight of the edge between `a` and `b` (0 if absent).
    pub fn edge_weight(&self, a: usize, b: usize) -> u64 {
        if a == b {
            return 0;
        }
        self.edges.get(&(a.min(b), a.max(b))).copied().unwrap_or(0)
    }

    /// Total communication volume (sum of edge weights).
    pub fn total_traffic(&self) -> u64 {
        self.edges.values().sum()
    }

    /// Neighbors of a vertex.
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        self.edges
            .keys()
            .filter_map(|&(a, b)| {
                if a == v {
                    Some(b)
                } else if b == v {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{partition, PartitionConfig};
    use loom_hyperplane::TimeFn;
    use loom_loopir::IterSpace;

    #[test]
    fn mesh_structure() {
        let t = Tig::mesh(4, 4);
        assert_eq!(t.len(), 16);
        // 4×4 mesh: 2·4·3 = 24 edges.
        assert_eq!(t.edges().count(), 24);
        assert_eq!(t.total_traffic(), 24);
        assert_eq!(t.neighbors(0), vec![1, 4]);
        assert_eq!(t.neighbors(5).len(), 4);
        assert_eq!(t.edge_weight(0, 1), 1);
        assert_eq!(t.edge_weight(0, 5), 0);
        assert_eq!(t.edge_weight(3, 3), 0);
    }

    #[test]
    fn tig_from_l1_partitioning() {
        let p = partition(
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![vec![0, 1], vec![1, 1], vec![1, 0]],
            TimeFn::new(vec![1, 1]),
            &PartitionConfig::default(),
        )
        .unwrap();
        let t = Tig::from_partitioning(&p);
        assert_eq!(t.len(), 4);
        // Total undirected traffic equals the 12 interblock arcs.
        assert_eq!(t.total_traffic(), 12);
        // Vertex weights are block sizes summing to 16.
        let sum: u64 = (0..t.len()).map(|v| t.weight(v)).sum();
        assert_eq!(sum, 16);
    }

    #[test]
    #[should_panic(expected = "bad TIG edge")]
    fn from_parts_validates_edges() {
        let mut edges = BTreeMap::new();
        edges.insert((1, 1), 3u64);
        Tig::from_parts(vec![1, 1], edges);
    }
}
