//! E1 — Fig. 1: the computational structure and hyperplanes of loop (L1).
//!
//! Prints the 4×4 iteration grid with each point's hyperplane number
//! `i + j` and the wavefront contents step by step.

use loom_core::report::Table;
use loom_hyperplane::{Schedule, TimeFn};

fn main() {
    let w = loom_workloads::l1::workload(4);
    let deps = w.verified_deps();
    println!("Fig. 1 — computational structure of L1, Π = (1,1)\n");
    println!("dependence vectors: {deps:?}\n");

    // The grid, annotated with hyperplane numbers.
    println!("hyperplane number (i+j) per index point:");
    for i in 0..4 {
        let row: Vec<String> = (0..4).map(|j| format!("{}", i + j)).collect();
        println!("  i={i}:  {}", row.join(" "));
    }
    println!();

    let sched = Schedule::build(TimeFn::new(w.pi.clone()), w.nest.space());
    sched
        .validate(w.nest.space(), &deps)
        .expect("Π = (1,1) is legal for L1");
    let mut t = Table::new([
        "step",
        "width",
        "wavefront (points executed simultaneously)",
    ]);
    for s in 0..sched.num_steps() {
        let pts: Vec<String> = sched.front(s).iter().map(|p| format!("{p:?}")).collect();
        t.row([
            format!("{s}"),
            format!("{}", sched.front(s).len()),
            pts.join(" "),
        ]);
    }
    println!("{t}");
    println!(
        "paper: 7 hyperplanes sweep the 16 points; max parallelism {} on the main diagonal",
        sched.max_parallelism()
    );
    assert_eq!(sched.num_steps(), 7);
    assert_eq!(sched.max_parallelism(), 4);
}
