//! Criterion bench: Algorithm 2 (cluster formation + Gray allocation)
//! and mapping-quality evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loom_hyperplane::TimeFn;
use loom_mapping::{baseline, map_partitioning, metrics, Hypercube};
use loom_partition::{partition, PartitionConfig, Tig};
use std::hint::black_box;

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2");
    for m in [32i64, 64, 128] {
        let w = loom_workloads::matvec::workload(m);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("gray_map", m), &m, |b, _| {
            b.iter(|| black_box(map_partitioning(&p, 3).unwrap()))
        });
    }
    group.finish();
}

fn bench_quality_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_quality");
    let tig = Tig::mesh(16, 16);
    let cube = Hypercube::new(4);
    let assignments = vec![
        ("naive", baseline::naive(256, 16)),
        ("random", baseline::random(256, 16, 7)),
    ];
    for (name, a) in assignments {
        group.bench_function(name, |b| {
            b.iter(|| black_box(metrics::evaluate(&tig, &a, cube)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping, bench_quality_metrics);
criterion_main!(benches);
