//! Generating the per-processor SPMD programs.

use crate::ops::{Op, SpmdProgram, Tag};
use loom_loopir::deps::{extract_dependences, DepKind, DepOptions};
use loom_loopir::{LoopNest, Point};
use loom_partition::Partitioning;
use loom_rational::intlinalg::{try_integer_nullspace, IMat};

/// Why SPMD code cannot be generated for a nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// An array element is written by a ≥2-dimensional lattice of
    /// iterations (e.g. conv2d's `y[i,j]` accumulated over both tap
    /// dimensions). Value forwarding along dependence-lattice generators
    /// can then not reconstruct the sequential accumulation order — the
    /// paper's single-assignment rewriting likewise assumes one
    /// propagation vector per variable. Linearize the accumulation (one
    /// reduction dimension) to generate code.
    MultiDimensionalAccumulation {
        /// The array whose writers span a ≥2-D lattice per element.
        array: String,
        /// Rank of the per-element writer lattice.
        rank: usize,
    },
    /// Integer arithmetic overflowed while analyzing a write access's
    /// subscript lattice (pathological subscript coefficients).
    Numeric {
        /// The array whose subscripts triggered the overflow.
        array: String,
        /// The failing operation.
        error: loom_rational::NumericError,
    },
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::MultiDimensionalAccumulation { array, rank } => write!(
                f,
                "array `{array}` is accumulated over a {rank}-dimensional iteration \
                 lattice per element; SPMD value forwarding supports chains (rank <= 1)"
            ),
            CodegenError::Numeric { array, error } => {
                write!(f, "subscript analysis of array `{array}` failed: {error}")
            }
        }
    }
}

/// What a message for dependence index `k` carries, evaluated at the
/// *source* iteration. Flow/output dependences carry the element the
/// source statement writes; input-reuse dependences forward the
/// element(s) the source statement read (the paper's single-assignment
/// propagation). Anti and output dependences carry no data — the tag
/// itself is the synchronization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PayloadSpec {
    /// The write access of statement `stmt`, evaluated at the source.
    Write {
        /// Statement index in the nest body.
        stmt: usize,
    },
    /// Every read access of `array` in statement `stmt`, evaluated at
    /// the source.
    Reads {
        /// Statement index in the nest body.
        stmt: usize,
        /// The array being forwarded.
        array: String,
    },
}

/// The generated code plus the metadata the interpreter needs.
#[derive(Clone, Debug)]
pub struct Codegen {
    /// The SPMD program.
    pub program: SpmdProgram,
    /// Per dependence index: the payload specification.
    pub payload_specs: Vec<Vec<PayloadSpec>>,
    /// The dependence vectors, aligned with payload indices.
    pub dep_vectors: Vec<Point>,
}

/// Generate SPMD code for a partitioned and mapped nest.
///
/// Each processor's program visits its iterations in hyperplane order
/// (step, then lexicographic point): for each iteration it first
/// receives every remote predecessor's message, then computes, then
/// sends to every remote successor. Sends directly follow the compute
/// that produces the data, so every blocking receive waits on a
/// strictly earlier hyperplane step — the generated programs cannot
/// deadlock, which [`crate::interp::run`] verifies dynamically.
///
/// Panics if `assignment` does not cover the partitioning's blocks;
/// returns [`CodegenError`] for nests outside the value-routable class.
pub fn generate(
    nest: &LoopNest,
    partitioning: &Partitioning,
    assignment: &[usize],
    num_procs: usize,
) -> Result<Codegen, CodegenError> {
    assert_eq!(
        assignment.len(),
        partitioning.num_blocks(),
        "assignment/blocks mismatch"
    );
    assert!(assignment.iter().all(|&p| p < num_procs));

    // The value-routing precondition: each written element's writer set
    // (a coset of the write subscript's integer nullspace lattice) must
    // be a chain — rank ≤ 1.
    for stmt in nest.stmts() {
        let w = stmt.write();
        if w.rank() == 0 {
            continue;
        }
        let rows: Vec<&[i64]> = w.subscripts().iter().map(|a| a.coeffs()).collect();
        let rank = try_integer_nullspace(&IMat::from_rows(&rows))
            .map_err(|error| CodegenError::Numeric {
                array: w.array().to_string(),
                error,
            })?
            .len();
        if rank >= 2 {
            return Err(CodegenError::MultiDimensionalAccumulation {
                array: w.array().to_string(),
                rank,
            });
        }
    }
    let cs = partitioning.structure();
    let pi = partitioning.time_fn();
    let dep_vectors: Vec<Point> = cs.deps().to_vec();

    // Payload specs per dependence index: every extracted dependence
    // whose vector matches contributes its transfer rule. Nests the
    // uniform extractor rejects were admitted through uniformization,
    // whose folded records carry the same vectors the partitioner saw.
    let records = extract_dependences(nest, DepOptions::default())
        .or_else(|_| loom_loopir::uniformize(nest, DepOptions::default()).map(|u| u.deps))
        .expect("nest was analyzable when partitioned");
    let mut payload_specs: Vec<Vec<PayloadSpec>> = vec![Vec::new(); dep_vectors.len()];
    for rec in &records {
        let Some(k) = dep_vectors.iter().position(|v| *v == rec.vector) else {
            continue; // vector filtered out upstream (e.g. anti/output off)
        };
        let spec = match rec.kind {
            DepKind::Flow | DepKind::Output => PayloadSpec::Write { stmt: rec.src_stmt },
            DepKind::Input => PayloadSpec::Reads {
                stmt: rec.src_stmt,
                array: rec.array.clone(),
            },
            DepKind::Anti => continue, // pure ordering
        };
        if !payload_specs[k].contains(&spec) {
            payload_specs[k].push(spec);
        }
    }

    let proc_of_point = |id: usize| -> u32 { assignment[partitioning.block_of(id)] as u32 };

    // Iterations per processor in (step, point) order.
    let mut per_proc_points: Vec<Vec<usize>> = vec![Vec::new(); num_procs];
    for id in 0..cs.len() {
        per_proc_points[proc_of_point(id) as usize].push(id);
    }
    for list in &mut per_proc_points {
        list.sort_by_key(|&id| (pi.time_of(&cs.points()[id]), cs.points()[id].clone()));
    }

    let mut per_proc: Vec<Vec<Op>> = vec![Vec::new(); num_procs];
    for (proc, points) in per_proc_points.iter().enumerate() {
        let ops = &mut per_proc[proc];
        for &id in points {
            let here = proc as u32;
            // Receives for remote predecessors, deterministic order.
            let mut recvs: Vec<Op> = Vec::new();
            for (k, d) in dep_vectors.iter().enumerate() {
                let pred: Point = cs.points()[id]
                    .iter()
                    .zip(d)
                    .map(|(&a, &b)| a - b)
                    .collect();
                if let Some(pid) = cs.id_of(&pred) {
                    let from = proc_of_point(pid);
                    if from != here {
                        recvs.push(Op::Recv {
                            from,
                            tag: Tag {
                                src_point: pid as u32,
                                dep: k as u16,
                            },
                        });
                    }
                }
            }
            recvs.sort_by_key(|op| match op {
                Op::Recv { from, tag } => (*from, *tag),
                _ => unreachable!(),
            });
            ops.extend(recvs);
            ops.push(Op::Compute { point: id as u32 });
            // Sends to remote successors, deterministic order.
            let mut sends: Vec<Op> = Vec::new();
            for (succ, k) in cs.successors(id) {
                let to = proc_of_point(succ);
                if to != here {
                    sends.push(Op::Send {
                        to,
                        tag: Tag {
                            src_point: id as u32,
                            dep: k as u16,
                        },
                    });
                }
            }
            sends.sort_by_key(|op| match op {
                Op::Send { to, tag } => (*to, *tag),
                _ => unreachable!(),
            });
            ops.extend(sends);
        }
    }

    Ok(Codegen {
        program: SpmdProgram {
            points: cs.points().to_vec(),
            per_proc,
        },
        payload_specs,
        dep_vectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_hyperplane::TimeFn;
    use loom_partition::{partition, PartitionConfig};

    fn l1_codegen(assignment: &[usize], procs: usize) -> Codegen {
        let w = loom_workloads::l1::workload(4);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        generate(&w.nest, &p, assignment, procs).expect("l1 is codegen-able")
    }

    #[test]
    fn computes_cover_space_and_messages_match() {
        let cg = l1_codegen(&[0, 0, 1, 1], 2);
        assert_eq!(cg.program.num_computes(), 16);
        assert!(cg.program.unmatched_messages().is_empty());
        // Messages equal the remote arcs of this assignment.
        assert!(cg.program.num_messages() > 0);
    }

    #[test]
    fn single_proc_has_no_messages() {
        let cg = l1_codegen(&[0, 0, 0, 0], 1);
        assert_eq!(cg.program.num_messages(), 0);
        assert_eq!(cg.program.num_computes(), 16);
    }

    #[test]
    fn recvs_precede_their_compute() {
        let cg = l1_codegen(&[0, 1, 2, 3], 4);
        // On each proc: walk ops; a Recv's tag src must never reference a
        // point later computed *before* it on the same proc (basic shape:
        // recv-compute-send pattern).
        for ops in &cg.program.per_proc {
            let mut last_was_send = false;
            for op in ops {
                match op {
                    Op::Recv { .. } => last_was_send = false,
                    Op::Compute { .. } => last_was_send = false,
                    Op::Send { .. } => last_was_send = true,
                }
            }
            let _ = last_was_send;
            // Program must end with compute or send, never a dangling recv.
            if let Some(last) = ops.last() {
                assert!(!matches!(last, Op::Recv { .. }));
            }
        }
    }

    #[test]
    fn payload_specs_cover_flow_and_input() {
        let w = loom_workloads::matvec::workload(4);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let cg = generate(&w.nest, &p, &[0, 1, 0, 1], 2).unwrap();
        // dep 0 = (0,1) = y accumulation (flow → Write);
        // dep 1 = (1,0) = x reuse (input → Reads).
        assert!(cg.payload_specs[0]
            .iter()
            .any(|s| matches!(s, PayloadSpec::Write { .. })));
        assert!(cg.payload_specs[1]
            .iter()
            .any(|s| matches!(s, PayloadSpec::Reads { array, .. } if array == "x")));
    }
}
