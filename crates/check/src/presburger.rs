//! A bounded Presburger-lite decision procedure for conjunctions of
//! affine integer constraints.
//!
//! The symbolic rules (`LC009`–`LC012`) reduce their proof obligations
//! to questions of the form "does the system `A·x = b ∧ C·x ≥ e` have
//! an integer solution?". This module decides such systems exactly in
//! the common case and says so honestly when it cannot:
//!
//! * **Equalities** are eliminated first through the integer lattice
//!   solver in `loom_rational::intlinalg` (Hermite-style column
//!   echelon): either the equalities are integrally infeasible —
//!   [`Verdict::Unsat`], no enumeration needed — or the solution set is
//!   a coset `x₀ + B·t` and the inequalities are rewritten over the
//!   lattice coordinates `t`.
//! * **Inequalities** go through Fourier–Motzkin elimination with GCD
//!   tightening (each constraint is divided by the gcd of its variable
//!   coefficients and the constant floored — sound for integer
//!   solutions, and strictly stronger than rational FM). An infeasible
//!   final system is a proof: [`Verdict::Unsat`].
//! * A feasible final system triggers witness reconstruction: variables
//!   are re-introduced in reverse elimination order, each clamped into
//!   its integer bound interval. The candidate is then re-verified
//!   against **every original constraint** in checked `i128`; only a
//!   verified witness becomes [`Verdict::Sat`].
//!
//! Anything else — arithmetic overflow, constraint blowup past the
//! budget, or an integer gap FM's rational relaxation cannot see —
//! yields [`Verdict::Unknown`], and callers fall back to the
//! enumerative rules. `Unsat` is therefore always a proof and `Sat`
//! always carries a checkable witness; only `Unknown` costs precision,
//! never soundness.

use loom_rational::intlinalg::{try_solve_integer, IMat};

/// The outcome of [`System::solve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// An integer solution exists; the witness satisfies every
    /// constraint (re-verified in checked `i128` before returning).
    Sat(Vec<i64>),
    /// No integer solution exists, proven for the whole (possibly
    /// unbounded) constraint set.
    Unsat,
    /// The procedure could not decide within its budget (overflow,
    /// constraint blowup, or an integer gap after rational relaxation).
    Unknown,
}

/// One affine constraint `Σ coeffs·x + constant {≥,=} 0` over `i128`.
#[derive(Clone, Debug)]
struct Lin {
    coeffs: Vec<i128>,
    constant: i128,
}

impl Lin {
    fn eval(&self, x: &[i64]) -> Option<i128> {
        let mut acc = self.constant;
        for (&c, &v) in self.coeffs.iter().zip(x) {
            acc = acc.checked_add(c.checked_mul(v as i128)?)?;
        }
        Some(acc)
    }
}

/// A conjunction of affine constraints over `n` integer variables.
#[derive(Clone, Debug, Default)]
pub struct System {
    n: usize,
    ges: Vec<Lin>,
    eqs: Vec<Lin>,
}

/// Caps keeping Fourier–Motzkin elimination from blowing up: beyond
/// either, [`System::solve`] gives up with [`Verdict::Unknown`].
const MAX_CONSTRAINTS: usize = 4096;
const MAX_COEFF: i128 = 1 << 96;

fn gcd128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn floor_div(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

impl System {
    /// An empty (trivially satisfiable) system over `n` variables.
    pub fn new(n: usize) -> System {
        System {
            n,
            ges: Vec::new(),
            eqs: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Add `Σ coeffs·x + constant ≥ 0`.
    pub fn ge0(&mut self, coeffs: &[i64], constant: i64) {
        assert_eq!(coeffs.len(), self.n, "constraint arity mismatch");
        self.ges.push(Lin {
            coeffs: coeffs.iter().map(|&c| c as i128).collect(),
            constant: constant as i128,
        });
    }

    /// Add `Σ coeffs·x + constant = 0`.
    pub fn eq0(&mut self, coeffs: &[i64], constant: i64) {
        assert_eq!(coeffs.len(), self.n, "constraint arity mismatch");
        self.eqs.push(Lin {
            coeffs: coeffs.iter().map(|&c| c as i128).collect(),
            constant: constant as i128,
        });
    }

    /// Add the two-sided bound `lo ≤ Σ coeffs·x ≤ hi`.
    pub fn between(&mut self, coeffs: &[i64], lo: i64, hi: i64) {
        self.ge0(coeffs, -lo);
        let neg: Vec<i64> = coeffs.iter().map(|&c| -c).collect();
        self.ge0(&neg, hi);
    }

    /// Decide integer feasibility. See the module docs for the
    /// soundness contract of each verdict.
    pub fn solve(&self) -> Verdict {
        // 1. Eliminate equalities through the integer lattice. The
        //    inequalities are rewritten over the lattice coordinates t
        //    of the coset x = x0 + B·t.
        let (x0, basis, ineqs) = if self.eqs.is_empty() {
            let id: Vec<Vec<i64>> = (0..self.n)
                .map(|j| (0..self.n).map(|k| i64::from(k == j)).collect())
                .collect();
            (vec![0i64; self.n], id, self.ges.clone())
        } else {
            let mut rows: Vec<Vec<i64>> = Vec::with_capacity(self.eqs.len());
            let mut rhs: Vec<i64> = Vec::with_capacity(self.eqs.len());
            for eq in &self.eqs {
                let mut row = Vec::with_capacity(self.n);
                for &c in &eq.coeffs {
                    let Ok(c) = i64::try_from(c) else {
                        return Verdict::Unknown;
                    };
                    row.push(c);
                }
                let Ok(b) = i64::try_from(-eq.constant) else {
                    return Verdict::Unknown;
                };
                rows.push(row);
                rhs.push(b);
            }
            let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            let a = IMat::from_rows(&refs);
            match try_solve_integer(&a, &rhs) {
                Err(_) => return Verdict::Unknown,
                Ok(None) => return Verdict::Unsat,
                Ok(Some((x0, basis))) => {
                    let m = basis.len();
                    let mut ineqs = Vec::with_capacity(self.ges.len());
                    for ge in &self.ges {
                        // c·(x0 + B·t) + k ≥ 0  ⇒  (c·B)·t + (c·x0 + k) ≥ 0.
                        let mut coeffs = vec![0i128; m];
                        for (j, b) in basis.iter().enumerate() {
                            let mut acc: i128 = 0;
                            for (&c, &bv) in ge.coeffs.iter().zip(b) {
                                let Some(p) = c.checked_mul(bv as i128) else {
                                    return Verdict::Unknown;
                                };
                                let Some(s) = acc.checked_add(p) else {
                                    return Verdict::Unknown;
                                };
                                acc = s;
                            }
                            coeffs[j] = acc;
                        }
                        let Some(constant) = ge.eval(&x0) else {
                            return Verdict::Unknown;
                        };
                        ineqs.push(Lin { coeffs, constant });
                    }
                    (x0, basis, ineqs)
                }
            }
        };

        let m = basis.len();
        match fm_solve(m, ineqs) {
            FmOutcome::Unsat => Verdict::Unsat,
            FmOutcome::Unknown => Verdict::Unknown,
            FmOutcome::Witness(t) => {
                // Map the lattice witness back to x-space and re-verify
                // against every original constraint.
                let mut x = vec![0i64; self.n];
                for k in 0..self.n {
                    let mut acc = x0[k] as i128;
                    for (j, b) in basis.iter().enumerate() {
                        let Some(p) = (b[k] as i128).checked_mul(t[j] as i128) else {
                            return Verdict::Unknown;
                        };
                        let Some(s) = acc.checked_add(p) else {
                            return Verdict::Unknown;
                        };
                        acc = s;
                    }
                    let Ok(v) = i64::try_from(acc) else {
                        return Verdict::Unknown;
                    };
                    x[k] = v;
                }
                let ok = self.eqs.iter().all(|e| e.eval(&x) == Some(0))
                    && self.ges.iter().all(|g| g.eval(&x).is_some_and(|v| v >= 0));
                if ok {
                    Verdict::Sat(x)
                } else {
                    Verdict::Unknown
                }
            }
        }
    }
}

enum FmOutcome {
    Witness(Vec<i64>),
    Unsat,
    Unknown,
}

/// Tighten `Σ c·x + k ≥ 0` by the gcd of the variable coefficients:
/// `Σ (c/g)·x + ⌊k/g⌋ ≥ 0` has the same integer solutions. Returns
/// `None` for a variable-free constraint (`Some(false)` semantics are
/// folded into the bool: `Err(())` signals infeasible-constant).
fn tighten(lin: &mut Lin) -> Result<bool, ()> {
    let g = lin.coeffs.iter().fold(0i128, |g, &c| gcd128(g, c));
    if g == 0 {
        return if lin.constant >= 0 {
            Ok(false)
        } else {
            Err(())
        };
    }
    if g > 1 {
        for c in &mut lin.coeffs {
            *c /= g;
        }
        lin.constant = floor_div(lin.constant, g);
    }
    Ok(true)
}

/// Fourier–Motzkin over `m` variables with GCD tightening, recording
/// each eliminated variable's bound constraints for witness
/// reconstruction.
fn fm_solve(m: usize, mut cons: Vec<Lin>) -> FmOutcome {
    // (var, lower bounds, upper bounds) in elimination order.
    let mut trail: Vec<(usize, Vec<Lin>, Vec<Lin>)> = Vec::new();
    let mut alive: Vec<usize> = (0..m).collect();

    loop {
        // Normalize; constants either hold or refute the system.
        let mut next = Vec::with_capacity(cons.len());
        for mut c in cons {
            match tighten(&mut c) {
                Err(()) => return FmOutcome::Unsat,
                Ok(false) => {}
                Ok(true) => next.push(c),
            }
        }
        cons = next;
        if alive.is_empty() || cons.is_empty() {
            break;
        }

        // Eliminate the variable minimizing the lower×upper fan-out.
        let &var = alive
            .iter()
            .min_by_key(|&&v| {
                let lo = cons.iter().filter(|c| c.coeffs[v] > 0).count();
                let hi = cons.iter().filter(|c| c.coeffs[v] < 0).count();
                lo * hi + lo + hi
            })
            .expect("nonempty alive set");
        alive.retain(|&v| v != var);

        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        let mut rest = Vec::new();
        for c in cons {
            match c.coeffs[var].cmp(&0) {
                std::cmp::Ordering::Greater => lowers.push(c),
                std::cmp::Ordering::Less => uppers.push(c),
                std::cmp::Ordering::Equal => rest.push(c),
            }
        }
        // a·x ≥ −L (a>0) and (−b)·x ≤ U (b<0) combine to (−b)·L + a·U.
        for lo in &lowers {
            let a = lo.coeffs[var];
            for up in &uppers {
                let nb = -up.coeffs[var];
                let mut combined = Lin {
                    coeffs: vec![0; m],
                    constant: 0,
                };
                let mut overflow = false;
                for k in 0..m {
                    let v = nb
                        .checked_mul(lo.coeffs[k])
                        .and_then(|x| a.checked_mul(up.coeffs[k]).and_then(|y| x.checked_add(y)));
                    match v {
                        Some(v) if v.abs() <= MAX_COEFF => combined.coeffs[k] = v,
                        _ => {
                            overflow = true;
                            break;
                        }
                    }
                }
                let konst = nb
                    .checked_mul(lo.constant)
                    .and_then(|x| a.checked_mul(up.constant).and_then(|y| x.checked_add(y)));
                match konst {
                    Some(k) if !overflow && k.abs() <= MAX_COEFF => combined.constant = k,
                    _ => return FmOutcome::Unknown,
                }
                debug_assert_eq!(combined.coeffs[var], 0);
                rest.push(combined);
            }
        }
        if rest.len() > MAX_CONSTRAINTS {
            return FmOutcome::Unknown;
        }
        trail.push((var, lowers, uppers));
        cons = rest;
    }

    // Leftover constraints are variable-free (alive is empty) or the
    // system ran out of constraints early; either way the relaxation is
    // feasible. Reconstruct an integer witness in reverse order.
    for c in &cons {
        if c.constant < 0 {
            return FmOutcome::Unsat;
        }
    }
    let mut x = vec![0i64; m];
    for (var, lowers, uppers) in trail.iter().rev() {
        let mut lo: Option<i128> = None;
        let mut hi: Option<i128> = None;
        for c in lowers {
            // a·x_var ≥ −(k + Σ_{j≠var} c_j·x_j)  with  a > 0.
            let a = c.coeffs[*var];
            let mut rest = c.constant;
            for (j, &cj) in c.coeffs.iter().enumerate() {
                if j == *var {
                    continue;
                }
                let Some(p) = cj.checked_mul(x[j] as i128) else {
                    return FmOutcome::Unknown;
                };
                let Some(s) = rest.checked_add(p) else {
                    return FmOutcome::Unknown;
                };
                rest = s;
            }
            let bound = -floor_div(rest, a); // ceil(−rest/a)
            lo = Some(lo.map_or(bound, |b: i128| b.max(bound)));
        }
        for c in uppers {
            let nb = -c.coeffs[*var];
            let mut rest = c.constant;
            for (j, &cj) in c.coeffs.iter().enumerate() {
                if j == *var {
                    continue;
                }
                let Some(p) = cj.checked_mul(x[j] as i128) else {
                    return FmOutcome::Unknown;
                };
                let Some(s) = rest.checked_add(p) else {
                    return FmOutcome::Unknown;
                };
                rest = s;
            }
            let bound = floor_div(rest, nb);
            hi = Some(hi.map_or(bound, |b: i128| b.min(bound)));
        }
        let v = match (lo, hi) {
            (None, None) => 0,
            (Some(l), None) => l.max(0),
            (None, Some(h)) => h.min(0),
            (Some(l), Some(h)) if l <= h => 0i128.clamp(l, h),
            // Rational relaxation feasible but this integer interval is
            // empty: an integer gap FM cannot resolve.
            _ => return FmOutcome::Unknown,
        };
        let Ok(v) = i64::try_from(v) else {
            return FmOutcome::Unknown;
        };
        x[*var] = v;
    }
    FmOutcome::Witness(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_system_is_sat() {
        assert_eq!(System::new(2).solve(), Verdict::Sat(vec![0, 0]));
    }

    #[test]
    fn box_is_sat_with_witness_inside() {
        let mut s = System::new(2);
        s.between(&[1, 0], 2, 5);
        s.between(&[0, 1], -3, -1);
        match s.solve() {
            Verdict::Sat(x) => {
                assert!((2..=5).contains(&x[0]));
                assert!((-3..=-1).contains(&x[1]));
            }
            v => panic!("expected Sat, got {v:?}"),
        }
    }

    #[test]
    fn contradictory_bounds_unsat() {
        let mut s = System::new(1);
        s.ge0(&[1], -5); // x ≥ 5
        s.ge0(&[-1], 3); // x ≤ 3
        assert_eq!(s.solve(), Verdict::Unsat);
    }

    #[test]
    fn gcd_tightening_catches_parity_gap() {
        // 1 ≤ 2x ≤ 1 has the rational solution x = 1/2 but no integer
        // one; tightening turns it into 1 ≤ x ≤ 0.
        let mut s = System::new(1);
        s.between(&[2], 1, 1);
        assert_eq!(s.solve(), Verdict::Unsat);
    }

    #[test]
    fn infeasible_equalities_unsat() {
        // 2x = 1 over the integers.
        let mut s = System::new(1);
        s.eq0(&[2], -1);
        assert_eq!(s.solve(), Verdict::Unsat);
    }

    #[test]
    fn equalities_restrict_inequality_witness() {
        // x + y = 4, x − y = 2 ⇒ (3, 1); bounds must hold at it.
        let mut s = System::new(2);
        s.eq0(&[1, 1], -4);
        s.eq0(&[1, -1], -2);
        s.between(&[1, 0], 0, 10);
        s.between(&[0, 1], 0, 10);
        assert_eq!(s.solve(), Verdict::Sat(vec![3, 1]));
    }

    #[test]
    fn equality_coset_with_bounds_unsat() {
        // x ≡ 0 (mod 3) via x = 3t, and 4 ≤ x ≤ 5: no multiple of 3.
        let mut s = System::new(2);
        s.eq0(&[1, -3], 0); // x = 3t
        s.between(&[1, 0], 4, 5);
        assert_eq!(s.solve(), Verdict::Unsat);
    }

    #[test]
    fn triangular_system_sat() {
        // 0 ≤ y ≤ x ≤ 4 with x + y = 6 → (3,3) or (4,2).
        let mut s = System::new(2);
        s.ge0(&[0, 1], 0); // y ≥ 0
        s.ge0(&[1, -1], 0); // x ≥ y
        s.ge0(&[-1, 0], 4); // x ≤ 4
        s.eq0(&[1, 1], -6);
        match s.solve() {
            Verdict::Sat(x) => {
                assert_eq!(x[0] + x[1], 6);
                assert!(x[1] >= 0 && x[0] >= x[1] && x[0] <= 4);
            }
            v => panic!("expected Sat, got {v:?}"),
        }
    }

    #[test]
    fn witness_is_reverified() {
        // A satisfiable system whose witness must satisfy every original
        // constraint, including ones FM dropped early as redundant.
        let mut s = System::new(3);
        for v in 0..3 {
            let mut c = vec![0i64; 3];
            c[v] = 1;
            s.between(&c, -7, 7);
        }
        s.eq0(&[1, 1, 1], 0);
        s.ge0(&[1, -1, 0], -2); // x − y ≥ 2
        match s.solve() {
            Verdict::Sat(x) => {
                assert_eq!(x.iter().sum::<i64>(), 0);
                assert!(x[0] - x[1] >= 2);
            }
            v => panic!("expected Sat, got {v:?}"),
        }
    }

    #[test]
    fn unbounded_directions_still_sat() {
        let mut s = System::new(2);
        s.ge0(&[1, 1], -100); // x + y ≥ 100, nothing else
        match s.solve() {
            Verdict::Sat(x) => assert!(x[0] + x[1] >= 100),
            v => panic!("expected Sat, got {v:?}"),
        }
    }
}
