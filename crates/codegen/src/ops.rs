//! The SPMD operation set and program container.

use loom_loopir::Point;

/// A message tag: the producing iteration and the dependence index it
/// satisfies. Tags make receives order-independent across channels, so
/// the interpreter's mailbox matching is exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag {
    /// Id of the source iteration.
    pub src_point: u32,
    /// Index into the nest's dependence-vector set.
    pub dep: u16,
}

/// One SPMD operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Block until the message with this tag arrives from `from`, then
    /// install its payload elements into local memory.
    Recv {
        /// Sending processor.
        from: u32,
        /// Message tag.
        tag: Tag,
    },
    /// Execute one iteration of the nest body against local memory.
    Compute {
        /// Id of the iteration (index into the enumerated space).
        point: u32,
    },
    /// Package the elements associated with dependence `tag.dep` at the
    /// just-computed iteration and send them to `to`.
    Send {
        /// Receiving processor.
        to: u32,
        /// Message tag.
        tag: Tag,
    },
}

impl Op {
    /// The mailbox slot this op touches when executed on processor
    /// `proc`: `(destination, tag)` for a `Send`, `(proc, tag)` for a
    /// `Recv`, nothing for a `Compute`. Two ops conflict exactly when
    /// their keys coincide (the interpreter's mailbox is a map over
    /// this key), which is the dependency relation the interleaving
    /// engine's partial-order reduction is built on.
    pub fn mailbox_key(&self, proc: u32) -> Option<(u32, Tag)> {
        match *self {
            Op::Send { to, tag } => Some((to, tag)),
            Op::Recv { from: _, tag } => Some((proc, tag)),
            Op::Compute { .. } => None,
        }
    }

    /// A short lowercase kind name (`"recv"` / `"compute"` / `"send"`),
    /// for diagnostics and trace rendering.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Recv { .. } => "recv",
            Op::Compute { .. } => "compute",
            Op::Send { .. } => "send",
        }
    }
}

/// A complete SPMD program: one op list per processor, plus the shared
/// iteration table.
#[derive(Clone, Debug)]
pub struct SpmdProgram {
    /// The enumerated iteration points (ids index into this).
    pub points: Vec<Point>,
    /// Per-processor operation lists, in program order.
    pub per_proc: Vec<Vec<Op>>,
}

impl SpmdProgram {
    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.per_proc.len()
    }

    /// Total number of `Compute` ops (must equal the iteration count).
    pub fn num_computes(&self) -> usize {
        self.per_proc
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::Compute { .. }))
            .count()
    }

    /// Total number of messages (Send ops).
    pub fn num_messages(&self) -> usize {
        self.per_proc
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::Send { .. }))
            .count()
    }

    /// `true` iff no mailbox key is used by more than one `Send` or
    /// more than one `Recv` anywhere in the program. Programs
    /// `loom-codegen` emits always satisfy this (each tag names one
    /// producing iteration and one dependence), and it is the
    /// precondition for the interleaving engine's protocol-line
    /// batching: under unique keys, co-enabled transitions on distinct
    /// processors touch distinct mailbox slots and therefore commute.
    pub fn unique_tags(&self) -> bool {
        use std::collections::BTreeMap;
        let mut sends: BTreeMap<(u32, Tag), u32> = BTreeMap::new();
        let mut recvs: BTreeMap<(u32, Tag), u32> = BTreeMap::new();
        for (p, ops) in self.per_proc.iter().enumerate() {
            for op in ops {
                match *op {
                    Op::Send { to, tag } => *sends.entry((to, tag)).or_insert(0) += 1,
                    Op::Recv { from: _, tag } => *recvs.entry((p as u32, tag)).or_insert(0) += 1,
                    Op::Compute { .. } => {}
                }
            }
        }
        sends.values().all(|&n| n <= 1) && recvs.values().all(|&n| n <= 1)
    }

    /// The point ids processor `p` computes, in program order.
    pub fn computes_of(&self, p: usize) -> impl Iterator<Item = u32> + '_ {
        self.per_proc[p].iter().filter_map(|op| match op {
            Op::Compute { point } => Some(*point),
            _ => None,
        })
    }

    /// Structural sanity: every `Send` has exactly one matching `Recv`
    /// on the target processor and vice versa. Returns mismatched tags.
    pub fn unmatched_messages(&self) -> Vec<Tag> {
        use std::collections::BTreeMap;
        let mut sends: BTreeMap<(u32, Tag), i64> = BTreeMap::new();
        for (p, ops) in self.per_proc.iter().enumerate() {
            for op in ops {
                match *op {
                    Op::Send { to, tag } => *sends.entry((to, tag)).or_insert(0) += 1,
                    Op::Recv { from: _, tag } => *sends.entry((p as u32, tag)).or_insert(0) -= 1,
                    Op::Compute { .. } => {}
                }
            }
        }
        sends
            .into_iter()
            .filter(|&(_, n)| n != 0)
            .map(|((_, tag), _)| tag)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_matching() {
        let t = Tag {
            src_point: 0,
            dep: 1,
        };
        let prog = SpmdProgram {
            points: vec![vec![0], vec![1]],
            per_proc: vec![
                vec![Op::Compute { point: 0 }, Op::Send { to: 1, tag: t }],
                vec![Op::Recv { from: 0, tag: t }, Op::Compute { point: 1 }],
            ],
        };
        assert_eq!(prog.num_procs(), 2);
        assert_eq!(prog.num_computes(), 2);
        assert_eq!(prog.num_messages(), 1);
        assert!(prog.unmatched_messages().is_empty());
    }

    #[test]
    fn mailbox_keys_and_uniqueness() {
        let t = Tag {
            src_point: 0,
            dep: 1,
        };
        let send = Op::Send { to: 1, tag: t };
        let recv = Op::Recv { from: 0, tag: t };
        let comp = Op::Compute { point: 0 };
        assert_eq!(send.mailbox_key(0), Some((1, t)));
        assert_eq!(recv.mailbox_key(1), Some((1, t)));
        assert_eq!(comp.mailbox_key(0), None);
        assert_eq!(send.kind(), "send");
        let mut prog = SpmdProgram {
            points: vec![vec![0], vec![1]],
            per_proc: vec![
                vec![comp.clone(), send.clone()],
                vec![recv, Op::Compute { point: 1 }],
            ],
        };
        assert!(prog.unique_tags());
        assert_eq!(prog.computes_of(0).collect::<Vec<_>>(), vec![0]);
        prog.per_proc[0].push(send);
        assert!(!prog.unique_tags());
    }

    #[test]
    fn unmatched_detected() {
        let t = Tag {
            src_point: 3,
            dep: 0,
        };
        let prog = SpmdProgram {
            points: vec![vec![0]],
            per_proc: vec![vec![Op::Send { to: 1, tag: t }], vec![]],
        };
        assert_eq!(prog.unmatched_messages(), vec![t]);
    }
}
