//! Property harness for the symbolic engine (`LC009`–`LC012`): on every
//! instantiated size the symbolic verdicts must agree with the
//! enumerative oracles — `LC001` legality, the point-walking Lemma 1
//! scan, and the vector-clock message analysis — with zero
//! disagreements. The enumerative side certifies one instance by brute
//! force; the symbolic side claims the same verdict from the lattice
//! structure, so any split between them is a soundness bug in one of
//! the two.

use loom_check::{
    check_blocking_cycles, check_legality, check_legality_symbolic, check_lemma1,
    check_lemma1_symbolic, check_lemma1_symbolic_groups, check_protocol, check_races,
    SymbolicStats,
};
use loom_codegen::generate;
use loom_hyperplane::TimeFn;
use loom_mapping::map_partitioning;
use loom_obs::SplitMix64;
use loom_partition::{partition, PartitionConfig, Partitioning, Tig};
use loom_workloads::Workload;

fn partition_of(w: &Workload) -> Partitioning {
    partition(
        w.nest.space().clone(),
        w.deps.clone(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .unwrap()
}

/// Workloads swept across iteration-space sizes 3..=12 (2-D) and
/// 3..=5 (3-D, to keep the enumerative oracle fast).
fn sized_workloads() -> Vec<Workload> {
    let mut ws = Vec::new();
    for s in 3..=12 {
        ws.push(loom_workloads::l1::workload(s));
        ws.push(loom_workloads::matvec::workload(s));
        ws.push(loom_workloads::triangular::workload(s));
    }
    for s in 3..=5 {
        ws.push(loom_workloads::matmul::workload(s));
    }
    ws
}

/// LC009 (legality half) vs LC001: identical verdict and identical
/// per-dependence findings for random Π, with both branches exercised.
#[test]
fn symbolic_legality_agrees_with_lc001() {
    let workloads = [
        loom_workloads::l1::workload(4),
        loom_workloads::matvec::workload(5),
        loom_workloads::sor::workload(4, 4),
        loom_workloads::matmul::workload(3),
    ];
    let mut rng = SplitMix64::new(0x5e9b01);
    let (mut accepted, mut rejected) = (0usize, 0usize);
    for _ in 0..128 {
        let w = &workloads[rng.below(workloads.len() as u64) as usize];
        let coeffs: Vec<i64> = (0..w.nest.dim()).map(|_| rng.range_i64(-2, 3)).collect();
        let pi = TimeFn::new(coeffs);
        let enumerative = check_legality(&pi, &w.deps);
        let symbolic = check_legality_symbolic(&pi, &w.deps);
        assert_eq!(
            enumerative.len(),
            symbolic.len(),
            "Π = {:?} on {}",
            pi.coeffs(),
            w.nest.name()
        );
        for (e, s) in enumerative.iter().zip(&symbolic) {
            assert_eq!(e.span, s.span);
            assert_eq!(e.message, s.message);
            assert_eq!(s.rule.code(), "LC009");
        }
        if enumerative.is_empty() {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    assert!(accepted >= 10, "only {accepted} legal Π sampled");
    assert!(rejected >= 10, "only {rejected} illegal Π sampled");
}

/// Symbolic Lemma 1 vs the point-walking scan: on untouched
/// partitionings and on randomly merged group mutants, across every
/// size — the clean/violation verdict must never split.
#[test]
fn symbolic_lemma1_agrees_with_enumerative_across_sizes() {
    let mut rng = SplitMix64::new(0x1e44a1);
    let mut mutant_violations = 0usize;
    for w in sized_workloads() {
        let p = partition_of(&w);
        let pi = TimeFn::new(w.pi.clone());

        // Untouched partitioning: both engines must call it clean.
        let mut stats = SymbolicStats::default();
        let sym = check_lemma1_symbolic(&p, &mut stats);
        let enu = check_lemma1(&pi, p.structure().points(), p.blocks());
        assert!(enu.is_empty(), "{}: enumerative oracle", w.nest.name());
        assert!(
            sym.is_empty(),
            "{}: symbolic disagrees with clean oracle:\n{:?}",
            w.nest.name(),
            sym
        );

        // Seeded mutants: merge two random groups and compare verdicts.
        let groups: Vec<Vec<usize>> = p
            .grouping()
            .groups
            .iter()
            .map(|g| g.members.clone())
            .collect();
        if groups.len() < 2 {
            continue;
        }
        for _ in 0..4 {
            let i = rng.below(groups.len() as u64) as usize;
            let mut j = rng.below(groups.len() as u64) as usize;
            if i == j {
                j = (j + 1) % groups.len();
            }
            let mut merged_groups = groups.clone();
            let moved = merged_groups[j].clone();
            merged_groups[i].extend(moved);
            merged_groups.remove(j);
            let merged_blocks: Vec<Vec<usize>> = merged_groups
                .iter()
                .map(|g| {
                    g.iter()
                        .flat_map(|&pid| p.projected().line_members(pid).iter().copied())
                        .collect()
                })
                .collect();
            let mut stats = SymbolicStats::default();
            let sym = check_lemma1_symbolic_groups(&p, &merged_groups, &mut stats);
            let enu = check_lemma1(&pi, p.structure().points(), &merged_blocks);
            assert_eq!(
                sym.is_empty(),
                enu.is_empty(),
                "{} merge G{i}+G{j}: symbolic {:?} vs enumerative {:?}",
                w.nest.name(),
                sym,
                enu
            );
            if !enu.is_empty() {
                mutant_violations += 1;
            }
        }
    }
    // The mutant sweep must actually produce violations, or the
    // agreement assertions above prove nothing about the firing side.
    assert!(
        mutant_violations >= 10,
        "only {mutant_violations} violating mutants sampled"
    );
}

/// LC011/LC012 vs the vector-clock oracle: on every size where a
/// program can be generated, the symbolic protocol summary matches the
/// TIG and finds no blocking cycle exactly when the enumerative
/// message walk finds no deadlock and no race.
#[test]
fn symbolic_protocol_agrees_with_vector_clock_oracle() {
    for w in sized_workloads() {
        let p = partition_of(&w);
        let tig = Tig::from_partitioning(&p);
        let mut stats = SymbolicStats::default();
        let lc011 = check_protocol(&p, &tig, &mut stats);
        let lc012 = check_blocking_cycles(&p);
        assert!(lc011.is_empty(), "{}: {:?}", w.nest.name(), lc011);
        assert!(lc012.is_empty(), "{}: {:?}", w.nest.name(), lc012);

        let m = map_partitioning(&p, 1).unwrap();
        if let Ok(cg) = generate(&w.nest, &p, m.assignment(), 2) {
            let oracle = check_races(&w.nest, &cg.program);
            assert!(
                oracle.is_empty(),
                "{}: vector-clock oracle disagrees:\n{:?}",
                w.nest.name(),
                oracle
            );
        }
    }
}

/// A tampered TIG edge must trip LC011 at every size — the summary is
/// exact, not approximate, so even an off-by-one is caught.
#[test]
fn tampered_tig_trips_lc011_at_every_size() {
    for s in [3, 6, 9, 12] {
        let w = loom_workloads::l1::workload(s);
        let p = partition_of(&w);
        let tig = Tig::from_partitioning(&p);
        let mut edges: std::collections::BTreeMap<(usize, usize), u64> = tig.edges().collect();
        let (&key, &weight) = edges.iter().next().unwrap();
        edges.insert(key, weight + 1);
        let weights: Vec<u64> = (0..tig.len()).map(|v| tig.weight(v)).collect();
        let tampered = Tig::from_parts(weights, edges);
        let mut stats = SymbolicStats::default();
        let ds = check_protocol(&p, &tampered, &mut stats);
        assert_eq!(ds.len(), 1, "size {s}");
        assert_eq!(ds[0].rule.code(), "LC011");
    }
}
