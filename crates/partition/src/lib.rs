//! The Sheu–Tai partitioning method (Algorithm 1 of the paper).
//!
//! Given a nested loop's computational structure `Q = (V, D)` and a legal
//! time transformation Π, the partitioner:
//!
//! 1. **Projection phase** — projects every iteration point and every
//!    dependence vector onto the zero-hyperplane `Π·x = 0`, producing the
//!    projected structure `Q^p = (V^p, D^p)` ([`project`]).
//! 2. **Grouping phase** — picks the *grouping vector* (the projected
//!    dependence needing the largest integer multiplier `r` to become
//!    integral) and `β − 1` linearly independent *auxiliary grouping
//!    vectors* ([`grouping`]), then tiles `V^p` into groups of `r`
//!    projected points by region growing ([`grow`]).
//! 3. **Block materialization** — each group's projection lines pull back
//!    to a *block* of iterations that execute at pairwise-distinct steps,
//!    so a block can live on one processor without stretching the
//!    schedule ([`blocks`]).
//!
//! [`comm`] counts total vs. interblock dependences (the paper's "33
//! dependences, 12 interprocessor" for loop L1), [`tig`] builds the Task
//! Interaction Graph consumed by the mapping phase, and [`laws`] checks
//! Lemmas 1–3 and Theorems 1–2 as executable validators.
//!
//! ```
//! use loom_hyperplane::TimeFn;
//! use loom_loopir::IterSpace;
//! use loom_partition::{partition, PartitionConfig, comm::comm_stats, laws};
//!
//! // The paper's loop L1: 4×4 space, D = {(0,1), (1,0), (1,1)}, Π = (1,1).
//! let p = partition(
//!     IterSpace::rect(&[4, 4]).unwrap(),
//!     vec![vec![0, 1], vec![1, 0], vec![1, 1]],
//!     TimeFn::new(vec![1, 1]),
//!     &PartitionConfig::default(),
//! ).unwrap();
//! assert_eq!(p.num_blocks(), 4);
//! let stats = comm_stats(&p);
//! assert_eq!((stats.total_arcs, stats.interblock_arcs), (33, 12));
//! assert!(laws::check_all(&p).is_empty());
//! ```

#![deny(missing_docs)]

pub mod blocks;
pub mod comm;
pub mod grouping;
pub mod grow;
pub mod laws;
pub mod project;
pub mod tig;

pub use blocks::{partition, PartitionConfig, Partitioning};
pub use comm::CommStats;
pub use grouping::GroupingVectors;
pub use grow::Grouping;
pub use project::{ComputationalStructure, ProjectedStructure};
pub use tig::Tig;

/// Errors raised by the partitioning pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The supplied time transformation is not legal for the dependences.
    IllegalTimeFn(loom_hyperplane::Error),
    /// The iteration space contains no points.
    EmptySpace,
    /// A requested grouping-vector override does not achieve the maximal
    /// multiplier `r` (Algorithm 1 requires the grouping vector to have
    /// `r_l = r`).
    InvalidGroupingChoice {
        /// The requested dependence index.
        requested: usize,
        /// Its multiplier.
        r_requested: i64,
        /// The maximal multiplier.
        r_max: i64,
    },
    /// A dependence index is out of range.
    BadDependenceIndex {
        /// The offending index.
        index: usize,
        /// Number of dependences.
        len: usize,
    },
    /// Grouping-vector selection found fewer independent vectors than
    /// `β = rank(mat(D^p))` — impossible for a correct rank, so this
    /// flags an internal inconsistency (formerly a debug-only assert).
    GroupingRankDeficit {
        /// Size of the independent set actually found.
        found: usize,
        /// The rank the set was required to reach.
        beta: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::IllegalTimeFn(e) => write!(f, "illegal time function: {e}"),
            Error::EmptySpace => write!(f, "iteration space is empty"),
            Error::InvalidGroupingChoice {
                requested,
                r_requested,
                r_max,
            } => write!(
                f,
                "dependence {requested} has multiplier {r_requested}, but the grouping \
                 vector must achieve the maximum {r_max}"
            ),
            Error::BadDependenceIndex { index, len } => {
                write!(f, "dependence index {index} out of range (have {len})")
            }
            Error::GroupingRankDeficit { found, beta } => write!(
                f,
                "grouping-vector selection found only {found} independent vector(s) \
                 where rank \u{3b2} = {beta} requires {beta}"
            ),
        }
    }
}

impl std::error::Error for Error {}

impl From<loom_hyperplane::Error> for Error {
    fn from(e: loom_hyperplane::Error) -> Error {
        Error::IllegalTimeFn(e)
    }
}
