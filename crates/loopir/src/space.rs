//! The index set `Jⁿ` — iteration spaces with affine bounds.

use crate::aff::Aff;
use crate::{Error, Point};

/// The index set `Jⁿ = {(i₁,…,iₙ) | l_j ≤ i_j ≤ u_j}` of an `n`-nested
/// loop, where each bound is an affine expression that may reference
/// *outer* indices only (as in the paper's loop model; strides are
/// normalized to 1).
///
/// ```
/// use loom_loopir::IterSpace;
/// let s = IterSpace::rect(&[4, 4]).unwrap(); // 0..=3 × 0..=3
/// assert_eq!(s.points().count(), 16);
/// assert!(s.contains(&[3, 0]));
/// assert!(!s.contains(&[4, 0]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IterSpace {
    lo: Vec<Aff>,
    hi: Vec<Aff>,
}

impl IterSpace {
    /// A rectangular space `0 ≤ i_j < sizes[j]` (i.e. upper bound
    /// `sizes[j] − 1` inclusive, matching the paper's `for i = 0 to u`).
    pub fn rect(sizes: &[i64]) -> Result<IterSpace, Error> {
        let n = sizes.len();
        if n == 0 {
            return Err(Error::Empty);
        }
        let lo = (0..n).map(|_| Aff::constant(n, 0)).collect();
        let hi = sizes.iter().map(|&s| Aff::constant(n, s - 1)).collect();
        IterSpace::new(lo, hi)
    }

    /// A rectangular space with explicit inclusive integer bounds.
    pub fn rect_bounds(lo: &[i64], hi: &[i64]) -> Result<IterSpace, Error> {
        if lo.len() != hi.len() {
            return Err(Error::DimMismatch {
                what: "rect_bounds",
                expected: lo.len(),
                found: hi.len(),
            });
        }
        if lo.is_empty() {
            return Err(Error::Empty);
        }
        let n = lo.len();
        IterSpace::new(
            lo.iter().map(|&l| Aff::constant(n, l)).collect(),
            hi.iter().map(|&h| Aff::constant(n, h)).collect(),
        )
    }

    /// A space with general affine bounds (inclusive). Each bound of loop
    /// `j` may only reference indices `0..j`.
    pub fn new(lo: Vec<Aff>, hi: Vec<Aff>) -> Result<IterSpace, Error> {
        if lo.len() != hi.len() {
            return Err(Error::DimMismatch {
                what: "IterSpace bounds",
                expected: lo.len(),
                found: hi.len(),
            });
        }
        let n = lo.len();
        if n == 0 {
            return Err(Error::Empty);
        }
        for (level, b) in lo.iter().chain(hi.iter()).enumerate() {
            let level = level % n;
            if b.dim() != n {
                return Err(Error::DimMismatch {
                    what: "bound expression",
                    expected: n,
                    found: b.dim(),
                });
            }
            if let Some(mv) = b.max_var() {
                if mv >= level {
                    return Err(Error::ForwardBound { level });
                }
            }
        }
        Ok(IterSpace { lo, hi })
    }

    /// Dimensionality `n`.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower-bound expression of loop `j`.
    pub fn lower(&self, j: usize) -> &Aff {
        &self.lo[j]
    }

    /// Upper-bound expression of loop `j` (inclusive).
    pub fn upper(&self, j: usize) -> &Aff {
        &self.hi[j]
    }

    /// `true` iff `point` lies in the index set.
    pub fn contains(&self, point: &[i64]) -> bool {
        point.len() == self.dim()
            && (0..self.dim()).all(|j| {
                let x = point[j];
                self.lo[j].eval(point) <= x && x <= self.hi[j].eval(point)
            })
    }

    /// Number of index points (exact enumeration for affine bounds).
    pub fn count(&self) -> usize {
        self.points().count()
    }

    /// Iterate over all index points in lexicographic order.
    pub fn points(&self) -> PointIter<'_> {
        PointIter::new(self)
    }

    /// The bounding box `[min_j, max_j]` of each coordinate over the whole
    /// space (used by searches that need a finite coordinate range).
    pub fn bounding_box(&self) -> Vec<(i64, i64)> {
        let mut bb: Vec<Option<(i64, i64)>> = vec![None; self.dim()];
        for p in self.points() {
            for (j, &x) in p.iter().enumerate() {
                bb[j] = Some(match bb[j] {
                    None => (x, x),
                    Some((lo, hi)) => (lo.min(x), hi.max(x)),
                });
            }
        }
        bb.into_iter().map(|o| o.unwrap_or((0, -1))).collect()
    }
}

/// Lexicographic iterator over the points of an [`IterSpace`].
///
/// Handles affine (triangular) bounds: inner bounds are re-evaluated as the
/// outer indices advance. Loops whose bounds are momentarily empty
/// (`lo > hi`) contribute no points, matching `for` semantics.
pub struct PointIter<'a> {
    space: &'a IterSpace,
    current: Option<Point>,
}

impl<'a> PointIter<'a> {
    fn new(space: &'a IterSpace) -> PointIter<'a> {
        PointIter {
            space,
            current: Self::first_from(space, &[]),
        }
    }

    /// Extend a valid prefix to the lexicographically first full point,
    /// or `None` if some inner loop is empty and no sibling exists.
    fn first_from(space: &IterSpace, prefix: &[i64]) -> Option<Point> {
        let n = space.dim();
        let mut p = prefix.to_vec();
        while p.len() < n {
            let j = p.len();
            // Bounds only reference outer indices, so pad with zeros.
            let mut probe = p.clone();
            probe.resize(n, 0);
            let lo = space.lo[j].eval(&probe);
            let hi = space.hi[j].eval(&probe);
            if lo > hi {
                // Empty inner loop: advance the deepest settable prefix.
                return Self::advance_prefix(space, p);
            }
            p.push(lo);
        }
        Some(p)
    }

    /// Advance the last coordinate of `prefix`, carrying outward on
    /// exhaustion; then extend back to a full point.
    fn advance_prefix(space: &IterSpace, mut prefix: Point) -> Option<Point> {
        let n = space.dim();
        loop {
            let j = prefix.len().checked_sub(1)?;
            let mut probe = prefix.clone();
            probe.resize(n, 0);
            let hi = space.hi[j].eval(&probe);
            if prefix[j] < hi {
                prefix[j] += 1;
                return Self::first_from(space, &prefix);
            }
            prefix.pop();
        }
    }
}

impl Iterator for PointIter<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        let out = self.current.take()?;
        self.current = Self::advance_prefix(self.space, out.clone());
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_enumeration_lex_order() {
        let s = IterSpace::rect(&[2, 3]).unwrap();
        let pts: Vec<_> = s.points().collect();
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn rect_bounds_offset() {
        let s = IterSpace::rect_bounds(&[1, 1], &[3, 2]).unwrap();
        assert_eq!(s.count(), 6);
        assert!(s.contains(&[1, 1]));
        assert!(s.contains(&[3, 2]));
        assert!(!s.contains(&[0, 1]));
        assert!(!s.contains(&[3, 3]));
    }

    #[test]
    fn triangular_space() {
        // for i = 0..=3, for j = 0..=i  → 1+2+3+4 = 10 points.
        let n = 2;
        let lo = vec![Aff::constant(n, 0), Aff::constant(n, 0)];
        let hi = vec![Aff::constant(n, 3), Aff::var(n, 0)];
        let s = IterSpace::new(lo, hi).unwrap();
        assert_eq!(s.count(), 10);
        assert!(s.contains(&[2, 2]));
        assert!(!s.contains(&[2, 3]));
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts[9], vec![3, 3]);
    }

    #[test]
    fn empty_inner_loop_skipped() {
        // for i = 0..=2, for j = i..=1: i=2 row is empty.
        let n = 2;
        let lo = vec![Aff::constant(n, 0), Aff::var(n, 0)];
        let hi = vec![Aff::constant(n, 2), Aff::constant(n, 1)];
        let s = IterSpace::new(lo, hi).unwrap();
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts, vec![vec![0, 0], vec![0, 1], vec![1, 1]]);
    }

    #[test]
    fn fully_empty_space() {
        let s = IterSpace::rect_bounds(&[2], &[1]).unwrap();
        assert_eq!(s.count(), 0);
        assert_eq!(s.bounding_box(), vec![(0, -1)]);
    }

    #[test]
    fn forward_bound_rejected() {
        let n = 2;
        // Lower bound of loop 0 references index 1.
        let lo = vec![Aff::var(n, 1), Aff::constant(n, 0)];
        let hi = vec![Aff::constant(n, 3), Aff::constant(n, 3)];
        assert_eq!(
            IterSpace::new(lo, hi).unwrap_err(),
            Error::ForwardBound { level: 0 }
        );
        // Self-reference also rejected.
        let lo2 = vec![Aff::constant(n, 0), Aff::var(n, 1)];
        let hi2 = vec![Aff::constant(n, 3), Aff::constant(n, 3)];
        assert_eq!(
            IterSpace::new(lo2, hi2).unwrap_err(),
            Error::ForwardBound { level: 1 }
        );
    }

    #[test]
    fn zero_dim_rejected() {
        assert_eq!(IterSpace::rect(&[]).unwrap_err(), Error::Empty);
    }

    #[test]
    fn bounding_box_triangular() {
        let n = 2;
        let lo = vec![Aff::constant(n, 0), Aff::var(n, 0)];
        let hi = vec![Aff::constant(n, 3), Aff::constant(n, 5)];
        let s = IterSpace::new(lo, hi).unwrap();
        assert_eq!(s.bounding_box(), vec![(0, 3), (0, 5)]);
    }

    #[test]
    fn three_dim_count() {
        let s = IterSpace::rect(&[4, 4, 4]).unwrap();
        assert_eq!(s.count(), 64);
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts.len(), 64);
        // Strictly increasing lexicographic order.
        for w in pts.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
