//! The wavefront schedule a time function induces on an index set.

use crate::time::TimeFn;
use crate::Error;
use loom_loopir::{IterSpace, Point};
use std::collections::BTreeMap;

/// A materialized hyperplane schedule: every index point of a space
/// assigned to its execution step, normalized so the first step is 0.
///
/// ```
/// use loom_hyperplane::{Schedule, TimeFn};
/// use loom_loopir::IterSpace;
/// let space = IterSpace::rect(&[4, 4]).unwrap();
/// let sched = Schedule::build(TimeFn::new(vec![1, 1]), &space);
/// assert_eq!(sched.num_steps(), 7);
/// assert_eq!(sched.step_of(&[0, 0]), Some(0));
/// assert_eq!(sched.front(3).len(), 4); // i+j == 3 has 4 points
/// ```
#[derive(Clone, Debug)]
pub struct Schedule {
    pi: TimeFn,
    t_min: i64,
    fronts: Vec<Vec<Point>>,
}

impl Schedule {
    /// Enumerate the space and bucket points by execution step.
    pub fn build(pi: TimeFn, space: &IterSpace) -> Schedule {
        let mut buckets: BTreeMap<i64, Vec<Point>> = BTreeMap::new();
        for p in space.points() {
            buckets.entry(pi.time_of(&p)).or_default().push(p);
        }
        let t_min = buckets.keys().next().copied().unwrap_or(0);
        let t_max = buckets.keys().next_back().copied().unwrap_or(-1);
        let mut fronts = vec![Vec::new(); (t_max - t_min + 1).max(0) as usize];
        for (t, pts) in buckets {
            fronts[(t - t_min) as usize] = pts;
        }
        Schedule { pi, t_min, fronts }
    }

    /// The time function.
    pub fn time_fn(&self) -> &TimeFn {
        &self.pi
    }

    /// Number of execution steps.
    pub fn num_steps(&self) -> usize {
        self.fronts.len()
    }

    /// Normalized step of a point (0-based), or `None` if the point's
    /// step lies outside the schedule. Points not in the original space
    /// but on a populated hyperplane still report that hyperplane's step.
    pub fn step_of(&self, point: &[i64]) -> Option<usize> {
        let t = self.pi.time_of(point) - self.t_min;
        (0..self.fronts.len() as i64)
            .contains(&t)
            .then_some(t as usize)
    }

    /// All points executing at normalized step `t` (the wavefront).
    pub fn front(&self, t: usize) -> &[Point] {
        &self.fronts[t]
    }

    /// The widest front — the maximum parallelism the schedule exposes.
    pub fn max_parallelism(&self) -> usize {
        self.fronts.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of scheduled points.
    pub fn num_points(&self) -> usize {
        self.fronts.iter().map(Vec::len).sum()
    }

    /// Verify the schedule respects every dependence: for each point `p`
    /// with `p + d` in the space, `step(p) < step(p + d)`.
    pub fn validate(&self, space: &IterSpace, deps: &[Point]) -> Result<(), Error> {
        self.pi.check_legal(deps)?;
        for (t, front) in self.fronts.iter().enumerate() {
            for p in front {
                for d in deps {
                    let q: Point = p.iter().zip(d).map(|(&a, &b)| a + b).collect();
                    if space.contains(&q) {
                        let tq = self.step_of(&q).expect("sink point must be scheduled");
                        if tq <= t {
                            return Err(Error::Illegal {
                                dependence: d.clone(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1_sched() -> (Schedule, IterSpace, Vec<Point>) {
        let space = IterSpace::rect(&[4, 4]).unwrap();
        let deps = vec![vec![0, 1], vec![1, 0], vec![1, 1]];
        (
            Schedule::build(TimeFn::new(vec![1, 1]), &space),
            space,
            deps,
        )
    }

    #[test]
    fn fronts_match_paper_fig1() {
        let (s, _, _) = l1_sched();
        assert_eq!(s.num_steps(), 7);
        // Diagonal front sizes of a 4×4 square: 1,2,3,4,3,2,1.
        let sizes: Vec<usize> = (0..7).map(|t| s.front(t).len()).collect();
        assert_eq!(sizes, vec![1, 2, 3, 4, 3, 2, 1]);
        assert_eq!(s.max_parallelism(), 4);
        assert_eq!(s.num_points(), 16);
    }

    #[test]
    fn validates_against_deps() {
        let (s, space, deps) = l1_sched();
        assert!(s.validate(&space, &deps).is_ok());
        // An illegal dependence must be caught.
        assert!(s.validate(&space, &[vec![-1, 0]]).is_err());
    }

    #[test]
    fn step_of_normalization() {
        let space = IterSpace::rect_bounds(&[1, 1], &[3, 3]).unwrap();
        let s = Schedule::build(TimeFn::new(vec![1, 1]), &space);
        assert_eq!(s.step_of(&[1, 1]), Some(0));
        assert_eq!(s.step_of(&[3, 3]), Some(4));
        assert_eq!(s.step_of(&[0, 0]), None);
    }

    #[test]
    fn empty_space_schedule() {
        let space = IterSpace::rect_bounds(&[1], &[0]).unwrap();
        let s = Schedule::build(TimeFn::new(vec![1]), &space);
        assert_eq!(s.num_steps(), 0);
        assert_eq!(s.num_points(), 0);
        assert_eq!(s.max_parallelism(), 0);
    }

    #[test]
    fn points_within_front_are_independent() {
        let (s, _, deps) = l1_sched();
        for t in 0..s.num_steps() {
            let front = s.front(t);
            for a in front {
                for b in front {
                    if a != b {
                        let diff: Point = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
                        assert!(!deps.contains(&diff), "dependent points share a front");
                    }
                }
            }
        }
    }
}
