//! Matrix multiplication (the paper's Example 2).

use crate::Workload;
use loom_loopir::sem::Expr;
use loom_loopir::{Access, IterSpace, LoopNest, Stmt};

/// `C[i,j] += A[i,k] · B[k,j]` over an `n × n × n` space.
///
/// Dependences (the paper's single-assignment rewriting, which our
/// extractor derives directly from the reuse structure):
/// `d_A = (0,1,0)`, `d_B = (1,0,0)`, `d_C = (0,0,1)`. The paper uses
/// `n = 4` and `Π = (1,1,1)`.
pub fn workload(n: i64) -> Workload {
    let nest = LoopNest::new(
        "matmul",
        IterSpace::rect(&[n, n, n]).expect("positive extent"),
        vec![Stmt::assign(
            Access::simple("C", 3, &[(0, 0), (1, 0)]),
            vec![
                Access::simple("C", 3, &[(0, 0), (1, 0)]),
                Access::simple("A", 3, &[(0, 0), (2, 0)]),
                Access::simple("B", 3, &[(2, 0), (1, 0)]),
            ],
        )
        .with_flops(2)
        .with_expr(Expr::add(
            Expr::Read(0),
            Expr::mul(Expr::Read(1), Expr::Read(2)),
        ))],
    )
    .expect("matmul is well-formed");
    Workload {
        nest,
        deps: vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]],
        pi: vec![1, 1, 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_verify() {
        workload(4).verified_deps();
    }

    #[test]
    fn paper_size() {
        let w = workload(4);
        assert_eq!(w.nest.space().count(), 64);
        assert_eq!(w.nest.flops_per_iteration(), 2);
    }
}
