//! A1 — ablation: Algorithm 2's Gray-coded bisection vs naive /
//! round-robin / random placement, across workloads and machine sizes.

use loom_bench::partition_workload;
use loom_core::report::Table;
use loom_machine::{simulate, MachineParams, Program, SimConfig};
use loom_mapping::{baseline, map_partitioning, metrics, Hypercube};
use loom_partition::Tig;

fn main() {
    println!("Ablation A1 — mapping strategy vs communication cost\n");
    let params = MachineParams::classic_1991();
    let workloads = vec![
        loom_workloads::matvec::workload(32),
        loom_workloads::sor::workload(16, 16),
        loom_workloads::matmul::workload(6),
    ];
    let mut t = Table::new([
        "workload",
        "N",
        "mapping",
        "remote",
        "dilation",
        "congestion",
        "makespan",
    ]);
    for w in &workloads {
        let p = partition_workload(w);
        let tig = Tig::from_partitioning(&p);
        let flops = w.nest.flops_per_iteration();
        for cube_dim in [2usize, 3] {
            let n = 1usize << cube_dim;
            if n > p.num_blocks() {
                continue;
            }
            let cube = Hypercube::new(cube_dim);
            let gray = map_partitioning(&p, cube_dim).expect("fits");
            let candidates: Vec<(&str, Vec<usize>)> = vec![
                ("gray", gray.assignment().to_vec()),
                ("naive", baseline::naive(p.num_blocks(), n)),
                ("round-robin", baseline::round_robin(p.num_blocks(), n)),
                ("random", baseline::random(p.num_blocks(), n, 1991)),
            ];
            for (name, assignment) in candidates {
                let q = metrics::evaluate(&tig, &assignment, cube);
                let prog = Program::from_partitioning(&p, &assignment, n, flops);
                let sim = simulate(&prog, &SimConfig::paper_hypercube(cube_dim, params))
                    .expect("sim completes");
                t.row([
                    w.nest.name().to_string(),
                    format!("{n}"),
                    name.to_string(),
                    format!("{}", q.remote_traffic),
                    format!("{:.2}", q.mean_dilation()),
                    format!("{}", q.max_link_congestion),
                    format!("{}", sim.makespan),
                ]);
            }
        }
    }
    println!("{t}");
    println!(
        "expected shape: gray <= naive < round-robin/random on remote traffic and\n\
         makespan; gray achieves ~unit dilation on chain/mesh-like TIGs."
    );
}
