//! The rule catalogue: one table describing every `LC0NN` checker rule
//! and every `LP0NN` front-end rule, shared by `loom check --explain`
//! and kept in lock-step with `docs/CHECKS.md` / `docs/FRONTEND.md` (a
//! test asserts every entry has its heading in one of them).

use crate::diag::RuleId;

/// One catalogue entry.
#[derive(Clone, Copy, Debug)]
pub struct RuleDoc {
    /// The rule.
    pub rule: RuleId,
    /// Which engine runs it: `enumerative`, `symbolic`,
    /// `interleaving`, `plan` (artifact validation), or `front-end`
    /// (lexer/parser).
    pub engine: &'static str,
    /// The paper claim the rule certifies.
    pub paper: &'static str,
    /// One-sentence summary of what is checked.
    pub summary: &'static str,
}

const CATALOG: [RuleDoc; 26] = [
    RuleDoc {
        rule: RuleId::ScheduleLegality,
        engine: "enumerative",
        paper: "the hyperplane method's legality condition Pi*d >= 1 (Section II)",
        summary: "every dependence vector advances at least one schedule step",
    },
    RuleDoc {
        rule: RuleId::BlockSharedStep,
        engine: "enumerative",
        paper: "Lemma 1 (Section III)",
        summary: "no two iterations of one partition block share a hyperplane step \
                  (exact rational arithmetic)",
    },
    RuleDoc {
        rule: RuleId::NeighborBound,
        engine: "enumerative",
        paper: "Theorem 2 (Section III)",
        summary: "every group sends data to at most 2m - beta other groups, with beta \
                  recomputed from the projected dependence matrix",
    },
    RuleDoc {
        rule: RuleId::GrayAdjacency,
        engine: "enumerative",
        paper: "Algorithm 2's Gray-code allocation",
        summary: "blocks exchanging data along a grouping direction land on hypercube \
                  neighbors; multi-hop routing is reported",
    },
    RuleDoc {
        rule: RuleId::DataRace,
        engine: "enumerative",
        paper: "the construction's implicit soundness claim",
        summary: "a static vector-clock happens-before scan finds conflicting array \
                  accesses no message synchronization orders",
    },
    RuleDoc {
        rule: RuleId::GroupingRank,
        engine: "enumerative",
        paper: "Algorithm 1's grouping-vector selection",
        summary: "the chosen grouping set holds beta linearly independent vectors",
    },
    RuleDoc {
        rule: RuleId::UnmatchedMessage,
        engine: "enumerative",
        paper: "the deadlock-freedom argument for generated programs",
        summary: "the vector-clock fixpoint leaves no receive stuck and no sent \
                  message unconsumed",
    },
    RuleDoc {
        rule: RuleId::FaultPlan,
        engine: "plan",
        paper: "none - guards the fault-injection extension (RESILIENCE.md)",
        summary: "a fault plan references live hardware and survives a JSON round trip \
                  before the simulator runs it",
    },
    RuleDoc {
        rule: RuleId::ParametricLegality,
        engine: "symbolic",
        paper: "the legality condition and Lemma 1 (Sections II-III), proven parametrically",
        summary: "legality and Lemma 1 at projection-line granularity; non-integral \
                  line differences close the proof for every iteration-space size",
    },
    RuleDoc {
        rule: RuleId::AccessDependence,
        engine: "symbolic",
        paper: "the front end's uniformity assumption (Section II)",
        summary: "the declared dependence set D is exactly what the array subscripts \
                  induce, by exact pairwise integer solving",
    },
    RuleDoc {
        rule: RuleId::ProtocolSummary,
        engine: "symbolic",
        paper: "the communication structure of Section III",
        summary: "arithmetic-progression send/recv summaries per (line, dependence) \
                  reproduce the Task Interaction Graph exactly",
    },
    RuleDoc {
        rule: RuleId::BlockingCycle,
        engine: "symbolic",
        paper: "the deadlock-freedom argument: every message crosses >= 1 schedule step",
        summary: "the lag-weighted block graph has no cycle of blocking waits with \
                  total schedule lag <= 0",
    },
    RuleDoc {
        rule: RuleId::InterleavingDeadlock,
        engine: "interleaving",
        paper: "the deadlock-freedom argument, strengthened to every message interleaving",
        summary: "a DPOR model checker proves no interleaving of the SPMD program \
                  reaches a state where every unfinished processor blocks; violations \
                  carry a minimal counterexample trace",
    },
    RuleDoc {
        rule: RuleId::InterleavingDeterminacy,
        engine: "interleaving",
        paper: "the equivalence of the parallel program with the sequential nest",
        summary: "explored interleavings are replayed through the interpreter and must \
                  produce one final memory, equal to the sequential oracle's",
    },
    RuleDoc {
        rule: RuleId::BlockAccessBounds,
        engine: "interleaving",
        paper: "well-formedness of the generated program's block accesses",
        summary: "interval abstract interpretation bounds every op index and array \
                  subscript; hulls are Presburger-certified (size-parametric) or \
                  enumerated (concrete)",
    },
    RuleDoc {
        rule: RuleId::UniformizeSoundness,
        engine: "symbolic",
        paper: "dependence folding / basic-vector decomposition (Kale et al., \
                arXiv:1311.2927), extending the uniform class of Section II",
        summary: "every point of the true variable-distance dependence relation is a \
                  non-negative integer combination of the synthesized vectors; the \
                  Presburger core refutes span, sign, and divisibility escapes",
    },
    RuleDoc {
        rule: RuleId::UniformizeTightness,
        engine: "symbolic",
        paper: "the parallelism trade-off of dependence folding (Kale et al.)",
        summary: "a synthesized vector admits iteration pairs that never conflict; the \
                  parallelism lost is reported as the legal-Pi count / schedule step \
                  bound change",
    },
    RuleDoc {
        rule: RuleId::UniformizeLegality,
        engine: "symbolic",
        paper: "the legality condition Pi*d >= 1 (Section II) over the folded set",
        summary: "the chosen schedule satisfies Pi*v >= 1 for every synthesized vector, \
                  so the folded nest re-passes LC001/LC009 at all sizes",
    },
    RuleDoc {
        rule: RuleId::LexInvalidChar,
        engine: "front-end",
        paper: "none - guards the .loom surface syntax",
        summary: "a character outside the .loom alphabet; the lexer skips the run \
                  and keeps tokenizing",
    },
    RuleDoc {
        rule: RuleId::LexIntOverflow,
        engine: "front-end",
        paper: "none - guards the .loom surface syntax",
        summary: "an integer literal that does not fit i64; the lexer substitutes 0 \
                  and continues",
    },
    RuleDoc {
        rule: RuleId::ParseExpected,
        engine: "front-end",
        paper: "none - guards the .loom surface syntax",
        summary: "a syntax error (expected X, found Y); the parser resynchronizes at \
                  the next statement, line, or bracket boundary",
    },
    RuleDoc {
        rule: RuleId::ParseUnknownIndex,
        engine: "front-end",
        paper: "the affine-subscript program class (Section II)",
        summary: "a subscript references an identifier that is not a loop index",
    },
    RuleDoc {
        rule: RuleId::ParseNonAffine,
        engine: "front-end",
        paper: "the affine-subscript program class (Section II)",
        summary: "a non-affine subscript (variable times variable) outside the class \
                  the dependence analysis handles",
    },
    RuleDoc {
        rule: RuleId::ParseBadStep,
        engine: "front-end",
        paper: "the normalized-loop assumption (Section II)",
        summary: "a malformed step clause: non-positive, non-integer, or non-unit \
                  with non-constant bounds",
    },
    RuleDoc {
        rule: RuleId::ParseInvalidNest,
        engine: "front-end",
        paper: "the perfectly-nested-loop program class (Section II)",
        summary: "the recovered pieces do not form a valid nest: no loops, no \
                  statements, or invalid bounds",
    },
    RuleDoc {
        rule: RuleId::ResourceLimit,
        engine: "front-end",
        paper: "none - guards untrusted input (ROADMAP item 3a)",
        summary: "a resource cap was hit (input size, token count, expression depth, \
                  nest depth, or the diagnostic cap) instead of exhausting memory or \
                  the stack",
    },
];

/// The full catalogue, in rule-id order.
pub fn catalog() -> &'static [RuleDoc; 26] {
    &CATALOG
}

/// Render the catalogue entry for `code` (an `LC0NN`/`LP0NN` id or a
/// rule name, case-insensitive). `None` for an unknown rule.
pub fn explain(code: &str) -> Option<String> {
    let want = code.trim().to_ascii_lowercase();
    let doc = CATALOG
        .iter()
        .find(|d| d.rule.code().to_ascii_lowercase() == want || d.rule.name() == want)?;
    let doc_file = if doc.engine == "front-end" {
        "docs/FRONTEND.md"
    } else {
        "docs/CHECKS.md"
    };
    Some(format!(
        "{} `{}`\n  engine:  {}\n  paper:   {}\n  checks:  {}\n\nSee {}#{}-{} for the full entry and an example diagnostic.\n",
        doc.rule.code(),
        doc.rule.name(),
        doc.engine,
        doc.paper,
        doc.summary,
        doc_file,
        doc.rule.code().to_ascii_lowercase(),
        doc.rule.name(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_rule_in_order() {
        let codes: Vec<&str> = CATALOG.iter().map(|d| d.rule.code()).collect();
        let all: Vec<&str> = RuleId::all().iter().map(|r| r.code()).collect();
        assert_eq!(codes, all);
    }

    #[test]
    fn explain_finds_by_code_and_name() {
        let by_code = explain("lc013").expect("known code");
        assert!(by_code.contains("interleaving-deadlock"));
        assert!(by_code.contains("DPOR"));
        let by_name = explain("data-race").expect("known name");
        assert!(by_name.contains("LC005"));
        assert!(explain("LC099").is_none());
        // Front-end rules resolve too, and point at FRONTEND.md.
        let lp = explain("lp004").expect("known front-end code");
        assert!(lp.contains("parse-unknown-index"));
        assert!(lp.contains("docs/FRONTEND.md"));
    }

    #[test]
    fn docs_have_a_heading_per_rule() {
        let checks =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/CHECKS.md"))
                .expect("docs/CHECKS.md present");
        let frontend = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../docs/FRONTEND.md"
        ))
        .expect("docs/FRONTEND.md present");
        for d in CATALOG.iter() {
            let heading = format!("### {} `{}`", d.rule.code(), d.rule.name());
            assert!(
                checks.contains(&heading) || frontend.contains(&heading),
                "docs/CHECKS.md and docs/FRONTEND.md are both missing the heading {heading:?}"
            );
        }
    }
}
