//! Bench: Algorithm 1 (projection + grouping + blocks) across workload
//! sizes — the partitioner is compile-time machinery, so its own cost
//! matters to a parallelizing compiler.

use loom_hyperplane::TimeFn;
use loom_obs::bench::Bench;
use loom_partition::{partition, PartitionConfig};

fn main() {
    let mut bench = Bench::from_env();
    for m in [16i64, 32, 64] {
        let w = loom_workloads::matvec::workload(m);
        let deps = w.verified_deps();
        bench.run(&format!("algorithm1/matvec/{m}"), || {
            partition(
                w.nest.space().clone(),
                deps.clone(),
                TimeFn::new(w.pi.clone()),
                &PartitionConfig::default(),
            )
            .unwrap()
            .num_blocks()
        });
    }
    for n in [4i64, 8, 12] {
        let w = loom_workloads::matmul::workload(n);
        let deps = w.verified_deps();
        bench.run(&format!("algorithm1/matmul/{n}"), || {
            partition(
                w.nest.space().clone(),
                deps.clone(),
                TimeFn::new(w.pi.clone()),
                &PartitionConfig::default(),
            )
            .unwrap()
            .num_blocks()
        });
    }
    print!("{}", bench.report());
}
