//! Bench: the numerical executors — sequential oracle throughput,
//! trace-order replay, the SPMD interpreter, and codegen.

use loom_codegen::generate;
use loom_exec::memory::address_hash_init;
use loom_exec::{execute_in_order, schedule_order, sequential};
use loom_hyperplane::{Schedule, TimeFn};
use loom_loopir::Point;
use loom_obs::bench::Bench;
use loom_partition::{partition, PartitionConfig};

fn main() {
    let mut bench = Bench::from_env();
    for m in [16i64, 32, 64] {
        let w = loom_workloads::matvec::workload(m);
        bench.run(&format!("oracle_interpreter/matvec/{m}"), || {
            sequential(&w.nest, &address_hash_init).len()
        });
    }

    let w = loom_workloads::sor::workload(24, 24);
    let deps = w.verified_deps();
    let points: Vec<Point> = w.nest.space().points().collect();
    let sched = Schedule::build(TimeFn::new(w.pi.clone()), w.nest.space());
    let order = schedule_order(&points, &sched);
    bench.run("ordered_execution/sor24_front_order", || {
        execute_in_order(&w.nest, &points, &order, &deps, &address_hash_init)
            .unwrap()
            .len()
    });

    for m in [16i64, 32] {
        let w = loom_workloads::matvec::workload(m);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let assignment: Vec<usize> = (0..p.num_blocks()).map(|b| b % 4).collect();
        let cg = generate(&w.nest, &p, &assignment, 4).unwrap();
        bench.run(&format!("spmd_interpreter/matvec_4proc/{m}"), || {
            loom_codegen::run(&w.nest, &cg, &address_hash_init)
                .unwrap()
                .messages
        });
    }

    let w = loom_workloads::sor::workload(24, 24);
    let p = partition(
        w.nest.space().clone(),
        w.verified_deps(),
        TimeFn::new(w.pi.clone()),
        &PartitionConfig::default(),
    )
    .unwrap();
    let assignment: Vec<usize> = (0..p.num_blocks()).map(|b| b % 8).collect();
    bench.run("spmd_codegen/sor24_8proc", || {
        generate(&w.nest, &p, &assignment, 8)
            .unwrap()
            .program
            .num_messages()
    });
    print!("{}", bench.report());
}
