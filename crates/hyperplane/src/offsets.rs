//! Statement-level schedule offsets.
//!
//! The plain hyperplane schedule gives every statement of iteration `x`
//! the same step `Π·x`, relying on in-order execution of the body. The
//! finer classical form assigns statement `s` the time `Π·x + δ_s` with
//! small per-statement offsets `δ`, which exposes cross-statement
//! software pipelining. An offset vector is *valid* when for every
//! dependence from statement `a` (at `i`) to statement `b` (at `i + d`):
//!
//! * loop-carried (`d ≠ 0`): `Π·d + δ_b − δ_a ≥ 1`, and
//! * intra-iteration (`d = 0`, `a` textually before `b`): `δ_b − δ_a ≥ 1`.
//!
//! [`compute_offsets`] finds the componentwise-least non-negative valid
//! offsets by longest-path relaxation, or reports the negative cycle
//! that makes Π infeasible at statement granularity.

use crate::time::TimeFn;
use loom_loopir::deps::Dependence;

/// Why statement offsets could not be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OffsetError {
    /// The constraint graph has a positive cycle: no finite offsets make
    /// this Π valid at statement granularity (e.g. a loop-carried
    /// dependence with `Π·d ≤ 0` somewhere in a cycle of statements).
    Infeasible {
        /// A statement on the offending cycle.
        stmt: usize,
    },
    /// A dependence references a statement index outside the body.
    BadStatement {
        /// The offending index.
        stmt: usize,
    },
}

impl std::fmt::Display for OffsetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OffsetError::Infeasible { stmt } => {
                write!(
                    f,
                    "no finite statement offsets exist (cycle through S{stmt})"
                )
            }
            OffsetError::BadStatement { stmt } => {
                write!(f, "dependence references unknown statement S{stmt}")
            }
        }
    }
}

/// Compute the least non-negative statement offsets valid for `pi`
/// under the given per-statement dependences.
///
/// `num_stmts` is the body length; every `Dependence`'s statement
/// indices must be below it. Offsets are scaled so the earliest is 0.
pub fn compute_offsets(
    num_stmts: usize,
    deps: &[Dependence],
    pi: &TimeFn,
) -> Result<Vec<i64>, OffsetError> {
    // Difference constraints δ_dst − δ_src ≥ w become longest-path
    // edges src → dst with weight w; Bellman-Ford from an implicit
    // source with δ = 0 everywhere.
    struct Edge {
        src: usize,
        dst: usize,
        w: i64,
    }
    let mut edges = Vec::new();
    for d in deps {
        if d.src_stmt >= num_stmts {
            return Err(OffsetError::BadStatement { stmt: d.src_stmt });
        }
        if d.dst_stmt >= num_stmts {
            return Err(OffsetError::BadStatement { stmt: d.dst_stmt });
        }
        let carried = d.vector.iter().any(|&x| x != 0);
        if carried {
            // δ_dst − δ_src ≥ 1 − Π·d (only binding when Π·d ≤ 0 for
            // same-step or reversed pairs; usually a non-constraint).
            edges.push(Edge {
                src: d.src_stmt,
                dst: d.dst_stmt,
                w: 1 - pi.dot(&d.vector),
            });
        } else {
            edges.push(Edge {
                src: d.src_stmt,
                dst: d.dst_stmt,
                w: 1,
            });
        }
    }

    let mut delta = vec![0i64; num_stmts];
    // |V| − 1 relaxations, then one more pass to detect positive cycles.
    for round in 0..=num_stmts {
        let mut changed = false;
        for e in &edges {
            let cand = delta[e.src] + e.w;
            if cand > delta[e.dst] {
                if round == num_stmts {
                    return Err(OffsetError::Infeasible { stmt: e.dst });
                }
                delta[e.dst] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Normalize to start at 0 (deltas are already ≥ 0 since we start
    // from 0 and only increase, but keep the invariant explicit).
    let min = delta.iter().copied().min().unwrap_or(0);
    for d in &mut delta {
        *d -= min;
    }
    Ok(delta)
}

/// Validate offsets: every dependence strictly ordered in fine time.
pub fn validate_offsets(
    offsets: &[i64],
    deps: &[Dependence],
    pi: &TimeFn,
) -> Result<(), OffsetError> {
    for d in deps {
        // Both carried and intra-iteration dependences need strict fine-
        // time ordering; for intra (d = 0) the Π·d term vanishes.
        let lhs = pi.dot(&d.vector) + offsets[d.dst_stmt] - offsets[d.src_stmt];
        if lhs < 1 {
            return Err(OffsetError::Infeasible { stmt: d.dst_stmt });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_loopir::deps::{extract_dependences, DepOptions};
    use loom_loopir::{Access, IterSpace, LoopNest, Stmt};

    #[test]
    fn l1_needs_no_offsets() {
        // All of L1's dependences are loop-carried with Π·d ≥ 1.
        let w = loom_workloads::l1::workload(4);
        let deps = extract_dependences(&w.nest, DepOptions::default()).unwrap();
        let pi = TimeFn::new(w.pi.clone());
        let off = compute_offsets(w.nest.stmts().len(), &deps, &pi).unwrap();
        assert_eq!(off, vec![0, 0]);
        assert!(validate_offsets(&off, &deps, &pi).is_ok());
    }

    #[test]
    fn intra_iteration_chain_gets_increasing_offsets() {
        // S0: T[i]   = A[i];      (writes T)
        // S1: U[i]   = T[i];      (reads T same iteration → δ1 > δ0)
        // S2: V[i]   = U[i];      (→ δ2 > δ1)
        let n = 1;
        let nest = LoopNest::new(
            "chain",
            IterSpace::rect(&[4]).unwrap(),
            vec![
                Stmt::assign(
                    Access::simple("T", n, &[(0, 0)]),
                    vec![Access::simple("A", n, &[(0, 0)])],
                ),
                Stmt::assign(
                    Access::simple("U", n, &[(0, 0)]),
                    vec![Access::simple("T", n, &[(0, 0)])],
                ),
                Stmt::assign(
                    Access::simple("V", n, &[(0, 0)]),
                    vec![Access::simple("U", n, &[(0, 0)])],
                ),
            ],
        )
        .unwrap();
        // Intra-iteration deps have zero distance vectors, which the
        // vector extractor drops from D, but extract_dependences keeps?
        // (Zero-vector deps are excluded; simulate them explicitly.)
        let deps = vec![
            Dependence {
                vector: vec![0],
                kind: loom_loopir::DepKind::Flow,
                array: "T".into(),
                src_stmt: 0,
                dst_stmt: 1,
            },
            Dependence {
                vector: vec![0],
                kind: loom_loopir::DepKind::Flow,
                array: "U".into(),
                src_stmt: 1,
                dst_stmt: 2,
            },
        ];
        let pi = TimeFn::new(vec![1]);
        let off = compute_offsets(nest.stmts().len(), &deps, &pi).unwrap();
        assert_eq!(off, vec![0, 1, 2]);
        assert!(validate_offsets(&off, &deps, &pi).is_ok());
    }

    #[test]
    fn compensating_offset_for_weak_pi() {
        // A dependence with Π·d = 0 between two different statements can
        // be repaired by an offset: δ_dst − δ_src ≥ 1.
        let deps = vec![Dependence {
            vector: vec![1, -1],
            kind: loom_loopir::DepKind::Flow,
            array: "A".into(),
            src_stmt: 0,
            dst_stmt: 1,
        }];
        let pi = TimeFn::new(vec![1, 1]); // Π·(1,−1) = 0
        let off = compute_offsets(2, &deps, &pi).unwrap();
        assert_eq!(off, vec![0, 1]);
        assert!(validate_offsets(&off, &deps, &pi).is_ok());
    }

    #[test]
    fn infeasible_cycle_detected() {
        // S0 → S1 and S1 → S0 both with Π·d = 0: impossible.
        let mk = |src, dst| Dependence {
            vector: vec![1, -1],
            kind: loom_loopir::DepKind::Flow,
            array: "A".into(),
            src_stmt: src,
            dst_stmt: dst,
        };
        let pi = TimeFn::new(vec![1, 1]);
        let err = compute_offsets(2, &[mk(0, 1), mk(1, 0)], &pi).unwrap_err();
        assert!(matches!(err, OffsetError::Infeasible { .. }));
    }

    #[test]
    fn bad_statement_rejected() {
        let deps = vec![Dependence {
            vector: vec![1],
            kind: loom_loopir::DepKind::Flow,
            array: "A".into(),
            src_stmt: 0,
            dst_stmt: 7,
        }];
        let pi = TimeFn::new(vec![1]);
        assert_eq!(
            compute_offsets(2, &deps, &pi),
            Err(OffsetError::BadStatement { stmt: 7 })
        );
    }
}
