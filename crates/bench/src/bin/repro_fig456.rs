//! E3 — Figs. 4–6: matrix multiplication's computational structure,
//! projected structure (37 points), and grouping (17 groups).

use loom_bench::paper_matmul_partitioning;
use loom_core::report::Table;

fn main() {
    let p = paper_matmul_partitioning();
    let qp = p.projected();

    println!("Figs. 4-6 — 4×4×4 matmul, Π = (1,1,1)\n");
    println!(
        "Fig. 4: computational structure: {} index points, {} dependence arcs",
        p.structure().len(),
        p.structure().num_arcs()
    );
    println!(
        "Fig. 5: projected structure: {} projected points (paper: 37)",
        qp.len()
    );
    println!("projected dependence vectors:");
    for (i, d) in qp.deps().iter().enumerate() {
        let r = d.least_integer_multiplier();
        println!("  {:?} -> {d}   (r_i = {r})", p.structure().deps()[i]);
    }
    let gv = p.vectors();
    println!(
        "\nStep 1-2: r = {}, beta = {}, grouping vector index {}, auxiliary {:?}",
        gv.r,
        gv.beta,
        gv.grouping.unwrap(),
        gv.auxiliary
    );

    println!("\nFig. 6: the {} groups (paper: 17):", p.num_blocks());
    let mut t = Table::new(["group", "base vertex", "projected members", "iterations"]);
    for (g, group) in p.grouping().groups.iter().enumerate() {
        let members: Vec<String> = group
            .members
            .iter()
            .map(|&pid| qp.points()[pid].to_string())
            .collect();
        t.row([
            format!("G{g}"),
            group.base.to_string(),
            members.join(" "),
            format!("{}", p.block(g).len()),
        ]);
    }
    println!("{t}");

    let sizes: usize = p.blocks().iter().map(Vec::len).sum();
    println!("iterations covered: {sizes} / 64");
    assert_eq!(qp.len(), 37);
    assert_eq!(p.num_blocks(), 17);
    assert_eq!(sizes, 64);
    assert_eq!(gv.r, 3);
    assert_eq!(gv.beta, 2);
}
