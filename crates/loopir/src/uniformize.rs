//! Uniformization: folding variable-distance dependences into a finite
//! synthesized set of constant vectors.
//!
//! The hyperplane method — and everything downstream of it — requires
//! *uniform* dependences: a constant distance vector per conflicting
//! access pair. Access pairs whose linear subscript parts differ (for
//! example `A[2i] = A[i]`) induce distances that grow with the
//! iteration, so [`crate::deps::extract_dependences`] rejects them with
//! [`Error::NonUniform`]. Following the dependence-folding /
//! basic-vector-decomposition idea (Kale, Patil & Biswas,
//! arXiv:1311.2927), this pass instead *covers* the true dependence
//! relation: it synthesizes a small basis `V = {v₁ … v_m}` of constant
//! vectors such that every realized distance `d` is a non-negative
//! integer combination `d = Σ λ_k·v_k`. Any Π with `Π·v_k ≥ 1` for all
//! `k` then satisfies `Π·d = Σ λ_k·(Π·v_k) ≥ 1` for every realized
//! `d ≠ 0` — the folded nest is legal for the hyperplane method at
//! every size, at the price of possible over-synchronization (a cover
//! may admit combinations that never occur; rule `LC017` reports the
//! parallelism lost).
//!
//! The synthesis here is *sampling-based and certified elsewhere*: a
//! bounded lexicographic prefix of the iteration space is enumerated,
//! the conflict distances collected exactly, and a candidate basis
//! derived from their arithmetic structure (single scaled direction,
//! extreme rays of a planar cone, or independent directions). An exact
//! integer precheck — `d` in the column span, `λ = adj(VᵀV)·Vᵀ·d /
//! det(VᵀV)` integral and non-negative — re-validates every sample; a
//! failure is an honest [`FoldError::NoCover`] rejection, never a wrong
//! basis. The size-independent proof that the cover holds over the
//! *entire* space (not just the sampled prefix) is rule `LC016` in
//! `loom-check`, which re-derives the dependence relation with the
//! Presburger core and refutes every escape: a distance outside the
//! span, with a negative coefficient, or with a non-integral one.

use crate::access::Access;
use crate::deps::{
    extract_dependences_relaxed, kind_of, lex_sign, primitive_lex_positive, DepKind, DepOptions,
    Dependence, NonUniformPair,
};
use crate::nest::LoopNest;
use crate::{Error, Point};
use loom_rational::int::gcd_all;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Iteration points enumerated when sampling conflict distances (a
/// lexicographic prefix of the space). The certificate check proves the
/// cover beyond the prefix, so the budget only bounds *synthesis* work.
const POINT_BUDGET: usize = 512;

/// Sampled conflict pairs examined per access pair before sampling
/// stops (the distance set is usually tiny long before this).
const CONFLICT_BUDGET: usize = 100_000;

/// Cap on `δ = det(VᵀV)` of a synthesized basis: the `LC016` residue
/// case split enumerates `δ − 1` systems per basis row, so an
/// unboundedly skewed lattice is rejected instead of certified slowly.
pub const DELTA_CAP: i128 = 16;

/// Why a nest could not be uniformized. Admission treats every variant
/// as "stay rejected": folding is best-effort and never wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FoldError {
    /// Dependence extraction itself failed (coefficient overflow).
    Extract(Error),
    /// No synthesized basis covers the sampled conflicts of a pair.
    NoCover {
        /// The array the pair accesses.
        array: String,
        /// The first access, rendered (`A[2i]`).
        a: String,
        /// The second access, rendered (`A[i]`).
        b: String,
        /// Human-readable reason.
        why: String,
    },
}

impl fmt::Display for FoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoldError::Extract(e) => write!(f, "{e}"),
            FoldError::NoCover { array, a, b, why } => write!(
                f,
                "accesses {a} and {b} to array `{array}` cannot be uniformized: {why}"
            ),
        }
    }
}

/// One folded non-uniform access pair: the pair identity plus the
/// synthesized basis covering its sampled conflict distances.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairFold {
    /// The underlying access pair.
    pub pair: NonUniformPair,
    /// The synthesized basis (lexicographically positive, linearly
    /// independent constant vectors). Empty iff the sampled prefix has
    /// no conflicts — the conflict-free claim `LC016` then proves (or
    /// refutes) for the whole space.
    pub basis: Vec<Point>,
    /// Number of sampled conflicting iteration pairs (budget-capped).
    pub conflicts: usize,
    /// `true` when the whole iteration space fit in the sampling
    /// budget, so the sampled distance set is exact.
    pub exhaustive: bool,
    /// Some conflict has the `a` iteration lexicographically first.
    pub forward: bool,
    /// Some conflict has the `b` iteration lexicographically first.
    pub backward: bool,
}

impl PairFold {
    /// The synthesized [`Dependence`] records of this fold: one per
    /// basis vector per conflict direction present in the samples.
    pub fn dependences(&self) -> Vec<Dependence> {
        let mut out = Vec::new();
        for v in &self.basis {
            if self.forward {
                out.push(Dependence {
                    vector: v.clone(),
                    kind: kind_of(self.pair.a_write, self.pair.b_write),
                    array: self.pair.array.clone(),
                    src_stmt: self.pair.a_stmt,
                    dst_stmt: self.pair.b_stmt,
                });
            }
            if self.backward {
                out.push(Dependence {
                    vector: v.clone(),
                    kind: kind_of(self.pair.b_write, self.pair.a_write),
                    array: self.pair.array.clone(),
                    src_stmt: self.pair.b_stmt,
                    dst_stmt: self.pair.a_stmt,
                });
            }
        }
        out
    }
}

/// The uniformization certificate: every non-uniform pair with its
/// synthesized cover, plus the resulting folded dependence set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Uniformization {
    /// Folds, one per non-uniform pair, in extraction order.
    pub pairs: Vec<PairFold>,
    /// The folded dependence records: the nest's uniform dependences
    /// plus the synthesized ones, sorted and deduplicated exactly as
    /// [`crate::deps::extract_dependences`] sorts.
    pub deps: Vec<Dependence>,
    /// The folded dependence-vector set `D`: distinct nonzero vectors,
    /// lexicographically sorted — what the partitioner consumes.
    pub vectors: Vec<Point>,
}

impl Uniformization {
    /// `true` when the nest needed no folding (it was already uniform).
    pub fn is_trivial(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Every synthesized vector across all folds, distinct and sorted.
    pub fn synthesized(&self) -> Vec<Point> {
        let set: BTreeSet<Point> = self
            .pairs
            .iter()
            .flat_map(|p| p.basis.iter().cloned())
            .collect();
        set.into_iter().collect()
    }
}

/// Fold every non-uniform dependence of `nest` into synthesized
/// constant vectors, leaving uniform dependences untouched.
///
/// For an already-uniform nest this returns a trivial certificate whose
/// `deps`/`vectors` equal the plain extractor's. Any pair whose sampled
/// conflicts defeat basis synthesis (mismatched access ranks, a
/// too-skewed lattice, a sample the candidate basis cannot reach with
/// non-negative integral coefficients) is a [`FoldError::NoCover`] —
/// the nest stays rejected rather than being admitted with a wrong
/// dependence set.
pub fn uniformize(nest: &LoopNest, opts: DepOptions) -> Result<Uniformization, FoldError> {
    let (mut deps, raw_pairs) =
        extract_dependences_relaxed(nest, opts).map_err(FoldError::Extract)?;
    let mut pairs = Vec::new();
    for pair in raw_pairs {
        let fold = fold_pair(nest, pair)?;
        if opts.include_anti_output {
            deps.extend(fold.dependences());
        } else {
            deps.extend(
                fold.dependences()
                    .into_iter()
                    .filter(|d| d.kind == DepKind::Flow),
            );
        }
        pairs.push(fold);
    }
    deps.sort_by(|a, b| {
        (&a.array, a.kind, &a.vector, a.src_stmt, a.dst_stmt)
            .cmp(&(&b.array, b.kind, &b.vector, b.src_stmt, b.dst_stmt))
    });
    deps.dedup();
    let vectors: Vec<Point> = deps
        .iter()
        .map(|d| d.vector.clone())
        .filter(|v| v.iter().any(|&x| x != 0))
        .collect::<BTreeSet<Point>>()
        .into_iter()
        .collect();
    Ok(Uniformization {
        pairs,
        deps,
        vectors,
    })
}

/// Synthesize a basis for one non-uniform pair.
fn fold_pair(nest: &LoopNest, pair: NonUniformPair) -> Result<PairFold, FoldError> {
    let no_cover = |pair: &NonUniformPair, why: String| FoldError::NoCover {
        array: pair.array.clone(),
        a: format!("{}", pair.a),
        b: format!("{}", pair.b),
        why,
    };
    if pair.a.rank() != pair.b.rank() {
        return Err(no_cover(
            &pair,
            format!(
                "the accesses have different ranks ({} vs {})",
                pair.a.rank(),
                pair.b.rank()
            ),
        ));
    }
    let samples = sample_conflicts(nest, &pair.a, &pair.b);
    let basis = synthesize_basis(&samples.distances).map_err(|why| no_cover(&pair, why))?;
    verify_cover_on_samples(&basis, &samples.distances).map_err(|why| no_cover(&pair, why))?;
    Ok(PairFold {
        pair,
        basis,
        conflicts: samples.conflicts,
        exhaustive: samples.exhaustive,
        forward: samples.forward,
        backward: samples.backward,
    })
}

/// The sampled conflict structure of one access pair.
struct ConflictSamples {
    /// Distinct realized distances, normalized lexicographically
    /// positive.
    distances: BTreeSet<Point>,
    conflicts: usize,
    exhaustive: bool,
    forward: bool,
    backward: bool,
}

/// Enumerate a lexicographic prefix of the space and collect every
/// conflicting iteration pair of `(a, b)` by exact element-address
/// matching.
fn sample_conflicts(nest: &LoopNest, a: &Access, b: &Access) -> ConflictSamples {
    let mut points: Vec<Point> = Vec::new();
    let mut exhaustive = true;
    for p in nest.space().points() {
        if points.len() == POINT_BUDGET {
            exhaustive = false;
            break;
        }
        points.push(p);
    }
    let mut by_element_a: BTreeMap<Vec<i64>, Vec<usize>> = BTreeMap::new();
    let mut by_element_b: BTreeMap<Vec<i64>, Vec<usize>> = BTreeMap::new();
    for (i, p) in points.iter().enumerate() {
        by_element_a.entry(a.element_at(p)).or_default().push(i);
        by_element_b.entry(b.element_at(p)).or_default().push(i);
    }
    let mut out = ConflictSamples {
        distances: BTreeSet::new(),
        conflicts: 0,
        exhaustive,
        forward: false,
        backward: false,
    };
    'scan: for (element, ia) in &by_element_a {
        let Some(ib) = by_element_b.get(element) else {
            continue;
        };
        for &x in ia {
            for &y in ib {
                if out.conflicts == CONFLICT_BUDGET {
                    out.exhaustive = false;
                    break 'scan;
                }
                let e: Point = points[y]
                    .iter()
                    .zip(&points[x])
                    .map(|(py, px)| py - px)
                    .collect();
                match lex_sign(&e) {
                    // Same iteration touching the same element: an
                    // intra-iteration conflict, distance zero — it
                    // constrains statement offsets, never Π.
                    Ordering::Equal => continue,
                    Ordering::Greater => {
                        out.forward = true;
                        out.distances.insert(e);
                    }
                    Ordering::Less => {
                        out.backward = true;
                        out.distances.insert(e.iter().map(|&v| -v).collect());
                    }
                }
                out.conflicts += 1;
            }
        }
    }
    out
}

/// Derive a candidate basis from the sampled distance set: a single
/// gcd-scaled direction, the extreme rays of a planar cone, or (rank ≥
/// 3) greedily chosen independent directions. The caller re-validates
/// with [`verify_cover_on_samples`]; `LC016` proves it for every size.
fn synthesize_basis(distances: &BTreeSet<Point>) -> Result<Vec<Point>, String> {
    if distances.is_empty() {
        return Ok(Vec::new());
    }
    // Group distances by primitive direction; remember the gcd of the
    // multipliers along each direction, which keeps λ integral when a
    // whole ray collapses to one scaled basis vector.
    let mut dirs: BTreeMap<Point, i64> = BTreeMap::new();
    for d in distances {
        let p = primitive_lex_positive(d).expect("distances are nonzero");
        let k = p.iter().position(|&x| x != 0).expect("primitive nonzero");
        let c = d[k] / p[k];
        let g = dirs.entry(p).or_insert(0);
        *g = gcd_all(&[*g, c]);
    }
    let scaled = |p: &Point, g: i64| -> Point { p.iter().map(|&x| x * g).collect() };
    if dirs.len() == 1 {
        let (p, g) = dirs.iter().next().expect("one direction");
        return Ok(vec![scaled(p, *g)]);
    }
    let rank = rank_of(distances);
    if rank == 2 {
        let (lo, hi) = extreme_rays(&dirs)?;
        if dirs.len() == 2 {
            // Every sample lies on one of the two rays: the gcd-scaled
            // extremes are the tightest integral cover.
            return Ok(vec![scaled(&lo, dirs[&lo]), scaled(&hi, dirs[&hi])]);
        }
        // Interior directions exist: only the primitive extremes can
        // hope to reach them integrally (and only when the extreme pair
        // is unimodular — the sample re-validation decides).
        return Ok(vec![lo, hi]);
    }
    // rank ≥ 3: the first linearly independent primitive directions.
    // Distances are positive multiples of their directions, so the
    // directions span the same space and `rank` of them always exist.
    let mut basis: Vec<Point> = Vec::new();
    for p in dirs.keys() {
        let mut candidate = basis.clone();
        candidate.push(p.clone());
        let set: BTreeSet<Point> = candidate.iter().cloned().collect();
        if rank_of(&set) == candidate.len() {
            basis = candidate;
            if basis.len() == rank {
                break;
            }
        }
    }
    Ok(basis)
}

/// The two angular extreme rays of a planar set of lex-positive
/// directions. Lexicographic order is a group order, so the sampled
/// directions span a salient convex cone — strictly less than a half
/// turn — and the cross-product comparator is a strict total order.
fn extreme_rays(dirs: &BTreeMap<Point, i64>) -> Result<(Point, Point), String> {
    let keys: Vec<&Point> = dirs.keys().collect();
    let (e1, e2) = (keys[0], keys[1]);
    // Project onto two coordinates (r, s) that keep the plane
    // non-degenerate: the 2×2 minor of (e1, e2) there is nonzero.
    let n = e1.len();
    let mut axes = None;
    'outer: for r in 0..n {
        for s in (r + 1)..n {
            let det = (e1[r] as i128) * (e2[s] as i128) - (e1[s] as i128) * (e2[r] as i128);
            if det != 0 {
                axes = Some((r, s));
                break 'outer;
            }
        }
    }
    let Some((r, s)) = axes else {
        return Err("planar distance set has no non-degenerate projection".to_string());
    };
    let cross = |u: &Point, v: &Point| -> i128 {
        (u[r] as i128) * (v[s] as i128) - (u[s] as i128) * (v[r] as i128)
    };
    let mut sorted = keys;
    sorted.sort_by(|u, v| {
        let c = cross(u, v);
        // Distinct primitive rays in a salient planar cone are never
        // collinear, so c == 0 cannot happen.
        if c > 0 {
            Ordering::Less
        } else {
            Ordering::Greater
        }
    });
    Ok((
        (*sorted.first().expect("nonempty")).clone(),
        (*sorted.last().expect("nonempty")).clone(),
    ))
}

/// Rank of a set of integer vectors, by fraction-free Gaussian
/// elimination over `i128`.
fn rank_of(vectors: &BTreeSet<Point>) -> usize {
    let mut rows: Vec<Vec<i128>> = vectors
        .iter()
        .map(|v| v.iter().map(|&x| x as i128).collect())
        .collect();
    if rows.is_empty() {
        return 0;
    }
    let cols = rows[0].len();
    let mut rank = 0;
    for c in 0..cols {
        let Some(pivot) = (rank..rows.len()).find(|&i| rows[i][c] != 0) else {
            continue;
        };
        rows.swap(rank, pivot);
        // Fraction-free elimination below the pivot.
        let pivot_row = rows[rank].clone();
        for row in rows.iter_mut().skip(rank + 1) {
            if row[c] == 0 {
                continue;
            }
            let (p, q) = (pivot_row[c], row[c]);
            for (x, &pv) in row.iter_mut().zip(&pivot_row) {
                *x = x.saturating_mul(p) - pv.saturating_mul(q);
            }
        }
        rank += 1;
        if rank == rows.len() {
            break;
        }
    }
    rank
}

/// The exact integer-cover data of a basis `V` (columns `v₁ … v_m` of
/// length `n`): `δ = det(VᵀV) > 0`, `W = adj(VᵀV)·Vᵀ` (so `W·V = δ·I`),
/// and the span test `P = V·W − δ·I` (`d` lies in the column span iff
/// `P·d = 0`). Everything is exact `i128`; `None` on overflow.
pub struct CoverMatrices {
    /// Number of space dimensions (rows of `V`).
    pub n: usize,
    /// Number of basis vectors (columns of `V`).
    pub m: usize,
    /// `det(VᵀV)`.
    pub delta: i128,
    /// `adj(VᵀV)·Vᵀ`, an `m × n` matrix with `W·V = δ·I`.
    pub w: Vec<Vec<i128>>,
    /// `V·W − δ·I`, an `n × n` matrix whose kernel is the column span.
    pub p: Vec<Vec<i128>>,
}

/// Compute the cover matrices of a basis, or `None` when the basis is
/// rank-deficient or the arithmetic leaves `i128`.
pub fn cover_matrices(basis: &[Point]) -> Option<CoverMatrices> {
    let m = basis.len();
    let n = basis.first().map(|v| v.len())?;
    // G = VᵀV (m × m).
    let mut g = vec![vec![0i128; m]; m];
    for i in 0..m {
        for j in 0..m {
            let mut acc: i128 = 0;
            for (&x, &y) in basis[i].iter().zip(&basis[j]) {
                acc = acc.checked_add((x as i128).checked_mul(y as i128)?)?;
            }
            g[i][j] = acc;
        }
    }
    let delta = determinant(&g)?;
    if delta <= 0 {
        return None;
    }
    let adj = adjugate(&g)?;
    // W = adj(G)·Vᵀ (m × n).
    let mut w = vec![vec![0i128; n]; m];
    for i in 0..m {
        for k in 0..n {
            let mut acc: i128 = 0;
            for j in 0..m {
                acc = acc.checked_add(adj[i][j].checked_mul(basis[j][k] as i128)?)?;
            }
            w[i][k] = acc;
        }
    }
    // P = V·W − δ·I (n × n).
    let mut p = vec![vec![0i128; n]; n];
    for r in 0..n {
        for c in 0..n {
            let mut acc: i128 = 0;
            for j in 0..m {
                acc = acc.checked_add((basis[j][r] as i128).checked_mul(w[j][c])?)?;
            }
            if r == c {
                acc = acc.checked_sub(delta)?;
            }
            p[r][c] = acc;
        }
    }
    Some(CoverMatrices { n, m, delta, w, p })
}

/// Determinant by cofactor expansion (the matrices here are `m × m`
/// Gram matrices with `m ≤` nest depth, so this stays tiny).
fn determinant(m: &[Vec<i128>]) -> Option<i128> {
    let k = m.len();
    if k == 0 {
        return Some(1);
    }
    if k == 1 {
        return Some(m[0][0]);
    }
    let mut acc: i128 = 0;
    for c in 0..k {
        if m[0][c] == 0 {
            continue;
        }
        let minor: Vec<Vec<i128>> = m[1..]
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|&(j, _)| j != c)
                    .map(|(_, &x)| x)
                    .collect()
            })
            .collect();
        let term = m[0][c].checked_mul(determinant(&minor)?)?;
        acc = if c % 2 == 0 {
            acc.checked_add(term)?
        } else {
            acc.checked_sub(term)?
        };
    }
    Some(acc)
}

/// Adjugate (transposed cofactor matrix).
fn adjugate(m: &[Vec<i128>]) -> Option<Vec<Vec<i128>>> {
    let k = m.len();
    if k == 1 {
        return Some(vec![vec![1]]);
    }
    let mut adj = vec![vec![0i128; k]; k];
    #[allow(clippy::needless_range_loop)] // writes transposed: adj[c][r]
    for r in 0..k {
        for c in 0..k {
            let minor: Vec<Vec<i128>> = m
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != r)
                .map(|(_, row)| {
                    row.iter()
                        .enumerate()
                        .filter(|&(j, _)| j != c)
                        .map(|(_, &x)| x)
                        .collect()
                })
                .collect();
            let cof = determinant(&minor)?;
            adj[c][r] = if (r + c) % 2 == 0 {
                cof
            } else {
                cof.checked_neg()?
            };
        }
    }
    Some(adj)
}

/// Exact re-validation of a candidate basis against every sampled
/// distance: in-span (`P·d = 0`), non-negative (`(W·d)_r ≥ 0`) and
/// integral (`δ | (W·d)_r`) coefficients, and `δ` under [`DELTA_CAP`].
fn verify_cover_on_samples(basis: &[Point], distances: &BTreeSet<Point>) -> Result<(), String> {
    if basis.is_empty() {
        return if distances.is_empty() {
            Ok(())
        } else {
            Err("no basis for a nonempty distance set".to_string())
        };
    }
    let Some(cm) = cover_matrices(basis) else {
        return Err("the candidate basis is rank-deficient or overflows".to_string());
    };
    if cm.delta > DELTA_CAP {
        return Err(format!(
            "the basis lattice determinant {} exceeds the certification cap {DELTA_CAP}",
            cm.delta
        ));
    }
    let mul = |mat: &[Vec<i128>], d: &Point| -> Vec<i128> {
        mat.iter()
            .map(|row| {
                row.iter()
                    .zip(d)
                    .map(|(&a, &b)| a * b as i128)
                    .sum::<i128>()
            })
            .collect()
    };
    for d in distances {
        if mul(&cm.p, d).iter().any(|&x| x != 0) {
            return Err(format!(
                "sampled distance {d:?} lies outside the span of the basis {basis:?}"
            ));
        }
        for &lam in &mul(&cm.w, d) {
            if lam < 0 {
                return Err(format!(
                    "sampled distance {d:?} needs a negative coefficient on basis {basis:?}"
                ));
            }
            if lam % cm.delta != 0 {
                return Err(format!(
                    "sampled distance {d:?} needs a fractional coefficient on basis {basis:?}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::IterSpace;
    use crate::{Aff, Stmt};

    fn nest_1d(name: &str, extent: i64, write: Access, reads: Vec<Access>) -> LoopNest {
        LoopNest::new(
            name,
            IterSpace::rect(&[extent]).unwrap(),
            vec![Stmt::assign(write, reads)],
        )
        .unwrap()
    }

    #[test]
    fn a2i_recurrence_folds_to_unit_vector() {
        // A[2i] = A[i]: distances d = i for 2i in range → basis {(1)}.
        let nest = nest_1d(
            "rec",
            8,
            Access::new("A", vec![Aff::new(vec![2], 0)]),
            vec![Access::simple("A", 1, &[(0, 0)])],
        );
        let u = uniformize(&nest, DepOptions::default()).unwrap();
        assert_eq!(u.pairs.len(), 1);
        assert_eq!(u.pairs[0].basis, vec![vec![1]]);
        assert!(u.pairs[0].forward);
        assert!(!u.pairs[0].backward);
        assert!(u.pairs[0].exhaustive);
        assert_eq!(u.vectors, vec![vec![1]]);
        assert_eq!(u.deps.len(), 1);
        assert_eq!(u.deps[0].kind, DepKind::Flow);
    }

    #[test]
    fn a3i_recurrence_scales_by_gcd() {
        // A[3i] = A[i]: distances d = 2i are all even → basis {(2)}.
        let nest = nest_1d(
            "scale",
            16,
            Access::new("A", vec![Aff::new(vec![3], 0)]),
            vec![Access::simple("A", 1, &[(0, 0)])],
        );
        let u = uniformize(&nest, DepOptions::default()).unwrap();
        assert_eq!(u.pairs[0].basis, vec![vec![2]]);
        assert_eq!(u.vectors, vec![vec![2]]);
    }

    #[test]
    fn coupled_2d_case_folds_to_column_vector() {
        // A[i, i+j] = A[i, j]: conflicts at (i,j) → (i, i+j), distance
        // (0, i) → basis {(0, 1)}.
        let nest = LoopNest::new(
            "diag2d",
            IterSpace::rect(&[8, 8]).unwrap(),
            vec![Stmt::assign(
                Access::new("A", vec![Aff::var(2, 0), Aff::new(vec![1, 1], 0)]),
                vec![Access::simple("A", 2, &[(0, 0), (1, 0)])],
            )],
        )
        .unwrap();
        let u = uniformize(&nest, DepOptions::default()).unwrap();
        assert_eq!(u.pairs[0].basis, vec![vec![0, 1]]);
        assert_eq!(u.vectors, vec![vec![0, 1]]);
    }

    #[test]
    fn uniform_nest_is_trivial() {
        let nest = nest_1d(
            "uniform",
            8,
            Access::simple("A", 1, &[(0, 1)]),
            vec![Access::simple("A", 1, &[(0, 0)])],
        );
        let u = uniformize(&nest, DepOptions::default()).unwrap();
        assert!(u.is_trivial());
        assert_eq!(u.vectors, vec![vec![1]]);
        assert_eq!(
            u.deps,
            crate::deps::extract_dependences(&nest, DepOptions::default()).unwrap()
        );
    }

    #[test]
    fn disjoint_images_fold_to_empty_basis() {
        // A[2i] written, A[4i+1] read: even vs odd elements — never a
        // conflict, so the fold is an empty cover.
        let nest = nest_1d(
            "disjoint",
            8,
            Access::new("A", vec![Aff::new(vec![2], 0)]),
            vec![Access::new("A", vec![Aff::new(vec![4], 1)])],
        );
        let u = uniformize(&nest, DepOptions::default()).unwrap();
        assert_eq!(u.pairs.len(), 1);
        assert!(u.pairs[0].basis.is_empty());
        assert_eq!(u.pairs[0].conflicts, 0);
        assert!(u.vectors.is_empty());
    }

    #[test]
    fn rank_mismatch_is_an_honest_rejection() {
        // A[i] written (rank 1), A[i, j] read (rank 2): no fold.
        let nest = LoopNest::new(
            "ranks",
            IterSpace::rect(&[4, 4]).unwrap(),
            vec![Stmt::assign(
                Access::simple("A", 2, &[(0, 0)]),
                vec![Access::simple("A", 2, &[(0, 0), (1, 0)])],
            )],
        )
        .unwrap();
        let err = uniformize(&nest, DepOptions::default()).unwrap_err();
        assert!(matches!(err, FoldError::NoCover { .. }));
        assert!(format!("{err}").contains("different ranks"));
    }

    #[test]
    fn bidirectional_conflicts_set_both_flags() {
        // A[2i] = A[8 - i]: element 2i = 8 - j conflicts both ways
        // around the crossing point.
        let nest = nest_1d(
            "cross",
            9,
            Access::new("A", vec![Aff::new(vec![2], 0)]),
            vec![Access::new("A", vec![Aff::new(vec![-1], 8)])],
        );
        let u = uniformize(&nest, DepOptions::default());
        // Whatever basis synthesis decides, a successful fold must have
        // seen conflicts in both directions (e.g. i=0,j=8 and i=4,j=0).
        if let Ok(u) = u {
            assert!(u.pairs[0].forward && u.pairs[0].backward);
        }
    }

    #[test]
    fn cover_matrices_identity_for_unimodular_basis() {
        // V = [(0,1),(1,-1)]: G = [[1,-1],[-1,2]], δ = 1.
        let basis = vec![vec![0, 1], vec![1, -1]];
        let cm = cover_matrices(&basis).unwrap();
        assert_eq!(cm.delta, 1);
        // W·V = δ·I.
        for i in 0..cm.m {
            for (j, v) in basis.iter().enumerate() {
                let dot: i128 = (0..cm.n).map(|k| cm.w[i][k] * v[k] as i128).sum();
                assert_eq!(dot, if i == j { cm.delta } else { 0 });
            }
        }
        // P annihilates the span (n = m = 2 ⇒ P = 0).
        assert!(cm.p.iter().flatten().all(|&x| x == 0));
    }

    #[test]
    fn rank_is_exact() {
        let set: BTreeSet<Point> = [vec![1, 0, 0], vec![0, 1, 0], vec![1, 1, 0]]
            .into_iter()
            .collect();
        assert_eq!(rank_of(&set), 2);
        let set: BTreeSet<Point> = [vec![2, 4], vec![1, 2]].into_iter().collect();
        assert_eq!(rank_of(&set), 1);
    }
}
