//! Bench for E6: the full pipeline (analysis → Π → partition → map →
//! simulate) that regenerates Table I's rows, timed end to end per
//! machine size.

use loom_core::pipeline::MachineOptions;
use loom_core::{Pipeline, PipelineConfig};
use loom_machine::MachineParams;
use loom_obs::bench::Bench;

fn main() {
    let mut bench = Bench::from_env();
    let m = 48i64;
    let w = loom_workloads::matvec::workload(m);
    for cube_dim in [0usize, 2, 3] {
        bench.run(&format!("table1_pipeline/matvec48_cube/{cube_dim}"), || {
            let out = Pipeline::new(w.nest.clone())
                .run(&PipelineConfig {
                    time_fn: Some(w.pi.clone()),
                    cube_dim,
                    machine: Some(MachineOptions {
                        params: MachineParams::classic_1991(),
                        ..Default::default()
                    }),
                    ..Default::default()
                })
                .unwrap();
            out.sim.unwrap().makespan
        });
    }
    bench.run("table1_analytic_all_rows", || {
        loom_core::analytic::table1_rows(1024)
    });
    print!("{}", bench.report());
}
