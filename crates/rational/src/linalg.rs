//! Exact Gaussian elimination: rank, linear independence, solving, and
//! nullspace extraction over ℚ.

use crate::matrix::QMat;
use crate::ratio::Ratio;
use crate::vector::QVec;

/// Result of reducing a matrix to row-echelon form.
#[derive(Clone, Debug)]
pub struct Echelon {
    /// The reduced (RREF) matrix.
    pub rref: QMat,
    /// Column index of the pivot in each nonzero row, in order.
    pub pivots: Vec<usize>,
}

impl Echelon {
    /// The rank of the original matrix.
    pub fn rank(&self) -> usize {
        self.pivots.len()
    }
}

/// Reduce `m` to reduced row-echelon form with exact arithmetic.
pub fn rref(m: &QMat) -> Echelon {
    let mut a = m.clone();
    let (rows, cols) = (a.rows(), a.cols());
    let mut pivots = Vec::new();
    let mut r = 0;
    for c in 0..cols {
        if r == rows {
            break;
        }
        // Find a pivot in column c at or below row r.
        let Some(p) = (r..rows).find(|&i| !a[(i, c)].is_zero()) else {
            continue;
        };
        a.swap_rows(r, p);
        // Normalize the pivot row.
        let inv = a[(r, c)].recip();
        for j in c..cols {
            a[(r, j)] *= inv;
        }
        // Eliminate the column everywhere else.
        for i in 0..rows {
            if i != r && !a[(i, c)].is_zero() {
                let f = a[(i, c)];
                for j in c..cols {
                    let sub = a[(r, j)] * f;
                    a[(i, j)] -= sub;
                }
            }
        }
        pivots.push(c);
        r += 1;
    }
    Echelon { rref: a, pivots }
}

/// The rank of a matrix.
pub fn rank(m: &QMat) -> usize {
    rref(m).rank()
}

/// `true` iff the given vectors are linearly independent over ℚ.
///
/// An empty set is independent; any set containing the zero vector is not.
pub fn independent(vs: &[QVec]) -> bool {
    if vs.is_empty() {
        return true;
    }
    rank(&QMat::from_columns(vs)) == vs.len()
}

/// Solve `A x = b`. Returns one solution if the system is consistent
/// (the solution with all free variables set to zero), `None` otherwise.
pub fn solve(a: &QMat, b: &QVec) -> Option<QVec> {
    assert_eq!(a.rows(), b.dim(), "solve: rhs dimension mismatch");
    // Build the augmented matrix [A | b].
    let mut aug = QMat::zero(a.rows(), a.cols() + 1);
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            aug[(i, j)] = a[(i, j)];
        }
        aug[(i, a.cols())] = b[i];
    }
    let e = rref(&aug);
    // Inconsistent iff a pivot lands in the b column.
    if e.pivots.last() == Some(&a.cols()) {
        return None;
    }
    let mut x = QVec::zero(a.cols());
    for (row, &pc) in e.pivots.iter().enumerate() {
        x[pc] = e.rref[(row, a.cols())];
    }
    Some(x)
}

/// A basis for the nullspace of `m` (vectors `x` with `m x = 0`).
///
/// Returns `cols − rank` vectors; empty when the matrix has full column rank.
pub fn nullspace(m: &QMat) -> Vec<QVec> {
    let e = rref(m);
    let cols = m.cols();
    let pivot_cols: Vec<usize> = e.pivots.clone();
    let free_cols: Vec<usize> = (0..cols).filter(|c| !pivot_cols.contains(c)).collect();
    let mut basis = Vec::with_capacity(free_cols.len());
    for &fc in &free_cols {
        let mut v = QVec::zero(cols);
        v[fc] = Ratio::ONE;
        for (row, &pc) in pivot_cols.iter().enumerate() {
            v[pc] = -e.rref[(row, fc)];
        }
        basis.push(v);
    }
    basis
}

/// Determinant of a square matrix by fraction-free-ish Gaussian
/// elimination over ℚ (exact). Panics on a non-square matrix.
pub fn determinant(m: &QMat) -> Ratio {
    assert_eq!(m.rows(), m.cols(), "determinant of non-square matrix");
    let n = m.rows();
    let mut a = m.clone();
    let mut det = Ratio::ONE;
    for c in 0..n {
        let Some(p) = (c..n).find(|&i| !a[(i, c)].is_zero()) else {
            return Ratio::ZERO;
        };
        if p != c {
            a.swap_rows(c, p);
            det = -det;
        }
        det *= a[(c, c)];
        let inv = a[(c, c)].recip();
        for i in (c + 1)..n {
            if !a[(i, c)].is_zero() {
                let f = a[(i, c)] * inv;
                for j in c..n {
                    let sub = a[(c, j)] * f;
                    a[(i, j)] -= sub;
                }
            }
        }
    }
    det
}

/// Inverse of a square matrix, or `None` if singular.
pub fn inverse(m: &QMat) -> Option<QMat> {
    assert_eq!(m.rows(), m.cols(), "inverse of non-square matrix");
    let n = m.rows();
    // Augment with the identity and reduce.
    let mut aug = QMat::zero(n, 2 * n);
    for i in 0..n {
        for j in 0..n {
            aug[(i, j)] = m[(i, j)];
        }
        aug[(i, n + i)] = Ratio::ONE;
    }
    let e = rref(&aug);
    // Full rank iff the first n columns are all pivots.
    if e.pivots.len() < n || e.pivots.iter().take(n).any(|&c| c >= n) {
        return None;
    }
    let mut inv = QMat::zero(n, n);
    for i in 0..n {
        for j in 0..n {
            inv[(i, j)] = e.rref[(i, n + j)];
        }
    }
    Some(inv)
}

/// Express `target` as a linear combination of `basis` vectors, if possible.
/// Returns the coefficients in basis order.
pub fn coordinates_in(basis: &[QVec], target: &QVec) -> Option<QVec> {
    if basis.is_empty() {
        return target.is_zero().then(|| QVec::zero(0));
    }
    solve(&QMat::from_columns(basis), target).filter(|x| {
        // `solve` finds *a* solution of A x = b; verify it reproduces target
        // exactly (guards against free-variable choices that don't).
        let recon = QMat::from_columns(basis).mul_vec(x);
        recon == *target
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_obs::SplitMix64;

    fn q(n: i64, d: i64) -> Ratio {
        Ratio::new(n, d)
    }

    #[test]
    fn rank_of_paper_projected_matmul_deps() {
        // mat(D^p) for matmul with Π=(1,1,1): the paper states rank 2.
        let thirds = |a: i64, b: i64, c: i64| QVec::new(vec![q(a, 3), q(b, 3), q(c, 3)]);
        let cols = vec![thirds(-1, 2, -1), thirds(2, -1, -1), thirds(-1, -1, 2)];
        assert_eq!(rank(&QMat::from_columns(&cols)), 2);
        assert!(!independent(&cols));
        assert!(independent(&cols[..2]));
    }

    #[test]
    fn rank_cases() {
        assert_eq!(rank(&QMat::identity(4)), 4);
        assert_eq!(rank(&QMat::zero(3, 3)), 0);
        let m = QMat::from_int_rows(&[&[1, 2], &[2, 4]]);
        assert_eq!(rank(&m), 1);
        let wide = QMat::from_int_rows(&[&[1, 0, 5], &[0, 1, 7]]);
        assert_eq!(rank(&wide), 2);
    }

    #[test]
    fn solve_unique() {
        // x + y = 3, x − y = 1  →  x = 2, y = 1.
        let a = QMat::from_int_rows(&[&[1, 1], &[1, -1]]);
        let b = QVec::from_ints(&[3, 1]);
        assert_eq!(solve(&a, &b), Some(QVec::from_ints(&[2, 1])));
    }

    #[test]
    fn solve_inconsistent() {
        let a = QMat::from_int_rows(&[&[1, 1], &[1, 1]]);
        let b = QVec::from_ints(&[1, 2]);
        assert_eq!(solve(&a, &b), None);
    }

    #[test]
    fn solve_underdetermined() {
        let a = QMat::from_int_rows(&[&[1, 1]]);
        let b = QVec::from_ints(&[5]);
        let x = solve(&a, &b).unwrap();
        assert_eq!(a.mul_vec(&x), b);
    }

    #[test]
    fn nullspace_dimension_and_membership() {
        let m = QMat::from_int_rows(&[&[1, 2, 3]]);
        let ns = nullspace(&m);
        assert_eq!(ns.len(), 2);
        for v in &ns {
            assert!(m.mul_vec(v).is_zero());
        }
        assert!(independent(&ns));
        assert!(nullspace(&QMat::identity(3)).is_empty());
    }

    #[test]
    fn coordinates_in_basis() {
        let basis = vec![QVec::from_ints(&[1, 0, 1]), QVec::from_ints(&[0, 1, 1])];
        let t = QVec::from_ints(&[2, 3, 5]);
        let c = coordinates_in(&basis, &t).unwrap();
        assert_eq!(c, QVec::from_ints(&[2, 3]));
        // Outside the span.
        let out = QVec::from_ints(&[0, 0, 1]);
        assert_eq!(coordinates_in(&basis, &out), None);
        // Empty basis spans only zero.
        assert!(coordinates_in(&[], &QVec::zero(3)).is_some());
        assert!(coordinates_in(&[], &QVec::from_ints(&[1, 0, 0])).is_none());
    }

    #[test]
    fn determinant_cases() {
        assert_eq!(determinant(&QMat::identity(3)), Ratio::ONE);
        assert_eq!(determinant(&QMat::zero(2, 2)), Ratio::ZERO);
        let m = QMat::from_int_rows(&[&[2, 1], &[1, 1]]);
        assert_eq!(determinant(&m), Ratio::int(1));
        let swap = QMat::from_int_rows(&[&[0, 1], &[1, 0]]);
        assert_eq!(determinant(&swap), Ratio::int(-1));
        // det of the matmul projected-dependence matrix is 0 (rank 2).
        let thirds = |a: i64, b: i64, c: i64| QVec::new(vec![q(a, 3), q(b, 3), q(c, 3)]);
        let cols = vec![thirds(-1, 2, -1), thirds(2, -1, -1), thirds(-1, -1, 2)];
        assert_eq!(determinant(&QMat::from_columns(&cols)), Ratio::ZERO);
    }

    #[test]
    fn inverse_cases() {
        let m = QMat::from_int_rows(&[&[2, 1], &[1, 1]]);
        let inv = inverse(&m).unwrap();
        // m * inv = I.
        for i in 0..2 {
            let col = inv.col(i);
            let prod = m.mul_vec(&col);
            for j in 0..2 {
                let expect = if i == j { Ratio::ONE } else { Ratio::ZERO };
                assert_eq!(prod[j], expect);
            }
        }
        assert!(inverse(&QMat::from_int_rows(&[&[1, 2], &[2, 4]])).is_none());
        assert_eq!(inverse(&QMat::identity(4)), Some(QMat::identity(4)));
    }

    /// Deterministic property harness: random integer matrices with
    /// entries in [-5, 5].
    fn small_mat(rng: &mut SplitMix64, r: usize, c: usize) -> QMat {
        let mut m = QMat::zero(r, c);
        for i in 0..r {
            for j in 0..c {
                m[(i, j)] = Ratio::int(rng.range_i64(-5, 6));
            }
        }
        m
    }

    fn for_random_mats(seed: u64, r: usize, c: usize, check: impl Fn(QMat)) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..128 {
            check(small_mat(&mut rng, r, c));
        }
    }

    #[test]
    fn rank_bounds() {
        for_random_mats(1, 3, 4, |m| {
            let r = rank(&m);
            assert!(r <= 3);
            assert_eq!(r, rank(&m.transpose()), "{m:?}");
        });
    }

    #[test]
    fn rank_plus_nullity() {
        for_random_mats(2, 3, 4, |m| {
            assert_eq!(rank(&m) + nullspace(&m).len(), 4, "{m:?}");
        });
    }

    #[test]
    fn nullspace_vectors_are_null() {
        for_random_mats(3, 3, 4, |m| {
            for v in nullspace(&m) {
                assert!(m.mul_vec(&v).is_zero(), "{m:?} · {v}");
            }
        });
    }

    #[test]
    fn solve_verifies() {
        let mut rng = SplitMix64::new(4);
        for _ in 0..128 {
            let m = small_mat(&mut rng, 3, 3);
            let b = QVec::from_ints(&[
                rng.range_i64(-5, 6),
                rng.range_i64(-5, 6),
                rng.range_i64(-5, 6),
            ]);
            if let Some(x) = solve(&m, &b) {
                assert_eq!(m.mul_vec(&x), b, "{m:?}");
            }
        }
    }

    #[test]
    fn det_nonzero_iff_full_rank() {
        for_random_mats(5, 3, 3, |m| {
            let d = determinant(&m);
            assert_eq!(d.is_zero(), rank(&m) < 3, "{m:?}");
            assert_eq!(inverse(&m).is_some(), !d.is_zero(), "{m:?}");
        });
    }

    #[test]
    fn inverse_roundtrips() {
        for_random_mats(6, 3, 3, |m| {
            if let Some(inv) = inverse(&m) {
                for j in 0..3 {
                    let col = inv.col(j);
                    let prod = m.mul_vec(&col);
                    for i in 0..3 {
                        let expect = if i == j { Ratio::ONE } else { Ratio::ZERO };
                        assert_eq!(prod[i], expect, "{m:?}");
                    }
                }
            }
        });
    }

    #[test]
    fn det_multiplicative_on_transpose() {
        for_random_mats(7, 3, 3, |m| {
            assert_eq!(determinant(&m), determinant(&m.transpose()), "{m:?}");
        });
    }

    #[test]
    fn rref_idempotent() {
        for_random_mats(8, 3, 4, |m| {
            let e1 = rref(&m);
            let e2 = rref(&e1.rref);
            assert_eq!(e1.rref, e2.rref, "{m:?}");
            assert_eq!(e1.pivots, e2.pivots, "{m:?}");
        });
    }
}
