//! Rendering SPMD programs as readable pseudo-code.

use crate::gen::Codegen;
use crate::ops::Op;
use loom_loopir::LoopNest;

/// Render one processor's program.
pub fn render_proc(nest: &LoopNest, cg: &Codegen, proc: usize) -> String {
    let mut out = format!("processor {proc}:\n");
    for op in &cg.program.per_proc[proc] {
        match op {
            Op::Recv { from, tag } => {
                let src = &cg.program.points[tag.src_point as usize];
                out.push_str(&format!(
                    "  recv    <- P{from}   (dep {} of {:?})\n",
                    tag.dep, src
                ));
            }
            Op::Compute { point } => {
                let p = &cg.program.points[*point as usize];
                out.push_str(&format!("  compute {:?}", p));
                for stmt in nest.stmts() {
                    out.push_str(&format!(
                        "  {}[{:?}] := …",
                        stmt.write().array(),
                        stmt.write().element_at(p)
                    ));
                }
                out.push('\n');
            }
            Op::Send { to, tag } => {
                let src = &cg.program.points[tag.src_point as usize];
                out.push_str(&format!(
                    "  send    -> P{to}   (dep {} of {:?})\n",
                    tag.dep, src
                ));
            }
        }
    }
    out
}

/// Render the whole program.
pub fn render(nest: &LoopNest, cg: &Codegen) -> String {
    (0..cg.program.num_procs())
        .map(|p| render_proc(nest, cg, p))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use loom_hyperplane::TimeFn;
    use loom_partition::{partition, PartitionConfig};

    #[test]
    fn render_contains_structure() {
        let w = loom_workloads::l1::workload(4);
        let p = partition(
            w.nest.space().clone(),
            w.verified_deps(),
            TimeFn::new(w.pi.clone()),
            &PartitionConfig::default(),
        )
        .unwrap();
        let cg = generate(&w.nest, &p, &[0, 1, 1, 0], 2).unwrap();
        let text = render(&w.nest, &cg);
        assert!(text.contains("processor 0:"));
        assert!(text.contains("processor 1:"));
        assert!(text.contains("compute"));
        assert!(text.contains("send    -> P"));
        assert!(text.contains("recv    <- P"));
        // Every compute line names the written element.
        assert!(text.contains("A[["));
    }
}
